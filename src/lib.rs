//! # deepcam — facade crate
//!
//! One-stop entry point for the DeepCAM (DATE 2023) reproduction. Each
//! subsystem lives in its own crate under `crates/`; this facade re-exports
//! them under stable module names so examples, integration tests and
//! downstream users can depend on a single crate.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`tensor`] | `deepcam-tensor` | tensors, CNN ops, backprop, SGD |
//! | [`data`] | `deepcam-data` | synthetic MNIST/CIFAR-like datasets |
//! | [`models`] | `deepcam-models` | LeNet5/VGG/ResNet specs + trainable variants |
//! | [`hash`] | `deepcam-hash` | random projection, geometric dot-products, contexts |
//! | [`cam`] | `deepcam-cam` | FeFET CAM array, sense amps, energy/area models |
//! | [`accel`] | `deepcam-core` | the DeepCAM accelerator simulator |
//! | [`serve`] | `deepcam-serve` | model registry, micro-batching sessions, TCP server |
//! | [`baselines`] | `deepcam-baselines` | Eyeriss, CPU, and analog PIM baselines |
//!
//! # Quickstart
//!
//! ```
//! use deepcam::hash::geometric::GeometricDot;
//! use deepcam::tensor::Tensor;
//!
//! // The paper's §II-B worked example: algebraic dot = 2.0765.
//! let x = Tensor::from_slice(&[0.6012, 0.8383, 0.6859, 0.5712]);
//! let y = Tensor::from_slice(&[0.9044, 0.5352, 0.8110, 0.9243]);
//! let gd = GeometricDot::new(4, 1024, 7)?;
//! let approx = gd.dot(x.data(), y.data())?;
//! assert!((approx - 2.0765).abs() < 0.25);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// Machine-checked by deepcam-analyze (lint A2): this crate holds no
// unsafe code, and the compiler now enforces that it never grows any.
#![forbid(unsafe_code)]

pub use deepcam_baselines as baselines;
pub use deepcam_cam as cam;
pub use deepcam_core as accel;
pub use deepcam_data as data;
pub use deepcam_hash as hash;
pub use deepcam_models as models;
pub use deepcam_serve as serve;
pub use deepcam_tensor as tensor;
