#!/usr/bin/env bash
# Local runner for the dynamic-analysis CI legs (Miri + ThreadSanitizer)
# over the pool/session stress suites. Both need a nightly toolchain
# with extra components, which offline containers may not have — each
# leg degrades to a clear SKIP instead of failing, so this script is
# safe to run anywhere. CI runs the same commands unconditionally (see
# .github/workflows/ci.yml, jobs `miri` and `tsan`).
set -u

cd "$(dirname "$0")/.."
status=0

have_nightly() { rustup run nightly rustc --version >/dev/null 2>&1; }

echo "== leg 1: Miri (pool + session stress) =="
if have_nightly && rustup component list --toolchain nightly 2>/dev/null \
    | grep -q '^miri.*(installed)'; then
  MIRIFLAGS=-Zmiri-disable-isolation \
    cargo +nightly miri test -p deepcam-tensor --test pool_stress || status=1
  MIRIFLAGS=-Zmiri-disable-isolation \
    cargo +nightly miri test -p deepcam-serve --test session_stress || status=1
else
  echo "SKIP: nightly toolchain with miri not installed" \
       "(rustup component add miri --toolchain nightly)"
fi

echo "== leg 2: ThreadSanitizer (pool + session stress) =="
if have_nightly && rustup component list --toolchain nightly 2>/dev/null \
    | grep -q '^rust-src.*(installed)'; then
  target="$(rustc -vV | sed -n 's/^host: //p')"
  RUSTFLAGS=-Zsanitizer=thread DEEPCAM_STRESS_ITERS=10 \
    cargo +nightly test -Zbuild-std --target "$target" \
      -p deepcam-tensor --test pool_stress || status=1
  RUSTFLAGS=-Zsanitizer=thread DEEPCAM_STRESS_ITERS=10 \
    cargo +nightly test -Zbuild-std --target "$target" \
      -p deepcam-serve --test session_stress || status=1
else
  echo "SKIP: nightly toolchain with rust-src not installed" \
       "(rustup component add rust-src --toolchain nightly)"
fi

echo "== fallback always available: seeded stress harnesses (stable) =="
DEEPCAM_STRESS_ITERS="${DEEPCAM_STRESS_ITERS:-100}" \
  cargo test -p deepcam-tensor --test pool_stress || status=1
DEEPCAM_STRESS_ITERS="${DEEPCAM_STRESS_ITERS:-100}" \
  cargo test -p deepcam-serve --test session_stress || status=1

echo "== leg 3: chaos soak (seeded fault injection, stable) =="
# Mirrors the CI `chaos` job at a local-friendly depth. Every plan is
# a pure function of its seed, so any failure replays exactly.
DEEPCAM_STRESS_ITERS="${DEEPCAM_STRESS_ITERS:-150}" \
  cargo test -p deepcam-serve --test chaos_soak || status=1

exit "$status"
