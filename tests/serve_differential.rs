//! Micro-batcher bit-exactness differential: N images submitted
//! concurrently through a [`deepcam::serve::Session`] must produce
//! **byte-identical** logits to the same images run serially, one at a
//! time, through [`DeepCamEngine::infer`] — across engine worker counts
//! {1, 4}, with and without crossbar noise, and for every batch
//! composition the coalescer happens to pick. This is the property that
//! makes dynamic micro-batching safe to deploy: batching can change
//! wall-clock, never results.

use std::sync::Arc;
use std::time::Duration;

use deepcam::accel::{DeepCamEngine, EngineConfig, HashPlan};
use deepcam::models::scaled::scaled_lenet5;
use deepcam::serve::{Session, SessionConfig};
use deepcam::tensor::pool::Parallelism;
use deepcam::tensor::rng::seeded_rng;
use deepcam::tensor::{init, Shape, Tensor};

const IMAGES: usize = 12;
const ELEMS: usize = 784;

fn images() -> Tensor {
    let mut rng = seeded_rng(77);
    init::normal(&mut rng, Shape::new(&[IMAGES, 1, 28, 28]), 0.0, 1.0)
}

/// Serial ground truth: each image alone through `infer`, bit patterns
/// collected in submission order.
fn serial_logit_bits(engine: &DeepCamEngine, images: &Tensor) -> Vec<u32> {
    let mut bits = Vec::new();
    for i in 0..IMAGES {
        let one = Tensor::from_vec(
            images.data()[i * ELEMS..(i + 1) * ELEMS].to_vec(),
            Shape::new(&[1, 1, 28, 28]),
        )
        .unwrap();
        bits.extend(
            engine
                .infer(&one)
                .unwrap()
                .data()
                .iter()
                .map(|v| v.to_bits()),
        );
    }
    bits
}

fn engine_with(workers: usize, noise: f32) -> DeepCamEngine {
    let mut rng = seeded_rng(5);
    let model = scaled_lenet5(&mut rng, 10);
    DeepCamEngine::compile(
        &model,
        EngineConfig {
            plan: HashPlan::Uniform(256),
            parallelism: Parallelism::Fixed(workers),
            crossbar_noise: noise,
            ..EngineConfig::default()
        },
    )
    .expect("compiles")
}

#[test]
fn concurrent_micro_batches_match_serial_submission_bitwise() {
    let x = images();
    for workers in [1usize, 4] {
        for noise in [0.0f32, 0.5] {
            let engine = Arc::new(engine_with(workers, noise));
            let expected = serial_logit_bits(&engine, &x);
            // An eager batcher (tiny max_wait) under concurrent
            // submission: batch composition is timing-dependent, the
            // results must not be.
            let session = Session::new(
                Arc::clone(&engine),
                SessionConfig {
                    max_batch: 5, // uneven: forces mixed occupancies
                    max_wait: Duration::from_micros(200),
                    queue_capacity: IMAGES * 2,
                },
            );
            let pendings: Vec<_> = (0..IMAGES)
                .map(|i| {
                    session
                        .submit(&[1, 28, 28], &x.data()[i * ELEMS..(i + 1) * ELEMS])
                        .expect("submit")
                })
                .collect();
            let mut got = Vec::new();
            for p in pendings {
                got.extend(p.wait().unwrap().iter().map(|v| v.to_bits()));
            }
            assert_eq!(
                expected, got,
                "workers {workers}, noise {noise}: coalesced logits differ from serial"
            );
            let stats = session.stats();
            assert_eq!(stats.completed, IMAGES as u64);
            assert!(stats.batches >= 1);
        }
    }
}

#[test]
fn infer_each_matches_serial_for_every_split() {
    // The engine-level half of the contract, without session timing:
    // any partition of the set through `infer_each` equals serial.
    let x = images();
    for workers in [1usize, 4] {
        let engine = engine_with(workers, 0.5);
        let expected = serial_logit_bits(&engine, &x);
        for split in [1usize, 3, 5, IMAGES] {
            let mut got = Vec::new();
            let mut start = 0;
            while start < IMAGES {
                let end = (start + split).min(IMAGES);
                let chunk = Tensor::from_vec(
                    x.data()[start * ELEMS..end * ELEMS].to_vec(),
                    Shape::new(&[end - start, 1, 28, 28]),
                )
                .unwrap();
                got.extend(
                    engine
                        .infer_each(&chunk)
                        .unwrap()
                        .data()
                        .iter()
                        .map(|v| v.to_bits()),
                );
                start = end;
            }
            assert_eq!(expected, got, "workers {workers}, split {split}");
        }
    }
}
