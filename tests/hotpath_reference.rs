//! Differential suite: the packed-tile + cosine-LUT hot path vs the
//! frozen pre-optimization reference datapath.
//!
//! `DeepCamEngine::infer_reference` preserves the engine's original
//! per-(patch, kernel) scalar pipeline verbatim (naive GEMM, per-bit
//! sign build, heap hashes, per-pair angle/cosine). The optimized path
//! must reproduce it **bit for bit** for every model family, cosine
//! mode, norm mode and noise level — this is the contract that let the
//! hot path be rebuilt for throughput without moving a single output
//! bit.

use deepcam::accel::{DeepCamEngine, EngineConfig, HashPlan};
use deepcam::hash::geometric::{CosineMode, NormMode};
use deepcam::models::scaled::{scaled_lenet5, scaled_resnet18, scaled_vgg11};
use deepcam::models::Cnn;
use deepcam::tensor::pool::Parallelism;
use deepcam::tensor::rng::seeded_rng;
use deepcam::tensor::{init, Shape, Tensor};

fn assert_paths_identical(model: &Cnn, x: &Tensor, cfg: EngineConfig, label: &str) {
    let engine = DeepCamEngine::compile(model, cfg).expect("engine compiles");
    let fast = engine.infer(x).expect("fast inference succeeds");
    let reference = engine
        .infer_reference(x)
        .expect("reference inference succeeds");
    assert_eq!(fast.shape(), reference.shape(), "{label}: shape");
    for (i, (a, b)) in fast.data().iter().zip(reference.data().iter()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}: logit {i} diverged (fast {a} vs reference {b})"
        );
    }
}

#[test]
fn lenet5_all_mode_combinations_match_reference() {
    let mut rng = seeded_rng(300);
    let model = scaled_lenet5(&mut rng, 10);
    let mut data_rng = seeded_rng(301);
    let x = init::normal(&mut data_rng, Shape::new(&[3, 1, 28, 28]), 0.0, 1.0);
    for cosine in [CosineMode::PiecewiseEq5, CosineMode::Exact] {
        for norm in [NormMode::Minifloat8, NormMode::Fp32] {
            let cfg = EngineConfig {
                plan: HashPlan::Uniform(256),
                cosine,
                norm,
                parallelism: Parallelism::Serial,
                ..EngineConfig::default()
            };
            assert_paths_identical(&model, &x, cfg, &format!("lenet5 {cosine:?}/{norm:?}"));
        }
    }
}

#[test]
fn vgg11_matches_reference_including_bn_layers() {
    let mut rng = seeded_rng(302);
    let model = scaled_vgg11(&mut rng, 4, 10);
    let mut data_rng = seeded_rng(303);
    let x = init::normal(&mut data_rng, Shape::new(&[2, 3, 32, 32]), 0.0, 1.0);
    let cfg = EngineConfig {
        plan: HashPlan::Uniform(256),
        parallelism: Parallelism::Serial,
        ..EngineConfig::default()
    };
    assert_paths_identical(&model, &x, cfg, "vgg11");
}

#[test]
fn resnet18_residual_wiring_matches_reference() {
    let mut rng = seeded_rng(304);
    let model = scaled_resnet18(&mut rng, 4, 10);
    let mut data_rng = seeded_rng(305);
    let x = init::normal(&mut data_rng, Shape::new(&[1, 3, 32, 32]), 0.0, 1.0);
    let cfg = EngineConfig {
        plan: HashPlan::Uniform(256),
        parallelism: Parallelism::Serial,
        ..EngineConfig::default()
    };
    assert_paths_identical(&model, &x, cfg, "resnet18");
}

#[test]
fn noisy_crossbar_matches_reference() {
    // Device noise mutates the projected values before the sign — the
    // packed path must consume noise in the exact same RNG order.
    let mut rng = seeded_rng(306);
    let model = scaled_lenet5(&mut rng, 10);
    let mut data_rng = seeded_rng(307);
    let x = init::normal(&mut data_rng, Shape::new(&[2, 1, 28, 28]), 0.0, 1.0);
    for noise in [0.1f32, 0.5, 2.0] {
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(256),
            crossbar_noise: noise,
            parallelism: Parallelism::Serial,
            ..EngineConfig::default()
        };
        assert_paths_identical(&model, &x, cfg, &format!("lenet5 noise {noise}"));
    }
}

#[test]
fn variable_hash_plan_matches_reference() {
    // Per-layer hash widths exercise distinct LUT sizes and packed tile
    // strides in one pipeline.
    let mut rng = seeded_rng(308);
    let model = scaled_lenet5(&mut rng, 10);
    let mut data_rng = seeded_rng(309);
    let x = init::normal(&mut data_rng, Shape::new(&[2, 1, 28, 28]), 0.0, 1.0);
    let cfg = EngineConfig {
        plan: HashPlan::PerLayer(vec![256, 512, 768, 1024, 256]),
        parallelism: Parallelism::Serial,
        ..EngineConfig::default()
    };
    assert_paths_identical(&model, &x, cfg, "lenet5 variable plan");
}

#[test]
fn every_detected_simd_variant_matches_reference() {
    // End-to-end gate for the kernel dispatch table: pin every variant
    // the host detects (scalar always included — the CI
    // `DEEPCAM_SIMD=scalar` leg runs this same suite with scalar as the
    // ambient default) and require the full pipeline to reproduce the
    // frozen reference bit for bit. Flipping the process-wide variant is
    // benign even if other tests race this one: all variants compute
    // identical bits, which is exactly what this test enforces.
    use deepcam::hash::simd::{detected, force_variant};
    let mut rng = seeded_rng(312);
    let model = scaled_lenet5(&mut rng, 10);
    let mut data_rng = seeded_rng(313);
    let x = init::normal(&mut data_rng, Shape::new(&[2, 1, 28, 28]), 0.0, 1.0);
    let initial = force_variant(*detected().first().expect("non-empty")).expect("detected");
    for &variant in detected() {
        force_variant(variant).expect("detected variant");
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(512),
            parallelism: Parallelism::Serial,
            ..EngineConfig::default()
        };
        assert_paths_identical(&model, &x, cfg, &format!("lenet5 simd {}", variant.name()));
    }
    let _ = force_variant(initial);
}

#[test]
fn sharded_fast_path_matches_serial_reference() {
    // Both axes at once: the reference (serial) pins the values, the
    // fast path must hit them at every worker count.
    let mut rng = seeded_rng(310);
    let model = scaled_lenet5(&mut rng, 10);
    let mut data_rng = seeded_rng(311);
    let x = init::normal(&mut data_rng, Shape::new(&[3, 1, 28, 28]), 0.0, 1.0);
    let reference = {
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(256),
            parallelism: Parallelism::Serial,
            ..EngineConfig::default()
        };
        let engine = DeepCamEngine::compile(&model, cfg).expect("engine compiles");
        engine.infer_reference(&x).expect("reference succeeds")
    };
    for workers in [1usize, 2, 5] {
        let cfg = EngineConfig {
            plan: HashPlan::Uniform(256),
            parallelism: Parallelism::Fixed(workers),
            ..EngineConfig::default()
        };
        let engine = DeepCamEngine::compile(&model, cfg).expect("engine compiles");
        let fast = engine.infer(&x).expect("fast succeeds");
        assert_eq!(fast.data(), reference.data(), "workers {workers}");
    }
}
