//! Cross-crate property-based tests (proptest) on the reproduction's
//! core invariants.

use deepcam::accel::{DeepCamEngine, EngineConfig, HashPlan};
use deepcam::cam::{CamArray, CamConfig, SenseModel};
use deepcam::hash::geometric::{CosineMode, NormMode};
use deepcam::hash::{context::approx_dot, BitVec, ContextGenerator, Minifloat8};
use deepcam::models::{Block, Cnn};
use deepcam::tensor::layer::{Conv2d, Flatten, Linear, ReLU};
use deepcam::tensor::ops::conv::{col2im, conv2d, conv2d_sharded, im2col, Conv2dConfig};
use deepcam::tensor::ops::linear::{linear, linear_sharded};
use deepcam::tensor::pool::Parallelism;
use deepcam::tensor::{Shape, Tensor};
use proptest::prelude::*;

fn bits_strategy(len: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(any::<bool>(), len).prop_map(|v| BitVec::from_bools(&v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hamming_is_a_metric(a in bits_strategy(256), b in bits_strategy(256), c in bits_strategy(256)) {
        let ab = a.hamming(&b).unwrap();
        let ba = b.hamming(&a).unwrap();
        prop_assert_eq!(ab, ba); // symmetry
        prop_assert_eq!(a.hamming(&a).unwrap(), 0); // identity
        let ac = a.hamming(&c).unwrap();
        let cb = c.hamming(&b).unwrap();
        prop_assert!(ab <= ac + cb); // triangle inequality
    }

    #[test]
    fn hamming_prefix_consistent_with_truncation(
        a in bits_strategy(300),
        b in bits_strategy(300),
        k in 0usize..=300,
    ) {
        let fast = a.hamming_prefix(&b, k).unwrap();
        let slow = a.prefix(k).unwrap().hamming(&b.prefix(k).unwrap()).unwrap();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn minifloat_quantization_properties(x in -600.0f32..600.0) {
        let q = Minifloat8::quantize(x);
        // Idempotent.
        prop_assert_eq!(Minifloat8::quantize(q), q);
        // Bounded.
        prop_assert!(q.abs() <= Minifloat8::MAX);
        // Sign-preserving (zero may absorb tiny values).
        if q != 0.0 {
            prop_assert_eq!(q.signum(), x.signum());
        }
        // Relative error bound for normal-range magnitudes.
        if x.abs() >= 0.016 && x.abs() <= Minifloat8::MAX {
            prop_assert!((q - x).abs() <= x.abs() / 16.0 + 1e-6,
                "quantizing {} gave {}", x, q);
        }
    }

    #[test]
    fn minifloat_encoding_is_monotone(a in 0.0f32..500.0, b in 0.0f32..500.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Minifloat8::quantize(lo) <= Minifloat8::quantize(hi));
    }

    #[test]
    fn self_dot_recovers_squared_norm(
        v in proptest::collection::vec(-3.0f32..3.0, 16),
        seed in 0u64..50,
    ) {
        let generator = ContextGenerator::new(16, 256, seed).unwrap();
        let ctx = generator.context_for(&v).unwrap();
        let d = approx_dot(&ctx, &ctx, 256, CosineMode::Exact, NormMode::Fp32).unwrap();
        let norm2: f32 = v.iter().map(|x| x * x).sum();
        // θ = 0 for identical hashes, so the dot is exactly ‖v‖².
        prop_assert!((d - norm2).abs() <= norm2 * 1e-3 + 1e-4);
    }

    #[test]
    fn cam_search_equals_reference_popcount(
        words in proptest::collection::vec(bits_strategy(256), 1..32),
        key in bits_strategy(256),
    ) {
        let mut cam = CamArray::new(CamConfig::new(64, 256).unwrap());
        cam.load(&words).unwrap();
        let hits = cam.search(&key).unwrap();
        prop_assert_eq!(hits.len(), words.len());
        for hit in hits {
            prop_assert_eq!(hit.hamming, words[hit.row].hamming(&key).unwrap());
        }
    }

    #[test]
    fn clocked_sense_monotone_and_exact_at_zero(levels in 2usize..128) {
        let sense = SenseModel::Clocked { levels };
        prop_assert_eq!(sense.read(0, 512), 0);
        let mut prev = 0usize;
        for hd in 0..=512 {
            let r = sense.read(hd, 512);
            prop_assert!(r >= prev);
            prop_assert!(r <= 512);
            prev = r;
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        h in 3usize..8,
        w in 3usize..8,
        c in 1usize..3,
        kernel in 1usize..4,
        pad in 0usize..2,
        stride in 1usize..3,
        seed in 0u64..100,
    ) {
        prop_assume!(h + 2 * pad >= kernel && w + 2 * pad >= kernel);
        let cfg = Conv2dConfig::new(c, 1, kernel).with_padding(pad).with_stride(stride);
        let mut rng = deepcam::tensor::rng::seeded_rng(seed);
        let x = deepcam::tensor::init::normal(&mut rng, Shape::new(&[1, c, h, w]), 0.0, 1.0);
        let cols = im2col(&x, &cfg).unwrap();
        let y = deepcam::tensor::init::normal(&mut rng, cols.shape().clone(), 0.0, 1.0);
        // <im2col(x), y> == <x, col2im(y)>.
        let lhs = cols.dot(&y).unwrap();
        let folded = col2im(&y, 1, c, h, w, &cfg).unwrap();
        let rhs = x.dot(&folded).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0));
    }

    #[test]
    fn sharded_conv_bit_identical_for_random_geometry(
        h in 3usize..9,
        w in 3usize..9,
        c in 1usize..4,
        m in 1usize..6,
        kernel in 1usize..4,
        pad in 0usize..3,
        stride in 1usize..4,
        n in 1usize..3,
        workers in 1usize..9,
        seed in 0u64..200,
    ) {
        prop_assume!(h + 2 * pad >= kernel && w + 2 * pad >= kernel);
        let cfg = Conv2dConfig::new(c, m, kernel).with_padding(pad).with_stride(stride);
        let mut rng = deepcam::tensor::rng::seeded_rng(seed);
        let x = deepcam::tensor::init::normal(&mut rng, Shape::new(&[n, c, h, w]), 0.0, 1.0);
        let wt = deepcam::tensor::init::normal(
            &mut rng, Shape::new(&[m, c, kernel, kernel]), 0.0, 1.0);
        let b = deepcam::tensor::init::normal(&mut rng, Shape::new(&[m]), 0.0, 1.0);
        let serial = conv2d(&x, &wt, Some(&b), &cfg).unwrap();
        let sharded = conv2d_sharded(&x, &wt, Some(&b), &cfg, workers).unwrap();
        // Exact f32 equality: sharding must not reorder any accumulation.
        prop_assert_eq!(serial.data(), sharded.data());
    }

    #[test]
    fn sharded_linear_bit_identical_for_random_shapes(
        n in 1usize..6,
        f_in in 1usize..12,
        f_out in 1usize..10,
        workers in 1usize..9,
        seed in 0u64..200,
    ) {
        let mut rng = deepcam::tensor::rng::seeded_rng(seed);
        let x = deepcam::tensor::init::normal(&mut rng, Shape::new(&[n, f_in]), 0.0, 1.0);
        let wt = deepcam::tensor::init::normal(&mut rng, Shape::new(&[f_out, f_in]), 0.0, 1.0);
        let b = deepcam::tensor::init::normal(&mut rng, Shape::new(&[f_out]), 0.0, 1.0);
        let serial = linear(&x, &wt, Some(&b)).unwrap();
        let sharded = linear_sharded(&x, &wt, Some(&b), workers).unwrap();
        prop_assert_eq!(serial.data(), sharded.data());
    }

    #[test]
    fn dense_gemm_bit_identical_to_zero_skip_kernel(
        m in 1usize..10,
        k in 1usize..12,
        n in 1usize..70,
        seed in 0u64..500,
    ) {
        // Random shapes deliberately straddle the kernel's 4-row blocks
        // and 32-column register tiles (n < 70 exercises 0, 1 and 2 full
        // tiles plus every tail width). Finite inputs → the dense kernel
        // must agree with the historical zero-skip kernel bit for bit,
        // on every dispatched column-tile path.
        let mut rng = deepcam::tensor::rng::seeded_rng(seed);
        let a = deepcam::tensor::init::normal(&mut rng, Shape::new(&[m, k]), 0.0, 1.0);
        let b = deepcam::tensor::init::normal(&mut rng, Shape::new(&[k, n]), 0.0, 1.0);
        let mut dense = vec![0.0f32; m * n];
        let mut skip = vec![0.0f32; m * n];
        deepcam::tensor::matmul_dense_into(a.data(), m, k, b.data(), n, &mut dense);
        deepcam::tensor::matmul_into(a.data(), m, k, b.data(), n, &mut skip);
        for (d, s) in dense.iter().zip(skip.iter()) {
            prop_assert_eq!(d.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn simd_dispatch_bitwise_equal_across_variants(
        bits in 1usize..600,
        rows in 1usize..10,
        seed in 0u64..500,
    ) {
        use deepcam::hash::simd::{detected, hamming_pair_with, Variant};
        use rand::RngExt;
        let mut rng = deepcam::tensor::rng::seeded_rng(seed);
        let mut make = || {
            let bools: Vec<bool> = (0..bits).map(|_| rng.random::<bool>()).collect();
            BitVec::from_bools(&bools)
        };
        let key = make();
        for _ in 0..rows {
            let row = make();
            let want = hamming_pair_with(Variant::Scalar, row.words(), key.words());
            prop_assert_eq!(want as usize, row.hamming(&key).unwrap());
            for &v in detected() {
                prop_assert_eq!(
                    hamming_pair_with(v, row.words(), key.words()),
                    want,
                    "variant {}", v.name()
                );
            }
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in proptest::collection::vec(-2.0f32..2.0, 6),
        b in proptest::collection::vec(-2.0f32..2.0, 6),
        c in proptest::collection::vec(-2.0f32..2.0, 6),
    ) {
        let a = Tensor::from_vec(a, Shape::new(&[2, 3])).unwrap();
        let b = Tensor::from_vec(b, Shape::new(&[3, 2])).unwrap();
        let c = Tensor::from_vec(c, Shape::new(&[3, 2])).unwrap();
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (l, r) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((l - r).abs() < 1e-4);
        }
    }

    #[test]
    fn projection_hash_scale_invariant(
        v in proptest::collection::vec(-4.0f32..4.0, 8),
        scale in 0.01f32..50.0,
        seed in 0u64..20,
    ) {
        prop_assume!(v.iter().any(|&x| x != 0.0));
        let generator = ContextGenerator::new(8, 128, seed).unwrap();
        let base = generator.context_for(&v).unwrap();
        let scaled: Vec<f32> = v.iter().map(|x| x * scale).collect();
        let s = generator.context_for(&scaled).unwrap();
        prop_assert_eq!(base.bits, s.bits); // direction unchanged
        prop_assert!((s.norm - base.norm * scale).abs() <= base.norm * scale * 1e-3 + 1e-5);
    }
}

/// A minimal two-dot-layer CNN (8×8 mono input, 4 classes) — big enough
/// to exercise both the conv and linear engine paths, small enough to
/// compile and evaluate inside a property test case.
fn tiny_cnn(seed: u64) -> Cnn {
    let mut rng = deepcam::tensor::rng::seeded_rng(seed);
    let blocks = vec![
        Block::Conv(Conv2d::new(
            &mut rng,
            Conv2dConfig::new(1, 2, 3).with_padding(1),
        )),
        Block::Relu(ReLU::new()),
        Block::Flatten(Flatten::new()),
        Block::Linear(Linear::new(&mut rng, 2 * 8 * 8, 4)),
    ];
    Cnn::new("TinyCnn", blocks, 4)
}

proptest! {
    // Each case compiles and evaluates an engine; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn worker_count_never_changes_evaluate_accuracy(
        workers in 1usize..9,
        batch_size in 1usize..8,
        n_images in 1usize..9,
        model_seed in 0u64..20,
        data_seed in 0u64..50,
        noise in prop_oneof![Just(0.0f32), Just(0.4f32)],
    ) {
        let model = tiny_cnn(model_seed);
        let engine = DeepCamEngine::compile(
            &model,
            EngineConfig {
                plan: HashPlan::Uniform(256),
                crossbar_noise: noise,
                parallelism: Parallelism::Serial,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let mut rng = deepcam::tensor::rng::seeded_rng(data_seed);
        let x = deepcam::tensor::init::normal(
            &mut rng, Shape::new(&[n_images, 1, 8, 8]), 0.0, 1.0);
        let labels: Vec<usize> = (0..n_images).map(|i| (i * 7 + data_seed as usize) % 4).collect();
        let reference = engine.evaluate(&x, &labels, batch_size).unwrap();
        let parallel = engine
            .evaluate_parallel_with(&x, &labels, batch_size, Parallelism::Fixed(workers))
            .unwrap();
        // Exact equality — thread count must never move accuracy, even
        // with device noise and remainder mini-batches.
        prop_assert_eq!(reference, parallel);
    }
}
