//! Workspace smoke test: touches every facade re-export path of the
//! `deepcam` crate so that a manifest or re-export regression in any
//! member crate is caught by tier-1 (`cargo test -q`) even if no other
//! integration test happens to import that module.

use deepcam::accel::sched::CamScheduler;
use deepcam::accel::{Dataflow, DeepCamEngine, EngineConfig, HashPlan};
use deepcam::baselines::{Eyeriss, SkylakeCpu};
use deepcam::cam::{CamArray, CamConfig};
use deepcam::data::synth::{generate, SynthConfig};
use deepcam::hash::geometric::GeometricDot;
use deepcam::hash::{BitVec, ContextGenerator};
use deepcam::models::{scaled::scaled_lenet5, zoo};
use deepcam::tensor::rng::seeded_rng;
use deepcam::tensor::{Shape, Tensor};

#[test]
fn tensor_reexport_path() {
    let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::new(&[2, 2])).unwrap();
    assert_eq!(t.data().len(), 4);
}

#[test]
fn data_reexport_path() {
    let (train, test) = generate(&SynthConfig::tiny_digits());
    assert_eq!(train.classes(), 10);
    assert!(!train.is_empty() && !test.is_empty());
}

#[test]
fn models_reexport_path() {
    let spec = zoo::lenet5();
    assert!(spec.total_macs() > 0);
    let mut rng = seeded_rng(0);
    let model = scaled_lenet5(&mut rng, 10);
    drop(model);
}

#[test]
fn hash_reexport_path() {
    let gd = GeometricDot::new(4, 1024, 7).unwrap();
    let approx = gd
        .dot(
            &[0.6012, 0.8383, 0.6859, 0.5712],
            &[0.9044, 0.5352, 0.8110, 0.9243],
        )
        .unwrap();
    // The paper's §II-B worked example: algebraic dot = 2.0765.
    assert!((approx - 2.0765).abs() < 0.25, "approx {approx}");
    let ctx = ContextGenerator::new(4, 256, 1)
        .unwrap()
        .context_for(&[1.0, 0.0, 0.0, 0.0])
        .unwrap();
    assert_eq!(ctx.bits.len(), 256);
}

#[test]
fn cam_reexport_path() {
    let mut cam = CamArray::new(CamConfig::new(64, 256).unwrap());
    cam.write_row(0, BitVec::from_bools(&[true; 256])).unwrap();
    let hits = cam.search(&BitVec::from_bools(&[false; 256])).unwrap();
    assert_eq!(hits[0].hamming, 256);
}

#[test]
fn accel_reexport_path() {
    let sched = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
    let perf = sched.run(&zoo::lenet5(), &HashPlan::Uniform(256)).unwrap();
    assert!(perf.total_cycles > 0);
    // The engine types named by ISSUE 1 must stay importable from `accel`.
    let cfg = EngineConfig::default();
    let mut rng = seeded_rng(1);
    let model = scaled_lenet5(&mut rng, 10);
    let engine = DeepCamEngine::compile(&model, cfg).unwrap();
    drop(engine);
}

#[test]
fn compilation_pipeline_reexport_path() {
    // The ISSUE 4 pipeline types must stay importable from `accel`:
    // LayerIr → PlanBinding → CompiledModel → runtime, plus the tuner
    // config types.
    use deepcam::accel::{CompiledModel, LayerIr, PlanBinding, TuneReport, TunerConfig};

    let ir: LayerIr = LayerIr::from_spec(&zoo::lenet5());
    assert_eq!(ir.len(), 5);
    let binding: PlanBinding = HashPlan::Uniform(256).bind(&ir).unwrap();
    assert_eq!(binding.mean_length(), 256.0);

    let mut rng = seeded_rng(2);
    let model = scaled_lenet5(&mut rng, 10);
    let compiled = CompiledModel::compile(
        &model,
        EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let restored = CompiledModel::from_bytes(&compiled.to_bytes()).unwrap();
    assert_eq!(compiled, restored);
    let _cfg: TunerConfig = TunerConfig::default();
    let _report_ty: Option<TuneReport> = None;
}

#[test]
fn serve_reexport_path() {
    // The ISSUE 5 serving-runtime types must stay importable from
    // `serve`: registry → runtime/session → protocol/server/client.
    use deepcam::serve::{ModelRegistry, Runtime, ServeError, SessionConfig};
    use std::sync::Arc;

    let registry = Arc::new(ModelRegistry::new());
    let mut rng = seeded_rng(3);
    let model = scaled_lenet5(&mut rng, 10);
    let engine = DeepCamEngine::compile(
        &model,
        EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    registry.register("lenet5", engine);
    let runtime = Runtime::new(registry, SessionConfig::default());
    let logits = runtime
        .infer("lenet5", &[1, 28, 28], &vec![0.1; 784])
        .unwrap();
    assert_eq!(logits.len(), 10);
    assert!(matches!(
        runtime.infer("unknown", &[1, 28, 28], &vec![0.1; 784]),
        Err(ServeError::ModelNotFound { .. })
    ));
    let _cfg: deepcam::serve::ServerConfig = deepcam::serve::ServerConfig::default();
}

#[test]
fn baselines_reexport_path() {
    let spec = zoo::lenet5();
    assert!(Eyeriss::paper_config().run(&spec).total_cycles > 0);
    assert!(SkylakeCpu::default().run(&spec).total_cycles > 0);
}
