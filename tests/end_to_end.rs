//! End-to-end integration: synthetic data → trained CNN → DeepCAM
//! compilation → CAM-based inference, across crates.

use deepcam::accel::{DeepCamEngine, EngineConfig, HashPlan};
use deepcam::data::synth::{generate, SynthConfig};
use deepcam::models::scaled::{scaled_lenet5, scaled_vgg11};
use deepcam::models::train::{evaluate, train, TrainConfig};
use deepcam::tensor::rng::seeded_rng;

fn quick_train_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch_size: 24,
        lr: 0.03,
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 5,
    }
}

#[test]
fn lenet_digits_bl_vs_dc_pipeline() {
    // LeNet5 needs 28x28 inputs — the standard digits preset at a reduced
    // sample count keeps this test fast.
    let (train_set, test_set) = generate(&SynthConfig::digits().with_samples(24, 5));
    let mut rng = seeded_rng(1);
    let mut model = scaled_lenet5(&mut rng, 10);
    train(
        &mut model,
        train_set.images(),
        train_set.labels(),
        &quick_train_cfg(),
    )
    .expect("training runs");
    let bl = evaluate(&mut model, test_set.images(), test_set.labels(), 25).expect("bl eval");
    assert!(bl > 0.3, "float model failed to learn anything: {bl}");

    let engine = DeepCamEngine::compile(
        &model,
        EngineConfig {
            plan: HashPlan::Uniform(1024),
            ..EngineConfig::default()
        },
    )
    .expect("compiles");
    let dc = engine
        .evaluate(test_set.images(), test_set.labels(), 25)
        .expect("dc eval");
    // At k=1024 the approximation must retain most of the accuracy.
    assert!(dc + 0.25 >= bl, "DC@1024 {dc} lost too much versus BL {bl}");
}

#[test]
fn accuracy_improves_with_hash_length_on_average() {
    let (train_set, test_set) = generate(&SynthConfig::digits().with_samples(24, 5));
    let mut rng = seeded_rng(2);
    let mut model = scaled_lenet5(&mut rng, 10);
    train(
        &mut model,
        train_set.images(),
        train_set.labels(),
        &quick_train_cfg(),
    )
    .expect("training runs");
    let acc_at = |k: usize| {
        DeepCamEngine::compile(
            &model,
            EngineConfig {
                plan: HashPlan::Uniform(k),
                ..EngineConfig::default()
            },
        )
        .expect("compiles")
        .evaluate(test_set.images(), test_set.labels(), 25)
        .expect("dc eval")
    };
    // Fig. 5's monotone-recovery shape, with slack for hash variance on a
    // small evaluation set.
    let low = acc_at(256);
    let high = acc_at(1024);
    assert!(
        high + 0.15 >= low,
        "k=1024 ({high}) should not be meaningfully worse than k=256 ({low})"
    );
}

#[test]
fn vgg_family_compiles_and_infers_on_objects() {
    let (_, test_set) = generate(&SynthConfig::objects10().with_samples(4, 3));
    let mut rng = seeded_rng(3);
    let model = scaled_vgg11(&mut rng, 8, 10);
    let engine = DeepCamEngine::compile(
        &model,
        EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        },
    )
    .expect("compiles");
    // Untrained accuracy is near chance, but inference must be finite and
    // shaped correctly end to end.
    let (batch, _) = test_set.batch(&[0, 1, 2]);
    let logits = engine.infer(&batch).expect("inference runs");
    assert_eq!(logits.shape().dims(), &[3, 10]);
    assert!(logits.all_finite());
}

#[test]
fn variable_plan_search_integrates_with_training() {
    let (train_set, test_set) = generate(&SynthConfig::digits().with_samples(16, 4));
    let mut rng = seeded_rng(4);
    let mut model = scaled_lenet5(&mut rng, 10);
    train(
        &mut model,
        train_set.images(),
        train_set.labels(),
        &quick_train_cfg(),
    )
    .expect("training runs");
    let (x, y) = test_set.batch(&(0..20).collect::<Vec<_>>());
    let result = deepcam::accel::analysis::search_variable_plan(
        &model,
        &x,
        &y,
        &EngineConfig::default(),
        0.05,
        20,
    )
    .expect("search runs");
    match result.plan {
        HashPlan::PerLayer(ks) => {
            assert_eq!(ks.len(), 5);
            assert!(ks.iter().all(|k| [256, 512, 768, 1024].contains(k)));
        }
        _ => panic!("expected a per-layer plan"),
    }
    assert!(result.final_accuracy + 0.05 >= result.reference_accuracy);
}
