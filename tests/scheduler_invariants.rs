//! Cross-crate invariants of the performance models.

use deepcam::accel::sched::{CamScheduler, CycleModel};
use deepcam::accel::{Dataflow, HashPlan, LayerIr};
use deepcam::baselines::{AnalogPim, Eyeriss, PimTechnology, SkylakeCpu};
use deepcam::models::zoo;

#[test]
fn work_conservation_every_dot_product_covered() {
    // AS mapping: Σ(tile rows × streamed keys) must equal P·M exactly —
    // every output dot-product computed once, none skipped or duplicated.
    for spec in zoo::all_workloads() {
        for dataflow in Dataflow::both() {
            let sched = CamScheduler::new(64, dataflow).expect("rows supported");
            for layer in LayerIr::from_spec(&spec).dots.into_iter().map(|d| d.shape) {
                let perf = sched.layer_perf(&layer, 256, false).expect("valid k");
                let (stored, streamed) = match dataflow {
                    Dataflow::WeightStationary => (layer.m, layer.p),
                    Dataflow::ActivationStationary => (layer.p, layer.m),
                };
                // searches = tiles × streamed.
                let tiles = stored.div_ceil(64).max(1) as u64;
                assert_eq!(perf.searches, tiles * streamed as u64);
                // Dot products covered: Σ rows_used × streamed = stored × streamed.
                let covered = (stored * streamed) as u64;
                assert_eq!(covered, layer.dot_products(), "{}", layer.name);
            }
        }
    }
}

#[test]
fn utilization_always_in_bounds() {
    for spec in zoo::all_workloads() {
        for dataflow in Dataflow::both() {
            for rows in [64usize, 512] {
                let sched = CamScheduler::new(rows, dataflow).expect("rows supported");
                let perf = sched
                    .run(&spec, &HashPlan::Uniform(512))
                    .expect("plan fits");
                for layer in &perf.layers {
                    assert!(
                        layer.utilization > 0.0 && layer.utilization <= 1.0,
                        "{} {}: {}",
                        spec.name,
                        layer.name,
                        layer.utilization
                    );
                }
            }
        }
    }
}

#[test]
fn energy_monotone_in_hash_length() {
    let spec = zoo::vgg11();
    let sched = CamScheduler::new(64, Dataflow::ActivationStationary).expect("rows supported");
    let mut prev = 0.0f64;
    for k in [256usize, 512, 768, 1024] {
        let e = sched
            .run(&spec, &HashPlan::Uniform(k))
            .expect("plan fits")
            .total_energy_j;
        assert!(e > prev, "energy not monotone at k={k}");
        prev = e;
    }
}

#[test]
fn search_only_is_fastest_accounting() {
    let spec = zoo::resnet18();
    let plan = HashPlan::variable_for_dims(&LayerIr::from_spec(&spec).patch_lens());
    let base = CamScheduler::new(64, Dataflow::ActivationStationary).expect("rows supported");
    let pipelined = base.run(&spec, &plan).expect("plan fits").total_cycles;
    let sequential = base
        .clone()
        .with_cycle_model(CycleModel::Sequential)
        .run(&spec, &plan)
        .expect("plan fits")
        .total_cycles;
    let search_only = base
        .clone()
        .with_cycle_model(CycleModel::SearchOnly)
        .run(&spec, &plan)
        .expect("plan fits")
        .total_cycles;
    assert!(search_only <= pipelined);
    assert!(pipelined <= sequential);
}

#[test]
fn system_ordering_holds_across_workloads() {
    // The paper's Fig. 9/10 ordering: DeepCAM < Eyeriss < CPU on cycles;
    // DeepCAM < Eyeriss on energy.
    let eyeriss = Eyeriss::paper_config();
    let cpu = SkylakeCpu::paper_config();
    for spec in zoo::all_workloads() {
        let ir = LayerIr::from_spec(&spec);
        let plan = HashPlan::variable_for_dims(&ir.patch_lens());
        let binding = plan.bind(&ir).expect("plan fits");
        let dc = CamScheduler::new(64, Dataflow::ActivationStationary)
            .expect("rows supported")
            .run_ir(&ir, &binding, plan.label())
            .expect("plan fits");
        let e = eyeriss.run_ir(&ir);
        let c = cpu.run_ir(&ir);
        assert!(dc.total_cycles < e.total_cycles, "{}", spec.name);
        assert!(e.total_cycles < c.total_cycles, "{}", spec.name);
        assert!(dc.total_energy_j < e.total_energy_j, "{}", spec.name);
    }
}

#[test]
fn table2_orderings() {
    let vgg = zoo::vgg11();
    let rram = AnalogPim::new(PimTechnology::NeuroSimRram).run(&vgg);
    let sram = AnalogPim::new(PimTechnology::ValaviSram).run(&vgg);
    let ir = LayerIr::from_spec(&vgg);
    let dc = CamScheduler::new(64, Dataflow::ActivationStationary)
        .expect("rows supported")
        .run(&vgg, &HashPlan::variable_for_dims(&ir.patch_lens()))
        .expect("plan fits");
    // Energy: DeepCAM < SRAM PIM < RRAM PIM (Table II's central claim).
    assert!(dc.total_energy_j < sram.total_energy_j);
    assert!(sram.total_energy_j < rram.total_energy_j);
}

#[test]
fn spec_run_equals_ir_run() {
    // `run(spec, plan)` is sugar for lowering + `run_ir`: both entry
    // points of the shared pipeline must produce identical reports.
    for spec in zoo::all_workloads() {
        let ir = LayerIr::from_spec(&spec);
        for dataflow in Dataflow::both() {
            let sched = CamScheduler::new(128, dataflow).expect("rows supported");
            for plan in [
                HashPlan::uniform_min(),
                HashPlan::variable_for_dims(&ir.patch_lens()),
            ] {
                let binding = plan.bind(&ir).expect("plan fits");
                let via_spec = sched.run(&spec, &plan).expect("plan fits");
                let via_ir = sched
                    .run_ir(&ir, &binding, plan.label())
                    .expect("plan fits");
                assert_eq!(via_spec, via_ir, "{} {}", spec.name, plan.label());
            }
        }
    }
}
