//! Golden-vector regression test for the full CAM inference path.
//!
//! The differential and property suites prove *self-consistency* (every
//! sharding equals serial), but a refactor that changed the conv, hash,
//! or CAM semantics *everywhere at once* would slip through them. This
//! test pins the actual numbers: a fixed-seed LeNet5 is compiled with
//! the default engine (eq. 5 cosine, minifloat norms, k = 256) and its
//! logits on a fixed-seed batch are compared bit-for-bit against vectors
//! committed in `tests/data/golden_lenet5.hex`.
//!
//! If an **intentional** semantic change moves the numbers, regenerate
//! with:
//!
//! ```sh
//! DEEPCAM_REGEN_GOLDEN=1 cargo test --test golden_vectors
//! ```
//!
//! and justify the diff of the `.hex` file in the PR. The file stores
//! one little-endian `f32` bit pattern (8 hex digits) per line, so the
//! comparison is exact — no tolerance hides drift.

use deepcam::accel::{DeepCamEngine, EngineConfig, HashPlan};
use deepcam::models::scaled::scaled_lenet5;
use deepcam::tensor::pool::Parallelism;
use deepcam::tensor::rng::seeded_rng;
use deepcam::tensor::{init, Shape};

const GOLDEN_PATH: &str = "tests/data/golden_lenet5.hex";
const MODEL_SEED: u64 = 42;
const DATA_SEED: u64 = 43;
const BATCH: usize = 3;
const CLASSES: usize = 10;

fn golden_logits() -> Vec<f32> {
    let mut rng = seeded_rng(MODEL_SEED);
    let model = scaled_lenet5(&mut rng, CLASSES);
    let engine = DeepCamEngine::compile(
        &model,
        EngineConfig {
            plan: HashPlan::Uniform(256),
            // Serial pins the reference; parallel_equivalence.rs proves
            // every other Parallelism produces identical bits.
            parallelism: Parallelism::Serial,
            ..EngineConfig::default()
        },
    )
    .expect("engine compiles");
    let mut data_rng = seeded_rng(DATA_SEED);
    let x = init::normal(&mut data_rng, Shape::new(&[BATCH, 1, 28, 28]), 0.0, 1.0);
    engine.infer(&x).expect("inference succeeds").into_vec()
}

#[test]
fn lenet5_logits_match_committed_golden_vectors() {
    let logits = golden_logits();
    assert_eq!(logits.len(), BATCH * CLASSES);

    if std::env::var("DEEPCAM_REGEN_GOLDEN").is_ok() {
        let mut text = String::new();
        for v in &logits {
            text.push_str(&format!("{:08x}\n", v.to_bits()));
        }
        std::fs::write(GOLDEN_PATH, text).expect("write golden file");
        eprintln!("regenerated {GOLDEN_PATH}; commit it with a justification");
        return;
    }

    let text = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("{GOLDEN_PATH} missing ({e}); run with DEEPCAM_REGEN_GOLDEN=1 to create it")
    });
    let expected: Vec<f32> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(|l| f32::from_bits(u32::from_str_radix(l, 16).expect("golden line is 8 hex digits")))
        .collect();
    assert_eq!(
        expected.len(),
        logits.len(),
        "golden file has wrong vector count"
    );
    for (i, (&want, &got)) in expected.iter().zip(logits.iter()).enumerate() {
        assert_eq!(
            want.to_bits(),
            got.to_bits(),
            "logit {i} drifted: golden {want} vs computed {got} \
             (image {}, class {})",
            i / CLASSES,
            i % CLASSES
        );
    }
}
