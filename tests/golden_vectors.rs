//! Golden-vector regression tests for the full CAM inference path.
//!
//! The differential and property suites prove *self-consistency* (every
//! sharding equals serial), but a refactor that changed the conv, hash,
//! or CAM semantics *everywhere at once* would slip through them. These
//! tests pin the actual numbers for two zoo families: fixed-seed models
//! are compiled with the default engine (eq. 5 cosine, minifloat norms,
//! k = 256) and their logits on fixed-seed batches are compared
//! bit-for-bit against vectors committed under `tests/data/`.
//!
//! Two families are pinned so the hot-path kernels are exercised across
//! genuinely different geometries:
//!
//! * `golden_lenet5.hex` — LeNet5 (1×28×28 input; small conv kernels,
//!   large linear layers),
//! * `golden_vgg11.hex` — scaled VGG11 width 4 (3×32×32 input; deep
//!   conv stack with batch norm, exercising many distinct patch/kernel
//!   tile shapes).
//!
//! If an **intentional** semantic change moves the numbers, regenerate
//! with:
//!
//! ```sh
//! DEEPCAM_REGEN_GOLDEN=1 cargo test --test golden_vectors
//! ```
//!
//! and justify the diff of the `.hex` files in the PR. Each file stores
//! one little-endian `f32` bit pattern (8 hex digits) per line, so the
//! comparison is exact — no tolerance hides drift.

use deepcam::accel::{DeepCamEngine, EngineConfig, HashPlan};
use deepcam::models::scaled::{scaled_lenet5, scaled_vgg11};
use deepcam::models::Cnn;
use deepcam::tensor::pool::Parallelism;
use deepcam::tensor::rng::seeded_rng;
use deepcam::tensor::{init, Shape};

const CLASSES: usize = 10;

fn compute_logits(model: &Cnn, data_seed: u64, batch_dims: &[usize]) -> Vec<f32> {
    let engine = DeepCamEngine::compile(
        model,
        EngineConfig {
            plan: HashPlan::Uniform(256),
            // Serial pins the reference; parallel_equivalence.rs proves
            // every other Parallelism produces identical bits.
            parallelism: Parallelism::Serial,
            ..EngineConfig::default()
        },
    )
    .expect("engine compiles");
    let mut data_rng = seeded_rng(data_seed);
    let x = init::normal(&mut data_rng, Shape::new(batch_dims), 0.0, 1.0);
    engine.infer(&x).expect("inference succeeds").into_vec()
}

fn check_against_golden(path: &str, logits: &[f32]) {
    if std::env::var("DEEPCAM_REGEN_GOLDEN").is_ok() {
        let mut text = String::new();
        for v in logits {
            text.push_str(&format!("{:08x}\n", v.to_bits()));
        }
        std::fs::write(path, text).expect("write golden file");
        eprintln!("regenerated {path}; commit it with a justification");
        return;
    }

    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("{path} missing ({e}); run with DEEPCAM_REGEN_GOLDEN=1 to create it")
    });
    let expected: Vec<f32> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(|l| f32::from_bits(u32::from_str_radix(l, 16).expect("golden line is 8 hex digits")))
        .collect();
    assert_eq!(
        expected.len(),
        logits.len(),
        "golden file {path} has wrong vector count"
    );
    for (i, (&want, &got)) in expected.iter().zip(logits.iter()).enumerate() {
        assert_eq!(
            want.to_bits(),
            got.to_bits(),
            "logit {i} drifted vs {path}: golden {want} vs computed {got} \
             (image {}, class {})",
            i / CLASSES,
            i % CLASSES
        );
    }
}

#[test]
fn lenet5_logits_match_committed_golden_vectors() {
    const BATCH: usize = 3;
    let mut rng = seeded_rng(42);
    let model = scaled_lenet5(&mut rng, CLASSES);
    let logits = compute_logits(&model, 43, &[BATCH, 1, 28, 28]);
    assert_eq!(logits.len(), BATCH * CLASSES);
    check_against_golden("tests/data/golden_lenet5.hex", &logits);
}

#[test]
fn vgg11_logits_match_committed_golden_vectors() {
    const BATCH: usize = 2;
    let mut rng = seeded_rng(44);
    let model = scaled_vgg11(&mut rng, 4, CLASSES);
    let logits = compute_logits(&model, 45, &[BATCH, 3, 32, 32]);
    assert_eq!(logits.len(), BATCH * CLASSES);
    check_against_golden("tests/data/golden_vgg11.hex", &logits);
}
