//! The functional engine's fast Hamming path must be *exactly* equivalent
//! to literally loading contexts into the `CamArray` hardware model and
//! searching tile by tile — the engine is an optimization, not a
//! different semantics.

use deepcam::cam::{CamArray, CamConfig};
use deepcam::hash::cosine::approx_cosine;
use deepcam::hash::geometric::GeometricDot;
use deepcam::hash::ContextGenerator;
use deepcam::tensor::ops::conv::{im2col, Conv2dConfig};
use deepcam::tensor::rng::seeded_rng;
use deepcam::tensor::{init, Shape};

#[test]
fn engine_matches_literal_cam_array_per_layer() {
    // One conv layer computed two ways.
    let conv_cfg = Conv2dConfig::new(2, 6, 3).with_padding(1);
    let k = 256;
    let rows = 64;
    let mut rng = seeded_rng(9);
    let weight = init::he_normal(&mut rng, Shape::new(&[6, 2, 3, 3]), conv_cfg.patch_len());
    let input = init::normal(&mut rng, Shape::new(&[1, 2, 8, 8]), 0.0, 1.0);

    let generator = ContextGenerator::new(conv_cfg.patch_len(), k, 77).expect("valid dims");
    let wctx = generator.weight_contexts(&weight).expect("weights hash");
    let patches = im2col(&input, &conv_cfg).expect("im2col");
    let p = patches.shape().dim(0);

    // Path A: software reconstruction (what DeepCamEngine::dot_rows does).
    let mut software = vec![0.0f32; p * 6];
    for pi in 0..p {
        let ctx = generator
            .context_for(patches.row(pi).data())
            .expect("activation hash");
        for (mi, w) in wctx.iter().enumerate() {
            let hd = ctx.bits.hamming(&w.bits).expect("same width");
            let theta = GeometricDot::angle_from_hamming(hd, k);
            software[pi * 6 + mi] =
                ctx.quantized_norm() * w.quantized_norm() * approx_cosine(theta);
        }
    }

    // Path B: activation-stationary tiles on the literal CamArray.
    let mut hardware = vec![0.0f32; p * 6];
    let mut cam = CamArray::new(CamConfig::new(rows, k).expect("supported"));
    let mut tile_start = 0usize;
    while tile_start < p {
        let tile_end = (tile_start + rows).min(p);
        let words: Vec<_> = (tile_start..tile_end)
            .map(|pi| {
                generator
                    .context_for(patches.row(pi).data())
                    .expect("activation hash")
                    .bits
            })
            .collect();
        cam.load(&words).expect("tile fits");
        for (mi, w) in wctx.iter().enumerate() {
            for hit in cam.search(&w.bits).expect("key width matches") {
                let pi = tile_start + hit.row;
                let actx = generator
                    .context_for(patches.row(pi).data())
                    .expect("activation hash");
                let theta = GeometricDot::angle_from_hamming(hit.sensed, k);
                hardware[pi * 6 + mi] =
                    actx.quantized_norm() * w.quantized_norm() * approx_cosine(theta);
            }
        }
        tile_start = tile_end;
    }

    for (i, (s, h)) in software.iter().zip(hardware.iter()).enumerate() {
        assert_eq!(s, h, "divergence at output {i}: software {s} vs cam {h}");
    }
}

#[test]
fn weight_stationary_mapping_same_results() {
    // The dataflow changes scheduling, never values: WS tiles must produce
    // the identical output matrix.
    let k = 256;
    let dim = 18;
    let m = 10;
    let p = 30;
    let mut rng = seeded_rng(13);
    let weights = init::normal(&mut rng, Shape::new(&[m, dim]), 0.0, 0.5);
    let acts = init::normal(&mut rng, Shape::new(&[p, dim]), 0.0, 1.0);
    let generator = ContextGenerator::new(dim, k, 3).expect("valid dims");
    let wctx = generator.weight_contexts(&weights).expect("weights hash");
    let actx = generator.activation_contexts(&acts).expect("acts hash");

    // AS: activations in rows, weights stream.
    let mut cam = CamArray::new(CamConfig::new(64, k).expect("supported"));
    let words: Vec<_> = actx.iter().map(|c| c.bits.clone()).collect();
    cam.load(&words).expect("fits");
    let mut as_out = vec![0usize; p * m];
    for (mi, w) in wctx.iter().enumerate() {
        for hit in cam.search(&w.bits).expect("width") {
            as_out[hit.row * m + mi] = hit.hamming;
        }
    }

    // WS: weights in rows, activations stream.
    let mut cam = CamArray::new(CamConfig::new(64, k).expect("supported"));
    let words: Vec<_> = wctx.iter().map(|c| c.bits.clone()).collect();
    cam.load(&words).expect("fits");
    let mut ws_out = vec![0usize; p * m];
    for (pi, a) in actx.iter().enumerate() {
        for hit in cam.search(&a.bits).expect("width") {
            ws_out[pi * m + hit.row] = hit.hamming;
        }
    }

    assert_eq!(
        as_out, ws_out,
        "dataflows must agree on every Hamming distance"
    );
}
