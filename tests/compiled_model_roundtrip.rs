//! Artifact round-trip suite for the compilation pipeline: a
//! `CompiledModel` that is serialized and reloaded must serve inference
//! **bit-identically** to the in-memory compile, across zoo model
//! families, hash plans (uniform and variable), engine modes and
//! crossbar noise. This is the contract that makes "compile once, save,
//! serve anywhere" safe.

use std::path::PathBuf;

use deepcam::accel::{CompiledModel, CoreError, DeepCamEngine, EngineConfig, HashPlan};
use deepcam::hash::geometric::{CosineMode, NormMode};
use deepcam::models::scaled::{scaled_lenet5, scaled_resnet18, scaled_vgg11};
use deepcam::models::Cnn;
use deepcam::tensor::rng::seeded_rng;
use deepcam::tensor::{init, Shape, Tensor};
use proptest::prelude::*;

fn tmp_path(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir exists");
    dir.join(name)
}

fn batch_for(model: &Cnn, n: usize, seed: u64) -> Tensor {
    let (c, h, w) = model.input.expect("scaled models declare their input");
    let mut rng = seeded_rng(seed);
    init::normal(&mut rng, Shape::new(&[n, c, h, w]), 0.0, 1.0)
}

/// compile → infer must equal compile → bytes → decode → infer, and
/// compile → save → load → infer, bit for bit.
fn assert_roundtrip_bit_exact(model: &Cnn, cfg: EngineConfig, file: &str) {
    let engine = DeepCamEngine::compile(model, cfg).expect("compiles");
    let x = batch_for(model, 3, 99);
    let direct = engine.infer(&x).expect("in-memory inference");

    // Byte-level round trip.
    let bytes = engine.compiled().to_bytes();
    let decoded = CompiledModel::from_bytes(&bytes).expect("decodes");
    assert_eq!(engine.compiled(), &decoded, "artifact not value-identical");
    let served = DeepCamEngine::from_compiled(decoded).expect("builds runtime");
    assert_eq!(direct.data(), served.infer(&x).unwrap().data());

    // File-level round trip (the save/load API).
    let path = tmp_path(file);
    engine.compiled().save(&path).expect("saves");
    let loaded = DeepCamEngine::load(&path).expect("loads");
    assert_eq!(direct.data(), loaded.infer(&x).unwrap().data());
    assert_eq!(engine.model_name(), loaded.model_name());
    assert_eq!(engine.dot_layers(), loaded.dot_layers());
    std::fs::remove_file(&path).ok();
}

#[test]
fn lenet_roundtrips_across_plans() {
    let mut rng = seeded_rng(1);
    let model = scaled_lenet5(&mut rng, 10);
    for (i, plan) in [
        HashPlan::Uniform(256),
        HashPlan::uniform_max(),
        HashPlan::PerLayer(vec![256, 512, 768, 1024, 256]),
    ]
    .into_iter()
    .enumerate()
    {
        assert_roundtrip_bit_exact(
            &model,
            EngineConfig {
                plan,
                ..EngineConfig::default()
            },
            &format!("lenet_{i}.dcam"),
        );
    }
}

#[test]
fn vgg_roundtrips_with_noise_and_modes() {
    let mut rng = seeded_rng(2);
    let model = scaled_vgg11(&mut rng, 4, 10);
    assert_roundtrip_bit_exact(
        &model,
        EngineConfig {
            plan: HashPlan::PerLayer(vec![256, 256, 512, 512, 768, 768, 1024, 256, 512]),
            crossbar_noise: 0.4,
            cosine: CosineMode::Exact,
            norm: NormMode::Fp32,
            ..EngineConfig::default()
        },
        "vgg11.dcam",
    );
}

#[test]
fn resnet_roundtrips_with_residual_steps() {
    let mut rng = seeded_rng(3);
    let model = scaled_resnet18(&mut rng, 4, 10);
    assert_roundtrip_bit_exact(
        &model,
        EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        },
        "resnet18.dcam",
    );
}

#[test]
fn reference_datapath_survives_the_roundtrip_too() {
    // The frozen differential oracle reads the *derived* contexts, so a
    // reloaded artifact must reproduce it bitwise as well.
    let mut rng = seeded_rng(4);
    let model = scaled_lenet5(&mut rng, 10);
    let cfg = EngineConfig {
        plan: HashPlan::Uniform(512),
        ..EngineConfig::default()
    };
    let engine = DeepCamEngine::compile(&model, cfg).expect("compiles");
    let reloaded = DeepCamEngine::from_compiled(
        CompiledModel::from_bytes(&engine.compiled().to_bytes()).expect("decodes"),
    )
    .expect("builds runtime");
    let x = batch_for(&model, 2, 7);
    assert_eq!(
        engine.infer_reference(&x).unwrap().data(),
        reloaded.infer_reference(&x).unwrap().data()
    );
}

#[test]
fn load_of_missing_or_garbage_file_is_a_typed_error() {
    let missing = tmp_path("does_not_exist.dcam");
    assert!(matches!(
        CompiledModel::load(&missing),
        Err(CoreError::Artifact(_))
    ));
    let garbage = tmp_path("garbage.dcam");
    std::fs::write(&garbage, b"definitely not an artifact").unwrap();
    assert!(matches!(
        CompiledModel::load(&garbage),
        Err(CoreError::Artifact(_))
    ));
    std::fs::remove_file(&garbage).ok();
}

#[test]
fn passed_models_roundtrip_with_mapping_and_fused_steps() {
    // The pass pipeline's output — fused steps plus an array mapping —
    // must survive the v2 artifact bit-exactly.
    use deepcam::accel::passes;
    let mut rng = seeded_rng(6);
    let model = scaled_vgg11(&mut rng, 4, 10);
    let cfg = EngineConfig {
        plan: HashPlan::Uniform(256),
        crossbar_noise: 0.25,
        ..EngineConfig::default()
    };
    let mut compiled = CompiledModel::compile(&model, cfg).expect("compiles");
    let outcomes = passes::apply(&mut compiled, &passes::default_passes()).expect("passes");
    assert!(outcomes.iter().all(|o| o.changed));
    assert!(compiled.mapping.is_some());

    let decoded = CompiledModel::from_bytes(&compiled.to_bytes()).expect("decodes");
    assert_eq!(compiled, decoded, "mapping or fused steps lost in transit");
    assert_eq!(compiled.mapping, decoded.mapping);

    let x = batch_for(&model, 3, 17);
    let direct = DeepCamEngine::from_compiled(compiled).expect("runtime");
    let served = DeepCamEngine::from_compiled(decoded).expect("reloaded runtime");
    assert_eq!(
        direct.infer(&x).unwrap().data(),
        served.infer(&x).unwrap().data()
    );
}

#[test]
fn v1_artifacts_still_load() {
    // Pre-mapping artifacts (version 1) must keep loading: the v1
    // writer emits the exact historical layout, and the version-aware
    // reader fills the new fields with their pre-change defaults.
    let mut rng = seeded_rng(7);
    let model = scaled_lenet5(&mut rng, 10);
    let cfg = EngineConfig {
        plan: HashPlan::Uniform(512),
        ..EngineConfig::default()
    };
    let compiled = CompiledModel::compile(&model, cfg).expect("compiles");
    let v1 = compiled
        .to_bytes_v1()
        .expect("unmapped models export as v1");
    assert_eq!(
        &v1[4..8],
        &1u32.to_le_bytes(),
        "v1 writer must stamp version 1"
    );
    let loaded = CompiledModel::from_bytes(&v1).expect("v1 loads");
    assert_eq!(loaded.mapping, None);
    assert_eq!(compiled, loaded);
    let x = batch_for(&model, 2, 23);
    assert_eq!(
        DeepCamEngine::from_compiled(compiled)
            .unwrap()
            .infer(&x)
            .unwrap()
            .data(),
        DeepCamEngine::from_compiled(loaded)
            .unwrap()
            .infer(&x)
            .unwrap()
            .data()
    );
}

#[test]
fn v1_writer_refuses_what_v1_cannot_express() {
    use deepcam::accel::passes;
    let mut rng = seeded_rng(8);
    let model = scaled_lenet5(&mut rng, 10);
    let cfg = EngineConfig {
        plan: HashPlan::Uniform(256),
        ..EngineConfig::default()
    };
    let mut compiled = CompiledModel::compile(&model, cfg).expect("compiles");
    passes::apply(&mut compiled, &passes::default_passes()).expect("passes");
    assert!(matches!(
        compiled.to_bytes_v1(),
        Err(CoreError::Artifact(_))
    ));
}

fn plan_strategy(layers: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(
        prop_oneof![Just(256usize), Just(512), Just(768), Just(1024)],
        layers,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_plans_and_modes_roundtrip_bit_exactly(
        ks in plan_strategy(5),
        noise_steps in 0u32..3,
        exact_cos in any::<bool>(),
        fp32_norms in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let mut rng = seeded_rng(5);
        let model = scaled_lenet5(&mut rng, 10);
        let cfg = EngineConfig {
            plan: HashPlan::PerLayer(ks),
            crossbar_noise: noise_steps as f32 * 0.25,
            cosine: if exact_cos { CosineMode::Exact } else { CosineMode::PiecewiseEq5 },
            norm: if fp32_norms { NormMode::Fp32 } else { NormMode::Minifloat8 },
            seed,
            ..EngineConfig::default()
        };
        let engine = DeepCamEngine::compile(&model, cfg).expect("compiles");
        let x = batch_for(&model, 2, seed ^ 0xABCD);
        let direct = engine.infer(&x).expect("in-memory inference");
        let decoded = CompiledModel::from_bytes(&engine.compiled().to_bytes())
            .expect("decodes");
        prop_assert_eq!(engine.compiled(), &decoded);
        let served = DeepCamEngine::from_compiled(decoded).expect("builds runtime");
        let reloaded = served.infer(&x).unwrap();
        prop_assert_eq!(direct.data(), reloaded.data());
    }
}
