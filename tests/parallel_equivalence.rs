//! Differential tests for the parallel sharded inference runtime.
//!
//! The contract: parallelism changes *wall clock only*. Every sharded
//! path — image-level `infer_batch` fan-out, per-layer patch-hash
//! sharding, parallel mini-batch evaluation, row-range CAM search —
//! must be **bit-identical** to its serial counterpart, on every model
//! of the zoo, for every worker count. `assert_eq!` on raw `f32` buffers
//! (no tolerance) is deliberate: a single reordered float accumulation
//! would fail the suite.

use deepcam::accel::{DeepCamEngine, EngineConfig, HashPlan};
use deepcam::cam::{CamArray, CamConfig};
use deepcam::hash::BitVec;
use deepcam::models::scaled::{scaled_lenet5, scaled_resnet18, scaled_vgg11, scaled_vgg16};
use deepcam::models::Cnn;
use deepcam::tensor::pool::Parallelism;
use deepcam::tensor::rng::seeded_rng;
use deepcam::tensor::{init, Shape, Tensor};
use rand::RngExt;

const WORKER_SWEEP: [usize; 3] = [1, 2, 8];

/// Every zoo family, scaled to test-friendly widths, with a matching
/// input batch. Batch of 5 on a worker sweep of {1, 2, 8} exercises
/// even chunks, uneven chunks and more-workers-than-images.
fn zoo() -> Vec<(Cnn, Tensor)> {
    let mut models = Vec::new();
    {
        let mut rng = seeded_rng(100);
        let model = scaled_lenet5(&mut rng, 10);
        let mut xr = seeded_rng(200);
        let x = init::normal(&mut xr, Shape::new(&[5, 1, 28, 28]), 0.0, 1.0);
        models.push((model, x));
    }
    for (seed, model_fn) in [
        (101u64, scaled_vgg11 as fn(&mut _, usize, usize) -> Cnn),
        (102, scaled_vgg16),
        (103, scaled_resnet18),
    ] {
        let mut rng = seeded_rng(seed);
        let model = model_fn(&mut rng, 4, 10);
        let mut xr = seeded_rng(seed + 100);
        let x = init::normal(&mut xr, Shape::new(&[5, 3, 32, 32]), 0.0, 1.0);
        models.push((model, x));
    }
    models
}

#[test]
fn infer_batch_bit_identical_to_serial_on_every_zoo_model() {
    for (model, x) in zoo() {
        let engine = DeepCamEngine::compile(
            &model,
            EngineConfig {
                plan: HashPlan::Uniform(256),
                parallelism: Parallelism::Serial,
                ..EngineConfig::default()
            },
        )
        .expect("engine compiles");
        let serial = engine.infer(&x).expect("serial inference");
        for workers in WORKER_SWEEP {
            let sharded = engine
                .infer_batch_with(&x, Parallelism::Fixed(workers))
                .expect("sharded inference");
            assert_eq!(serial.shape(), sharded.shape());
            assert_eq!(
                serial.data(),
                sharded.data(),
                "{}: infer_batch with {workers} workers diverged from serial infer",
                model.name
            );
        }
    }
}

#[test]
fn noisy_inference_is_sharding_invariant() {
    // Crossbar noise is seeded by the global patch index, so even a
    // noisy device model must reproduce serial logits under any image
    // sharding — this is what makes `Parallelism` safe to flip in
    // production configs rather than a "fast but different" mode.
    let mut rng = seeded_rng(7);
    let model = scaled_vgg11(&mut rng, 4, 10);
    let engine = DeepCamEngine::compile(
        &model,
        EngineConfig {
            plan: HashPlan::Uniform(256),
            crossbar_noise: 0.3,
            parallelism: Parallelism::Serial,
            ..EngineConfig::default()
        },
    )
    .expect("engine compiles");
    let mut xr = seeded_rng(77);
    let x = init::normal(&mut xr, Shape::new(&[6, 3, 32, 32]), 0.0, 1.0);
    let serial = engine.infer(&x).expect("serial inference");
    for workers in WORKER_SWEEP {
        let sharded = engine
            .infer_batch_with(&x, Parallelism::Fixed(workers))
            .expect("sharded inference");
        assert_eq!(serial.data(), sharded.data(), "noisy, {workers} workers");
    }
}

#[test]
fn evaluate_parallel_equals_evaluate_exactly() {
    let mut rng = seeded_rng(9);
    let model = scaled_lenet5(&mut rng, 10);
    let engine = DeepCamEngine::compile(
        &model,
        EngineConfig {
            plan: HashPlan::Uniform(256),
            parallelism: Parallelism::Serial,
            ..EngineConfig::default()
        },
    )
    .expect("engine compiles");
    let mut xr = seeded_rng(19);
    let x = init::normal(&mut xr, Shape::new(&[10, 1, 28, 28]), 0.0, 1.0);
    let mut lr = seeded_rng(29);
    let labels: Vec<usize> = (0..10).map(|_| lr.random_range(0..10usize)).collect();
    // Batch size 4 over 10 images leaves a remainder mini-batch.
    let reference = engine.evaluate(&x, &labels, 4).expect("serial evaluate");
    for workers in WORKER_SWEEP {
        let acc = engine
            .evaluate_parallel_with(&x, &labels, 4, Parallelism::Fixed(workers))
            .expect("parallel evaluate");
        assert_eq!(reference, acc, "{workers} workers");
    }
}

#[test]
fn sharded_cam_search_matches_unsharded_order_and_values() {
    let mut rng = seeded_rng(31);
    let mut cam = CamArray::new(CamConfig::new(128, 512).expect("supported"));
    // Sparse occupancy (2 of every 5 rows) so shard boundaries cut
    // through both occupied and empty stretches.
    for row in 0..128 {
        if row % 5 < 2 {
            let mut word = BitVec::zeros(512);
            for i in 0..512 {
                if rng.random::<bool>() {
                    word.set(i, true);
                }
            }
            cam.write_row(row, word).expect("fits");
        }
    }
    let mut key = BitVec::zeros(512);
    for i in 0..512 {
        if rng.random::<bool>() {
            key.set(i, true);
        }
    }
    let reference = cam.search(&key).expect("unsharded search");
    for shards in [1usize, 2, 3, 8, 64, 128, 1000] {
        let sharded = cam.search_sharded(&key, shards).expect("sharded search");
        assert_eq!(reference, sharded, "shards {shards}");
    }
}
