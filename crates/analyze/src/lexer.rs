//! A minimal token-level Rust lexer.
//!
//! The lints only need to tell four things apart reliably: real code
//! identifiers, punctuation, comments, and literal bodies (strings and
//! chars, whose contents must never match a lint pattern). No parsing,
//! no rustc internals — the same no-crates spirit as the vendored
//! shims. The tricky cases are exactly the ones that would make a grep
//! lie: nested block comments, raw strings with `#` fences, byte/char
//! literals versus lifetimes, and numeric literals next to `..` ranges.

/// What one token is. Literal and comment *contents* are retained only
/// where a lint needs them (comments carry annotations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `hamming_into`, …).
    Ident(String),
    /// One punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// `//…` or `/*…*/` comment, text included (annotation carrier).
    Comment(String),
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`), body dropped.
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`), body dropped.
    Char,
    /// Lifetime (`'env`), name dropped.
    Lifetime,
    /// Numeric literal (`0x9E37`, `1.5e-3f32`), body dropped.
    Num,
}

/// One token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub line: u32,
    pub kind: TokKind,
}

impl Tok {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The comment text, if this token is one.
    pub fn comment(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Comment(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is exactly the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Lexes `source` into a token stream. Never fails: unterminated
/// literals simply consume to end-of-file, which is good enough for
/// lint scanning (rustc rejects such files long before CI runs us).
pub fn lex(source: &str) -> Vec<Tok> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, line: u32, kind: TokKind) {
        self.out.push(Tok { line, kind });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    self.bump();
                    self.string_body(0);
                    self.push(line, TokKind::Str);
                }
                '\'' => self.char_or_lifetime(line),
                'r' | 'b' | 'c' if self.literal_prefix() => {
                    // b"…", r"…", r#"…"#, br#"…"#, c"…", b'…'
                    let mut hashes = 0usize;
                    let mut is_char = false;
                    loop {
                        match self.peek(0) {
                            Some('r' | 'b' | 'c') => {
                                self.bump();
                            }
                            Some('#') => {
                                self.bump();
                                hashes += 1;
                            }
                            Some('"') => {
                                self.bump();
                                break;
                            }
                            Some('\'') => {
                                self.bump();
                                is_char = true;
                                break;
                            }
                            _ => break,
                        }
                    }
                    if is_char {
                        self.char_body();
                        self.push(line, TokKind::Char);
                    } else {
                        self.string_body(hashes);
                        self.push(line, TokKind::Str);
                    }
                }
                c if c == '_' || c.is_alphabetic() => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(line, TokKind::Punct(c));
                }
            }
        }
        self.out
    }

    /// Whether the `r`/`b`/`c` at `pos` starts a literal (vs an ident
    /// like `rows`). A raw identifier `r#foo` is treated as an ident.
    fn literal_prefix(&self) -> bool {
        let mut i = 1;
        // Allow one more prefix letter (`br`, `rb` is invalid Rust but
        // harmless to accept).
        if matches!(self.peek(i), Some('r' | 'b')) {
            i += 1;
        }
        match self.peek(i) {
            Some('"' | '\'') => true,
            Some('#') => {
                // `r#"…"#` raw string vs `r#ident`. Skip the fence.
                let mut j = i;
                while self.peek(j) == Some('#') {
                    j += 1;
                }
                self.peek(j) == Some('"')
            }
            _ => false,
        }
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(line, TokKind::Comment(text));
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(line, TokKind::Comment(text));
    }

    /// Consumes a string body after the opening quote, honoring escape
    /// sequences (cooked strings) or a `#` fence (raw strings).
    fn string_body(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c == '\\' && hashes == 0 {
                self.bump();
            } else if c == '"' {
                if hashes == 0 {
                    return;
                }
                let mut matched = 0;
                while matched < hashes && self.peek(0) == Some('#') {
                    self.bump();
                    matched += 1;
                }
                if matched == hashes {
                    return;
                }
            }
        }
    }

    /// Consumes a char body after the opening quote.
    fn char_body(&mut self) {
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == '\'' {
                return;
            }
        }
    }

    /// `'a'` / `'\n'` are chars; `'env` is a lifetime. The rule: a
    /// backslash or a `'` right after the next char means char literal,
    /// an identifier not closed by `'` means lifetime.
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // the opening '
        match self.peek(0) {
            Some('\\') => {
                self.char_body();
                self.push(line, TokKind::Char);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                if self.peek(1) == Some('\'') {
                    self.bump();
                    self.bump();
                    self.push(line, TokKind::Char);
                } else {
                    while matches!(self.peek(0), Some(c) if c == '_' || c.is_alphanumeric()) {
                        self.bump();
                    }
                    self.push(line, TokKind::Lifetime);
                }
            }
            _ => {
                // `'('` and friends: a one-char literal.
                self.char_body();
                self.push(line, TokKind::Char);
            }
        }
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else if c == '#' && text == "r" {
                // Raw identifier `r#type`: strip the fence, keep the name.
                self.bump();
                text.clear();
            } else {
                break;
            }
        }
        self.push(line, TokKind::Ident(text));
    }

    fn number(&mut self, line: u32) {
        let mut seen_dot = false;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                let was_exp = matches!(c, 'e' | 'E');
                self.bump();
                // `1e-3` / `1E+9`: the sign belongs to the literal.
                if was_exp
                    && matches!(self.peek(0), Some('+' | '-'))
                    && matches!(self.peek(1), Some(d) if d.is_ascii_digit())
                {
                    self.bump();
                }
            } else if c == '.' && !seen_dot {
                // `0.5` continues the literal; `0..10` does not.
                match self.peek(1) {
                    Some(d) if d.is_ascii_digit() => {
                        seen_dot = true;
                        self.bump();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        self.push(line, TokKind::Num);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
            // unsafe in a comment
            /* panic! in /* nested */ block */
            let s = "unsafe unwrap";
            let r = r#"panic! "quoted" inside"#;
            let b = b"unsafe";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn chars_versus_lifetimes() {
        let toks = lex("fn f<'env>(c: char) { let x = 'a'; let y = '\\n'; let z = '\\''; }");
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 1);
        assert_eq!(chars, 3);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = lex("for i in 0..10 { a[i] = 1.5e-3f32; }");
        // Both range dots survive as punctuation.
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
        let nums = toks.iter().filter(|t| t.kind == TokKind::Num).count();
        assert_eq!(nums, 3); // 0, 10, 1.5e-3f32
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let ids = idents("let r#type = 1; raw_str(r#\"x\"#);");
        assert!(ids.contains(&"type".to_string()));
        assert!(ids.contains(&"raw_str".to_string()));
    }
}
