//! Per-file source model: the token stream plus the three structural
//! facts every lint keys off — function spans, `#[cfg(test)]` spans,
//! and `// analyze:` annotations.

use crate::lexer::{lex, Tok, TokKind};

/// An `// analyze:` directive attached to a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Annotation {
    /// `// analyze: alloc-free` — the A1 contract.
    AllocFree,
    /// `// analyze: allow(<lint>, "justification")` — suppresses that
    /// lint inside the annotated function. The justification is
    /// mandatory; an empty or missing one is itself a violation.
    Allow {
        lint: String,
        justification: Option<String>,
    },
    /// Anything after `analyze:` the tool does not understand. Always a
    /// violation: a typo'd annotation must never silently un-enforce a
    /// contract.
    Unknown(String),
}

/// One `fn` item: its name, where it starts, and which token range its
/// body occupies.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    pub line: u32,
    /// Token index range of the body, `{` inclusive to `}` inclusive.
    /// Empty for bodyless trait-method declarations.
    pub body: std::ops::Range<usize>,
    /// Annotations from the contiguous comment/attribute block directly
    /// above the `fn` keyword, each with the line it was written on.
    pub annotations: Vec<(u32, Annotation)>,
}

/// One lexed source file plus its structural facts.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path, `/`-separated.
    pub rel: String,
    pub tokens: Vec<Tok>,
    pub functions: Vec<FnSpan>,
    /// Token index ranges covered by `#[cfg(test)]` items (or items
    /// under a `#[cfg(test)]` attribute directly).
    test_spans: Vec<std::ops::Range<usize>>,
}

impl SourceFile {
    pub fn parse(rel: String, source: &str) -> SourceFile {
        let tokens = lex(source);
        let test_spans = find_test_spans(&tokens);
        let functions = find_functions(&tokens);
        SourceFile {
            rel,
            tokens,
            functions,
            test_spans,
        }
    }

    /// Whether token `idx` lies inside a `#[cfg(test)]` item.
    pub fn is_test_code(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|r| r.contains(&idx))
    }

    /// The innermost function whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnSpan> {
        self.functions
            .iter()
            .filter(|f| f.body.contains(&idx))
            .min_by_key(|f| f.body.len())
    }

    /// The next significant (non-comment) token at or after `idx`.
    pub fn next_significant(&self, idx: usize) -> Option<(usize, &Tok)> {
        self.tokens[idx..]
            .iter()
            .enumerate()
            .map(|(o, t)| (idx + o, t))
            .find(|(_, t)| !matches!(t.kind, TokKind::Comment(_)))
    }

    /// The previous significant (non-comment) token strictly before `idx`.
    pub fn prev_significant(&self, idx: usize) -> Option<(usize, &Tok)> {
        self.tokens[..idx]
            .iter()
            .enumerate()
            .rev()
            .find(|(_, t)| !matches!(t.kind, TokKind::Comment(_)))
    }

    /// Whether the significant tokens ending just before `idx` are `::`.
    pub fn preceded_by_path_sep(&self, idx: usize) -> bool {
        match self.prev_significant(idx) {
            Some((i, t)) if t.is_punct(':') => self
                .prev_significant(i)
                .is_some_and(|(_, t2)| t2.is_punct(':')),
            _ => false,
        }
    }
}

/// Parses the text after `analyze:` in a comment.
pub fn parse_annotation(text: &str) -> Option<Annotation> {
    let body = text.trim_start_matches('/').trim();
    let rest = body.strip_prefix("analyze:")?.trim();
    if rest == "alloc-free" {
        return Some(Annotation::AllocFree);
    }
    if let Some(args) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.strip_suffix(')'))
    {
        let (lint, just) = match args.split_once(',') {
            Some((l, j)) => (l.trim(), Some(j.trim())),
            None => (args.trim(), None),
        };
        let justification = just.and_then(|j| {
            let j = j.strip_prefix('"')?.strip_suffix('"')?.trim();
            if j.is_empty() {
                None
            } else {
                Some(j.to_string())
            }
        });
        return Some(Annotation::Allow {
            lint: lint.to_string(),
            justification,
        });
    }
    Some(Annotation::Unknown(rest.to_string()))
}

/// Collects `#[cfg(test)]` spans: the attribute's following item (a
/// `mod`, `fn`, `use`, …) is test-only code.
fn find_test_spans(tokens: &[Tok]) -> Vec<std::ops::Range<usize>> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && is_cfg_test_attr(tokens, i) {
            if let Some(close) = matching(tokens, i + 1, '[', ']') {
                let span = item_span(tokens, close + 1);
                spans.push(span.clone());
                i = span.end.max(close + 1);
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// Whether the attribute starting at `#` token `i` is `#[cfg(…test…)]`
/// (or `#[test]`). `#[cfg(not(test))]` is production code, not test.
fn is_cfg_test_attr(tokens: &[Tok], i: usize) -> bool {
    let Some(close) = matching(tokens, i + 1, '[', ']') else {
        return false;
    };
    let attr = &tokens[i + 1..close];
    let has = |w: &str| attr.iter().any(|t| t.ident() == Some(w));
    has("test") && !has("not")
}

/// The token span of the item starting at `start` (after its
/// attributes): consumes further attributes, then everything up to the
/// item's closing `}` or `;`.
fn item_span(tokens: &[Tok], start: usize) -> std::ops::Range<usize> {
    let mut i = start;
    // Skip stacked attributes and comments.
    loop {
        match tokens.get(i) {
            Some(t) if matches!(t.kind, TokKind::Comment(_)) => i += 1,
            Some(t) if t.is_punct('#') => match matching(tokens, i + 1, '[', ']') {
                Some(close) => i = close + 1,
                None => break,
            },
            _ => break,
        }
    }
    let mut j = i;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('{') {
            let end = matching(tokens, j, '{', '}').map_or(tokens.len(), |e| e + 1);
            return start..end;
        }
        if t.is_punct(';') {
            return start..j + 1;
        }
        j += 1;
    }
    start..tokens.len()
}

/// Index of the closer matching the first `open` at or after `from`.
fn matching(tokens: &[Tok], from: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(from) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Finds every `fn` item, its body span, and the annotations written in
/// the comment block directly above it.
fn find_functions(tokens: &[Tok]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.ident() != Some("fn") {
            continue;
        }
        // `fn` as part of `Fn`/`FnOnce` bounds is a different ident, so
        // this really is a function item or method; the name follows.
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        let Some(name) = name_tok.ident() else {
            continue;
        };
        // Find the body `{` (or a `;` for bodyless declarations) at
        // zero bracket depth after the signature.
        let mut depth = 0i32;
        let mut j = i + 2;
        let mut body = 0..0;
        while j < tokens.len() {
            let tk = &tokens[j];
            match tk.kind {
                TokKind::Punct('(' | '[') => depth += 1,
                TokKind::Punct(')' | ']') => depth -= 1,
                TokKind::Punct('{') if depth == 0 => {
                    let end = matching(tokens, j, '{', '}').map_or(tokens.len(), |e| e + 1);
                    body = j..end;
                    break;
                }
                TokKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        out.push(FnSpan {
            name: name.to_string(),
            line: t.line,
            body,
            annotations: annotations_above(tokens, i),
        });
    }
    out
}

/// Annotations in the contiguous comment/attribute block directly above
/// token `fn_idx`. The walk skips backwards over comments, whole
/// `#[…]` attributes (as one unit, so their inner identifiers cannot
/// end the walk), `pub(…)` visibility groups and signature qualifiers.
fn annotations_above(tokens: &[Tok], fn_idx: usize) -> Vec<(u32, Annotation)> {
    const QUALIFIERS: &[&str] = &["pub", "const", "unsafe", "extern", "async"];
    let mut out = Vec::new();
    let mut i = fn_idx;
    while i > 0 {
        let t = &tokens[i - 1];
        match &t.kind {
            TokKind::Comment(text) => {
                if let Some(ann) = parse_annotation(text) {
                    out.push((t.line, ann));
                }
                i -= 1;
            }
            TokKind::Ident(w) if QUALIFIERS.contains(&w.as_str()) => i -= 1,
            TokKind::Str => i -= 1, // extern "C"
            // `pub(crate)` visibility: skip the group as one unit.
            TokKind::Punct(')') => match matching_back(tokens, i - 1, ')', '(') {
                Some(open) => i = open,
                None => break,
            },
            // `#[…]` attribute: skip it as one unit.
            TokKind::Punct(']') => match matching_back(tokens, i - 1, ']', '[') {
                Some(open) if open > 0 && tokens[open - 1].is_punct('#') => i = open - 1,
                _ => break,
            },
            _ => break,
        }
    }
    out.reverse();
    out
}

/// Index of the opener matching the closer at `close_idx`, scanning
/// backwards.
fn matching_back(tokens: &[Tok], close_idx: usize, close: char, open: char) -> Option<usize> {
    let mut depth = 0usize;
    for i in (0..=close_idx).rev() {
        if tokens[i].is_punct(close) {
            depth += 1;
        } else if tokens[i].is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functions_and_bodies_are_found() {
        let src = "
            fn alpha() { let x = 1; }
            struct S;
            impl S {
                pub fn beta(&self) -> usize { self.gamma() }
                fn gamma(&self) -> usize { 2 }
            }
            trait T { fn decl(&self); }
        ";
        let f = SourceFile::parse("x.rs".into(), src);
        let names: Vec<&str> = f.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta", "gamma", "decl"]);
        assert!(f.functions[3].body.is_empty(), "trait decl has no body");
        // beta's body contains the gamma call site but not gamma's body.
        let beta = &f.functions[1];
        let gamma_body = &f.functions[2].body;
        assert!(beta.body.end <= gamma_body.start);
    }

    #[test]
    fn cfg_test_spans_cover_test_mods() {
        let src = "
            fn production() { danger(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn check() { danger(); }
            }
        ";
        let f = SourceFile::parse("x.rs".into(), src);
        let hits: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.ident() == Some("danger"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(hits.len(), 2);
        assert!(!f.is_test_code(hits[0]));
        assert!(f.is_test_code(hits[1]));
    }

    #[test]
    fn annotations_attach_to_the_next_fn() {
        let src = "
            // analyze: alloc-free
            #[inline]
            pub fn hot(out: &mut [f32]) { out[0] = 1.0; }

            // analyze: allow(determinism, \"profiling only\")
            fn timed() {}

            // analyze: allow(determinism)
            fn unjustified() {}

            // analyze: frobnicate
            fn typod() {}

            fn plain() {}
        ";
        let f = SourceFile::parse("x.rs".into(), src);
        let by_name = |n: &str| {
            f.functions
                .iter()
                .find(|f| f.name == n)
                .unwrap()
                .annotations
                .clone()
        };
        assert_eq!(by_name("hot")[0].1, Annotation::AllocFree);
        assert_eq!(
            by_name("timed")[0].1,
            Annotation::Allow {
                lint: "determinism".into(),
                justification: Some("profiling only".into())
            }
        );
        assert_eq!(
            by_name("unjustified")[0].1,
            Annotation::Allow {
                lint: "determinism".into(),
                justification: None
            }
        );
        assert!(matches!(by_name("typod")[0].1, Annotation::Unknown(_)));
        assert!(by_name("plain").is_empty());
    }

    #[test]
    fn annotations_survive_ident_bearing_attributes() {
        // The real hot-path functions sit under attributes like
        // `#[allow(clippy::too_many_arguments)]`; the walk-back must
        // treat the whole attribute as one skippable unit.
        let src = "
            // analyze: alloc-free
            #[allow(clippy::too_many_arguments)]
            #[inline]
            pub(crate) fn kernel(a: usize, b: usize) -> usize { a + b }
        ";
        let f = SourceFile::parse("x.rs".into(), src);
        assert_eq!(f.functions[0].annotations[0].1, Annotation::AllocFree);
    }

    #[test]
    fn cfg_not_test_is_production() {
        let src = "
            #[cfg(not(test))]
            fn shipping() { danger(); }
        ";
        let f = SourceFile::parse("x.rs".into(), src);
        let idx = f
            .tokens
            .iter()
            .position(|t| t.ident() == Some("danger"))
            .unwrap();
        assert!(!f.is_test_code(idx));
    }

    #[test]
    fn doc_comment_mentions_are_not_annotations() {
        let src = "
            /// Run `cargo run -p deepcam-analyze` to check this.
            fn documented() {}
        ";
        let f = SourceFile::parse("x.rs".into(), src);
        assert!(f.functions[0].annotations.is_empty());
    }
}
