//! CLI for the repo-invariant checker.
//!
//! ```text
//! cargo run -p deepcam-analyze --           # report, exit 0
//! cargo run -p deepcam-analyze -- --deny    # report, exit 2 on violations (CI mode)
//! cargo run -p deepcam-analyze -- --root /path/to/checkout --deny
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root needs a path");
                    return ExitCode::from(64);
                }
            },
            "--help" | "-h" => {
                println!(
                    "deepcam-analyze: machine-check the workspace's declared invariants\n\n\
                     USAGE: deepcam-analyze [--root <dir>] [--deny]\n\n\
                     --root <dir>  workspace root to scan (default: this checkout)\n\
                     --deny        exit 2 if any violation is found (CI mode)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument {other:?} (see --help)");
                return ExitCode::from(64);
            }
        }
    }
    let root = root.unwrap_or_else(deepcam_analyze::default_root);
    let violations = match deepcam_analyze::check_repo(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: failed to scan {}: {e}", root.display());
            return ExitCode::from(66);
        }
    };
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        eprintln!("deepcam-analyze: all declared invariants hold");
        ExitCode::SUCCESS
    } else {
        eprintln!("deepcam-analyze: {} violation(s)", violations.len());
        if deny {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        }
    }
}
