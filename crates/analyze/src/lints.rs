//! The six invariant lints (plus A0 annotation hygiene).
//!
//! Every lint works on the token streams of [`crate::model::SourceFile`];
//! none of them parse Rust beyond what the model provides (function
//! spans, test spans, annotations). The configuration — which files a
//! lint covers, which call sites are declared — lives in
//! [`Config::repo`] so that changing an invariant is an explicit diff
//! to this crate, reviewed like any other contract change.

use std::collections::BTreeMap;

use crate::model::{Annotation, SourceFile};
use crate::report::{LintId, Violation};

/// One lowered-entry-point rule for A4: `method` may be called exactly
/// `count` times per declared file (and nowhere else) in production
/// code.
#[derive(Debug, Clone)]
pub struct CallSiteRule {
    pub method: &'static str,
    /// (repo-relative file, expected production call-site count).
    pub expected: Vec<(&'static str, usize)>,
}

/// Which files each lint covers. [`Config::repo`] is the live
/// repository's contract; fixture tests build their own.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// A3: files whose non-test code must be panic-free.
    pub panic_free_files: Vec<&'static str>,
    /// A5: files whose non-test code must be host/clock/rng-free.
    pub determinism_files: Vec<&'static str>,
    /// A6: the only files allowed to create threads.
    pub thread_owner_files: Vec<&'static str>,
    /// A4: declared call sites of single-lowering entry points.
    pub call_sites: Vec<CallSiteRule>,
    /// A2: repo-relative path of the unsafe registry markdown.
    pub unsafe_registry: &'static str,
}

impl Config {
    /// The DeepCAM repository's declared invariants.
    pub fn repo() -> Config {
        Config {
            // A3: the serve decode path (wire → Request), the server
            // read loop, and the epoll readiness loop — the code
            // hostile bytes reach first.
            panic_free_files: vec![
                "crates/serve/src/protocol.rs",
                "crates/serve/src/server.rs",
                "crates/serve/src/event_loop.rs",
                "crates/serve/src/poll.rs",
            ],
            // A5: the bit-exact kernel files (hot path + frozen
            // reference), the pool/guard host probes, and the clock
            // boundary. Host state is reachable from these files only
            // through a justified `// analyze: allow(determinism, …)`.
            determinism_files: vec![
                "crates/core/src/engine.rs",
                "crates/core/src/reference.rs",
                // The pass pipeline rewrites compiled artifacts and
                // searches mappings; both must be pure functions of the
                // model and config (resumable, replayable, cacheable).
                "crates/core/src/passes/mod.rs",
                "crates/core/src/passes/fuse.rs",
                "crates/core/src/passes/mapping.rs",
                "crates/hash/src/packed.rs",
                "crates/hash/src/bitvec.rs",
                // The SIMD kernel files are A5-bound; the dispatch layer
                // (simd/mod.rs) is deliberately NOT — it is the one
                // place allowed to read the DEEPCAM_SIMD env override,
                // so kernels stay pure functions of their inputs.
                "crates/hash/src/simd/scalar.rs",
                "crates/hash/src/simd/x86.rs",
                "crates/hash/src/simd/neon.rs",
                "crates/tensor/src/tensor.rs",
                "crates/tensor/src/ops/conv.rs",
                "crates/tensor/src/ops/linear.rs",
                "crates/tensor/src/pool.rs",
                "crates/bench/src/guard.rs",
                "crates/serve/src/clock.rs",
                "crates/serve/src/session.rs",
                // The fault-tolerance surface is deadline- and
                // retry-driven: every clock read goes through the Clock
                // trait and every random draw through a seeded rng, so
                // timeouts, backoff and fault plans replay exactly.
                "crates/serve/src/server.rs",
                "crates/serve/src/client.rs",
                "crates/serve/src/chaos.rs",
                // The readiness core: every deadline in the event loop
                // is computed from `shared.clock`, and the syscall
                // wrappers in poll.rs take explicit timeouts — neither
                // file may reach for host time or env state itself.
                // The one env read (DEEPCAM_SERVE_CORE) lives in
                // core_select.rs, which is deliberately NOT listed.
                "crates/serve/src/event_loop.rs",
                "crates/serve/src/poll.rs",
            ],
            // A6: worker threads live in the pool; the TCP server owns
            // its accept/connection threads; the session owns its
            // dispatcher; the event loop owns its single epoll thread.
            // Nothing else may create threads.
            thread_owner_files: vec![
                "crates/tensor/src/pool.rs",
                "crates/serve/src/server.rs",
                "crates/serve/src/session.rs",
                "crates/serve/src/event_loop.rs",
            ],
            call_sites: vec![
                // `ModelSpec::dot_layers` has exactly one production
                // caller (`LayerIr::from_spec`) — the PR 4 single-
                // lowering invariant. The other two entries pin the
                // same-named delegation methods (`CompiledModel::
                // dot_layers` via the engine, and the registry's
                // listing) so a new caller of *any* `dot_layers` is an
                // explicit diff here.
                CallSiteRule {
                    method: "dot_layers",
                    expected: vec![
                        ("crates/core/src/ir.rs", 1),
                        ("crates/core/src/engine.rs", 1),
                        ("crates/serve/src/registry.rs", 1),
                    ],
                },
                // `HashPlan::bind` is the one place widths meet lowered
                // IR. The serve entry is `TcpListener::bind` (an
                // unrelated method pinned on purpose: a new `.bind(`
                // call anywhere must show up as a diff here, whichever
                // `bind` it is).
                CallSiteRule {
                    method: "bind",
                    expected: vec![
                        ("crates/core/src/sched.rs", 1),
                        ("crates/core/src/tune.rs", 2),
                        ("crates/core/src/ir.rs", 1),
                        ("crates/serve/src/server.rs", 1),
                        ("crates/bench/src/experiments/fig9.rs", 1),
                        ("crates/bench/src/experiments/fig10.rs", 1),
                        ("crates/bench/src/experiments/table2.rs", 1),
                        ("crates/bench/src/bin/tuner.rs", 1),
                        // The compiler bench costs the uniform_max
                        // baseline; its tuned bindings come from
                        // `tune_joint`, which reuses the tuner's.
                        ("crates/bench/src/bin/compiler.rs", 1),
                        // The open-loop sweep stands up a real server
                        // per (core, conns) cell.
                        ("crates/bench/src/bin/serve_throughput.rs", 1),
                    ],
                },
            ],
            unsafe_registry: "ANALYZE_UNSAFE.md",
        }
    }
}

/// Whether `rel` is production source: a crate's `src/` tree or the
/// facade's. Test dirs, examples and benches are out of scope for the
/// call-site and thread lints (A2 still scans everything).
fn is_production(rel: &str) -> bool {
    rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/"))
}

/// Runs every lint over `files`. `registry` is the content of the
/// unsafe-registry markdown, if it exists.
pub fn check(files: &[SourceFile], cfg: &Config, registry: Option<&str>) -> Vec<Violation> {
    let mut v = Vec::new();
    v.extend(annotation_hygiene(files));
    v.extend(alloc_free(files));
    v.extend(unsafe_audit(files, cfg, registry));
    v.extend(panic_free(files, cfg));
    v.extend(single_lowering(files, cfg));
    v.extend(determinism(files, cfg));
    v.extend(thread_centralization(files, cfg));
    v.sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
    v
}

/// Whether `f`'s enclosing function carries a *justified* allow for
/// `lint` (unjustified allows never suppress; A0 flags them instead).
fn allowed(file: &SourceFile, tok_idx: usize, lint: LintId) -> bool {
    file.enclosing_fn(tok_idx).is_some_and(|f| {
        f.annotations.iter().any(|(_, a)| {
            matches!(a, Annotation::Allow { lint: l, justification: Some(_) }
                if l.as_str() == lint.allow_key())
        })
    })
}

/// A0 — every `// analyze:` directive must be well-formed, name a real
/// lint, and (for `allow`) carry a non-empty quoted justification.
fn annotation_hygiene(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in files {
        for f in &file.functions {
            for (line, ann) in &f.annotations {
                match ann {
                    Annotation::AllocFree => {}
                    Annotation::Allow {
                        lint,
                        justification,
                    } => match LintId::from_allow_key(lint) {
                        None => out.push(Violation::new(
                            &file.rel,
                            *line,
                            LintId::Annotation,
                            format!("allow names unknown lint {lint:?} on fn `{}`", f.name),
                        )),
                        Some(named) if justification.is_none() => out.push(Violation::new(
                            &file.rel,
                            *line,
                            LintId::Annotation,
                            format!(
                                "allow({}) on fn `{}` has no justification string — every \
                                 escape hatch must say why",
                                named.allow_key(),
                                f.name
                            ),
                        )),
                        Some(_) => {}
                    },
                    Annotation::Unknown(text) => out.push(Violation::new(
                        &file.rel,
                        *line,
                        LintId::Annotation,
                        format!("unrecognized analyze directive {text:?} on fn `{}`", f.name),
                    )),
                }
            }
        }
    }
    out
}

/// A1 — inside `// analyze: alloc-free` functions, none of the banned
/// allocation tokens may appear: `Vec::new`, `Box::new`, `.push(`,
/// `.to_vec(`, `.collect(`, `.clone(`, `format!`. (One-time scratch
/// via `vec![…]` at chunk entry is the sanctioned pattern and stays
/// legal — the contract is *no per-item allocation*.)
fn alloc_free(files: &[SourceFile]) -> Vec<Violation> {
    const BANNED_METHODS: &[&str] = &["push", "to_vec", "collect", "clone"];
    let mut out = Vec::new();
    for file in files {
        for f in &file.functions {
            let tagged = f
                .annotations
                .iter()
                .any(|(_, a)| *a == Annotation::AllocFree);
            if !tagged || f.body.is_empty() {
                continue;
            }
            for idx in f.body.clone() {
                let Some(word) = file.tokens[idx].ident() else {
                    continue;
                };
                let line = file.tokens[idx].line;
                let dot_call = BANNED_METHODS.contains(&word)
                    && file
                        .prev_significant(idx)
                        .is_some_and(|(_, t)| t.is_punct('.'));
                let path_new = word == "new"
                    && matches!(path_prefix(file, idx), Some("Vec" | "Box" | "String"));
                let fmt_macro = word == "format"
                    && file
                        .next_significant(idx + 1)
                        .is_some_and(|(_, t)| t.is_punct('!'));
                if dot_call || path_new || fmt_macro {
                    let shown = if path_new {
                        format!("{}::new", path_prefix(file, idx).unwrap_or(""))
                    } else if fmt_macro {
                        "format!".to_string()
                    } else {
                        format!(".{word}()")
                    };
                    out.push(Violation::new(
                        &file.rel,
                        line,
                        LintId::AllocFree,
                        format!(
                            "allocation token `{shown}` inside alloc-free fn `{}`",
                            f.name
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// A2 — every `unsafe` token needs a `// SAFETY:` comment within the 12
/// preceding lines, and the per-file counts must match the registry
/// markdown exactly, so any new unsafe is an explicit two-file diff.
fn unsafe_audit(files: &[SourceFile], cfg: &Config, registry: Option<&str>) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut actual: BTreeMap<&str, (usize, u32)> = BTreeMap::new(); // file -> (count, first line)
    for file in files {
        for (idx, t) in file.tokens.iter().enumerate() {
            if t.ident() != Some("unsafe") {
                continue;
            }
            let entry = actual.entry(file.rel.as_str()).or_insert((0, t.line));
            entry.0 += 1;
            if !has_safety_comment(file, idx) {
                out.push(Violation::new(
                    &file.rel,
                    t.line,
                    LintId::UnsafeAudit,
                    "`unsafe` without a `// SAFETY:` comment in the 12 lines above".to_string(),
                ));
            }
        }
    }
    let declared = registry.map(parse_registry).unwrap_or_default();
    if registry.is_none() && !actual.is_empty() {
        let (file, (_, line)) = actual.iter().next().expect("non-empty");
        out.push(Violation::new(
            file,
            *line,
            LintId::UnsafeAudit,
            format!(
                "repo contains `unsafe` but the registry {} is missing",
                cfg.unsafe_registry
            ),
        ));
    }
    for (file, (count, line)) in &actual {
        match declared.get(*file) {
            Some(n) if n == count => {}
            Some(n) => out.push(Violation::new(
                file,
                *line,
                LintId::UnsafeAudit,
                format!(
                    "{} declares {n} unsafe token(s) for this file, found {count}",
                    cfg.unsafe_registry
                ),
            )),
            None if registry.is_some() => out.push(Violation::new(
                file,
                *line,
                LintId::UnsafeAudit,
                format!(
                    "{count} unsafe token(s) not declared in {}",
                    cfg.unsafe_registry
                ),
            )),
            None => {}
        }
    }
    for (file, n) in &declared {
        if !actual.contains_key(file.as_str()) {
            out.push(Violation::new(
                cfg.unsafe_registry,
                1,
                LintId::UnsafeAudit,
                format!(
                    "{} declares {n} unsafe token(s) for {file}, found none — stale entry",
                    cfg.unsafe_registry
                ),
            ));
        }
    }
    out
}

/// Parses `| path.rs | N |` table rows out of the registry markdown.
fn parse_registry(md: &str) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    for line in md.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line
            .split('|')
            .map(str::trim)
            .filter(|c| !c.is_empty())
            .collect();
        if cells.len() >= 2 {
            let file = cells[0].trim_matches('`');
            if file.ends_with(".rs") {
                if let Ok(n) = cells[1].parse::<usize>() {
                    map.insert(file.to_string(), n);
                }
            }
        }
    }
    map
}

/// Whether a `// SAFETY:` comment sits within the 12 lines above token
/// `idx`.
fn has_safety_comment(file: &SourceFile, idx: usize) -> bool {
    let line = file.tokens[idx].line;
    file.tokens[..idx]
        .iter()
        .rev()
        .take_while(|t| t.line + 12 >= line)
        .any(|t| t.comment().is_some_and(|c| c.contains("SAFETY:")))
}

/// A3 — panic-free decode: no `panic!`-family macros, no
/// `.unwrap()`/`.expect()`, no `expr[...]` indexing in the non-test
/// code of the configured files. Escape hatch:
/// `// analyze: allow(panic-free, "…")`.
fn panic_free(files: &[SourceFile], cfg: &Config) -> Vec<Violation> {
    const PANIC_MACROS: &[&str] = &[
        "panic",
        "unreachable",
        "todo",
        "unimplemented",
        "assert",
        "assert_eq",
        "assert_ne",
        "debug_assert",
        "debug_assert_eq",
        "debug_assert_ne",
    ];
    let mut out = Vec::new();
    for file in files {
        if !cfg.panic_free_files.contains(&file.rel.as_str()) {
            continue;
        }
        for (idx, t) in file.tokens.iter().enumerate() {
            if file.is_test_code(idx) || allowed(file, idx, LintId::PanicFree) {
                continue;
            }
            if let Some(word) = t.ident() {
                let dot_call = matches!(word, "unwrap" | "expect")
                    && file
                        .prev_significant(idx)
                        .is_some_and(|(_, t)| t.is_punct('.'));
                let macro_call = PANIC_MACROS.contains(&word)
                    && file
                        .next_significant(idx + 1)
                        .is_some_and(|(_, t)| t.is_punct('!'));
                if dot_call {
                    out.push(Violation::new(
                        &file.rel,
                        t.line,
                        LintId::PanicFree,
                        format!("`.{word}()` on the decode/read path — return a typed error"),
                    ));
                } else if macro_call {
                    out.push(Violation::new(
                        &file.rel,
                        t.line,
                        LintId::PanicFree,
                        format!("`{word}!` on the decode/read path — return a typed error"),
                    ));
                }
            } else if t.is_punct('[') && is_index_expr(file, idx) {
                out.push(Violation::new(
                    &file.rel,
                    t.line,
                    LintId::PanicFree,
                    "indexing on the decode/read path — use `.get(…)` and a typed error"
                        .to_string(),
                ));
            }
        }
    }
    out
}

/// Whether the `[` at `idx` opens an index expression (as opposed to an
/// array literal/type, slice pattern or attribute): true when the
/// previous significant token ends an expression.
fn is_index_expr(file: &SourceFile, idx: usize) -> bool {
    const KEYWORDS: &[&str] = &[
        "in", "if", "else", "match", "return", "break", "continue", "let", "mut", "ref", "move",
        "as", "impl", "where", "for", "while", "loop", "dyn", "fn", "box", "await", "yield",
        "unsafe", "const", "static", "pub", "use", "mod", "enum", "struct", "trait", "type",
    ];
    match file.prev_significant(idx) {
        Some((_, t)) => match &t.kind {
            crate::lexer::TokKind::Ident(w) => !KEYWORDS.contains(&w.as_str()),
            crate::lexer::TokKind::Punct(')' | ']') => true,
            _ => false,
        },
        None => false,
    }
}

/// A4 — each registered entry point is called exactly its declared
/// number of times per declared production file, and nowhere else.
fn single_lowering(files: &[SourceFile], cfg: &Config) -> Vec<Violation> {
    let mut out = Vec::new();
    for rule in &cfg.call_sites {
        let mut found: BTreeMap<&str, (usize, u32)> = BTreeMap::new();
        for file in files {
            if !is_production(&file.rel) {
                continue;
            }
            for (idx, t) in file.tokens.iter().enumerate() {
                if t.ident() != Some(rule.method) || file.is_test_code(idx) {
                    continue;
                }
                let receiver = file
                    .prev_significant(idx)
                    .is_some_and(|(_, t)| t.is_punct('.'))
                    || file.preceded_by_path_sep(idx);
                let called = file
                    .next_significant(idx + 1)
                    .is_some_and(|(_, t)| t.is_punct('('));
                if receiver && called {
                    let e = found.entry(file.rel.as_str()).or_insert((0, t.line));
                    e.0 += 1;
                }
            }
        }
        for (file, (count, line)) in &found {
            match rule.expected.iter().find(|(f, _)| f == file) {
                Some((_, n)) if n == count => {}
                Some((_, n)) => out.push(Violation::new(
                    file,
                    *line,
                    LintId::SingleLowering,
                    format!(
                        "`{}` declared {n} production call site(s) in this file, found {count}",
                        rule.method
                    ),
                )),
                None => out.push(Violation::new(
                    file,
                    *line,
                    LintId::SingleLowering,
                    format!(
                        "undeclared production call site of `{}` ({count}×) — update the \
                         registry in deepcam-analyze if intentional",
                        rule.method
                    ),
                )),
            }
        }
        for (file, n) in &rule.expected {
            if !found.contains_key(file) {
                out.push(Violation::new(
                    file,
                    1,
                    LintId::SingleLowering,
                    format!(
                        "`{}` declared {n} production call site(s) here, found none — stale \
                         declaration",
                        rule.method
                    ),
                ));
            }
        }
    }
    out
}

/// A5 — bit-exact kernel files must not read clocks, RNGs, the
/// environment or other host state. Escape hatch (function-scoped,
/// justification required): `// analyze: allow(determinism, "…")`.
fn determinism(files: &[SourceFile], cfg: &Config) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in files {
        if !cfg.determinism_files.contains(&file.rel.as_str()) {
            continue;
        }
        for (idx, t) in file.tokens.iter().enumerate() {
            if file.is_test_code(idx) {
                continue;
            }
            let Some(word) = t.ident() else { continue };
            let finding = match word {
                "now" if path_prefix(file, idx) == Some("Instant") => Some("Instant::now"),
                "SystemTime" => Some("SystemTime"),
                "thread_rng" => Some("thread_rng"),
                "var" | "var_os" if path_prefix(file, idx) == Some("env") => Some("env::var"),
                "available_parallelism" => Some("available_parallelism"),
                "read_to_string" => Some("read_to_string"),
                "println" | "eprintln" | "print" | "eprint"
                    if file
                        .next_significant(idx + 1)
                        .is_some_and(|(_, t)| t.is_punct('!')) =>
                {
                    Some("host stdio")
                }
                _ => None,
            };
            if let Some(what) = finding {
                if !allowed(file, idx, LintId::Determinism) {
                    out.push(Violation::new(
                        &file.rel,
                        t.line,
                        LintId::Determinism,
                        format!(
                            "{what} in a bit-exact kernel file — use the Clock trait or add a \
                             justified allow(determinism)"
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// A6 — `thread::spawn` / `thread::Builder` only in the declared
/// thread-owner files.
fn thread_centralization(files: &[SourceFile], cfg: &Config) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in files {
        if !is_production(&file.rel) || cfg.thread_owner_files.contains(&file.rel.as_str()) {
            continue;
        }
        for (idx, t) in file.tokens.iter().enumerate() {
            if file.is_test_code(idx) {
                continue;
            }
            let spawnish = matches!(t.ident(), Some("spawn" | "Builder"))
                && path_prefix(file, idx) == Some("thread");
            if spawnish {
                out.push(Violation::new(
                    &file.rel,
                    t.line,
                    LintId::ThreadCentralization,
                    "thread creation outside the declared owner files (pool/server/session)"
                        .to_string(),
                ));
            }
        }
    }
    out
}

/// The identifier before a `::` path separator leading into token
/// `idx`: for `Instant::now`, `path_prefix` at `now` is `Instant`.
fn path_prefix(file: &SourceFile, idx: usize) -> Option<&str> {
    if !file.preceded_by_path_sep(idx) {
        return None;
    }
    let (colon2, _) = file.prev_significant(idx)?;
    let (colon1, _) = file.prev_significant(colon2)?;
    let (_, prev) = file.prev_significant(colon1)?;
    prev.ident()
}
