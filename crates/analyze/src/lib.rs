//! deepcam-analyze — a repo-invariant static checker.
//!
//! The workspace declares several invariants its benchmarks and tests
//! rely on but `rustc` cannot see: hot loops stay allocation-free, the
//! serve decode path never panics on hostile bytes, lowering has one
//! entry point, kernels read no host state, threads are created in
//! exactly three places, and every `unsafe` is audited. This crate
//! machine-checks all of them on every CI run, from a token-level
//! lexer over the repo's own sources — no rustc internals, no
//! dependencies, same no-crates spirit as the vendored shims.
//!
//! The lints:
//!
//! | ID | key | invariant |
//! |----|-----|-----------|
//! | A0 | `annotation` | every `// analyze:` directive is well-formed and justified |
//! | A1 | `alloc-free` | no allocation tokens in `// analyze: alloc-free` functions |
//! | A2 | `unsafe-audit` | every `unsafe` has `// SAFETY:` and matches `ANALYZE_UNSAFE.md` |
//! | A3 | `panic-free` | no panic/unwrap/indexing in the serve decode/read files |
//! | A4 | `single-lowering` | lowering entry points have exactly their declared call sites |
//! | A5 | `determinism` | no clock/env/rng/host tokens in bit-exact kernel files |
//! | A6 | `thread` | thread creation only in pool.rs, server.rs, session.rs |
//!
//! Escape hatch: `// analyze: allow(<key>, "why")` directly above a
//! `fn`. The justification string is mandatory — an allow without one
//! is itself a violation (A0), so every suppression documents its
//! reason at the use site.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod lints;
pub mod model;
pub mod report;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use lints::{CallSiteRule, Config};
pub use model::SourceFile;
pub use report::{LintId, Violation};

/// Directory names never descended into, at any depth.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github"];
/// Repo-relative prefixes never scanned: the fixture corpus contains
/// deliberate violations.
const SKIP_PREFIXES: &[&str] = &["crates/analyze/tests/fixtures"];

/// Recursively collects every `.rs` file under `root`, returning
/// repo-relative `/`-separated paths, sorted for deterministic output.
pub fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            let rel = rel_str(root, &path);
            if path.is_dir() {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if SKIP_DIRS.contains(&name) || SKIP_PREFIXES.iter().any(|p| rel == *p) {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// `path` relative to `root`, `/`-separated (stable across hosts).
fn rel_str(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Parses every source under `root` and runs all lints with `cfg`.
/// The unsafe registry is read from `root/<cfg.unsafe_registry>` if
/// present.
pub fn check_dir(root: &Path, cfg: &Config) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    for path in collect_sources(root)? {
        let source = fs::read_to_string(&path)?;
        files.push(SourceFile::parse(rel_str(root, &path), &source));
    }
    let registry = fs::read_to_string(root.join(cfg.unsafe_registry)).ok();
    Ok(lints::check(&files, cfg, registry.as_deref()))
}

/// Checks the live repository (the workspace this crate is part of)
/// against its declared invariants, [`Config::repo`].
pub fn check_repo(root: &Path) -> io::Result<Vec<Violation>> {
    check_dir(root, &Config::repo())
}

/// The workspace root when running from within the workspace (the
/// manifest dir is `crates/analyze`).
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The live repository must satisfy every invariant it declares.
    /// This is the self-run: the same check CI enforces, as a test.
    #[test]
    fn live_repo_is_clean() {
        let violations = check_repo(&default_root()).expect("walk repo");
        assert!(
            violations.is_empty(),
            "repo violates its declared invariants:\n{}",
            violations
                .iter()
                .map(|v| format!("  {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
