//! Violation reporting types shared by the library, the CLI and the
//! fixture tests.

use std::fmt;

/// Which invariant a violation breaks. `Annotation` (A0) is the
/// checker's own hygiene lint: a malformed or unjustified
/// `// analyze:` directive must fail loudly, never silently
/// un-enforce a contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintId {
    /// A0 — `// analyze:` directive hygiene.
    Annotation,
    /// A1 — no allocation tokens in `// analyze: alloc-free` functions.
    AllocFree,
    /// A2 — every `unsafe` carries a `// SAFETY:` comment and matches
    /// the `ANALYZE_UNSAFE.md` registry.
    UnsafeAudit,
    /// A3 — no panic paths in the serve decode/read files.
    PanicFree,
    /// A4 — lowering entry points have exactly their declared call sites.
    SingleLowering,
    /// A5 — no wall-clock/env/host tokens in bit-exact kernel files.
    Determinism,
    /// A6 — thread creation only in the declared owner files.
    ThreadCentralization,
}

impl LintId {
    /// Short code used in CLI output (`A1`…`A6`, `A0` for hygiene).
    pub fn code(self) -> &'static str {
        match self {
            LintId::Annotation => "A0",
            LintId::AllocFree => "A1",
            LintId::UnsafeAudit => "A2",
            LintId::PanicFree => "A3",
            LintId::SingleLowering => "A4",
            LintId::Determinism => "A5",
            LintId::ThreadCentralization => "A6",
        }
    }

    /// The key used in `// analyze: allow(<key>, "…")` directives.
    pub fn allow_key(self) -> &'static str {
        match self {
            LintId::Annotation => "annotation",
            LintId::AllocFree => "alloc-free",
            LintId::UnsafeAudit => "unsafe-audit",
            LintId::PanicFree => "panic-free",
            LintId::SingleLowering => "single-lowering",
            LintId::Determinism => "determinism",
            LintId::ThreadCentralization => "thread",
        }
    }

    /// Resolves an allow key back to its lint.
    pub fn from_allow_key(key: &str) -> Option<LintId> {
        [
            LintId::AllocFree,
            LintId::UnsafeAudit,
            LintId::PanicFree,
            LintId::SingleLowering,
            LintId::Determinism,
            LintId::ThreadCentralization,
        ]
        .into_iter()
        .find(|l| l.allow_key() == key)
    }
}

/// One broken invariant at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub lint: LintId,
    pub message: String,
}

impl Violation {
    pub fn new(file: &str, line: u32, lint: LintId, message: String) -> Violation {
        Violation {
            file: file.to_string(),
            line,
            lint,
            message,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {}",
            self.file,
            self.line,
            self.lint.code(),
            self.lint.allow_key(),
            self.message
        )
    }
}
