// analyze: alloc-free
pub fn hot(out: &mut [f32], scale: f32) {
    let scratch = vec![0.0f32; out.len()]; // one-time scratch stays legal
    for (o, s) in out.iter_mut().zip(scratch.iter()) {
        *o = s + scale;
    }
}

pub fn unannotated() -> Vec<u32> {
    let mut v = Vec::new();
    v.push(1);
    v.clone()
}
