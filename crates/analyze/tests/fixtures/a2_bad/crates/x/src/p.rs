pub fn copy(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len());
    unsafe {
        std::ptr::copy_nonoverlapping(src.as_ptr(), dst.as_mut_ptr(), src.len());
    }
}
