use std::time::Instant;

pub fn kernel(x: &mut [f32]) {
    let t0 = Instant::now();
    let seed = std::env::var("SEED").unwrap_or_default();
    println!("{seed} {:?}", t0.elapsed());
    for v in x.iter_mut() {
        *v *= 2.0;
    }
}

// analyze: allow(determinism)
pub fn unjustified_probe() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}
