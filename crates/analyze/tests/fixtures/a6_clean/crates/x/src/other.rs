pub fn fan_out() {
    // Scoped spawns borrow the pool's threads; only `thread::spawn` /
    // `thread::Builder` (thread creation) are centralized.
    std::thread::scope(|s| {
        s.spawn(|| {});
    });
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_spawn() {
        std::thread::spawn(|| {}).join().ok();
    }
}
