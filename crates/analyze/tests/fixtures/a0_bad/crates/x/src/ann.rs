// analyze: frobnicate
pub fn typod() {}

// analyze: allow(nonexistent-lint, "a reason")
pub fn unknown_lint() {}

// analyze: allow(determinism, "")
pub fn empty_justification() {}
