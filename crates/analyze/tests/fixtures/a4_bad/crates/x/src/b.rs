pub fn sneak(p: &Plan) {
    p.lower();
}
