pub fn build(p: &Plan) {
    p.lower();
    p.lower();
}
