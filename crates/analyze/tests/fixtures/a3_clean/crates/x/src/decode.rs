pub fn decode(buf: &[u8]) -> Option<u8> {
    let first = buf.first()?;
    let second = buf.get(1)?;
    first.checked_add(*second)
}

// analyze: allow(panic-free, "length is checked by the caller's framing layer")
pub fn decode_trusted(buf: &[u8]) -> u8 {
    buf[0]
}
