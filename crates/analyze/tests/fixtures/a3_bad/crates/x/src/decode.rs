pub fn decode(buf: &[u8]) -> u8 {
    let first = buf[0];
    let second = buf.get(1).unwrap();
    let third = buf.iter().next().expect("non-empty");
    if first == 0 {
        panic!("zero");
    }
    first + second + third
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::decode(&[1, 2, 3]), [6u8][0]);
        Some(1u8).unwrap();
    }
}
