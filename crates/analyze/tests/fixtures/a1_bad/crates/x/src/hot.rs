// analyze: alloc-free
pub fn hot(out: &mut Vec<f32>, names: &[String]) -> String {
    let scratch = vec![0.0f32; 4]; // sanctioned one-time scratch
    out.push(scratch[0]);
    let copied = names.to_vec();
    let doubled: Vec<f32> = scratch.iter().map(|x| x * 2.0).collect();
    let joined = copied.clone();
    let total: f32 = doubled.iter().sum();
    let v: Vec<f32> = Vec::new();
    drop(v);
    format!("{total} {}", joined.len())
}
