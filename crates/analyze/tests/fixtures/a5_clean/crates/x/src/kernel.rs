pub fn kernel(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v *= 2.0;
    }
}

// analyze: allow(determinism, "profiling timestamps only; never feeds the computed values")
pub fn profiled_kernel(x: &mut [f32]) -> std::time::Duration {
    let t0 = std::time::Instant::now();
    kernel(x);
    t0.elapsed()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let t0 = std::time::Instant::now();
        println!("elapsed: {:?}", t0.elapsed());
    }
}
