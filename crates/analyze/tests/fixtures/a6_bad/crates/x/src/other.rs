pub fn sneaky_worker() {
    std::thread::spawn(|| {});
    let b = std::thread::Builder::new();
    drop(b);
}
