pub fn worker() -> std::thread::JoinHandle<()> {
    std::thread::spawn(|| {})
}
