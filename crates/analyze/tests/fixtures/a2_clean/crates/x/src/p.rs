pub fn copy(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len());
    // SAFETY: the assert above guarantees equal lengths; both pointers
    // come from distinct live borrows, so they are valid for
    // `src.len()` bytes and cannot overlap.
    unsafe {
        std::ptr::copy_nonoverlapping(src.as_ptr(), dst.as_mut_ptr(), src.len());
    }
}
