pub fn build(p: &Plan) {
    p.lower();
}

pub fn mentions_without_calling() {
    // A bare mention of lower in a comment, a string "lower()", or the
    // method's own definition must not count as a call site.
    let _name = "lower()";
}

fn lower() {
    // The definition itself: `fn lower` is not a call.
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_calls_do_not_count() {
        Plan::default().lower();
        super::lower();
    }
}
