pub fn lower_via_path(p: &Plan) {
    Plan::lower(p);
}
