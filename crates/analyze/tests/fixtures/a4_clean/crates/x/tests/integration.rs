// Not under src/: integration tests are outside A4's production scope,
// so this extra call site must not trip the registry.
#[test]
fn calls_freely() {
    Plan::default().lower();
}
