//! Fixture corpus: one violating and one clean mini-repo per lint,
//! asserting the exact violation count and `file:line` anchors. The
//! fixture trees mimic the real layout (`crates/x/src/…`) so the
//! production-scope rules are exercised too.

use std::path::PathBuf;

use deepcam_analyze::{check_dir, CallSiteRule, Config, LintId, Violation};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(name: &str, cfg: &Config) -> Vec<Violation> {
    check_dir(&fixture(name), cfg).expect("scan fixture")
}

/// `(file, line)` anchors of the violations of one lint, in report order.
fn at(v: &[Violation], lint: LintId) -> Vec<(String, u32)> {
    v.iter()
        .filter(|v| v.lint == lint)
        .map(|v| (v.file.clone(), v.line))
        .collect()
}

fn registry_cfg() -> Config {
    Config {
        unsafe_registry: "ANALYZE_UNSAFE.md",
        ..Config::default()
    }
}

#[test]
fn a1_flags_every_allocation_token() {
    let v = run("a1_bad", &Config::default());
    assert_eq!(
        at(&v, LintId::AllocFree),
        vec![
            ("crates/x/src/hot.rs".to_string(), 4),  // .push
            ("crates/x/src/hot.rs".to_string(), 5),  // .to_vec
            ("crates/x/src/hot.rs".to_string(), 6),  // .collect
            ("crates/x/src/hot.rs".to_string(), 7),  // .clone
            ("crates/x/src/hot.rs".to_string(), 9),  // Vec::new
            ("crates/x/src/hot.rs".to_string(), 11), // format!
        ]
    );
    assert_eq!(v.len(), 6, "only A1 fires: {v:?}");
}

#[test]
fn a1_scratch_vec_and_unannotated_fns_are_clean() {
    let v = run("a1_clean", &Config::default());
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn a2_flags_missing_safety_and_missing_registry() {
    let v = run("a2_bad", &registry_cfg());
    assert_eq!(
        at(&v, LintId::UnsafeAudit),
        vec![
            ("crates/x/src/p.rs".to_string(), 3), // no SAFETY comment
            ("crates/x/src/p.rs".to_string(), 3), // registry file absent
        ]
    );
    assert_eq!(v.len(), 2);
}

#[test]
fn a2_audited_and_registered_unsafe_is_clean() {
    let v = run("a2_clean", &registry_cfg());
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn a2_flags_count_mismatch_and_stale_entry() {
    let v = run("a2_mismatch", &registry_cfg());
    let hits = at(&v, LintId::UnsafeAudit);
    assert_eq!(
        hits,
        vec![
            ("ANALYZE_UNSAFE.md".to_string(), 1), // stale q.rs entry
            ("crates/x/src/p.rs".to_string(), 4), // declared 2, found 1
        ]
    );
    assert_eq!(v.len(), 2);
}

#[test]
fn a3_flags_indexing_unwrap_expect_and_panics_outside_tests() {
    let cfg = Config {
        panic_free_files: vec!["crates/x/src/decode.rs"],
        ..Config::default()
    };
    let v = run("a3_bad", &cfg);
    assert_eq!(
        at(&v, LintId::PanicFree),
        vec![
            ("crates/x/src/decode.rs".to_string(), 2), // buf[0]
            ("crates/x/src/decode.rs".to_string(), 3), // .unwrap()
            ("crates/x/src/decode.rs".to_string(), 4), // .expect()
            ("crates/x/src/decode.rs".to_string(), 6), // panic!
        ]
    );
    assert_eq!(v.len(), 4, "the #[cfg(test)] unwrap must not fire: {v:?}");
}

#[test]
fn a3_option_flow_and_justified_allow_are_clean() {
    let cfg = Config {
        panic_free_files: vec!["crates/x/src/decode.rs"],
        ..Config::default()
    };
    let v = run("a3_clean", &cfg);
    assert!(v.is_empty(), "{v:?}");
}

fn a4_cfg() -> Config {
    Config {
        call_sites: vec![CallSiteRule {
            method: "lower",
            expected: vec![("crates/x/src/a.rs", 1), ("crates/x/src/c.rs", 1)],
        }],
        ..Config::default()
    }
}

#[test]
fn a4_flags_extra_undeclared_and_stale_call_sites() {
    let v = run("a4_bad", &a4_cfg());
    assert_eq!(
        at(&v, LintId::SingleLowering),
        vec![
            ("crates/x/src/a.rs".to_string(), 2), // declared 1, found 2
            ("crates/x/src/b.rs".to_string(), 2), // undeclared file
            ("crates/x/src/c.rs".to_string(), 1), // declared, found none
        ]
    );
    assert_eq!(v.len(), 3);
}

#[test]
fn a4_declared_sites_definitions_strings_and_tests_are_clean() {
    let v = run("a4_clean", &a4_cfg());
    assert!(v.is_empty(), "{v:?}");
}

fn a5_cfg() -> Config {
    Config {
        determinism_files: vec!["crates/x/src/kernel.rs"],
        ..Config::default()
    }
}

#[test]
fn a5_flags_host_state_and_unjustified_allow_does_not_suppress() {
    let v = run("a5_bad", &a5_cfg());
    assert_eq!(
        at(&v, LintId::Determinism),
        vec![
            ("crates/x/src/kernel.rs".to_string(), 4),  // Instant::now
            ("crates/x/src/kernel.rs".to_string(), 5),  // env::var
            ("crates/x/src/kernel.rs".to_string(), 6),  // println!
            ("crates/x/src/kernel.rs".to_string(), 14), // available_parallelism
        ]
    );
    // The bare `allow(determinism)` is itself a violation (A0) and the
    // lint it tried to silence still fires (line 14 above).
    assert_eq!(
        at(&v, LintId::Annotation),
        vec![("crates/x/src/kernel.rs".to_string(), 12)]
    );
    assert_eq!(v.len(), 5);
}

#[test]
fn a5_pure_kernels_justified_allows_and_test_timing_are_clean() {
    let v = run("a5_clean", &a5_cfg());
    assert!(v.is_empty(), "{v:?}");
}

fn a6_cfg() -> Config {
    Config {
        thread_owner_files: vec!["crates/x/src/pool.rs"],
        ..Config::default()
    }
}

#[test]
fn a6_flags_thread_creation_outside_owner_files() {
    let v = run("a6_bad", &a6_cfg());
    assert_eq!(
        at(&v, LintId::ThreadCentralization),
        vec![
            ("crates/x/src/other.rs".to_string(), 2), // thread::spawn
            ("crates/x/src/other.rs".to_string(), 3), // thread::Builder
        ]
    );
    assert_eq!(v.len(), 2, "pool.rs spawns must be allowed: {v:?}");
}

#[test]
fn a6_owner_spawns_scoped_spawns_and_test_spawns_are_clean() {
    let v = run("a6_clean", &a6_cfg());
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn a0_flags_typos_unknown_lints_and_empty_justifications() {
    let v = run("a0_bad", &Config::default());
    assert_eq!(
        at(&v, LintId::Annotation),
        vec![
            ("crates/x/src/ann.rs".to_string(), 1), // unknown directive
            ("crates/x/src/ann.rs".to_string(), 4), // unknown lint key
            ("crates/x/src/ann.rs".to_string(), 7), // empty justification
        ]
    );
    assert_eq!(v.len(), 3);
}
