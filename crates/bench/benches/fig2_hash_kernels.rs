//! Criterion benches for the Fig. 2 hot path: random projection hashing
//! and packed Hamming distance.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use deepcam_hash::{BitVec, ProjectionMatrix};
use deepcam_tensor::rng::{fill_normal, seeded_rng};

fn bench_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2/hash");
    for &k in &[256usize, 1024] {
        let proj = ProjectionMatrix::generate(64, k, 1);
        let mut rng = seeded_rng(2);
        let mut x = vec![0.0f32; 64];
        fill_normal(&mut rng, &mut x, 0.0, 1.0);
        group.bench_function(format!("sign_project_n64_k{k}"), |b| {
            b.iter(|| proj.hash(black_box(&x)).expect("dims match"))
        });
    }
    group.finish();
}

fn bench_hamming(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2/hamming");
    for &k in &[256usize, 1024, 4096] {
        let mut a = BitVec::zeros(k);
        let mut b = BitVec::zeros(k);
        for i in (0..k).step_by(3) {
            a.set(i, true);
        }
        for i in (0..k).step_by(7) {
            b.set(i, true);
        }
        group.bench_function(format!("hamming_k{k}"), |bch| {
            bch.iter(|| black_box(&a).hamming(black_box(&b)).expect("equal widths"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows keep `cargo bench --workspace` minutes-scale
    // on small CI machines while still giving stable medians.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10);
    targets = bench_hashing, bench_hamming
}
criterion_main!(benches);
