//! Criterion bench for the Table II machinery: anchored analog PIM models
//! and the DeepCAM per-inference accounting for VGG11.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use deepcam_baselines::{AnalogPim, PimTechnology};
use deepcam_bench::experiments::table2;
use deepcam_models::zoo;

fn bench_pim_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/pim");
    let vgg = zoo::vgg11();
    for tech in [PimTechnology::NeuroSimRram, PimTechnology::ValaviSram] {
        let pim = AnalogPim::new(tech);
        group.bench_function(tech.name().replace(' ', "_"), |b| {
            b.iter(|| pim.run(black_box(&vgg)))
        });
    }
    group.finish();
}

fn bench_full_table(c: &mut Criterion) {
    c.bench_function("table2/full_table", |b| b.iter(table2::run));
}

criterion_group! {
    name = benches;
    // Short measurement windows keep `cargo bench --workspace` minutes-scale
    // on small CI machines while still giving stable medians.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10);
    targets = bench_pim_models, bench_full_table
}
criterion_main!(benches);
