//! Criterion bench for the Fig. 5 hot path: functional CAM inference of a
//! compiled model.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use deepcam_core::{DeepCamEngine, EngineConfig, HashPlan};
use deepcam_models::scaled::scaled_lenet5;
use deepcam_tensor::rng::seeded_rng;
use deepcam_tensor::{init, Parallelism, Shape};

fn bench_engine_infer(c: &mut Criterion) {
    let mut rng = seeded_rng(0);
    let model = scaled_lenet5(&mut rng, 10);
    let mut data_rng = seeded_rng(1);
    let batch = init::normal(&mut data_rng, Shape::new(&[2, 1, 28, 28]), 0.0, 1.0);

    let mut group = c.benchmark_group("fig5/engine_infer");
    group.sample_size(10);
    for &k in &[256usize, 1024] {
        let engine = DeepCamEngine::compile(
            &model,
            EngineConfig {
                plan: HashPlan::Uniform(k),
                parallelism: Parallelism::Fixed(2),
                ..EngineConfig::default()
            },
        )
        .expect("compiles");
        group.bench_function(format!("lenet5_batch2_k{k}"), |b| {
            b.iter(|| engine.infer(black_box(&batch)).expect("inference succeeds"))
        });
    }
    group.finish();
}

fn bench_engine_infer_batch(c: &mut Criterion) {
    // The sharded runtime: image-level fan-out across worker counts.
    // Outputs are bit-identical across the sweep; only wall clock moves.
    let mut rng = seeded_rng(0);
    let model = scaled_lenet5(&mut rng, 10);
    let mut data_rng = seeded_rng(1);
    let batch = init::normal(&mut data_rng, Shape::new(&[8, 1, 28, 28]), 0.0, 1.0);
    let engine = DeepCamEngine::compile(
        &model,
        EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        },
    )
    .expect("compiles");

    let mut group = c.benchmark_group("fig5/engine_infer_batch");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("lenet5_batch8_w{workers}"), |b| {
            b.iter(|| {
                engine
                    .infer_batch_with(black_box(&batch), Parallelism::Fixed(workers))
                    .expect("inference succeeds")
            })
        });
    }
    group.finish();
}

fn bench_engine_compile(c: &mut Criterion) {
    let mut rng = seeded_rng(0);
    let model = scaled_lenet5(&mut rng, 10);
    c.bench_function("fig5/engine_compile_lenet5", |b| {
        b.iter(|| {
            DeepCamEngine::compile(
                black_box(&model),
                EngineConfig {
                    plan: HashPlan::Uniform(256),
                    ..EngineConfig::default()
                },
            )
            .expect("compiles")
        })
    });
}

criterion_group! {
    name = benches;
    // Short measurement windows keep `cargo bench --workspace` minutes-scale
    // on small CI machines while still giving stable medians.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10);
    targets = bench_engine_infer, bench_engine_infer_batch, bench_engine_compile
}
criterion_main!(benches);
