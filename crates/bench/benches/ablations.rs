//! Ablation benches for the design choices called out in DESIGN.md §7:
//! eq. 5 cosine vs exact, minifloat quantization, sense-amp readout, and
//! pipelined vs sequential cycle accounting.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use deepcam_cam::SenseModel;
use deepcam_core::sched::{CamScheduler, CycleModel};
use deepcam_core::{Dataflow, HashPlan};
use deepcam_hash::cosine::{approx_cosine, exact_cosine};
use deepcam_hash::Minifloat8;
use deepcam_models::zoo;

fn bench_cosine(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/cosine");
    let angles: Vec<f32> = (0..1024).map(|i| i as f32 * 0.003).collect();
    group.bench_function("piecewise_eq5", |b| {
        b.iter(|| {
            angles
                .iter()
                .map(|&t| approx_cosine(black_box(t)))
                .sum::<f32>()
        })
    });
    group.bench_function("exact", |b| {
        b.iter(|| {
            angles
                .iter()
                .map(|&t| exact_cosine(black_box(t)))
                .sum::<f32>()
        })
    });
    group.finish();
}

fn bench_minifloat(c: &mut Criterion) {
    let values: Vec<f32> = (0..1024).map(|i| i as f32 * 0.37 + 0.01).collect();
    c.bench_function("ablations/minifloat_quantize", |b| {
        b.iter(|| {
            values
                .iter()
                .map(|&v| Minifloat8::quantize(black_box(v)))
                .sum::<f32>()
        })
    });
}

fn bench_sense_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/sense");
    for (label, model) in [
        ("exact", SenseModel::Exact),
        ("clocked16", SenseModel::Clocked { levels: 16 }),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                (0..1024usize)
                    .map(|hd| model.read(black_box(hd), 1024))
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

fn bench_cycle_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/cycle_model");
    let vgg = zoo::vgg11();
    let plan = HashPlan::Uniform(512);
    for (label, model) in [
        ("pipelined", CycleModel::Pipelined),
        ("sequential", CycleModel::Sequential),
    ] {
        let sched = CamScheduler::new(64, Dataflow::ActivationStationary)
            .expect("supported")
            .with_cycle_model(model);
        group.bench_function(label, |b| {
            b.iter(|| {
                sched
                    .run(black_box(&vgg), black_box(&plan))
                    .expect("plan fits")
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows keep `cargo bench --workspace` minutes-scale
    // on small CI machines while still giving stable medians.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10);
    targets = bench_cosine,
    bench_minifloat,
    bench_sense_models,
    bench_cycle_models
}
criterion_main!(benches);
