//! Criterion bench for the Fig. 9 machinery: the CAM scheduler and both
//! baseline simulators over the full workloads.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use deepcam_baselines::{Eyeriss, SkylakeCpu};
use deepcam_cam::{CamArray, CamConfig};
use deepcam_core::sched::CamScheduler;
use deepcam_core::{Dataflow, HashPlan, LayerIr};
use deepcam_hash::BitVec;
use deepcam_models::zoo;
use deepcam_tensor::rng::seeded_rng;
use rand::RngExt;

fn bench_deepcam_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9/deepcam_sched");
    let resnet = zoo::resnet18();
    let dims = LayerIr::from_spec(&resnet).patch_lens();
    let plan = HashPlan::variable_for_dims(&dims);
    for dataflow in Dataflow::both() {
        let sched = CamScheduler::new(64, dataflow).expect("supported rows");
        group.bench_function(format!("resnet18_{}", dataflow.label()), |b| {
            b.iter(|| {
                sched
                    .run(black_box(&resnet), black_box(&plan))
                    .expect("plan fits")
            })
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9/baselines");
    let vgg = zoo::vgg16();
    let eyeriss = Eyeriss::paper_config();
    group.bench_function("eyeriss_vgg16", |b| b.iter(|| eyeriss.run(black_box(&vgg))));
    let cpu = SkylakeCpu::paper_config();
    group.bench_function("skylake_vgg16", |b| b.iter(|| cpu.run(black_box(&vgg))));
    group.finish();
}

fn bench_sharded_cam_search(c: &mut Criterion) {
    // The parallel runtime's CAM shard: row-range sharded search, swept
    // over shard counts. Hits are identical across the sweep.
    let mut rng = seeded_rng(3);
    let rows = 512usize;
    let bits = 1024usize;
    let mut cam = CamArray::new(CamConfig::new(rows, bits).expect("supported"));
    for row in 0..rows {
        let mut word = BitVec::zeros(bits);
        for i in 0..bits {
            if rng.random::<bool>() {
                word.set(i, true);
            }
        }
        cam.write_row(row, word).expect("fits");
    }
    let mut key = BitVec::zeros(bits);
    for i in 0..bits {
        if rng.random::<bool>() {
            key.set(i, true);
        }
    }
    let mut group = c.benchmark_group("fig9/sharded_cam_search");
    for shards in [1usize, 2, 4] {
        group.bench_function(format!("rows512_shards{shards}"), |b| {
            b.iter(|| {
                cam.search_sharded(black_box(&key), shards)
                    .expect("key width matches")
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows keep `cargo bench --workspace` minutes-scale
    // on small CI machines while still giving stable medians.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10);
    targets = bench_deepcam_scheduler, bench_baselines, bench_sharded_cam_search
}
criterion_main!(benches);
