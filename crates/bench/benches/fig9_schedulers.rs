//! Criterion bench for the Fig. 9 machinery: the CAM scheduler and both
//! baseline simulators over the full workloads.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use deepcam_baselines::{Eyeriss, SkylakeCpu};
use deepcam_core::sched::CamScheduler;
use deepcam_core::{Dataflow, HashPlan};
use deepcam_models::zoo;

fn bench_deepcam_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9/deepcam_sched");
    let resnet = zoo::resnet18();
    let dims: Vec<usize> = resnet.dot_layers().iter().map(|d| d.n).collect();
    let plan = HashPlan::variable_for_dims(&dims);
    for dataflow in Dataflow::both() {
        let sched = CamScheduler::new(64, dataflow).expect("supported rows");
        group.bench_function(format!("resnet18_{}", dataflow.label()), |b| {
            b.iter(|| {
                sched
                    .run(black_box(&resnet), black_box(&plan))
                    .expect("plan fits")
            })
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9/baselines");
    let vgg = zoo::vgg16();
    let eyeriss = Eyeriss::paper_config();
    group.bench_function("eyeriss_vgg16", |b| b.iter(|| eyeriss.run(black_box(&vgg))));
    let cpu = SkylakeCpu::paper_config();
    group.bench_function("skylake_vgg16", |b| b.iter(|| cpu.run(black_box(&vgg))));
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows keep `cargo bench --workspace` minutes-scale
    // on small CI machines while still giving stable medians.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10);
    targets = bench_deepcam_scheduler, bench_baselines
}
criterion_main!(benches);
