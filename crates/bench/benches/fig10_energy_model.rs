//! Criterion bench for the Fig. 10 machinery: whole-model energy
//! assembly across hash plans.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use deepcam_core::sched::CamScheduler;
use deepcam_core::{Dataflow, HashPlan, LayerIr};
use deepcam_models::zoo;

fn bench_energy_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10/energy");
    let vgg = zoo::vgg11();
    let dims = LayerIr::from_spec(&vgg).patch_lens();
    let sched = CamScheduler::new(64, Dataflow::ActivationStationary).expect("supported");
    for (label, plan) in [
        ("uniform256", HashPlan::uniform_min()),
        ("uniform1024", HashPlan::uniform_max()),
        ("variable", HashPlan::variable_for_dims(&dims)),
    ] {
        group.bench_function(format!("vgg11_{label}"), |b| {
            b.iter(|| {
                sched
                    .run(black_box(&vgg), black_box(&plan))
                    .expect("plan fits")
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows keep `cargo bench --workspace` minutes-scale
    // on small CI machines while still giving stable medians.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10);
    targets = bench_energy_assembly
}
criterion_main!(benches);
