//! Criterion bench for the Fig. 8 subject: parallel CAM search across
//! array geometries.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use deepcam_cam::{CamArray, CamConfig};
use deepcam_hash::BitVec;
use deepcam_tensor::rng::seeded_rng;
use rand::RngExt;

fn random_word(bits: usize, rng: &mut impl rand::Rng) -> BitVec {
    let mut w = BitVec::zeros(bits);
    for i in 0..bits {
        if rng.random::<bool>() {
            w.set(i, true);
        }
    }
    w
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8/cam_search");
    for &(rows, cols) in &[(64usize, 256usize), (64, 1024), (512, 256), (512, 1024)] {
        let mut rng = seeded_rng(7);
        let mut cam = CamArray::new(CamConfig::new(rows, cols).expect("supported"));
        let words: Vec<BitVec> = (0..rows).map(|_| random_word(cols, &mut rng)).collect();
        cam.load(&words).expect("fits");
        let key = random_word(cols, &mut rng);
        group.bench_function(format!("search_r{rows}_c{cols}"), |b| {
            b.iter(|| cam.search(black_box(&key)).expect("key width matches"))
        });
    }
    group.finish();
}

fn bench_tile_load(c: &mut Criterion) {
    let mut rng = seeded_rng(8);
    let words: Vec<BitVec> = (0..64).map(|_| random_word(256, &mut rng)).collect();
    c.bench_function("fig8/tile_load_r64_c256", |b| {
        b.iter(|| {
            let mut cam = CamArray::new(CamConfig::new(64, 256).expect("supported"));
            cam.load(black_box(&words)).expect("fits");
            cam
        })
    });
}

criterion_group! {
    name = benches;
    // Short measurement windows keep `cargo bench --workspace` minutes-scale
    // on small CI machines while still giving stable medians.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10);
    targets = bench_search, bench_tile_load
}
criterion_main!(benches);
