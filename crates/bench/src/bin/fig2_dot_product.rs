//! Regenerates Fig. 2: approximate vs algebraic dot-product vs hash
//! length.
//!
//! Usage: `cargo run --release -p deepcam-bench --bin fig2_dot_product
//! [--hardware]`
//!
//! `--hardware` evaluates the full hardware path (eq. 5 cosine + 8-bit
//! minifloat norms) instead of the ideal cosine/fp32 reference.

use deepcam_bench::experiments::fig2::{self, Fig2Config, PAPER_REFERENCE};
use deepcam_bench::table::fmt_sig;
use deepcam_bench::TableWriter;

fn main() {
    let hardware = std::env::args().any(|a| a == "--hardware");
    let cfg = Fig2Config {
        hardware_path: hardware,
        ..Fig2Config::default()
    };
    println!("== Fig. 2: approximate vs algebraic dot-product ==");
    println!(
        "paper example x.y = {PAPER_REFERENCE} (4-dim operands from §II-B); path: {}",
        if hardware {
            "hardware (eq.5 cosine + minifloat8 norms)"
        } else {
            "ideal (exact cosine + fp32 norms)"
        }
    );
    println!();
    let mut table = TableWriter::new(vec![
        "hash length k",
        "example approx (mean)",
        "example std",
        "abs err vs 2.0765",
        "ensemble RMSE",
        "ensemble norm RMSE %",
    ]);
    for p in fig2::run(&cfg) {
        table.row(vec![
            p.k.to_string(),
            fmt_sig(p.example_mean as f64),
            fmt_sig(p.example_std as f64),
            fmt_sig((p.example_mean - PAPER_REFERENCE).abs() as f64),
            fmt_sig(p.ensemble.rmse as f64),
            fmt_sig(p.ensemble.normalized_rmse() as f64 * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("shape check: error shrinks monotonically (~1/sqrt(k)), matching the paper's Fig. 2.");
}
