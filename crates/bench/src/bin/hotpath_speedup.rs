//! Measures the packed-tile + cosine-LUT hot-path rewrite: wall-clock
//! of the fig5 VGG11 (width 8, k = 256) evaluation path through the
//! frozen pre-optimization datapath (`DeepCamEngine::infer_reference`,
//! the "before") vs the production fast path (`DeepCamEngine::infer`,
//! the "after"), single-threaded, and records the result with a
//! per-dot-layer breakdown plus a per-kernel-variant sweep (every SIMD
//! Hamming kernel the host detects, each re-gated for bit-identity) in
//! `BENCH_hotpath.json`.
//!
//! Usage: `cargo run --release -p deepcam-bench --bin hotpath_speedup
//! [--out PATH] [--images N] [--repeats R] [--force]`
//!
//! The run first asserts the differential contract — both datapaths
//! must produce bit-identical logits — and only then times the sweep,
//! so the recorded speedup is guaranteed to compare equal computations.
//! Like `parallel_speedup`, the binary refuses to overwrite a committed
//! JSON measured on a bigger host unless `--force`.

use std::time::Instant;

use deepcam_bench::guard::{self, median_millis};
use deepcam_core::profile::{self, DotSample};
use deepcam_core::{simd, DeepCamEngine, EngineConfig, HashPlan};
use deepcam_models::scaled::scaled_vgg11;
use deepcam_tensor::rng::seeded_rng;
use deepcam_tensor::{init, Parallelism, Shape, Tensor};

/// The fig5 evaluation mini-batch size.
const BATCH: usize = 16;

struct LayerAgg {
    layer_idx: usize,
    rows: usize,
    m: usize,
    k: usize,
    seconds: f64,
}

fn aggregate(samples: &[DotSample]) -> Vec<LayerAgg> {
    let mut by_layer: Vec<LayerAgg> = Vec::new();
    for s in samples {
        match by_layer.iter_mut().find(|l| l.layer_idx == s.layer_idx) {
            Some(l) => {
                l.seconds += s.seconds;
                l.rows += s.rows;
            }
            None => by_layer.push(LayerAgg {
                layer_idx: s.layer_idx,
                rows: s.rows,
                m: s.m,
                k: s.k,
                seconds: s.seconds,
            }),
        }
    }
    by_layer.sort_by_key(|l| l.layer_idx);
    by_layer
}

fn image_chunk(images: &Tensor, start: usize, end: usize) -> Tensor {
    let sample: usize = images.shape().dims()[1..].iter().product();
    let mut dims = vec![end - start];
    dims.extend_from_slice(&images.shape().dims()[1..]);
    Tensor::from_vec(
        images.data()[start * sample..end * sample].to_vec(),
        Shape::new(&dims),
    )
    .expect("chunk volume consistent")
}

/// One full evaluation pass: mini-batched inference + argmax counting
/// (the shape of `evaluate` without its engine-private internals).
fn eval_pass(engine: &DeepCamEngine, images: &Tensor, reference: bool) -> usize {
    let n = images.shape().dim(0);
    let mut hits = 0usize;
    let mut start = 0usize;
    while start < n {
        let end = (start + BATCH).min(n);
        let chunk = image_chunk(images, start, end);
        let logits = if reference {
            engine.infer_reference(&chunk)
        } else {
            engine.infer(&chunk)
        }
        .expect("inference succeeds");
        let classes = logits.shape().dim(1);
        for row in 0..end - start {
            let slice = &logits.data()[row * classes..(row + 1) * classes];
            let (best, _) =
                slice
                    .iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |acc, (j, &v)| {
                        if v > acc.1 {
                            (j, v)
                        } else {
                            acc
                        }
                    });
            hits += usize::from(best == 0);
        }
        start = end;
    }
    hits
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == name)
            .and_then(|p| args.get(p + 1))
            .and_then(|v| v.parse().ok())
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|p| args.get(p + 1).cloned())
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let images = arg("--images").unwrap_or(16);
    let repeats = arg("--repeats").unwrap_or(3).max(1);
    let force = args.iter().any(|a| a == "--force");

    let host_cores = guard::host_cores();
    if !guard::check_overwrite(&out_path, host_cores, force).proceed() {
        return; // verdict printed; keeping the bigger-host JSON is success
    }

    println!("== Hot-path rewrite: packed CAM tiles + cosine LUTs, before/after ==");
    println!("host cores: {host_cores}, images: {images}, repeats: {repeats} (single-thread)");

    let mut rng = seeded_rng(0);
    let model = scaled_vgg11(&mut rng, 8, 10);
    let engine = DeepCamEngine::compile(
        &model,
        EngineConfig {
            plan: HashPlan::Uniform(256),
            parallelism: Parallelism::Serial,
            ..EngineConfig::default()
        },
    )
    .expect("engine compiles");
    let mut data_rng = seeded_rng(1);
    let batch = init::normal(&mut data_rng, Shape::new(&[images, 3, 32, 32]), 0.0, 1.0);

    // Differential gate: the timed paths must agree bit-for-bit.
    let fast = engine.infer(&batch).expect("fast inference succeeds");
    let reference = engine
        .infer_reference(&batch)
        .expect("reference inference succeeds");
    assert_eq!(
        fast.data(),
        reference.data(),
        "fast path must be bit-identical to the frozen reference"
    );
    println!("differential gate passed: logits bit-identical across datapaths");

    let time_pass = |use_reference: bool| -> f64 {
        let runs: Vec<f64> = (0..repeats)
            .map(|_| {
                let start = Instant::now();
                let hits = eval_pass(&engine, &batch, use_reference);
                let elapsed = start.elapsed().as_secs_f64() * 1e3;
                std::hint::black_box(hits);
                elapsed
            })
            .collect();
        median_millis(runs)
    };

    // "Before": the frozen pre-rewrite datapath.
    let before_ms = time_pass(true);
    println!("reference (before): {before_ms:.1} ms");
    // "After": the packed-tile + LUT kernels on the default dispatch.
    let after_ms = time_pass(false);
    println!(
        "packed (after):     {after_ms:.1} ms  ({:.2}x vs reference)",
        before_ms / after_ms
    );

    // Per-kernel-variant sweep: pin each detected Hamming kernel in the
    // dispatch table and re-time the same fast path. Each variant is
    // re-gated against the reference logits first, so a variant row in
    // the JSON always denotes a bit-identical computation.
    let default_variant = simd::active();
    let mut variant_rows: Vec<(&'static str, f64)> = Vec::new();
    for &v in simd::detected() {
        simd::force_variant(v).expect("detected variant");
        let pinned = engine.infer(&batch).expect("fast inference succeeds");
        assert_eq!(
            pinned.data(),
            reference.data(),
            "kernel variant {} must stay bit-identical to the reference",
            v.name()
        );
        let ms = time_pass(false);
        println!(
            "  kernel {:<6}    {ms:.1} ms  ({:.2}x vs reference)",
            v.name(),
            before_ms / ms
        );
        variant_rows.push((v.name(), ms));
    }
    simd::force_variant(default_variant).expect("restore default variant");

    // Per-dot-layer breakdown via the engine profiler (one pass each).
    profile::enable();
    eval_pass(&engine, &batch, true);
    let before_layers = aggregate(&profile::disable_and_take());
    profile::enable();
    eval_pass(&engine, &batch, false);
    let after_layers = aggregate(&profile::disable_and_take());

    // Hand-rolled JSON: the vendored serde is a no-op shim (no
    // serializer exists offline). Schema documented in ROADMAP.md.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"experiment\": \"fig5 evaluation path, scaled VGG11 (width 8), k=256, \
         single-thread: reference datapath vs packed-tile + cosine-LUT hot path\",\n",
    );
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"images\": {images},\n"));
    json.push_str(&format!("  \"batch_size\": {BATCH},\n"));
    json.push_str(&format!("  \"repeats\": {repeats},\n"));
    json.push_str("  \"bit_identical_to_reference\": true,\n");
    json.push_str(&format!("  \"before_ms\": {before_ms:.2},\n"));
    json.push_str(&format!("  \"after_ms\": {after_ms:.2},\n"));
    json.push_str(&format!("  \"speedup\": {:.3},\n", before_ms / after_ms));
    json.push_str(&format!(
        "  \"default_kernel\": \"{}\",\n",
        default_variant.name()
    ));
    json.push_str("  \"kernel_variants\": [\n");
    for (i, (name, ms)) in variant_rows.iter().enumerate() {
        let comma = if i + 1 == variant_rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"variant\": \"{name}\", \"after_ms\": {ms:.2}, \
             \"speedup_vs_reference\": {:.3}}}{comma}\n",
            before_ms / ms
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"per_layer\": [\n");
    let layers = before_layers.len();
    for (i, b) in before_layers.iter().enumerate() {
        let a = after_layers
            .iter()
            .find(|l| l.layer_idx == b.layer_idx)
            .expect("both passes run the same layers");
        let comma = if i + 1 == layers { "" } else { "," };
        json.push_str(&format!(
            "    {{\"layer\": {}, \"patch_rows\": {}, \"kernels\": {}, \"k\": {}, \
             \"before_ms\": {:.3}, \"after_ms\": {:.3}, \"speedup\": {:.3}}}{comma}\n",
            b.layer_idx,
            b.rows,
            b.m,
            b.k,
            b.seconds * 1e3,
            a.seconds * 1e3,
            b.seconds / a.seconds.max(1e-12),
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_hotpath.json");
    println!("wrote {out_path}");
}
