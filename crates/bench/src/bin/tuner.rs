//! The variable-hash-length auto-tuner benchmark: tuned per-layer plans
//! vs the `uniform_max` (all-1024) baseline on accuracy, modeled CAM
//! search energy, and measured evaluation wall-clock, recorded in
//! `BENCH_tuner.json`.
//!
//! Usage: `cargo run --release -p deepcam-bench --bin tuner
//! [--out PATH] [--repeats R] [--force]`
//!
//! For each workload a scaled model is trained on its synthetic set,
//! then `deepcam_core::tune::tune` searches the smallest per-layer plan
//! showing no accuracy loss on a tuning split (a zero-margin proxy for
//! the 1% budget the run enforces); the recorded accuracies come from
//! the **held-out** split the search never saw.
//! Energy is the analytic scheduler run on the *same* `LayerIr` the
//! engine compiled (the trained topology, not a lookalike spec), and
//! wall-clock is the median full-set evaluation time of the compiled
//! engines. The run asserts the paper's headline ordering — tuned plans
//! must beat `uniform_max` on CAM search energy within the accuracy
//! budget — before writing anything.

use std::time::Instant;

use deepcam_bench::guard::{self, median_millis};
use deepcam_core::sched::CamScheduler;
use deepcam_core::tune::{holdout_within, tune, TunerConfig};
use deepcam_core::{Dataflow, DeepCamEngine, EngineConfig, HashPlan, LayerIr};
use deepcam_data::synth::{generate, SynthConfig};
use deepcam_models::scaled::{scaled_lenet5, scaled_vgg11};
use deepcam_models::train::{train, TrainConfig};
use deepcam_models::Cnn;
use deepcam_tensor::rng::seeded_rng;
use deepcam_tensor::{Parallelism, Shape, Tensor};

struct WorkloadResult {
    workload: String,
    dot_layers: usize,
    plan: Vec<usize>,
    mean_hash_len: f64,
    evaluations: usize,
    acc_max: f32,
    acc_tuned: f32,
    search_energy_max: f64,
    search_energy_tuned: f64,
    total_energy_max: f64,
    total_energy_tuned: f64,
    wall_ms_max: f64,
    wall_ms_tuned: f64,
    holdout_within_budget: bool,
}

fn subset(images: &Tensor, labels: &[usize], count: usize) -> (Tensor, Vec<usize>) {
    let n = labels.len().min(count);
    let sample: usize = images.shape().dims()[1..].iter().product();
    let mut dims = vec![n];
    dims.extend_from_slice(&images.shape().dims()[1..]);
    (
        Tensor::from_vec(images.data()[..n * sample].to_vec(), Shape::new(&dims))
            .expect("subset volume consistent"),
        labels[..n].to_vec(),
    )
}

/// Experiment scale knobs (CLI-overridable).
struct Scale {
    train_per_class: usize,
    test_per_class: usize,
    epochs: usize,
}

#[allow(clippy::too_many_arguments)]
fn run_workload(
    name: &str,
    mut model: Cnn,
    data_cfg: &SynthConfig,
    use_calibration: bool,
    max_drop: f32,
    repeats: usize,
    epochs: usize,
) -> WorkloadResult {
    println!("-- {name} --");
    let (train_set, test_set) = generate(data_cfg);
    let tc = TrainConfig {
        epochs,
        batch_size: 32,
        lr: 0.03,
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 7,
    };
    train(&mut model, train_set.images(), train_set.labels(), &tc).expect("training succeeds");
    let bl_acc =
        deepcam_models::train::evaluate(&mut model, test_set.images(), test_set.labels(), 32)
            .expect("baseline evaluation succeeds");
    println!("float baseline (BL) test accuracy: {bl_acc:.3}");
    let (calib_x, _) = subset(train_set.images(), train_set.labels(), 32);
    let calibration = use_calibration.then_some(&calib_x);

    // Single-thread engines keep the wall-clock numbers comparable and
    // the whole run deterministic.
    let base = EngineConfig {
        parallelism: Parallelism::Serial,
        ..EngineConfig::default()
    };
    // Search with a zero-drop acceptance rule: a layer is only narrowed
    // when the tuning split shows *no measurable accuracy loss at all*.
    // The tuner accepts candidates by their tuning-split accuracy while
    // the JSON records the held-out split, which sits a sampling error
    // (~±1% at these split sizes) away — the zero margin absorbs it, so
    // the recorded holdout drop stays inside the reported budget.
    let tuner_cfg = TunerConfig {
        max_drop: 0.0,
        batch_size: 16,
        ..TunerConfig::default()
    };
    let report = tune(
        &model,
        test_set.images(),
        test_set.labels(),
        &base,
        calibration,
        &tuner_cfg,
    )
    .expect("tuner succeeds");
    // The binding always carries one width per layer, whatever shape
    // the plan enum took.
    let plan = report.binding.ks().to_vec();
    println!(
        "tuned plan {plan:?} (mean k {:.0}) in {} evaluations",
        report.mean_hash_len, report.evaluations
    );
    println!(
        "holdout accuracy: uniform_max {:.3}, tuned {:.3}",
        report.holdout_reference, report.holdout_tuned
    );
    // The search only constrains the *tuning* split; check the held-out
    // drop against the run's budget with the tuner's own acceptance rule
    // and say so out loud when it ships a violation.
    let holdout_within_budget =
        holdout_within(max_drop, report.holdout_reference, report.holdout_tuned);
    if !holdout_within_budget {
        println!(
            "WARNING: {name}: held-out accuracy drop {:.4} exceeds the {max_drop} budget \
             (the plan was accepted on the tuning split only)",
            report.holdout_reference - report.holdout_tuned
        );
    }

    // Modeled accelerator cost on the *trained model's own* lowered IR —
    // the same LayerIr the engine compiled (64-row AS, the Table II
    // configuration).
    let ir = LayerIr::from_cnn(&model).expect("scaled models declare their input");
    let sched = CamScheduler::new(64, Dataflow::ActivationStationary).expect("64 rows supported");
    let max_plan = HashPlan::uniform_max();
    let perf_max = sched
        .run_ir(
            &ir,
            &max_plan.bind(&ir).expect("plan fits"),
            max_plan.label(),
        )
        .expect("sched runs");
    let perf_tuned = sched
        .run_ir(&ir, &report.binding, report.plan.label())
        .expect("sched runs");
    println!(
        "CAM search energy: uniform_max {:.3e} J, tuned {:.3e} J ({:.1}% saved)",
        perf_max.energy.cam_search,
        perf_tuned.energy.cam_search,
        100.0 * (1.0 - perf_tuned.energy.cam_search / perf_max.energy.cam_search)
    );

    // Measured wall-clock of full-set evaluation through each compiled
    // engine (medians over `repeats`).
    let compile_eval = |plan: &HashPlan| -> (f32, f64) {
        let mut engine = DeepCamEngine::compile(
            &model,
            EngineConfig {
                plan: plan.clone(),
                ..base.clone()
            },
        )
        .expect("engine compiles");
        if let Some(calib) = calibration {
            engine.calibrate_bn(calib).expect("calibration succeeds");
        }
        let acc = engine
            .evaluate(test_set.images(), test_set.labels(), 16)
            .expect("evaluation succeeds");
        let runs: Vec<f64> = (0..repeats)
            .map(|_| {
                let start = Instant::now();
                let a = engine
                    .evaluate(test_set.images(), test_set.labels(), 16)
                    .expect("evaluation succeeds");
                std::hint::black_box(a);
                start.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        (acc, median_millis(runs))
    };
    let (_, wall_max) = compile_eval(&max_plan);
    let (_, wall_tuned) = compile_eval(&report.plan);
    println!(
        "full-set eval: uniform_max {wall_max:.1} ms, tuned {wall_tuned:.1} ms ({:.2}x)",
        wall_max / wall_tuned
    );

    // The acceptance gate: the tuned plan must beat uniform_max on
    // modeled CAM search energy while staying within the accuracy budget
    // on the held-out split.
    assert!(
        perf_tuned.energy.cam_search < perf_max.energy.cam_search,
        "{name}: tuned plan does not save CAM search energy"
    );
    assert!(
        holdout_within_budget,
        "{name}: holdout accuracy drop exceeds {max_drop}"
    );

    WorkloadResult {
        workload: name.to_string(),
        dot_layers: ir.len(),
        plan,
        mean_hash_len: report.mean_hash_len,
        evaluations: report.evaluations,
        acc_max: report.holdout_reference,
        acc_tuned: report.holdout_tuned,
        search_energy_max: perf_max.energy.cam_search,
        search_energy_tuned: perf_tuned.energy.cam_search,
        total_energy_max: perf_max.total_energy_j,
        total_energy_tuned: perf_tuned.total_energy_j,
        wall_ms_max: wall_max,
        wall_ms_tuned: wall_tuned,
        holdout_within_budget,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == name)
            .and_then(|p| args.get(p + 1))
            .and_then(|v| v.parse().ok())
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|p| args.get(p + 1).cloned())
        .unwrap_or_else(|| "BENCH_tuner.json".to_string());
    let repeats = arg("--repeats").unwrap_or(3).max(1);
    let force = args.iter().any(|a| a == "--force");
    let max_drop = 0.01f32;
    // Scale defaults: enough training that the models are genuinely
    // learned (tune-split accuracy then predicts holdout accuracy), and
    // enough held-out images that a 1% accuracy budget is resolvable
    // (500 holdout images → 0.2% granularity).
    let scale = Scale {
        train_per_class: arg("--train-per-class").unwrap_or(64),
        test_per_class: arg("--test-per-class").unwrap_or(100),
        epochs: arg("--epochs").unwrap_or(3),
    };

    let host_cores = guard::host_cores();
    if !guard::check_overwrite(&out_path, host_cores, force).proceed() {
        return; // verdict printed; keeping the bigger-host JSON is success
    }
    println!("== Variable-hash-length auto-tuner: tuned vs uniform_max ==");
    println!(
        "host cores: {host_cores}, repeats: {repeats}, max accuracy drop: {max_drop}, \
         train/test per class: {}/{}, epochs: {}",
        scale.train_per_class, scale.test_per_class, scale.epochs
    );

    let mut results = Vec::new();
    {
        let mut rng = seeded_rng(100);
        let data = SynthConfig::digits().with_samples(scale.train_per_class, scale.test_per_class);
        results.push(run_workload(
            "LeNet5 / SynthDigits",
            scaled_lenet5(&mut rng, 10),
            &data,
            false, // no batch norm in LeNet5
            max_drop,
            repeats,
            scale.epochs,
        ));
    }
    {
        let mut rng = seeded_rng(101);
        let data =
            SynthConfig::objects10().with_samples(scale.train_per_class, scale.test_per_class);
        results.push(run_workload(
            "VGG11 / SynthObjects10",
            scaled_vgg11(&mut rng, 8, 10),
            &data,
            true, // BN-calibrate every candidate
            max_drop,
            repeats,
            scale.epochs,
        ));
    }

    // Hand-rolled JSON (schema documented in ROADMAP.md); the vendored
    // serde's binary codec serves artifacts, not reports.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"experiment\": \"auto-tuned variable hash lengths vs uniform_max: held-out \
         accuracy, modeled CAM search energy (64-row AS scheduler on the trained model's \
         LayerIr), full-set evaluation wall-clock\",\n",
    );
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"repeats\": {repeats},\n"));
    json.push_str(&format!("  \"max_drop\": {max_drop},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let plan: Vec<String> = r.plan.iter().map(|k| k.to_string()).collect();
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"dot_layers\": {}, \"plan\": [{}], \
             \"mean_hash_len\": {:.1}, \"evaluations\": {}, \
             \"accuracy\": {{\"uniform_max\": {:.4}, \"tuned\": {:.4}, \"drop\": {:.4}, \
             \"holdout_within_budget\": {}}}, \
             \"cam_search_energy_j\": {{\"uniform_max\": {:.6e}, \"tuned\": {:.6e}, \
             \"saving_pct\": {:.1}}}, \
             \"total_energy_j\": {{\"uniform_max\": {:.6e}, \"tuned\": {:.6e}}}, \
             \"eval_wall_ms\": {{\"uniform_max\": {:.2}, \"tuned\": {:.2}, \
             \"speedup\": {:.3}}}}}{comma}\n",
            r.workload,
            r.dot_layers,
            plan.join(", "),
            r.mean_hash_len,
            r.evaluations,
            r.acc_max,
            r.acc_tuned,
            r.acc_max - r.acc_tuned,
            r.holdout_within_budget,
            r.search_energy_max,
            r.search_energy_tuned,
            100.0 * (1.0 - r.search_energy_tuned / r.search_energy_max),
            r.total_energy_max,
            r.total_energy_tuned,
            r.wall_ms_max,
            r.wall_ms_tuned,
            r.wall_ms_max / r.wall_ms_tuned,
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_tuner.json");
    println!("wrote {out_path}");
}
