//! The compiler pass-pipeline benchmark: joint mapping+width search vs
//! the fixed 64-row chip, and fused vs unfused step programs, recorded
//! in `BENCH_compiler.json`.
//!
//! Usage: `cargo run --release -p deepcam-bench --bin compiler
//! [--out PATH] [--repeats R] [--force] [--smoke]`
//!
//! For each workload a scaled model is trained on its synthetic set,
//! then [`deepcam_core::tune::tune_joint`] co-optimizes per-layer hash
//! lengths (accuracy-constrained, on a tuning split) and the CAM array
//! mapping (rows × dataflow per layer on a multi-array chip, scored by
//! the `deepcam-cam` cost model). Three configurations are costed on the
//! trained model's own `LayerIr`:
//!
//! * `uniform_max` widths on the fixed 64-row AS chip (the historical
//!   baseline),
//! * tuned widths on the fixed chip (width-only tuning), and
//! * tuned widths under the searched mapping (the joint optimum).
//!
//! Separately, the fusion pass's wall-clock effect is measured as the
//! median full-set evaluation time of the unfused vs fused engine.
//! **Every reported config is gated bit-identical first**: the fused and
//! fully-passed models must produce bitwise-equal logits to the no-pass
//! pipeline on the entire test set before any timing is taken, and the
//! run asserts the joint search strictly beats width-only tuning on
//! modeled CAM search energy before writing anything.
//!
//! `--smoke` shrinks everything (tiny data, one epoch, temp output) so
//! CI exercises the full search path on every push; wall-clock ordering
//! is reported but not asserted there (sub-millisecond noise).

use std::time::Instant;

use deepcam_bench::guard::{self, median_millis};
use deepcam_core::passes::{self, Pass};
use deepcam_core::sched::CamScheduler;
use deepcam_core::tune::{tune_joint, JointTuneReport, JointTunerConfig, TunerConfig};
use deepcam_core::{
    CompiledModel, Dataflow, DeepCamEngine, EngineConfig, HashPlan, LayerIr, PerfReport,
};
use deepcam_data::synth::{generate, SynthConfig};
use deepcam_models::scaled::{scaled_lenet5, scaled_vgg11};
use deepcam_models::train::{train, TrainConfig};
use deepcam_models::Cnn;
use deepcam_tensor::rng::seeded_rng;
use deepcam_tensor::{Parallelism, Shape, Tensor};

struct WorkloadResult {
    workload: String,
    dot_layers: usize,
    plan: Vec<usize>,
    arrays: usize,
    mapping_rows: Vec<usize>,
    mapping_dataflows: Vec<&'static str>,
    cam_search_max_fixed: f64,
    cam_search_tuned_fixed: f64,
    cam_search_tuned_mapped: f64,
    cycles_max_fixed: u64,
    cycles_tuned_fixed: u64,
    cycles_tuned_mapped: u64,
    wall_ms_unfused: f64,
    wall_ms_fused: f64,
}

fn subset(images: &Tensor, labels: &[usize], count: usize) -> (Tensor, Vec<usize>) {
    let n = labels.len().min(count);
    let sample: usize = images.shape().dims()[1..].iter().product();
    let mut dims = vec![n];
    dims.extend_from_slice(&images.shape().dims()[1..]);
    (
        Tensor::from_vec(images.data()[..n * sample].to_vec(), Shape::new(&dims))
            .expect("subset volume consistent"),
        labels[..n].to_vec(),
    )
}

/// Full-set logits in evaluation-sized chunks (bounds im2col memory the
/// same way `evaluate` does).
fn logits_chunked(engine: &DeepCamEngine, images: &Tensor, batch: usize) -> Vec<f32> {
    let n = images.shape().dim(0);
    let sample: usize = images.shape().dims()[1..].iter().product();
    let mut out = Vec::new();
    let mut start = 0usize;
    while start < n {
        let end = (start + batch).min(n);
        let mut dims = vec![end - start];
        dims.extend_from_slice(&images.shape().dims()[1..]);
        let chunk = Tensor::from_vec(
            images.data()[start * sample..end * sample].to_vec(),
            Shape::new(&dims),
        )
        .expect("chunk volume consistent");
        out.extend_from_slice(engine.infer(&chunk).expect("inference succeeds").data());
        start = end;
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn run_workload(
    name: &str,
    mut model: Cnn,
    data_cfg: &SynthConfig,
    use_calibration: bool,
    repeats: usize,
    epochs: usize,
) -> WorkloadResult {
    println!("-- {name} --");
    let (train_set, test_set) = generate(data_cfg);
    let tc = TrainConfig {
        epochs,
        batch_size: 32,
        lr: 0.03,
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 7,
    };
    train(&mut model, train_set.images(), train_set.labels(), &tc).expect("training succeeds");
    let (calib_x, _) = subset(train_set.images(), train_set.labels(), 32);
    let calibration = use_calibration.then_some(&calib_x);

    // Single-thread engines keep the wall-clock numbers comparable and
    // the whole run deterministic.
    let base = EngineConfig {
        parallelism: Parallelism::Serial,
        ..EngineConfig::default()
    };
    let joint: JointTuneReport = tune_joint(
        &model,
        test_set.images(),
        test_set.labels(),
        &base,
        calibration,
        &JointTunerConfig {
            tuner: TunerConfig {
                max_drop: 0.0,
                batch_size: 16,
                ..TunerConfig::default()
            },
            ..JointTunerConfig::default()
        },
    )
    .expect("joint tuning succeeds");
    let plan = joint.tune.binding.ks().to_vec();
    println!(
        "tuned plan {plan:?} (mean k {:.0}) in {} evaluations",
        joint.tune.mean_hash_len, joint.tune.evaluations
    );
    let rows: Vec<usize> = joint.mapping.per_layer.iter().map(|lm| lm.rows).collect();
    let dataflows: Vec<&'static str> = joint
        .mapping
        .per_layer
        .iter()
        .map(|lm| lm.dataflow.label())
        .collect();
    println!(
        "searched mapping: arrays={}, rows {rows:?}, dataflows {dataflows:?}",
        joint.mapping.arrays
    );

    // The uniform_max baseline on the fixed chip — the one extra costed
    // configuration the joint report doesn't already carry.
    let ir = LayerIr::from_cnn(&model).expect("scaled models declare their input");
    let sched = CamScheduler::new(64, Dataflow::ActivationStationary).expect("64 rows supported");
    let max_plan = HashPlan::uniform_max();
    let perf_max: PerfReport = sched
        .run_ir(
            &ir,
            &max_plan.bind(&ir).expect("plan fits"),
            max_plan.label(),
        )
        .expect("sched runs");
    println!(
        "modeled CAM search energy: uniform_max/fixed64 {:.3e} J, tuned/fixed64 {:.3e} J, \
         tuned/mapped {:.3e} J ({:.1}% below width-only tuning)",
        perf_max.energy.cam_search,
        joint.fixed.energy.cam_search,
        joint.mapped.energy.cam_search,
        100.0 * (1.0 - joint.mapped.energy.cam_search / joint.fixed.energy.cam_search)
    );

    // The headline claim this benchmark exists to check: co-optimizing
    // mapping and widths strictly dominates width-only tuning on modeled
    // CAM search energy.
    assert!(
        joint.mapped.energy.cam_search < joint.fixed.energy.cam_search,
        "{name}: joint search does not beat the fixed 64-row mapping"
    );

    // Fusion: build the unfused and fused step programs from the *same*
    // compiled artifact, calibrate identically, then gate bit-exactness
    // on the full test set BEFORE timing anything.
    let tuned_cfg = EngineConfig {
        plan: joint.tune.plan.clone(),
        ..base.clone()
    };
    let compiled = CompiledModel::compile(&model, tuned_cfg).expect("compiles");
    let mut fused = compiled.clone();
    let fuse_outcome = &passes::apply(&mut fused, &[Pass::FuseSteps]).expect("fusion applies")[0];
    println!("fusion: {}", fuse_outcome.detail);
    let mut passed = compiled.clone();
    passes::apply(&mut passed, &passes::default_passes()).expect("passes apply");
    let mut engines = [
        DeepCamEngine::from_compiled(compiled).expect("unfused runtime"),
        DeepCamEngine::from_compiled(fused).expect("fused runtime"),
        DeepCamEngine::from_compiled(passed).expect("passed runtime"),
    ];
    if let Some(calib) = calibration {
        for engine in &mut engines {
            engine.calibrate_bn(calib).expect("calibration succeeds");
        }
    }
    let reference = logits_chunked(&engines[0], test_set.images(), 16);
    for (engine, label) in engines[1..].iter().zip(["fused", "fused+mapped"]) {
        let got = logits_chunked(engine, test_set.images(), 16);
        assert_eq!(
            reference, got,
            "{name}: {label} logits differ from the no-pass pipeline"
        );
    }
    println!("bit-exactness gate passed: fused and passed logits identical on the full test set");

    let time_eval = |engine: &DeepCamEngine| -> f64 {
        let warm = engine
            .evaluate(test_set.images(), test_set.labels(), 16)
            .expect("evaluation succeeds");
        std::hint::black_box(warm);
        let runs: Vec<f64> = (0..repeats)
            .map(|_| {
                let start = Instant::now();
                let acc = engine
                    .evaluate(test_set.images(), test_set.labels(), 16)
                    .expect("evaluation succeeds");
                std::hint::black_box(acc);
                start.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        median_millis(runs)
    };
    let wall_unfused = time_eval(&engines[0]);
    let wall_fused = time_eval(&engines[1]);
    println!(
        "full-set eval: unfused {wall_unfused:.1} ms, fused {wall_fused:.1} ms ({:.3}x)",
        wall_unfused / wall_fused
    );

    WorkloadResult {
        workload: name.to_string(),
        dot_layers: ir.len(),
        plan,
        arrays: joint.mapping.arrays,
        mapping_rows: rows,
        mapping_dataflows: dataflows,
        cam_search_max_fixed: perf_max.energy.cam_search,
        cam_search_tuned_fixed: joint.fixed.energy.cam_search,
        cam_search_tuned_mapped: joint.mapped.energy.cam_search,
        cycles_max_fixed: perf_max.total_cycles,
        cycles_tuned_fixed: joint.fixed.total_cycles,
        cycles_tuned_mapped: joint.mapped.total_cycles,
        wall_ms_unfused: wall_unfused,
        wall_ms_fused: wall_fused,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == name)
            .and_then(|p| args.get(p + 1))
            .and_then(|v| v.parse().ok())
    };
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|p| args.get(p + 1).cloned())
        .unwrap_or_else(|| {
            if smoke {
                // Smoke runs exercise the search path, not the record.
                std::env::temp_dir()
                    .join("BENCH_compiler_smoke.json")
                    .to_string_lossy()
                    .into_owned()
            } else {
                "BENCH_compiler.json".to_string()
            }
        });
    let repeats = arg("--repeats").unwrap_or(if smoke { 1 } else { 5 }).max(1);
    let force = args.iter().any(|a| a == "--force");
    let (train_pc, test_pc, epochs) = if smoke {
        (8, 8, 1)
    } else {
        (
            arg("--train-per-class").unwrap_or(64),
            arg("--test-per-class").unwrap_or(100),
            arg("--epochs").unwrap_or(3),
        )
    };

    let host_cores = guard::host_cores();
    if !smoke && !guard::check_overwrite(&out_path, host_cores, force).proceed() {
        return; // verdict printed; keeping the bigger-host JSON is success
    }
    println!("== Compiler pass pipeline: joint mapping+width search vs fixed 64-row chip ==");
    println!(
        "host cores: {host_cores}, repeats: {repeats}, train/test per class: \
         {train_pc}/{test_pc}, epochs: {epochs}, smoke: {smoke}"
    );

    let mut results = Vec::new();
    {
        let mut rng = seeded_rng(100);
        let data = SynthConfig::digits().with_samples(train_pc, test_pc);
        results.push(run_workload(
            "LeNet5 / SynthDigits",
            scaled_lenet5(&mut rng, 10),
            &data,
            false, // no batch norm in LeNet5
            repeats,
            epochs,
        ));
    }
    {
        let mut rng = seeded_rng(101);
        let data = SynthConfig::objects10().with_samples(train_pc, test_pc);
        results.push(run_workload(
            "VGG11 / SynthObjects10",
            scaled_vgg11(&mut rng, 8, 10),
            &data,
            true, // BN-calibrate every engine identically
            repeats,
            epochs,
        ));
    }

    // Fusion's acceptance gate: at least one workload must show a
    // measured wall-clock win (full runs only — smoke timings are
    // sub-millisecond noise).
    let fusion_wins = results
        .iter()
        .filter(|r| r.wall_ms_fused < r.wall_ms_unfused)
        .count();
    if smoke {
        println!("smoke mode: fusion wall-clock ordering not asserted ({fusion_wins}/2 faster)");
    } else {
        assert!(
            fusion_wins >= 1,
            "fusion pass shows no eval wall-clock improvement on any workload"
        );
    }

    // Hand-rolled JSON (schema documented in ROADMAP.md); the vendored
    // serde's binary codec serves artifacts, not reports.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"experiment\": \"compiler pass pipeline: joint array-mapping + hash-width search \
         vs the fixed 64-row AS chip on modeled CAM search energy/cycles, and fused vs \
         unfused step programs on full-set evaluation wall-clock (all configs gated \
         bit-identical to the no-pass pipeline first)\",\n",
    );
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"repeats\": {repeats},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let plan: Vec<String> = r.plan.iter().map(|k| k.to_string()).collect();
        let rows: Vec<String> = r.mapping_rows.iter().map(|v| v.to_string()).collect();
        let dfs: Vec<String> = r
            .mapping_dataflows
            .iter()
            .map(|d| format!("\"{d}\""))
            .collect();
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"dot_layers\": {}, \"plan\": [{}], \
             \"mapping\": {{\"arrays\": {}, \"rows\": [{}], \"dataflows\": [{}]}}, \
             \"cam_search_energy_j\": {{\"uniform_max_fixed64\": {:.6e}, \
             \"tuned_fixed64\": {:.6e}, \"tuned_mapped\": {:.6e}, \
             \"joint_vs_width_only_saving_pct\": {:.1}}}, \
             \"total_cycles\": {{\"uniform_max_fixed64\": {}, \"tuned_fixed64\": {}, \
             \"tuned_mapped\": {}}}, \
             \"eval_wall_ms\": {{\"unfused\": {:.2}, \"fused\": {:.2}, \
             \"speedup\": {:.3}}}, \"bit_identical\": true}}{comma}\n",
            r.workload,
            r.dot_layers,
            plan.join(", "),
            r.arrays,
            rows.join(", "),
            dfs.join(", "),
            r.cam_search_max_fixed,
            r.cam_search_tuned_fixed,
            r.cam_search_tuned_mapped,
            100.0 * (1.0 - r.cam_search_tuned_mapped / r.cam_search_tuned_fixed),
            r.cycles_max_fixed,
            r.cycles_tuned_fixed,
            r.cycles_tuned_mapped,
            r.wall_ms_unfused,
            r.wall_ms_fused,
            r.wall_ms_unfused / r.wall_ms_fused,
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_compiler.json");
    println!("wrote {out_path}");
}
