//! Measures the serving runtime's dynamic micro-batcher: closed-loop
//! clients hammer one model's `deepcam_serve::Session` and we sweep the
//! batcher's `max_batch`, recording requests/sec, batch occupancy and
//! latency percentiles into `BENCH_serve.json`.
//!
//! Usage: `cargo run --release -p deepcam-bench --bin serve_throughput
//! [--out PATH] [--clients N] [--requests N] [--repeats R] [--force]`
//!
//! The `max_batch = 1` row is the "before": one engine call per request,
//! exactly what a naive server wrapping `infer` would do. Larger
//! `max_batch` rows coalesce concurrent requests into
//! `DeepCamEngine::infer_each` calls — amortizing per-call pipeline
//! walks and turning per-image 1-row GEMMs into batched ones — which is
//! where serving throughput comes from even on one core. Results are
//! bit-identical either way (the differential suite pins it), so the
//! comparison times identical computations.
//!
//! Refuses to overwrite a committed JSON recorded on a bigger host
//! unless `--force` is passed (same guard as the other speedup bins).

use std::sync::Arc;
use std::time::{Duration, Instant};

use deepcam_bench::guard;
use deepcam_core::{DeepCamEngine, EngineConfig, HashPlan};
use deepcam_models::scaled::scaled_lenet5;
use deepcam_serve::{ModelRegistry, Runtime, SessionConfig};
use deepcam_tensor::rng::seeded_rng;
use deepcam_tensor::{init, Shape};

struct Row {
    max_batch: usize,
    reqs_per_sec: f64,
    mean_occupancy: f64,
    max_occupancy: usize,
    p50_ms: f64,
    p99_ms: f64,
}

/// One closed-loop run: `clients` threads each issue `requests`
/// blocking inferences through a fresh session; returns the stats row.
fn run_config(
    engine: &Arc<DeepCamEngine>,
    max_batch: usize,
    clients: usize,
    requests: usize,
    images: &[Vec<f32>],
) -> Row {
    let registry = Arc::new(ModelRegistry::new());
    registry.register(
        "bench",
        DeepCamEngine::from_compiled(engine.compiled().clone()).unwrap(),
    );
    let runtime = Arc::new(Runtime::new(
        registry,
        SessionConfig {
            max_batch,
            max_wait: Duration::from_micros(500),
            queue_capacity: clients * 4,
        },
    ));
    // Warm the session (loads nothing, but spawns the dispatcher and
    // pays one-time costs outside the timed window), then snapshot the
    // counters so the warmup batch is excluded from the reported row.
    runtime
        .infer("bench", &[1, 28, 28], &images[0])
        .expect("warmup inference");
    let warm = runtime.stats("bench").expect("warmup stats");

    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let runtime = Arc::clone(&runtime);
            scope.spawn(move || {
                for r in 0..requests {
                    let img = &images[(c * requests + r) % images.len()];
                    runtime
                        .infer("bench", &[1, 28, 28], img)
                        .expect("closed-loop inference");
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let stats = runtime.stats("bench").expect("stats");
    // Occupancy over the timed window only: subtract the warmup batch
    // (mean_occupancy is occupancy_sum / batches, so the sums recover
    // exactly). The latency percentiles keep the single warmup sample —
    // one of hundreds, below the p99 rank by construction.
    let timed_batches = stats.batches - warm.batches;
    let timed_occupancy_sum =
        stats.mean_occupancy * stats.batches as f64 - warm.mean_occupancy * warm.batches as f64;
    Row {
        max_batch,
        reqs_per_sec: (clients * requests) as f64 / elapsed,
        mean_occupancy: if timed_batches == 0 {
            0.0
        } else {
            timed_occupancy_sum / timed_batches as f64
        },
        max_occupancy: stats.max_occupancy,
        p50_ms: stats.p50_latency_ms,
        p99_ms: stats.p99_latency_ms,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == name)
            .and_then(|p| args.get(p + 1))
            .and_then(|v| v.parse().ok())
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|p| args.get(p + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let clients = arg("--clients").unwrap_or(8).max(1);
    let requests = arg("--requests").unwrap_or(40).max(1);
    let repeats = arg("--repeats").unwrap_or(3).max(1);
    let force = args.iter().any(|a| a == "--force");
    let batch_sweep = [1usize, 4, 8, 16];

    let host_cores = guard::host_cores();
    if !guard::check_overwrite(&out_path, host_cores, force).proceed() {
        return; // verdict printed; keeping the bigger-host JSON is success
    }
    println!("== Serving runtime: micro-batching vs one-request-per-infer ==");
    println!("host cores: {host_cores}, clients: {clients}, requests/client: {requests}, repeats: {repeats}");

    let mut rng = seeded_rng(0);
    let model = scaled_lenet5(&mut rng, 10);
    let engine = Arc::new(
        DeepCamEngine::compile(
            &model,
            EngineConfig {
                plan: HashPlan::Uniform(256),
                ..EngineConfig::default()
            },
        )
        .expect("engine compiles"),
    );
    let mut data_rng = seeded_rng(1);
    let images: Vec<Vec<f32>> = (0..64)
        .map(|_| {
            init::normal(&mut data_rng, Shape::new(&[1, 1, 28, 28]), 0.0, 1.0)
                .data()
                .to_vec()
        })
        .collect();

    // Best-of-repeats per config (closed-loop throughput is
    // noise-prone on a shared host; the max is the honest capability).
    let rows: Vec<Row> = batch_sweep
        .iter()
        .map(|&max_batch| {
            let mut best: Option<Row> = None;
            for _ in 0..repeats {
                let row = run_config(&engine, max_batch, clients, requests, &images);
                if best.as_ref().is_none_or(|b| row.reqs_per_sec > b.reqs_per_sec) {
                    best = Some(row);
                }
            }
            let row = best.expect("at least one repeat");
            println!(
                "max_batch {:>3}: {:>8.1} req/s, occupancy mean {:.2} max {}, p50 {:.2} ms, p99 {:.2} ms",
                row.max_batch, row.reqs_per_sec, row.mean_occupancy, row.max_occupancy, row.p50_ms,
                row.p99_ms
            );
            row
        })
        .collect();

    let unbatched = rows[0].reqs_per_sec;
    for row in &rows[1..] {
        println!(
            "max_batch {} vs 1: {:.2}x throughput",
            row.max_batch,
            row.reqs_per_sec / unbatched
        );
    }

    // Hand-rolled JSON, like the other speedup bins (the vendored serde
    // has no serializer).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"experiment\": \"closed-loop serving throughput, scaled LeNet5, k=256, dynamic micro-batching\",\n",
    );
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str(&format!("  \"requests_per_client\": {requests},\n"));
    json.push_str(&format!("  \"repeats\": {repeats},\n"));
    json.push_str("  \"max_wait_us\": 500,\n");
    json.push_str("  \"bit_identical_to_serial\": true,\n");
    json.push_str("  \"configs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"max_batch\": {}, \"reqs_per_sec\": {:.2}, \"mean_occupancy\": {:.3}, \
             \"max_occupancy\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"speedup_vs_unbatched\": {:.3}}}{comma}\n",
            row.max_batch,
            row.reqs_per_sec,
            row.mean_occupancy,
            row.max_occupancy,
            row.p50_ms,
            row.p99_ms,
            row.reqs_per_sec / unbatched
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!("wrote {out_path}");
}
