//! Measures the serving runtime's dynamic micro-batcher: closed-loop
//! clients hammer one model's `deepcam_serve::Session` and we sweep the
//! batcher's `max_batch`, recording requests/sec, batch occupancy and
//! latency percentiles into `BENCH_serve.json`.
//!
//! Usage: `cargo run --release -p deepcam-bench --bin serve_throughput
//! [--out PATH] [--clients N] [--requests N] [--repeats R] [--force]`
//!
//! The `max_batch = 1` row is the "before": one engine call per request,
//! exactly what a naive server wrapping `infer` would do. Larger
//! `max_batch` rows coalesce concurrent requests into
//! `DeepCamEngine::infer_each` calls — amortizing per-call pipeline
//! walks and turning per-image 1-row GEMMs into batched ones — which is
//! where serving throughput comes from even on one core. Results are
//! bit-identical either way (the differential suite pins it), so the
//! comparison times identical computations.
//!
//! Refuses to overwrite a committed JSON recorded on a bigger host
//! unless `--force` is passed (same guard as the other speedup bins).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use deepcam_bench::guard;
use deepcam_core::{DeepCamEngine, EngineConfig, HashPlan};
use deepcam_models::scaled::scaled_lenet5;
use deepcam_serve::protocol::Response;
use deepcam_serve::{
    CoreSelect, ModelRegistry, MuxClient, Runtime, Server, ServerConfig, SessionConfig,
};
use deepcam_tensor::rng::seeded_rng;
use deepcam_tensor::{init, Shape};

struct Row {
    max_batch: usize,
    reqs_per_sec: f64,
    mean_occupancy: f64,
    max_occupancy: usize,
    p50_ms: f64,
    p99_ms: f64,
}

/// One closed-loop run: `clients` threads each issue `requests`
/// blocking inferences through a fresh session; returns the stats row.
fn run_config(
    engine: &Arc<DeepCamEngine>,
    max_batch: usize,
    clients: usize,
    requests: usize,
    images: &[Vec<f32>],
) -> Row {
    let registry = Arc::new(ModelRegistry::new());
    registry.register(
        "bench",
        DeepCamEngine::from_compiled(engine.compiled().clone()).unwrap(),
    );
    let runtime = Arc::new(Runtime::new(
        registry,
        SessionConfig {
            max_batch,
            max_wait: Duration::from_micros(500),
            queue_capacity: clients * 4,
        },
    ));
    // Warm the session (loads nothing, but spawns the dispatcher and
    // pays one-time costs outside the timed window), then snapshot the
    // counters so the warmup batch is excluded from the reported row.
    runtime
        .infer("bench", &[1, 28, 28], &images[0])
        .expect("warmup inference");
    let warm = runtime.stats("bench").expect("warmup stats");

    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let runtime = Arc::clone(&runtime);
            scope.spawn(move || {
                for r in 0..requests {
                    let img = &images[(c * requests + r) % images.len()];
                    runtime
                        .infer("bench", &[1, 28, 28], img)
                        .expect("closed-loop inference");
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let stats = runtime.stats("bench").expect("stats");
    // Occupancy over the timed window only: subtract the warmup batch
    // (mean_occupancy is occupancy_sum / batches, so the sums recover
    // exactly). The latency percentiles keep the single warmup sample —
    // one of hundreds, below the p99 rank by construction.
    let timed_batches = stats.batches - warm.batches;
    let timed_occupancy_sum =
        stats.mean_occupancy * stats.batches as f64 - warm.mean_occupancy * warm.batches as f64;
    Row {
        max_batch,
        reqs_per_sec: (clients * requests) as f64 / elapsed,
        mean_occupancy: if timed_batches == 0 {
            0.0
        } else {
            timed_occupancy_sum / timed_batches as f64
        },
        max_occupancy: stats.max_occupancy,
        p50_ms: stats.p50_latency_ms,
        p99_ms: stats.p99_latency_ms,
    }
}

struct OpenRow {
    core: &'static str,
    conns: usize,
    completed: u64,
    errors: u64,
    reqs_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Exact percentile over the collected per-request latencies (the
/// open-loop sweep keeps every sample, so no histogram coarseness).
fn percentile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One open-loop run over the wire: `conns` protocol-v2 connections,
/// each holding `window` pipelined requests in flight against a live
/// TCP server on the given core — the sweep keeps `conns · window`
/// constant, so climbing the connection count measures fan-in
/// scalability at fixed offered load, not queueing delay. Per-request
/// latency is measured client-side submit→reply; typed error replies
/// (overload backpressure) count separately from completions.
fn run_open_loop(
    engine: &Arc<DeepCamEngine>,
    core: CoreSelect,
    conns: usize,
    window: usize,
    requests: usize,
    images: &[Vec<f32>],
) -> OpenRow {
    let registry = Arc::new(ModelRegistry::new());
    registry.register(
        "bench",
        DeepCamEngine::from_compiled(engine.compiled().clone()).unwrap(),
    );
    let runtime = Arc::new(Runtime::new(
        registry,
        SessionConfig {
            max_batch: 16,
            max_wait: Duration::from_micros(500),
            queue_capacity: 256,
        },
    ));
    let mut server = Server::bind(
        "127.0.0.1:0",
        runtime,
        ServerConfig {
            core,
            max_connections: conns + 8,
            ..ServerConfig::default()
        },
    )
    .expect("bench server binds");
    let core_name = server.core_name();
    let addr = server.local_addr();

    let start = Instant::now();
    let mut latencies: Vec<f64> = Vec::new();
    let mut completed = 0u64;
    let mut errors = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                scope.spawn(move || {
                    let mut mux = MuxClient::connect(addr).expect("open-loop connect");
                    let mut inflight: HashMap<u64, Instant> = HashMap::new();
                    let mut lat = Vec::with_capacity(requests);
                    let mut submitted = 0usize;
                    let mut done = 0u64;
                    let mut errs = 0u64;
                    while submitted < requests || !inflight.is_empty() {
                        while submitted < requests && inflight.len() < window {
                            let img = &images[(c * requests + submitted) % images.len()];
                            let id = mux
                                .submit_infer("bench", &[1, 28, 28], img)
                                .expect("open-loop submit");
                            inflight.insert(id, Instant::now());
                            submitted += 1;
                        }
                        let (id, resp) = mux.recv().expect("open-loop reply");
                        if let Some(sent) = inflight.remove(&id) {
                            match resp {
                                Response::Logits(_) => {
                                    lat.push(sent.elapsed().as_secs_f64() * 1000.0);
                                    done += 1;
                                }
                                _ => errs += 1,
                            }
                        }
                    }
                    (lat, done, errs)
                })
            })
            .collect();
        for handle in handles {
            let (lat, done, errs) = handle.join().expect("open-loop client thread");
            latencies.extend(lat);
            completed += done;
            errors += errs;
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    server.shutdown();
    latencies.sort_by(|a, b| a.total_cmp(b));
    OpenRow {
        core: core_name,
        conns,
        completed,
        errors,
        reqs_per_sec: completed as f64 / elapsed,
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == name)
            .and_then(|p| args.get(p + 1))
            .and_then(|v| v.parse().ok())
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|p| args.get(p + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let clients = arg("--clients").unwrap_or(8).max(1);
    let requests = arg("--requests").unwrap_or(40).max(1);
    let repeats = arg("--repeats").unwrap_or(3).max(1);
    let force = args.iter().any(|a| a == "--force");
    let batch_sweep = [1usize, 4, 8, 16];

    let host_cores = guard::host_cores();
    if !guard::check_overwrite(&out_path, host_cores, force).proceed() {
        return; // verdict printed; keeping the bigger-host JSON is success
    }
    println!("== Serving runtime: micro-batching vs one-request-per-infer ==");
    println!("host cores: {host_cores}, clients: {clients}, requests/client: {requests}, repeats: {repeats}");

    let mut rng = seeded_rng(0);
    let model = scaled_lenet5(&mut rng, 10);
    let engine = Arc::new(
        DeepCamEngine::compile(
            &model,
            EngineConfig {
                plan: HashPlan::Uniform(256),
                ..EngineConfig::default()
            },
        )
        .expect("engine compiles"),
    );
    let mut data_rng = seeded_rng(1);
    let images: Vec<Vec<f32>> = (0..64)
        .map(|_| {
            init::normal(&mut data_rng, Shape::new(&[1, 1, 28, 28]), 0.0, 1.0)
                .data()
                .to_vec()
        })
        .collect();

    // Best-of-repeats per config (closed-loop throughput is
    // noise-prone on a shared host; the max is the honest capability).
    let rows: Vec<Row> = batch_sweep
        .iter()
        .map(|&max_batch| {
            let mut best: Option<Row> = None;
            for _ in 0..repeats {
                let row = run_config(&engine, max_batch, clients, requests, &images);
                if best.as_ref().is_none_or(|b| row.reqs_per_sec > b.reqs_per_sec) {
                    best = Some(row);
                }
            }
            let row = best.expect("at least one repeat");
            println!(
                "max_batch {:>3}: {:>8.1} req/s, occupancy mean {:.2} max {}, p50 {:.2} ms, p99 {:.2} ms",
                row.max_batch, row.reqs_per_sec, row.mean_occupancy, row.max_occupancy, row.p50_ms,
                row.p99_ms
            );
            row
        })
        .collect();

    let unbatched = rows[0].reqs_per_sec;
    for row in &rows[1..] {
        println!(
            "max_batch {} vs 1: {:.2}x throughput",
            row.max_batch,
            row.reqs_per_sec / unbatched
        );
    }

    // Open-loop many-connection sweep over the wire: pipelined
    // protocol-v2 requests against a live TCP server, both connection
    // cores, from a base connection count up to 4× that fan-in at the
    // SAME total in-flight load (window shrinks as connections grow).
    // The interesting comparison is epoll at 4× the connections vs
    // threads at the base count: the readiness core should hold p99 at
    // equal-or-better while sustaining the fan-in on one thread where
    // the threads core pays a parked thread per connection.
    const OPEN_INFLIGHT: usize = 16;
    const OPEN_TOTAL: usize = 256;
    let base_conns = arg("--conns").unwrap_or(4).max(1);
    let conn_sweep = [base_conns, base_conns * 4];
    println!(
        "\n== Open-loop wire sweep: {OPEN_INFLIGHT} pipelined v2 requests in flight, split over the connections =="
    );
    let mut open_rows: Vec<OpenRow> = Vec::new();
    for core in [CoreSelect::Threads, CoreSelect::Epoll] {
        if matches!(core, CoreSelect::Epoll) && !deepcam_serve::epoll_available() {
            continue;
        }
        for &conns in &conn_sweep {
            let window = (OPEN_INFLIGHT / conns).max(1);
            let requests = (OPEN_TOTAL / conns).max(8);
            let mut best: Option<OpenRow> = None;
            for _ in 0..repeats {
                let row = run_open_loop(&engine, core, conns, window, requests, &images);
                if best
                    .as_ref()
                    .is_none_or(|b| row.reqs_per_sec > b.reqs_per_sec)
                {
                    best = Some(row);
                }
            }
            let row = best.expect("at least one repeat");
            println!(
                "{:>7} core, {:>4} conns x window {}: {:>8.1} req/s, completed {}, errors {}, p50 {:.2} ms, p99 {:.2} ms",
                row.core, row.conns, window, row.reqs_per_sec, row.completed, row.errors,
                row.p50_ms, row.p99_ms
            );
            open_rows.push(row);
        }
    }
    let threads_base = open_rows
        .iter()
        .find(|r| r.core == "threads" && r.conns == base_conns);
    let epoll_top = open_rows
        .iter()
        .find(|r| r.core == "epoll" && r.conns == base_conns * 4);
    if let (Some(base), Some(top)) = (threads_base, epoll_top) {
        println!(
            "epoll @ {} conns vs threads @ {} conns: p99 {:.2} ms vs {:.2} ms ({}), {:.2}x connections",
            top.conns,
            base.conns,
            top.p99_ms,
            base.p99_ms,
            if top.p99_ms <= base.p99_ms {
                "equal-or-better"
            } else {
                "worse"
            },
            top.conns as f64 / base.conns as f64
        );
    }

    // Hand-rolled JSON, like the other speedup bins (the vendored serde
    // has no serializer).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"experiment\": \"closed-loop serving throughput, scaled LeNet5, k=256, dynamic micro-batching\",\n",
    );
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str(&format!("  \"requests_per_client\": {requests},\n"));
    json.push_str(&format!("  \"repeats\": {repeats},\n"));
    json.push_str("  \"max_wait_us\": 500,\n");
    json.push_str("  \"bit_identical_to_serial\": true,\n");
    json.push_str("  \"configs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"max_batch\": {}, \"reqs_per_sec\": {:.2}, \"mean_occupancy\": {:.3}, \
             \"max_occupancy\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"speedup_vs_unbatched\": {:.3}}}{comma}\n",
            row.max_batch,
            row.reqs_per_sec,
            row.mean_occupancy,
            row.max_occupancy,
            row.p50_ms,
            row.p99_ms,
            row.reqs_per_sec / unbatched
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"open_loop\": {\n");
    json.push_str(&format!("    \"total_inflight\": {OPEN_INFLIGHT},\n"));
    json.push_str(&format!("    \"base_conns\": {base_conns},\n"));
    json.push_str("    \"protocol\": 2,\n");
    json.push_str("    \"rows\": [\n");
    for (i, row) in open_rows.iter().enumerate() {
        let comma = if i + 1 == open_rows.len() { "" } else { "," };
        json.push_str(&format!(
            "      {{\"core\": \"{}\", \"conns\": {}, \"completed\": {}, \"errors\": {}, \
             \"reqs_per_sec\": {:.2}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}{comma}\n",
            row.core,
            row.conns,
            row.completed,
            row.errors,
            row.reqs_per_sec,
            row.p50_ms,
            row.p99_ms
        ));
    }
    json.push_str("    ]");
    if let (Some(base), Some(top)) = (threads_base, epoll_top) {
        json.push_str(&format!(
            ",\n    \"headline\": {{\"epoll_conns\": {}, \"threads_conns\": {}, \
             \"conn_ratio\": {:.1}, \"epoll_p99_ms\": {:.3}, \"threads_p99_ms\": {:.3}, \
             \"epoll_p99_equal_or_better\": {}}}\n",
            top.conns,
            base.conns,
            top.conns as f64 / base.conns as f64,
            top.p99_ms,
            base.p99_ms,
            top.p99_ms <= base.p99_ms
        ));
    } else {
        json.push('\n');
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!("wrote {out_path}");
}
