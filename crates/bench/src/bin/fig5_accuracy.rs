//! Regenerates Fig. 5: BL (float) vs DC (DeepCAM) Top-1 accuracy across
//! hash lengths, with the searched variable-hash-length configuration.
//!
//! Usage: `cargo run --release -p deepcam-bench --bin fig5_accuracy
//! [--quick|--full] [--workload N] [--workers N]`
//!
//! * `--quick` (default): small synthetic sets, all four workloads.
//! * `--full`: larger train/eval sets (slower, tighter accuracies).
//! * `--workload N`: run a single workload (0=LeNet5, 1=VGG11, 2=VGG16,
//!   3=ResNet18).
//! * `--workers N`: DC evaluation parallelism (default: all cores, or
//!   `DEEPCAM_WORKERS`). Accuracies are bit-identical at any setting —
//!   only wall clock changes.

use deepcam_bench::experiments::fig5::{self, Fig5Config};
use deepcam_bench::TableWriter;
use deepcam_tensor::Parallelism;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = if args.iter().any(|a| a == "--full") {
        Fig5Config {
            train_per_class: 160,
            eval_images: 120,
            search_images: 80,
            epochs: 6,
            width: 12,
            ..Fig5Config::default()
        }
    } else {
        Fig5Config::default()
    };
    if let Some(pos) = args.iter().position(|a| a == "--workload") {
        let idx: usize = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .expect("--workload needs an index 0..=3");
        cfg.workloads = vec![idx];
    }
    if let Some(pos) = args.iter().position(|a| a == "--workers") {
        let workers: usize = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .filter(|&w| w > 0)
            .expect("--workers needs a positive integer");
        cfg.parallelism = Parallelism::Fixed(workers);
    }

    println!("== Fig. 5: Top-1 accuracy, software baseline (BL) vs DeepCAM (DC) ==");
    println!(
        "scaled models on synthetic datasets (substitution per DESIGN.md §4); \
         uniform hash lengths {:?} plus searched variable plan",
        cfg.hash_lengths
    );
    println!();
    // Run one workload at a time and stream partial results so long runs
    // are observable (and interruptible) midway.
    let mut rows = Vec::new();
    for &w in &cfg.workloads.clone() {
        let mut one = cfg.clone();
        one.workloads = vec![w];
        let mut batch = fig5::run(&one);
        for r in &batch {
            println!(
                "[done] {}: BL {:.1}%  DC@VHL {:.1}%  plan {:?}",
                r.workload,
                r.baseline_acc * 100.0,
                r.variable_acc * 100.0,
                r.variable_plan
            );
        }
        rows.append(&mut batch);
    }
    println!();
    let mut table = TableWriter::new(vec![
        "workload",
        "BL %",
        "DC@256 %",
        "DC@512 %",
        "DC@768 %",
        "DC@1024 %",
        "DC@VHL %",
        "VHL plan",
    ]);
    for r in &rows {
        let mut cells = vec![r.workload.clone(), format!("{:.1}", r.baseline_acc * 100.0)];
        for &(_, acc) in &r.uniform {
            cells.push(format!("{:.1}", acc * 100.0));
        }
        while cells.len() < 6 {
            cells.push(String::new());
        }
        cells.push(format!("{:.1}", r.variable_acc * 100.0));
        cells.push(format!("{:?}", r.variable_plan));
        table.row(cells);
    }
    println!("{}", table.render());
    println!(
        "shape check: DC approaches BL as k grows; the variable plan stays within \
         tolerance of BL while using shorter hashes on insensitive layers."
    );
}
