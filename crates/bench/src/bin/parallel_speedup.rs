//! Measures the parallel sharded inference runtime: wall-clock of
//! batched DC evaluation before (serial) and after (sharded) the
//! parallel execution layer, across worker counts, and records the
//! result in `BENCH_parallel.json`.
//!
//! Usage: `cargo run --release -p deepcam-bench --bin parallel_speedup
//! [--out PATH] [--images N] [--repeats R] [--force]`
//!
//! Refuses to overwrite a committed JSON that was measured on a host
//! with more cores than this one unless `--force` is passed (guards the
//! ROADMAP multi-core re-measure item).
//!
//! The run first asserts the determinism contract — every worker count
//! must produce bit-identical logits — and only then times the sweep,
//! so the recorded speedups are guaranteed to compare equal computations.
//! Speedup scales with physical cores; the `host_cores` field records
//! what the numbers were measured on.

use std::time::Instant;

use deepcam_bench::guard::{self, median_millis};
use deepcam_core::{DeepCamEngine, EngineConfig, HashPlan};
use deepcam_models::scaled::scaled_vgg11;
use deepcam_tensor::rng::seeded_rng;
use deepcam_tensor::{init, Parallelism, Shape};

struct Measurement {
    workers: usize,
    millis: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == name)
            .and_then(|p| args.get(p + 1))
            .and_then(|v| v.parse().ok())
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|p| args.get(p + 1).cloned())
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());
    let images = arg("--images").unwrap_or(32);
    let repeats = arg("--repeats").unwrap_or(3).max(1);
    let force = args.iter().any(|a| a == "--force");
    let worker_counts = [1usize, 2, 4];

    let host_cores = guard::host_cores();
    if !guard::check_overwrite(&out_path, host_cores, force).proceed() {
        return; // verdict printed; keeping the bigger-host JSON is success
    }
    println!("== Parallel sharded inference runtime: before/after ==");
    println!("host cores: {host_cores}, images: {images}, repeats: {repeats}");

    let mut rng = seeded_rng(0);
    let model = scaled_vgg11(&mut rng, 8, 10);
    let engine = DeepCamEngine::compile(
        &model,
        EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        },
    )
    .expect("engine compiles");
    let mut data_rng = seeded_rng(1);
    let batch = init::normal(&mut data_rng, Shape::new(&[images, 3, 32, 32]), 0.0, 1.0);
    let labels = vec![0usize; images];

    // Determinism gate: the timed configurations must agree bit-for-bit.
    let reference = engine
        .infer_batch_with(&batch, Parallelism::Serial)
        .expect("serial inference succeeds");
    for &w in &worker_counts {
        let logits = engine
            .infer_batch_with(&batch, Parallelism::Fixed(w))
            .expect("sharded inference succeeds");
        assert_eq!(
            reference.data(),
            logits.data(),
            "worker count {w} must be bit-identical to serial"
        );
    }
    println!("determinism gate passed: logits bit-identical at workers {worker_counts:?}");

    let time_eval = |par: Parallelism| -> f64 {
        let runs: Vec<f64> = (0..repeats)
            .map(|_| {
                let start = Instant::now();
                let acc = engine
                    .evaluate_parallel_with(&batch, &labels, 4, par)
                    .expect("evaluation succeeds");
                let elapsed = start.elapsed().as_secs_f64() * 1e3;
                std::hint::black_box(acc);
                elapsed
            })
            .collect();
        median_millis(runs)
    };

    // "Before": the serial path every PR before this one ran.
    let serial_ms = time_eval(Parallelism::Serial);
    println!("serial (before): {serial_ms:.1} ms");
    // "After": the sharded runtime across the worker sweep.
    let after: Vec<Measurement> = worker_counts
        .iter()
        .map(|&workers| {
            let millis = time_eval(Parallelism::Fixed(workers));
            println!(
                "{workers} workers (after): {millis:.1} ms ({:.2}x vs serial)",
                serial_ms / millis
            );
            Measurement { workers, millis }
        })
        .collect();

    // Hand-rolled JSON: the vendored serde is a no-op shim (no
    // serializer exists offline), and the schema is flat.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"batched DC evaluation, scaled VGG11 (width 8), k=256\",\n");
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"images\": {images},\n"));
    json.push_str("  \"batch_size\": 4,\n");
    json.push_str(&format!("  \"repeats\": {repeats},\n"));
    json.push_str("  \"bit_identical_across_workers\": true,\n");
    json.push_str(&format!("  \"serial_before_ms\": {serial_ms:.2},\n"));
    json.push_str("  \"parallel_after\": [\n");
    for (i, m) in after.iter().enumerate() {
        let comma = if i + 1 == after.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"workers\": {}, \"ms\": {:.2}, \"speedup_vs_serial\": {:.3}}}{comma}\n",
            m.workers,
            m.millis,
            serial_ms / m.millis
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_parallel.json");
    println!("wrote {out_path}");
}
