//! Regenerates Table I: the hardware evaluation setup.
//!
//! Usage: `cargo run --release -p deepcam-bench --bin table1_setup`

use deepcam_bench::experiments::table1;
use deepcam_bench::TableWriter;

fn main() {
    println!("== Table I: hardware evaluation setup ==");
    println!();
    let mut table = TableWriter::new(vec!["Category", "CPU", "Systolic", "DeepCAM"]);
    for row in table1::run() {
        table.row(vec![row.category, row.cpu, row.systolic, row.deepcam]);
    }
    println!("{}", table.render());
}
