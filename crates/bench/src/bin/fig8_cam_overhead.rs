//! Regenerates Fig. 8: FeFET CAM search energy and area across row and
//! column sizes.
//!
//! Usage: `cargo run --release -p deepcam-bench --bin fig8_cam_overhead`

use deepcam_bench::experiments::fig8;
use deepcam_bench::table::fmt_sig;
use deepcam_bench::TableWriter;

fn main() {
    println!("== Fig. 8: CAM hardware overhead vs row/column size ==");
    println!("(EvaCAM-substitute analytical model; constants in deepcam-cam::energy/area)");
    println!();
    let mut table = TableWriter::new(vec![
        "rows",
        "cols (bits)",
        "search energy (pJ)",
        "tile write energy (pJ)",
        "area (mm^2)",
    ]);
    for p in fig8::run() {
        table.row(vec![
            p.rows.to_string(),
            p.cols.to_string(),
            fmt_sig(p.search_energy_pj),
            fmt_sig(p.write_energy_pj),
            format!("{:.4}", p.area_mm2),
        ]);
    }
    println!("{}", table.render());
    println!(
        "shape check: energy and area grow ~linearly in rows x cols with a \
         peripheral floor, matching the paper's Fig. 8 scaling."
    );
}
