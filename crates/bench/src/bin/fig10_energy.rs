//! Regenerates Fig. 10: normalized energy per inference — DeepCAM-VHL vs
//! the homogeneous-256 baseline, Max DeepCAM (1024), and Eyeriss.
//!
//! Usage: `cargo run --release -p deepcam-bench --bin fig10_energy`

use deepcam_bench::experiments::fig10;
use deepcam_bench::table::fmt_sig;
use deepcam_bench::TableWriter;

fn main() {
    println!("== Fig. 10: normalized energy per inference ==");
    println!("(each row normalized to the same config's homogeneous-256-bit DeepCAM)");
    println!();
    for row in fig10::run() {
        println!(
            "-- {} --  Eyeriss: {} uJ (on-chip only: {} uJ)",
            row.workload,
            fmt_sig(row.eyeriss_uj),
            fmt_sig(row.eyeriss_onchip_uj)
        );
        let mut table = TableWriter::new(vec![
            "config",
            "VHL (uJ)",
            "VHL (norm)",
            "Max-1024 (norm)",
            "Eyeriss (norm)",
            "Eyeriss / VHL",
            "on-chip Eyeriss / VHL",
        ]);
        for p in &row.points {
            table.row(vec![
                format!("DeepCAM-{} rows={}", p.dataflow, p.rows),
                fmt_sig(p.vhl_uj),
                format!("{:.2}", p.vhl_norm),
                format!("{:.2}", p.max_norm),
                fmt_sig(p.eyeriss_norm),
                format!("{:.1}x", p.eyeriss_over_vhl),
                format!("{:.1}x", p.eyeriss_onchip_over_vhl),
            ]);
        }
        println!("{}", table.render());
    }
    println!(
        "shape checks: VHL <= Max-1024 everywhere; Eyeriss costs multiples of \
         any DeepCAM configuration; the VHL saving tracks the fraction of \
         layers that can run at short hashes."
    );
}
