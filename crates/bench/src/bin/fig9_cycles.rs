//! Regenerates Fig. 9: inference computation cycles and hardware
//! utilization for DeepCAM (WS/AS, row sweeps) vs Eyeriss vs CPU.
//!
//! Usage: `cargo run --release -p deepcam-bench --bin fig9_cycles`

use deepcam_bench::experiments::fig9;
use deepcam_bench::TableWriter;

fn main() {
    println!("== Fig. 9: computation cycles and utilization ==");
    println!();
    for row in fig9::run() {
        println!(
            "-- {} --  Eyeriss: {} cycles (util {:.1}%), Skylake: {} cycles",
            row.workload,
            row.eyeriss_cycles,
            row.eyeriss_utilization * 100.0,
            row.cpu_cycles
        );
        let mut table = TableWriter::new(vec![
            "config",
            "cycles (pipelined)",
            "cycles (search-only)",
            "CAM util %",
            "vs Eyeriss (pipe)",
            "vs Eyeriss (search)",
            "vs CPU (pipe)",
        ]);
        for p in &row.deepcam {
            table.row(vec![
                format!("DeepCAM-{} rows={}", p.dataflow, p.rows),
                p.cycles.to_string(),
                p.search_only_cycles.to_string(),
                format!("{:.1}", p.utilization * 100.0),
                format!("{:.1}x", p.speedup_vs_eyeriss),
                format!("{:.1}x", p.search_only_speedup_vs_eyeriss),
                format!("{:.1}x", p.speedup_vs_cpu),
            ]);
        }
        println!("{}", table.render());
    }
    println!(
        "shape checks: AS >= WS utilization on conv workloads; speedup grows with \
         CAM rows; DeepCAM < Eyeriss < CPU in cycles everywhere."
    );
}
