//! Regenerates Table II: DeepCAM vs analog PIM engines on VGG11/CIFAR10.
//!
//! Usage: `cargo run --release -p deepcam-bench --bin table2_pim_comparison`

use deepcam_bench::experiments::table2::{self, PAPER_VALUES};
use deepcam_bench::TableWriter;

fn main() {
    println!("== Table II: comparison with previous PIM works (VGG11 / CIFAR10) ==");
    println!();
    let mut table = TableWriter::new(vec![
        "Work",
        "Device",
        "Dot-product mode",
        "Energy/inf (uJ)",
        "Cycles/inf (x1e5)",
        "Paper energy",
        "Paper cycles",
    ]);
    for (row, paper) in table2::run().iter().zip(PAPER_VALUES.iter()) {
        table.row(vec![
            row.work.clone(),
            row.device.clone(),
            row.mode.clone(),
            format!("{:.3}", row.energy_uj),
            format!("{:.3}", row.cycles_1e5),
            format!("{:.3}", paper.1),
            format!("{:.3}", paper.2),
        ]);
    }
    println!("{}", table.render());
    println!(
        "shape check: DeepCAM-VHL is the most energy-efficient system in the \
         table and its cycle count sits between the two analog engines, as in \
         the paper. Comparator rows are anchored to their published numbers \
         (DESIGN.md §4); the DeepCAM row is measured from our simulator."
    );
}
