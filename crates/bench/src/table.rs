//! Plain-text table rendering for experiment output.

/// Accumulates rows and renders an aligned plain-text table.
///
/// # Example
///
/// ```
/// use deepcam_bench::TableWriter;
///
/// let mut t = TableWriter::new(vec!["model", "cycles"]);
/// t.row(vec!["LeNet5".into(), "1234".into()]);
/// let text = t.render();
/// assert!(text.contains("LeNet5"));
/// assert!(text.contains("cycles"));
/// ```
#[derive(Debug, Clone)]
pub struct TableWriter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        TableWriter {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header count).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with engineering-style precision (3 significant
/// places for small values, fewer decimals for large).
pub fn fmt_sig(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TableWriter::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TableWriter::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let s = t.render();
        assert!(s.contains('1'));
    }

    #[test]
    fn fmt_sig_ranges() {
        assert_eq!(fmt_sig(0.0), "0");
        assert_eq!(fmt_sig(1234.6), "1235");
        assert_eq!(fmt_sig(42.42), "42.4");
        assert_eq!(fmt_sig(0.4884), "0.488");
    }
}
