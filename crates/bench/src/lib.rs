//! # deepcam-bench
//!
//! The evaluation harness of the DeepCAM reproduction: one experiment
//! module per table/figure of the paper, each exposing a pure function
//! that computes the figure's rows, plus thin `src/bin/*` binaries that
//! print them. Criterion benches in `benches/` exercise the hot kernels
//! each experiment depends on.
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Fig. 2 (approx vs algebraic dot-product) | [`experiments::fig2`] | `fig2_dot_product` |
//! | Fig. 5 (accuracy vs hash length) | [`experiments::fig5`] | `fig5_accuracy` |
//! | Fig. 8 (CAM overhead sweep) | [`experiments::fig8`] | `fig8_cam_overhead` |
//! | Fig. 9 (cycles + utilization) | [`experiments::fig9`] | `fig9_cycles` |
//! | Fig. 10 (normalized energy) | [`experiments::fig10`] | `fig10_energy` |
//! | Table I (setup) | [`experiments::table1`] | `table1_setup` |
//! | Table II (PIM comparison) | [`experiments::table2`] | `table2_pim_comparison` |

// Machine-checked by deepcam-analyze (lint A2): this crate holds no
// unsafe code, and the compiler now enforces that it never grows any.
#![forbid(unsafe_code)]

pub mod experiments;
pub mod guard;
pub mod table;

pub use table::TableWriter;
