//! Overwrite guard for committed `BENCH_*.json` artifacts.
//!
//! The repo commits benchmark JSONs (`BENCH_parallel.json`,
//! `BENCH_hotpath.json`) whose numbers are only meaningful together
//! with the `host_cores` they were measured on. ROADMAP keeps an open
//! item to re-measure the parallel numbers on a many-core host; this
//! guard stops a casual re-run on a *smaller* machine from silently
//! replacing a better measurement. Pass `--force` to overwrite anyway.

/// Number of logical cores on this host (1 when undetectable).
// analyze: allow(determinism, "the guard exists to compare hosts; probing this host is its job")
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Median of a set of wall-clock samples in milliseconds (shared by the
/// speedup bins so their statistics can never drift apart).
///
/// # Panics
///
/// Panics on an empty or non-finite sample set.
pub fn median_millis(mut runs: Vec<f64>) -> f64 {
    runs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    runs[runs.len() / 2]
}

/// Extracts the `"host_cores": N` field from a committed bench JSON.
///
/// The vendored serde shim has no deserializer, so this is a plain
/// string scan; it returns `None` when the file or field is absent (in
/// which case there is nothing to guard).
pub fn recorded_host_cores(json: &str) -> Option<usize> {
    let key = "\"host_cores\"";
    let start = json.find(key)? + key.len();
    let rest = json[start..].trim_start_matches([':', ' ']);
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// The host-core guard's decision for one committed JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardVerdict {
    /// Overwriting is fine: nothing committed, no recorded host, the
    /// current host is at least as big, or `--force` was passed.
    Proceed,
    /// The committed JSON was recorded on a bigger host (`recorded` >
    /// `current` cores): keep it.
    KeepExisting {
        /// Cores of the host the committed JSON was measured on.
        recorded: usize,
        /// Cores of this host.
        current: usize,
    },
}

impl GuardVerdict {
    /// Whether the caller should run and overwrite.
    pub fn proceed(&self) -> bool {
        matches!(self, GuardVerdict::Proceed)
    }
}

/// Decides whether `path` may be overwritten by a run on a
/// `current_cores`-core host, **printing the verdict either way**, and
/// returns it. A refusal is a successful outcome (the guard worked), so
/// callers exit 0 after a `KeepExisting` — they just skip the
/// measurement, which costs nothing because this runs before any timing.
// analyze: allow(determinism, "reads the committed JSON and prints the verdict; runs before any timing, never inside a kernel")
pub fn check_overwrite(path: &str, current_cores: usize, force: bool) -> GuardVerdict {
    let recorded = std::fs::read_to_string(path)
        .ok()
        .as_deref()
        .and_then(recorded_host_cores);
    let verdict = match recorded {
        Some(recorded) if recorded > current_cores && !force => GuardVerdict::KeepExisting {
            recorded,
            current: current_cores,
        },
        _ => GuardVerdict::Proceed,
    };
    match verdict {
        GuardVerdict::Proceed => match recorded {
            Some(recorded) => println!(
                "guard: overwriting {path} (recorded on {recorded} cores, this host has \
                 {current_cores}{})",
                if force { ", --force" } else { "" }
            ),
            None => println!("guard: no committed run at {path}; writing a fresh one"),
        },
        GuardVerdict::KeepExisting { recorded, current } => println!(
            "guard: keeping {path} — it records a run on {recorded} cores and this host has \
             only {current}. A smaller machine cannot reproduce multi-core speedups (see the \
             ROADMAP re-measure item); pass --force to overwrite anyway. Exiting 0."
        ),
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_host_cores_field() {
        let json = "{\n  \"experiment\": \"x\",\n  \"host_cores\": 16,\n  \"images\": 4\n}";
        assert_eq!(recorded_host_cores(json), Some(16));
        assert_eq!(recorded_host_cores("{}"), None);
        assert_eq!(recorded_host_cores("{\"host_cores\": \"oops\"}"), None);
    }

    #[test]
    fn host_cores_is_positive() {
        assert!(host_cores() >= 1);
    }

    #[test]
    fn guard_verdicts() {
        let dir = std::env::temp_dir().join("deepcam_guard_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let path_str = path.to_str().unwrap();

        // Nothing committed → proceed.
        let _ = std::fs::remove_file(&path);
        assert!(check_overwrite(path_str, 1, false).proceed());

        // Recorded on a bigger host → keep, but it is a *returned*
        // verdict, not a process exit.
        std::fs::write(&path, "{\"host_cores\": 64}").unwrap();
        assert_eq!(
            check_overwrite(path_str, 1, false),
            GuardVerdict::KeepExisting {
                recorded: 64,
                current: 1
            }
        );
        // --force overrides.
        assert!(check_overwrite(path_str, 1, true).proceed());
        // Equal or bigger host → proceed.
        assert!(check_overwrite(path_str, 64, false).proceed());
        assert!(check_overwrite(path_str, 128, false).proceed());

        std::fs::remove_file(&path).unwrap();
    }
}
