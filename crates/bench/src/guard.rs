//! Overwrite guard for committed `BENCH_*.json` artifacts.
//!
//! The repo commits benchmark JSONs (`BENCH_parallel.json`,
//! `BENCH_hotpath.json`) whose numbers are only meaningful together
//! with the `host_cores` they were measured on. ROADMAP keeps an open
//! item to re-measure the parallel numbers on a many-core host; this
//! guard stops a casual re-run on a *smaller* machine from silently
//! replacing a better measurement. Pass `--force` to overwrite anyway.

/// Number of logical cores on this host (1 when undetectable).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Median of a set of wall-clock samples in milliseconds (shared by the
/// speedup bins so their statistics can never drift apart).
///
/// # Panics
///
/// Panics on an empty or non-finite sample set.
pub fn median_millis(mut runs: Vec<f64>) -> f64 {
    runs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    runs[runs.len() / 2]
}

/// Extracts the `"host_cores": N` field from a committed bench JSON.
///
/// The vendored serde shim has no deserializer, so this is a plain
/// string scan; it returns `None` when the file or field is absent (in
/// which case there is nothing to guard).
pub fn recorded_host_cores(json: &str) -> Option<usize> {
    let key = "\"host_cores\"";
    let start = json.find(key)? + key.len();
    let rest = json[start..].trim_start_matches([':', ' ']);
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Refuses (process exit 2) to overwrite `path` when it records a run
/// from a host with **more** cores than this one, unless `force`.
///
/// Called by `parallel_speedup` and `hotpath_speedup` before timing
/// anything, so a refused run costs nothing.
pub fn check_overwrite(path: &str, current_cores: usize, force: bool) {
    let Ok(existing) = std::fs::read_to_string(path) else {
        return; // nothing committed yet
    };
    let Some(recorded) = recorded_host_cores(&existing) else {
        return;
    };
    if recorded > current_cores && !force {
        eprintln!(
            "refusing to overwrite {path}: it records a run on {recorded} cores, \
             this host has only {current_cores}. A smaller machine cannot \
             reproduce multi-core speedups (see the ROADMAP re-measure item). \
             Pass --force to overwrite anyway."
        );
        std::process::exit(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_host_cores_field() {
        let json = "{\n  \"experiment\": \"x\",\n  \"host_cores\": 16,\n  \"images\": 4\n}";
        assert_eq!(recorded_host_cores(json), Some(16));
        assert_eq!(recorded_host_cores("{}"), None);
        assert_eq!(recorded_host_cores("{\"host_cores\": \"oops\"}"), None);
    }

    #[test]
    fn host_cores_is_positive() {
        assert!(host_cores() >= 1);
    }
}
