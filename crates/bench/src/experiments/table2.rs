//! Table II — DeepCAM (VHL) vs previously published analog PIM engines
//! on VGG11/CIFAR10: energy and computation cycles per inference.

use deepcam_baselines::{AnalogPim, PimTechnology};
use deepcam_core::sched::CamScheduler;
use deepcam_core::{Dataflow, HashPlan, LayerIr};
use deepcam_models::zoo;

/// One row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// System name.
    pub work: String,
    /// Memory device.
    pub device: String,
    /// Dot-product mode.
    pub mode: String,
    /// Energy per inference, µJ.
    pub energy_uj: f64,
    /// Computation cycles per inference, ×10⁵.
    pub cycles_1e5: f64,
}

/// The paper's published Table II values, for side-by-side comparison in
/// the harness output.
pub const PAPER_VALUES: [(&str, f64, f64); 3] = [
    ("NeuroSim (RRAM)", 34.98, 5.74),
    ("Valavi et al. (SRAM)", 3.55, 2.56),
    ("DeepCAM (FeFET, VHL)", 0.488, 2.652),
];

/// Regenerates Table II. The PIM comparator rows come from their
/// anchored models; the DeepCAM row comes from our simulator
/// (activation-stationary, 64 rows, shape-driven variable plan — the
/// configuration the paper reports its per-inference numbers at).
pub fn run() -> Vec<Table2Row> {
    let vgg = zoo::vgg11();
    let ir = LayerIr::from_spec(&vgg);
    let mut rows = Vec::new();
    for tech in [PimTechnology::NeuroSimRram, PimTechnology::ValaviSram] {
        let report = AnalogPim::new(tech).run_ir(&ir);
        rows.push(Table2Row {
            work: tech.name().to_string(),
            device: match tech {
                PimTechnology::NeuroSimRram => "RRAM".into(),
                PimTechnology::ValaviSram => "SRAM".into(),
            },
            mode: tech.dot_product_mode().to_string(),
            energy_uj: report.energy_uj(),
            cycles_1e5: report.total_cycles as f64 / 1e5,
        });
    }
    let plan = HashPlan::variable_for_dims(&ir.patch_lens());
    let binding = plan.bind(&ir).expect("plan matches VGG11");
    let sched = CamScheduler::new(64, Dataflow::ActivationStationary).expect("64 rows supported");
    let perf = sched
        .run_ir(&ir, &binding, plan.label())
        .expect("plan matches VGG11");
    rows.push(Table2Row {
        work: "DeepCAM (ours, VHL)".into(),
        device: "FeFET".into(),
        mode: "Geometric".into(),
        energy_uj: perf.energy_uj(),
        cycles_1e5: perf.total_cycles as f64 / 1e5,
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_rows_in_order() {
        let rows = run();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].work.contains("NeuroSim"));
        assert!(rows[2].mode == "Geometric");
    }

    #[test]
    fn energy_ordering_matches_paper() {
        // DeepCAM < Valavi < NeuroSim — the table's central claim.
        let rows = run();
        assert!(rows[2].energy_uj < rows[1].energy_uj);
        assert!(rows[1].energy_uj < rows[0].energy_uj);
    }

    #[test]
    fn deepcam_energy_same_order_as_paper() {
        // Paper: 0.488 µJ. Our self-consistent model should land within
        // an order of magnitude.
        let rows = run();
        let e = rows[2].energy_uj;
        assert!(e > 0.0488 && e < 4.88, "DeepCAM VGG11 energy {e} µJ");
    }

    #[test]
    fn comparator_rows_match_anchors() {
        let rows = run();
        assert!((rows[0].energy_uj - 34.98).abs() / 34.98 < 0.05);
        assert!((rows[1].cycles_1e5 - 2.56).abs() / 2.56 < 0.05);
    }
}
