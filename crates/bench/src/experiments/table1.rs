//! Table I — the hardware evaluation setup summary.

use deepcam_models::zoo;

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Category label.
    pub category: String,
    /// CPU column.
    pub cpu: String,
    /// Systolic (Eyeriss) column.
    pub systolic: String,
    /// DeepCAM column.
    pub deepcam: String,
}

/// Builds the setup table, including the workload list with our
/// synthetic-dataset substitutions spelled out.
pub fn run() -> Vec<Table1Row> {
    let workloads = zoo::all_workloads()
        .iter()
        .map(|m| m.workload())
        .collect::<Vec<_>>()
        .join(", ");
    vec![
        Table1Row {
            category: "Configuration".into(),
            cpu: "Skylake with AVX-512 (VNNI), 2.1 GHz".into(),
            systolic: "Eyeriss (14 x 12), INT8, 200 MHz".into(),
            deepcam: "FeFET CAM with VHL, 300 MHz, 45 nm".into(),
        },
        Table1Row {
            category: "Hardware performance".into(),
            cpu: "overall inference computation cycles".into(),
            systolic: "overall inference computation cycles".into(),
            deepcam: "overall inference computation cycles".into(),
        },
        Table1Row {
            category: "Energy consumption".into(),
            cpu: "dynamic inference energy".into(),
            systolic: "dynamic inference energy".into(),
            deepcam: "dynamic inference energy".into(),
        },
        Table1Row {
            category: "CNN & dataset".into(),
            cpu: workloads.clone(),
            systolic: workloads.clone(),
            deepcam: format!("{workloads} (synthetic stand-ins, DESIGN.md §4)"),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_categories() {
        let rows = run();
        assert_eq!(rows.len(), 4);
        assert!(rows[0].deepcam.contains("FeFET"));
        assert!(rows[3].cpu.contains("LeNet5 MNIST"));
        assert!(rows[3].cpu.contains("ResNet18 CIFAR100"));
    }
}
