//! Fig. 2 — approximate vs algebraic dot-product as hash length grows.
//!
//! The paper plots the worked example of §II-B (x·y = 2.0765) and shows
//! the approximation tightening with k. This experiment reproduces that
//! series and adds an error sweep over a random vector ensemble so the
//! 1/√k concentration of the Hamming angle estimator is visible.

use deepcam_hash::geometric::{CosineMode, DotOptions, NormMode};
use deepcam_hash::stats::ErrorStats;
use deepcam_hash::GeometricDot;
use deepcam_tensor::rng::{fill_normal, seeded_rng};

/// The paper's example operands (§II-B).
pub const PAPER_X: [f32; 4] = [0.6012, 0.8383, 0.6859, 0.5712];
/// The paper's example operands (§II-B).
pub const PAPER_Y: [f32; 4] = [0.9044, 0.5352, 0.8110, 0.9243];
/// The algebraic reference the paper quotes.
pub const PAPER_REFERENCE: f32 = 2.0765;

/// One point of the Fig. 2 series.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Point {
    /// Hash length.
    pub k: usize,
    /// Mean approximate dot-product of the paper example over seeds.
    pub example_mean: f32,
    /// Standard deviation over seeds.
    pub example_std: f32,
    /// Error statistics over the random ensemble.
    pub ensemble: ErrorStats,
}

/// Configuration of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Config {
    /// Hash lengths to sweep.
    pub hash_lengths: Vec<usize>,
    /// Seeds averaged per point.
    pub seeds: usize,
    /// Random vector pairs in the ensemble.
    pub ensemble_pairs: usize,
    /// Ensemble vector dimensionality.
    pub ensemble_dim: usize,
    /// Use the hardware path (eq. 5 cosine + minifloat norms) instead of
    /// the ideal one.
    pub hardware_path: bool,
}

impl Default for Fig2Config {
    fn default() -> Self {
        Fig2Config {
            hash_lengths: vec![64, 128, 256, 512, 1024, 2048, 4096],
            seeds: 16,
            ensemble_pairs: 64,
            ensemble_dim: 64,
            hardware_path: false,
        }
    }
}

/// Runs the sweep.
pub fn run(cfg: &Fig2Config) -> Vec<Fig2Point> {
    let opts = if cfg.hardware_path {
        DotOptions {
            cosine: CosineMode::PiecewiseEq5,
            norm: NormMode::Minifloat8,
            hash_len: None,
        }
    } else {
        DotOptions {
            cosine: CosineMode::Exact,
            norm: NormMode::Fp32,
            hash_len: None,
        }
    };
    let mut points = Vec::with_capacity(cfg.hash_lengths.len());
    for &k in &cfg.hash_lengths {
        // Paper example across seeds.
        let mut values = Vec::with_capacity(cfg.seeds);
        for seed in 0..cfg.seeds as u64 {
            let gd = GeometricDot::new(4, k, seed).expect("valid dims");
            values.push(gd.dot_with(&PAPER_X, &PAPER_Y, opts).expect("valid dims"));
        }
        let mean = values.iter().sum::<f32>() / values.len() as f32;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / values.len() as f32;

        // Random ensemble at a fixed seed.
        let gd = GeometricDot::new(cfg.ensemble_dim, k, 777).expect("valid dims");
        let mut rng = seeded_rng(4242);
        let mut approx = Vec::with_capacity(cfg.ensemble_pairs);
        let mut exact = Vec::with_capacity(cfg.ensemble_pairs);
        let mut a = vec![0.0f32; cfg.ensemble_dim];
        let mut b = vec![0.0f32; cfg.ensemble_dim];
        for _ in 0..cfg.ensemble_pairs {
            fill_normal(&mut rng, &mut a, 0.0, 1.0);
            fill_normal(&mut rng, &mut b, 0.0, 1.0);
            approx.push(gd.dot_with(&a, &b, opts).expect("valid dims"));
            exact.push(GeometricDot::algebraic(&a, &b).expect("equal dims"));
        }
        points.push(Fig2Point {
            k,
            example_mean: mean,
            example_std: var.sqrt(),
            ensemble: ErrorStats::from_pairs(&approx, &exact),
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> Fig2Config {
        Fig2Config {
            hash_lengths: vec![64, 1024],
            seeds: 6,
            ensemble_pairs: 16,
            ensemble_dim: 16,
            hardware_path: false,
        }
    }

    #[test]
    fn error_shrinks_with_k() {
        let pts = run(&quick_cfg());
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].ensemble.rmse < pts[0].ensemble.rmse,
            "rmse {} !< {}",
            pts[1].ensemble.rmse,
            pts[0].ensemble.rmse
        );
        assert!(pts[1].example_std < pts[0].example_std);
    }

    #[test]
    fn long_hash_approaches_reference() {
        let cfg = Fig2Config {
            hash_lengths: vec![4096],
            seeds: 8,
            ..quick_cfg()
        };
        let pts = run(&cfg);
        assert!(
            (pts[0].example_mean - PAPER_REFERENCE).abs() < 0.1,
            "mean {}",
            pts[0].example_mean
        );
    }

    #[test]
    fn hardware_path_runs() {
        let cfg = Fig2Config {
            hardware_path: true,
            ..quick_cfg()
        };
        let pts = run(&cfg);
        assert!(pts.iter().all(|p| p.example_mean.is_finite()));
    }
}
