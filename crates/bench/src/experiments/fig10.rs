//! Fig. 10 — normalized energy per inference: DeepCAM with variable hash
//! lengths vs the homogeneous-256 DeepCAM baseline, "Max DeepCAM"
//! (homogeneous 1024), and Eyeriss.
//!
//! As in the paper, every number for a workload is normalized to that
//! workload's homogeneous-256-bit DeepCAM implementation (same dataflow
//! and row count).

use deepcam_baselines::Eyeriss;
use deepcam_core::sched::CamScheduler;
use deepcam_core::{Dataflow, HashPlan, LayerIr};
use deepcam_models::{zoo, ModelSpec};

/// One configuration's energy for a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Point {
    /// Dataflow label.
    pub dataflow: String,
    /// CAM rows.
    pub rows: usize,
    /// Absolute energy, µJ.
    pub vhl_uj: f64,
    /// VHL energy normalized to the homogeneous-256 baseline.
    pub vhl_norm: f64,
    /// Max (1024-bit) energy normalized to the same baseline.
    pub max_norm: f64,
    /// Eyeriss energy normalized to the same baseline.
    pub eyeriss_norm: f64,
    /// Eyeriss-to-VHL energy ratio (the paper's headline numbers).
    pub eyeriss_over_vhl: f64,
    /// On-chip-only Eyeriss to VHL ratio — the reading under which our
    /// LeNet number reproduces the paper's ~109x almost exactly.
    pub eyeriss_onchip_over_vhl: f64,
}

/// All Fig. 10 numbers for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Row {
    /// Workload label.
    pub workload: String,
    /// Eyeriss absolute energy, µJ (full model, incl. DRAM traffic).
    pub eyeriss_uj: f64,
    /// Eyeriss on-chip dynamic energy only (DRAM excluded) — the most
    /// DeepCAM-favorable reading of the paper's "dynamic inference
    /// energy", reported for transparency.
    pub eyeriss_onchip_uj: f64,
    /// Per-configuration points.
    pub points: Vec<Fig10Point>,
}

/// Row sizes swept.
pub const ROW_SIZES: [usize; 2] = [64, 512];

/// Runs Fig. 10 for one workload.
pub fn run_workload(spec: &ModelSpec) -> Fig10Row {
    let ir = LayerIr::from_spec(spec);
    let eyeriss = Eyeriss::paper_config().run_ir(&ir);
    let onchip_model = Eyeriss {
        dram_energy_per_byte: 0.0,
        ..Eyeriss::paper_config()
    };
    let eyeriss_onchip = onchip_model.run_ir(&ir);
    let vhl_plan = HashPlan::variable_for_dims(&ir.patch_lens());
    let mut points = Vec::new();
    for dataflow in Dataflow::both() {
        for &rows in &ROW_SIZES {
            let sched = CamScheduler::new(rows, dataflow).expect("supported rows");
            let energy_of = |plan: &HashPlan| {
                let binding = plan.bind(&ir).expect("plan matches spec");
                sched
                    .run_ir(&ir, &binding, plan.label())
                    .expect("plan matches spec")
                    .total_energy_j
            };
            let base = energy_of(&HashPlan::uniform_min());
            let vhl = energy_of(&vhl_plan);
            let max = energy_of(&HashPlan::uniform_max());
            points.push(Fig10Point {
                dataflow: dataflow.label().to_string(),
                rows,
                vhl_uj: vhl * 1e6,
                vhl_norm: vhl / base,
                max_norm: max / base,
                eyeriss_norm: eyeriss.total_energy_j / base,
                eyeriss_over_vhl: eyeriss.total_energy_j / vhl,
                eyeriss_onchip_over_vhl: eyeriss_onchip.total_energy_j / vhl,
            });
        }
    }
    Fig10Row {
        workload: spec.workload(),
        eyeriss_uj: eyeriss.energy_uj(),
        eyeriss_onchip_uj: eyeriss_onchip.energy_uj(),
        points,
    }
}

/// Runs Fig. 10 for all four workloads.
pub fn run() -> Vec<Fig10Row> {
    zoo::all_workloads().iter().map(run_workload).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vhl_between_min_and_max() {
        for row in run() {
            for p in &row.points {
                assert!(
                    p.vhl_norm <= p.max_norm,
                    "{} {}/{}: vhl {} > max {}",
                    row.workload,
                    p.dataflow,
                    p.rows,
                    p.vhl_norm,
                    p.max_norm
                );
                // Variable plans never go below the all-256 floor.
                assert!(p.vhl_norm >= 0.99, "{}", p.vhl_norm);
            }
        }
    }

    #[test]
    fn deepcam_beats_eyeriss_energy() {
        for row in run() {
            for p in &row.points {
                assert!(
                    p.eyeriss_over_vhl > 1.0,
                    "{} {}/{}: ratio {}",
                    row.workload,
                    p.dataflow,
                    p.rows,
                    p.eyeriss_over_vhl
                );
            }
        }
    }

    #[test]
    fn lenet_ratio_exceeds_resnet_band_bottom() {
        // The paper's headline: up to ~109x for LeNet (AS), ≥2.16x for
        // ResNet18. Our self-consistent model must at least keep both
        // above their floors.
        let rows = run();
        let lenet = &rows[0];
        let best_lenet = lenet
            .points
            .iter()
            .map(|p| p.eyeriss_over_vhl)
            .fold(0.0f64, f64::max);
        assert!(best_lenet > 10.0, "LeNet best ratio {best_lenet}");
        let resnet = &rows[3];
        let worst_resnet = resnet
            .points
            .iter()
            .map(|p| p.eyeriss_over_vhl)
            .fold(f64::INFINITY, f64::min);
        assert!(worst_resnet > 2.0, "ResNet worst ratio {worst_resnet}");
    }
}
