//! Fig. 9 — inference computation cycles and hardware utilization:
//! DeepCAM (WS/AS, row sizes 64–512) vs Eyeriss vs Skylake CPU, on all
//! four Table I workloads.

use deepcam_baselines::{Eyeriss, SkylakeCpu};
use deepcam_core::sched::{CamScheduler, CycleModel};
use deepcam_core::{Dataflow, HashPlan, LayerIr};
use deepcam_models::{zoo, ModelSpec};

/// One DeepCAM configuration's result for a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct DeepCamPoint {
    /// Dataflow label (`WS`/`AS`).
    pub dataflow: String,
    /// CAM rows.
    pub rows: usize,
    /// Inference cycles under the honest pipelined model (CAM, context
    /// generator and post-processing overlap; slowest stage binds).
    pub cycles: u64,
    /// Inference cycles counting only O(1) CAM searches — the paper's
    /// implicit accounting.
    pub search_only_cycles: u64,
    /// Mean CAM utilization.
    pub utilization: f64,
    /// Speedup over Eyeriss (pipelined cycles ratio).
    pub speedup_vs_eyeriss: f64,
    /// Speedup over Eyeriss under search-only accounting.
    pub search_only_speedup_vs_eyeriss: f64,
    /// Speedup over the CPU (pipelined cycles ratio).
    pub speedup_vs_cpu: f64,
}

/// All Fig. 9 numbers for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Row {
    /// Workload label.
    pub workload: String,
    /// Eyeriss cycles.
    pub eyeriss_cycles: u64,
    /// Eyeriss PE utilization.
    pub eyeriss_utilization: f64,
    /// CPU cycles.
    pub cpu_cycles: u64,
    /// DeepCAM points (WS/AS × row sizes).
    pub deepcam: Vec<DeepCamPoint>,
}

/// Row sizes swept (matching the paper).
pub const ROW_SIZES: [usize; 4] = [64, 128, 256, 512];

/// Runs Fig. 9 for one model spec. The spec is lowered once through the
/// shared pipeline IR; every simulator consumes the same [`LayerIr`].
pub fn run_workload(spec: &ModelSpec) -> Fig9Row {
    let ir = LayerIr::from_spec(spec);
    let eyeriss = Eyeriss::paper_config().run_ir(&ir);
    let cpu = SkylakeCpu::paper_config().run_ir(&ir);
    let plan = HashPlan::variable_for_dims(&ir.patch_lens());
    let binding = plan.bind(&ir).expect("plan matches spec");
    let mut points = Vec::new();
    for dataflow in Dataflow::both() {
        for &rows in &ROW_SIZES {
            let sched = CamScheduler::new(rows, dataflow).expect("supported rows");
            let perf = sched
                .run_ir(&ir, &binding, plan.label())
                .expect("plan matches spec");
            let search_only = sched
                .clone()
                .with_cycle_model(CycleModel::SearchOnly)
                .run_ir(&ir, &binding, plan.label())
                .expect("plan matches spec");
            points.push(DeepCamPoint {
                dataflow: dataflow.label().to_string(),
                rows,
                cycles: perf.total_cycles,
                search_only_cycles: search_only.total_cycles,
                utilization: perf.mean_utilization(),
                speedup_vs_eyeriss: eyeriss.total_cycles as f64 / perf.total_cycles.max(1) as f64,
                search_only_speedup_vs_eyeriss: eyeriss.total_cycles as f64
                    / search_only.total_cycles.max(1) as f64,
                speedup_vs_cpu: cpu.total_cycles as f64 / perf.total_cycles.max(1) as f64,
            });
        }
    }
    Fig9Row {
        workload: spec.workload(),
        eyeriss_cycles: eyeriss.total_cycles,
        eyeriss_utilization: eyeriss.mean_utilization(),
        cpu_cycles: cpu.total_cycles,
        deepcam: points,
    }
}

/// Runs Fig. 9 for all four workloads.
pub fn run() -> Vec<Fig9Row> {
    zoo::all_workloads().iter().map(run_workload).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet_row_shapes_hold() {
        let row = run_workload(&zoo::lenet5());
        // DeepCAM beats both baselines on cycles in AS mode.
        let as64 = row
            .deepcam
            .iter()
            .find(|p| p.dataflow == "AS" && p.rows == 64)
            .expect("AS/64 point exists");
        assert!(as64.speedup_vs_eyeriss > 1.0, "{}", as64.speedup_vs_eyeriss);
        assert!(as64.speedup_vs_cpu > 1.0);
        // AS utilization beats WS for conv-dominated models.
        let ws64 = row
            .deepcam
            .iter()
            .find(|p| p.dataflow == "WS" && p.rows == 64)
            .expect("WS/64 point exists");
        assert!(as64.utilization > ws64.utilization);
        assert!(as64.cycles < ws64.cycles);
    }

    #[test]
    fn more_rows_increase_resnet_speedup_search_only() {
        // The paper reports ResNet18 speedup growing ~8x from 64 to 512
        // rows. On the published CIFAR-shape topology the deep stages have
        // P ≤ 64 output positions, so rows beyond P are unusable and the
        // scaling saturates — we assert meaningful but sub-8x growth and
        // discuss the discrepancy in EXPERIMENTS.md (the full 8x needs
        // ImageNet-sized feature maps; see `zoo::resnet18_imagenet`).
        let row = run_workload(&zoo::resnet18());
        let s = |rows: usize| {
            row.deepcam
                .iter()
                .find(|p| p.dataflow == "AS" && p.rows == rows)
                .expect("point exists")
                .search_only_speedup_vs_eyeriss
        };
        assert!(
            s(512) > 1.3 * s(64),
            "search-only speedup should scale with rows: {} vs {}",
            s(512),
            s(64)
        );
        // The pipelined model must not regress with more rows.
        let p = |rows: usize| {
            row.deepcam
                .iter()
                .find(|q| q.dataflow == "AS" && q.rows == rows)
                .expect("point exists")
                .speedup_vs_eyeriss
        };
        assert!(p(512) >= p(64) * 0.95);
    }

    #[test]
    fn cpu_is_slowest_everywhere() {
        for row in run() {
            assert!(row.cpu_cycles > row.eyeriss_cycles, "{}", row.workload);
        }
    }
}
