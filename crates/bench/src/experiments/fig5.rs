//! Fig. 5 — Top-1 accuracy of the software baseline (BL) vs DeepCAM (DC)
//! across hash lengths, per workload.
//!
//! Substitutions (DESIGN.md §4): scaled-down topology-faithful models
//! trained on synthetic datasets replace the paper's pretrained
//! PyTorch models on MNIST/CIFAR. The measured quantity — how DC
//! accuracy degrades as hash length shrinks, per layer — is preserved.

use deepcam_core::analysis::search_variable_plan_calibrated;
use deepcam_core::{DeepCamEngine, EngineConfig, HashPlan};
use deepcam_data::synth::{generate, SynthConfig};
use deepcam_models::scaled::{scaled_lenet5, scaled_resnet18, scaled_vgg11, scaled_vgg16};
use deepcam_models::train::{evaluate, train, TrainConfig};
use deepcam_models::Cnn;
use deepcam_tensor::rng::seeded_rng;
use deepcam_tensor::{Parallelism, Tensor};

/// Result row for one workload.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Workload label, e.g. `"LeNet5 / SynthDigits"`.
    pub workload: String,
    /// Float ("software baseline", BL) accuracy.
    pub baseline_acc: f32,
    /// DC accuracy at each uniform hash length, `(k, accuracy)`.
    pub uniform: Vec<(usize, f32)>,
    /// DC accuracy under the searched variable plan.
    pub variable_acc: f32,
    /// The searched per-layer plan.
    pub variable_plan: Vec<usize>,
}

/// Experiment scale knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Config {
    /// Train samples per class for the 10-class sets (scaled down for the
    /// 100-class set automatically).
    pub train_per_class: usize,
    /// Test images evaluated per configuration.
    pub eval_images: usize,
    /// Images used inside the variable-plan search.
    pub search_images: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Channel width of the scaled VGG/ResNet variants.
    pub width: usize,
    /// Uniform hash lengths to evaluate.
    pub hash_lengths: Vec<usize>,
    /// Accuracy tolerance for the variable-plan search.
    pub tolerance: f32,
    /// Which workloads to run (subset of 0..4, in Table I order).
    pub workloads: Vec<usize>,
    /// Worker parallelism for DC evaluation (bit-exact at any setting;
    /// `--workers N` on the binary maps to `Parallelism::Fixed(N)`).
    pub parallelism: Parallelism,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Fig5Config {
            train_per_class: 64,
            eval_images: 40,
            search_images: 24,
            epochs: 3,
            width: 8,
            hash_lengths: vec![256, 512, 768, 1024],
            tolerance: 0.03,
            workloads: vec![0, 1, 2, 3],
            parallelism: Parallelism::Auto,
        }
    }
}

impl Fig5Config {
    /// A minimal configuration for unit tests.
    pub fn smoke() -> Self {
        Fig5Config {
            train_per_class: 6,
            eval_images: 12,
            search_images: 8,
            epochs: 1,
            width: 4,
            hash_lengths: vec![256, 1024],
            tolerance: 0.1,
            workloads: vec![0],
            parallelism: Parallelism::Fixed(2),
        }
    }
}

fn subset(images: &Tensor, labels: &[usize], count: usize) -> (Tensor, Vec<usize>) {
    let n = labels.len().min(count);
    let sample: usize = images.shape().dims()[1..].iter().product();
    let mut dims = vec![n];
    dims.extend_from_slice(&images.shape().dims()[1..]);
    (
        Tensor::from_vec(
            images.data()[..n * sample].to_vec(),
            deepcam_tensor::Shape::new(&dims),
        )
        .expect("subset volume consistent"),
        labels[..n].to_vec(),
    )
}

fn run_workload(name: &str, mut model: Cnn, data_cfg: &SynthConfig, cfg: &Fig5Config) -> Fig5Row {
    let (train_set, test_set) = generate(data_cfg);
    let tc = TrainConfig {
        epochs: cfg.epochs,
        batch_size: 32,
        lr: 0.03,
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 7,
    };
    train(&mut model, train_set.images(), train_set.labels(), &tc).expect("training succeeds");
    let (eval_x, eval_y) = subset(test_set.images(), test_set.labels(), cfg.eval_images);
    let baseline_acc = evaluate(&mut model, &eval_x, &eval_y, 16).expect("evaluation succeeds");
    // BN calibration set: training images, never test data.
    let (calib_x, _) = subset(train_set.images(), train_set.labels(), 32);

    let mut uniform = Vec::new();
    for &k in &cfg.hash_lengths {
        let mut engine = DeepCamEngine::compile(
            &model,
            EngineConfig {
                plan: HashPlan::Uniform(k),
                parallelism: cfg.parallelism,
                ..EngineConfig::default()
            },
        )
        .expect("engine compiles");
        engine.calibrate_bn(&calib_x).expect("calibration succeeds");
        let acc = engine
            .evaluate_parallel(&eval_x, &eval_y, 16)
            .expect("dc evaluation succeeds");
        uniform.push((k, acc));
    }

    let (search_x, search_y) = subset(test_set.images(), test_set.labels(), cfg.search_images);
    let search = search_variable_plan_calibrated(
        &model,
        &search_x,
        &search_y,
        &EngineConfig::default(),
        cfg.tolerance,
        16,
        Some(&calib_x),
    )
    .expect("vhl search succeeds");
    let variable_plan = match &search.plan {
        HashPlan::PerLayer(ks) => ks.clone(),
        HashPlan::Uniform(k) => vec![*k],
    };
    let mut engine = DeepCamEngine::compile(
        &model,
        EngineConfig {
            plan: search.plan.clone(),
            parallelism: cfg.parallelism,
            ..EngineConfig::default()
        },
    )
    .expect("engine compiles");
    engine.calibrate_bn(&calib_x).expect("calibration succeeds");
    let variable_acc = engine
        .evaluate_parallel(&eval_x, &eval_y, 16)
        .expect("dc evaluation succeeds");

    Fig5Row {
        workload: name.to_string(),
        baseline_acc,
        uniform,
        variable_acc,
        variable_plan,
    }
}

/// Runs the accuracy experiment for the selected workloads.
pub fn run(cfg: &Fig5Config) -> Vec<Fig5Row> {
    let mut rows = Vec::new();
    for &w in &cfg.workloads {
        let row = match w {
            0 => {
                let mut rng = seeded_rng(100);
                let data = SynthConfig::digits().with_samples(cfg.train_per_class, 20);
                run_workload(
                    "LeNet5 / SynthDigits",
                    scaled_lenet5(&mut rng, 10),
                    &data,
                    cfg,
                )
            }
            1 => {
                let mut rng = seeded_rng(101);
                let data = SynthConfig::objects10().with_samples(cfg.train_per_class, 16);
                run_workload(
                    "VGG11 / SynthObjects10",
                    scaled_vgg11(&mut rng, cfg.width, 10),
                    &data,
                    cfg,
                )
            }
            2 => {
                let mut rng = seeded_rng(102);
                let per_class = (cfg.train_per_class / 8).max(4);
                let data = SynthConfig::objects100().with_samples(per_class, 2);
                run_workload(
                    "VGG16 / SynthObjects100",
                    scaled_vgg16(&mut rng, cfg.width, 100),
                    &data,
                    cfg,
                )
            }
            3 => {
                let mut rng = seeded_rng(103);
                let per_class = (cfg.train_per_class / 8).max(4);
                let data = SynthConfig::objects100().with_samples(per_class, 2);
                run_workload(
                    "ResNet18 / SynthObjects100",
                    scaled_resnet18(&mut rng, cfg.width, 100),
                    &data,
                    cfg,
                )
            }
            other => panic!("workload index {other} out of range"),
        };
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_lenet_runs_end_to_end() {
        let rows = run(&Fig5Config::smoke());
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.baseline_acc >= 0.0 && r.baseline_acc <= 1.0);
        assert_eq!(r.uniform.len(), 2);
        assert_eq!(r.variable_plan.len(), 5); // LeNet5 dot layers
        assert!(r.variable_acc >= 0.0 && r.variable_acc <= 1.0);
    }
}
