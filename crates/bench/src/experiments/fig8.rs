//! Fig. 8 — CAM hardware overhead (search energy + area) across row and
//! column sizes.

use deepcam_cam::{AreaModel, CamConfig, CamCostModel, SUPPORTED_COL_SIZES, SUPPORTED_ROW_SIZES};

/// One `(rows, cols)` design point of Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Point {
    /// CAM rows.
    pub rows: usize,
    /// Word length in bits.
    pub cols: usize,
    /// Energy of one parallel search, picojoules.
    pub search_energy_pj: f64,
    /// Energy of writing one full tile (all rows), picojoules.
    pub write_energy_pj: f64,
    /// Array area in mm² (fixed-width design at this geometry).
    pub area_mm2: f64,
}

/// Sweeps every supported row×column combination.
pub fn run() -> Vec<Fig8Point> {
    let cost = CamCostModel::default();
    let area = AreaModel::default();
    let mut points = Vec::new();
    for &rows in &SUPPORTED_ROW_SIZES {
        for &cols in &SUPPORTED_COL_SIZES {
            let cfg = CamConfig::new(rows, cols).expect("supported sizes");
            let search = cost.search_cost(&cfg);
            let write = cost.write_cost(&cfg, rows);
            points.push(Fig8Point {
                rows,
                cols,
                search_energy_pj: search.energy_j * 1e12,
                write_energy_pj: write.energy_j * 1e12,
                area_mm2: area.fixed_array_area_um2(rows, cols) / 1e6,
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid() {
        let pts = run();
        assert_eq!(pts.len(), 16);
    }

    #[test]
    fn energy_monotone_in_rows_and_cols() {
        let pts = run();
        let at = |r: usize, c: usize| {
            pts.iter()
                .find(|p| p.rows == r && p.cols == c)
                .copied()
                .expect("point exists")
        };
        assert!(at(128, 256).search_energy_pj > at(64, 256).search_energy_pj);
        assert!(at(64, 512).search_energy_pj > at(64, 256).search_energy_pj);
        assert!(at(512, 1024).area_mm2 > at(64, 256).area_mm2);
    }

    #[test]
    fn largest_point_dominates() {
        let pts = run();
        let max = pts
            .iter()
            .max_by(|a, b| a.search_energy_pj.total_cmp(&b.search_energy_pj))
            .expect("non-empty");
        assert_eq!((max.rows, max.cols), (512, 1024));
    }
}
