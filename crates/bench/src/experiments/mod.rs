//! One module per reproduced table/figure.

pub mod fig10;
pub mod fig2;
pub mod fig5;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
