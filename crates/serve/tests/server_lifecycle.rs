//! Connection-lifecycle and fault-tolerance suite for the server and
//! the retrying client: slow-loris reaping vs healthy idle
//! connections, idle timeouts, non-blocking refusals, two-phase
//! graceful drain (deterministic under a `ManualClock`), and the
//! client's retry policy against a hand-rolled scripted server.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use deepcam_core::{DeepCamEngine, EngineConfig, HashPlan};
use deepcam_models::scaled::scaled_lenet5;
use deepcam_serve::protocol::{
    decode_payload, encode_payload, read_frame, write_frame, ErrorKind, Frame, Request, Response,
};
use deepcam_serve::{
    Client, ClientConfig, ManualClock, ModelRegistry, RetryPolicy, Runtime, ServeError, Server,
    ServerConfig, SessionConfig,
};
use deepcam_tensor::rng::seeded_rng;

fn lenet_engine(seed: u64) -> DeepCamEngine {
    let mut rng = seeded_rng(seed);
    let model = scaled_lenet5(&mut rng, 10);
    DeepCamEngine::compile(
        &model,
        EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        },
    )
    .expect("compiles")
}

fn image(seed: u64) -> Vec<f32> {
    let mut rng = seeded_rng(seed);
    (0..784)
        .map(|_| deepcam_tensor::rng::standard_normal(&mut rng) as f32)
        .collect()
}

fn empty_server(cfg: ServerConfig) -> Server {
    let registry = Arc::new(ModelRegistry::new());
    let runtime = Arc::new(Runtime::new(registry, SessionConfig::default()));
    Server::bind("127.0.0.1:0", runtime, cfg).expect("bind")
}

// ------------------------------------------------------------- timeouts

/// A peer trickling one byte per interval resets nothing: the frame
/// deadline is armed at the *first* byte, so the connection is reaped
/// within `read_timeout` — while a connection sitting quietly at a
/// frame boundary (no `idle_timeout`) keeps serving.
#[test]
fn slow_loris_is_reaped_while_an_idle_connection_survives() {
    let mut server = empty_server(ServerConfig {
        read_timeout: Some(Duration::from_millis(150)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // The healthy connection: idle at a frame boundary throughout.
    let mut idle = Client::connect(addr).expect("idle client");
    assert!(idle.list_models().expect("pre-loris round trip").is_empty());

    // The loris: an honest length prefix, then one payload byte every
    // 40 ms. Each gap is under read_timeout, and bytes *are* flowing —
    // but the deadline is absolute per frame, so it still trips.
    let mut loris = TcpStream::connect(addr).expect("loris connect");
    let start = Instant::now();
    loris
        .write_all(&1000u32.to_le_bytes())
        .expect("prefix write");
    let mut reaped = false;
    for _ in 0..200 {
        if loris.write_all(&[0x01]).is_err() {
            reaped = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(40));
    }
    let elapsed = start.elapsed();
    assert!(reaped, "server never reaped the trickling connection");
    assert!(
        elapsed >= Duration::from_millis(100),
        "reaped before read_timeout could have elapsed: {elapsed:?}"
    );
    assert!(elapsed < Duration::from_secs(5), "reap took {elapsed:?}");
    assert!(server.stats().timed_out >= 1);

    // The idle connection was never touched.
    assert!(idle
        .list_models()
        .expect("post-loris round trip")
        .is_empty());
    server.shutdown();
}

/// With an `idle_timeout` set, a connection that never sends a byte is
/// closed quietly — an EOF, not a `Timeout` error frame, and no
/// `timed_out` count (it did nothing wrong mid-frame).
#[test]
fn idle_timeout_reaps_quiet_connections_without_an_error_frame() {
    let mut server = empty_server(ServerConfig {
        idle_timeout: Some(Duration::from_millis(100)),
        read_timeout: Some(Duration::from_secs(10)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let start = Instant::now();
    match read_frame(&mut s) {
        Ok(Frame::Closed) => {}
        other => panic!("expected a quiet close, got {other:?}"),
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(8),
        "idle reap took {elapsed:?}"
    );
    assert_eq!(server.stats().timed_out, 0);
    server.shutdown();
}

// ------------------------------------------------------------- refusals

/// Refusal frames are written off the accept thread: peers that get
/// refused and never read can pile up without stalling accepts, the
/// refusal is still a typed `Overloaded` frame, and the moment a slot
/// frees a new client is served.
#[test]
fn refusals_never_block_the_accept_loop() {
    let mut server = empty_server(ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // Occupy the single slot and prove it.
    let mut occupant = Client::connect(addr).expect("occupant");
    assert!(occupant.list_models().expect("occupant serves").is_empty());

    // A pile of peers that will be refused and never read a byte —
    // the zero-window shape that used to wedge the accept thread.
    let refused: Vec<TcpStream> = (0..6)
        .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("refused peer {i}: {e}")))
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().refused < 6 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.stats().refused, 6, "accept loop stalled on refusals");

    // The refusal is a typed Overloaded frame for peers that do read.
    let mut reader = refused.into_iter().next().expect("one refused peer");
    reader
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match read_frame(&mut reader).expect("refusal frame") {
        Frame::Payload(p) => match decode_payload::<Response>(&p).expect("decodes") {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Overloaded),
            other => panic!("expected Overloaded, got {other:?}"),
        },
        Frame::Closed => panic!("refused peer saw a bare hang-up"),
    }

    // Free the slot: the next client is accepted and served promptly.
    drop(occupant);
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.active_connections() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut fresh = Client::connect(addr).expect("fresh client");
    assert!(fresh.list_models().expect("fresh round trip").is_empty());
    let stats = server.stats();
    assert!(stats.accepted >= 2, "{stats:?}");
    server.shutdown();
}

// ------------------------------------------------------------- drain

/// The graceful-drain contract, deterministic under a shared
/// `ManualClock`: an in-flight request (held queued by the frozen
/// micro-batch deadline) survives `shutdown`, its reply is delivered
/// bit-exact, a request arriving mid-drain gets the typed `Draining`
/// refusal, and only then does the server hard-close.
#[test]
fn graceful_drain_delivers_in_flight_replies() {
    let clock = Arc::new(ManualClock::new());
    let registry = Arc::new(ModelRegistry::new());
    let engine = registry.register("m", lenet_engine(40));
    let runtime = Arc::new(Runtime::with_clock(
        Arc::clone(&registry),
        SessionConfig {
            max_batch: 64,
            max_wait: Duration::from_secs(3600),
            queue_capacity: 64,
        },
        Arc::clone(&clock) as Arc<dyn deepcam_serve::Clock>,
    ));
    let mut server = Server::bind_with_clock(
        "127.0.0.1:0",
        Arc::clone(&runtime),
        ServerConfig {
            // Effectively unbounded: the drain must end because the
            // in-flight request *completes*, not because its budget
            // ran out when the test advances simulated time.
            drain_timeout: Duration::from_secs(100_000_000),
            ..ServerConfig::default()
        },
        Arc::clone(&clock) as Arc<dyn deepcam_serve::Clock>,
    )
    .expect("bind");
    let addr = server.local_addr();

    // In-process reference for the bit-exactness assertion.
    let img = image(800);
    let tensor =
        deepcam_tensor::Tensor::from_vec(img.clone(), deepcam_tensor::Shape::new(&[1, 1, 28, 28]))
            .unwrap();
    let expected = engine.infer(&tensor).unwrap();

    // The in-flight request: queued in the micro-batcher, undispatchable
    // while the clock is frozen (max_wait is an hour).
    let infer_img = img.clone();
    let infer_thread = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("infer client");
        client.infer("m", &[1, 28, 28], &infer_img)
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while runtime.stats("m").map(|s| s.submitted).unwrap_or(0) < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(
        runtime.stats("m").unwrap().submitted,
        1,
        "request never queued"
    );

    // Begin the drain on its own thread: it must block on the in-flight
    // request (busy > 0, frozen clock) rather than complete.
    let shutdown_thread = std::thread::spawn(move || {
        server.shutdown();
        server
    });
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        !shutdown_thread.is_finished(),
        "shutdown completed while a request was in flight"
    );

    // A connection arriving mid-drain is refused with the typed,
    // retryable Draining kind.
    let mut late = Client::connect(addr).expect("mid-drain connect");
    match late.infer("m", &[1, 28, 28], &img) {
        Err(ServeError::Remote { kind, .. }) => assert_eq!(kind, ErrorKind::Draining),
        other => panic!("expected remote Draining, got {other:?}"),
    }

    // Advance simulated time past the batch deadline: the session
    // dispatches, the reply is written, and the drain completes.
    clock.advance(Duration::from_secs(3601));
    let served = infer_thread
        .join()
        .expect("infer thread")
        .expect("in-flight reply must be delivered during drain");
    assert_eq!(served, expected.data(), "drained reply must stay bit-exact");

    let server = shutdown_thread.join().expect("shutdown thread");
    let stats = server.stats();
    assert!(stats.drained >= 1, "{stats:?}");
    assert!(stats.refused >= 1, "{stats:?}");
}

// ------------------------------------------------------------- retries

/// A scripted one-connection server: answers `script` responses to
/// consecutive frames on one accepted connection, then exits.
fn scripted_server(listener: TcpListener, script: Vec<Response>) -> std::thread::JoinHandle<usize> {
    std::thread::spawn(move || {
        let (mut s, _) = listener.accept().expect("accept");
        let mut frames = 0usize;
        for resp in script {
            match read_frame(&mut s) {
                Ok(Frame::Payload(p)) => {
                    decode_payload::<Request>(&p).expect("well-formed request");
                    frames += 1;
                    write_frame(&mut s, &encode_payload(&resp)).expect("reply");
                }
                _ => break,
            }
        }
        frames
    })
}

fn quick_retries(max_attempts: u32) -> ClientConfig {
    ClientConfig {
        retry: RetryPolicy {
            max_attempts,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            overall_deadline: Some(Duration::from_secs(30)),
            seed: 11,
        },
        ..ClientConfig::default()
    }
}

#[test]
fn client_retries_overloaded_until_success() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let overloaded = Response::Error {
        kind: ErrorKind::Overloaded,
        message: "full".into(),
    };
    let script = vec![
        overloaded.clone(),
        overloaded,
        Response::Logits(vec![1.0, 2.0]),
    ];
    let served = scripted_server(listener, script);

    let mut client = Client::connect_with(addr, quick_retries(5)).expect("connect");
    let logits = client.infer("m", &[1, 2], &[0.0, 0.0]).expect("retried");
    assert_eq!(logits, vec![1.0, 2.0]);
    assert_eq!(client.last_call_attempts(), 3);
    assert_eq!(served.join().expect("script"), 3);
}

#[test]
fn client_reconnects_after_a_transport_failure() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        // Connection 1: read the request, hang up without answering.
        let (mut s, _) = listener.accept().expect("accept 1");
        let _ = read_frame(&mut s);
        drop(s);
        // Connection 2: serve properly.
        let (mut s, _) = listener.accept().expect("accept 2");
        match read_frame(&mut s) {
            Ok(Frame::Payload(_)) => {
                write_frame(&mut s, &encode_payload(&Response::Logits(vec![9.0]))).expect("reply");
            }
            other => panic!("expected a frame on the reconnect, got {other:?}"),
        }
    });

    let mut client = Client::connect_with(addr, quick_retries(3)).expect("connect");
    let logits = client.infer("m", &[1, 1], &[0.0]).expect("reconnected");
    assert_eq!(logits, vec![9.0]);
    assert_eq!(client.last_call_attempts(), 2);
    server.join().expect("server thread");
}

#[test]
fn typed_request_errors_are_not_retried() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let served = scripted_server(
        listener,
        vec![Response::Error {
            kind: ErrorKind::NotFound,
            message: "no such model".into(),
        }],
    );

    // Generous retry budget — it must not be used for NotFound.
    let mut client = Client::connect_with(addr, quick_retries(5)).expect("connect");
    match client.infer("ghost", &[1, 1], &[0.0]) {
        Err(ServeError::Remote { kind, .. }) => assert_eq!(kind, ErrorKind::NotFound),
        other => panic!("expected remote NotFound, got {other:?}"),
    }
    assert_eq!(client.last_call_attempts(), 1);
    assert_eq!(served.join().expect("script"), 1, "exactly one frame sent");
}

#[test]
fn no_retry_policy_fails_fast_on_overload() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let served = scripted_server(
        listener,
        vec![Response::Error {
            kind: ErrorKind::Overloaded,
            message: "full".into(),
        }],
    );

    let mut client = Client::connect(addr).expect("connect");
    assert!(matches!(
        client.infer("m", &[1, 1], &[0.0]),
        Err(ServeError::Remote {
            kind: ErrorKind::Overloaded,
            ..
        })
    ));
    assert_eq!(client.last_call_attempts(), 1);
    assert_eq!(served.join().expect("script"), 1);
}

// ------------------------------------------------------------- stats

/// The robustness counters travel the wire: `Request::ServerStats`
/// returns the same snapshot the in-process accessor reports.
#[test]
fn server_stats_are_served_over_the_wire() {
    let mut server = empty_server(ServerConfig::default());
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    assert!(client.list_models().expect("round trip").is_empty());
    let wire = client.server_stats().expect("server stats");
    assert!(wire.accepted >= 1, "{wire:?}");
    assert_eq!(wire.refused, 0);
    assert_eq!(wire.timed_out, 0);
    assert_eq!(wire.drained, 0);
    let local = server.stats();
    assert_eq!(wire.accepted, local.accepted);
    assert_eq!(wire.protocol_errors, local.protocol_errors);
    server.shutdown();
}
