//! Protocol-v2 negotiation and multiplexing, end to end: version
//! downgrade against v1-only offers, pipelined v2 requests on both
//! connection cores, and — the point of the request ids — out-of-order
//! reply delivery proven bit-exact under a `ManualClock` on the epoll
//! core.

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use deepcam_core::{DeepCamEngine, EngineConfig, HashPlan};
use deepcam_models::scaled::scaled_lenet5;
use deepcam_serve::protocol::{
    decode_payload, encode_payload, read_frame, write_frame, Frame, Request, Response,
    MAX_PROTOCOL_VERSION, PROTOCOL_V1, PROTOCOL_V2,
};
use deepcam_serve::{
    Client, ClientConfig, CoreSelect, ManualClock, ModelRegistry, MuxClient, Runtime, Server,
    ServerConfig, SessionConfig,
};
use deepcam_tensor::rng::seeded_rng;

fn lenet_engine(seed: u64) -> DeepCamEngine {
    let mut rng = seeded_rng(seed);
    let model = scaled_lenet5(&mut rng, 10);
    DeepCamEngine::compile(
        &model,
        EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        },
    )
    .expect("compiles")
}

fn image(seed: u64) -> Vec<f32> {
    let mut rng = seeded_rng(seed);
    (0..784)
        .map(|_| deepcam_tensor::rng::standard_normal(&mut rng) as f32)
        .collect()
}

fn expected_logits(engine: &DeepCamEngine, img: &[f32]) -> Vec<f32> {
    let tensor =
        deepcam_tensor::Tensor::from_vec(img.to_vec(), deepcam_tensor::Shape::new(&[1, 1, 28, 28]))
            .expect("tensor");
    engine
        .infer(&tensor)
        .expect("reference inference")
        .data()
        .to_vec()
}

fn lenet_server(core: CoreSelect) -> (Server, Arc<DeepCamEngine>) {
    let registry = Arc::new(ModelRegistry::new());
    let engine = registry.register("lenet", lenet_engine(77));
    let runtime = Arc::new(Runtime::new(registry, SessionConfig::default()));
    let server = Server::bind(
        "127.0.0.1:0",
        runtime,
        ServerConfig {
            core,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    (server, engine)
}

fn cores_under_test() -> Vec<CoreSelect> {
    if deepcam_serve::epoll_available() {
        vec![CoreSelect::Threads, CoreSelect::Epoll]
    } else {
        vec![CoreSelect::Threads]
    }
}

/// A v1 client (the default) never sends a `Hello` and round-trips
/// unchanged on both cores — the downgrade path is "nothing happens".
#[test]
fn v1_clients_work_unchanged_on_both_cores() {
    for core in cores_under_test() {
        let (mut server, engine) = lenet_server(core);
        let addr = server.local_addr();
        let mut client = Client::connect(addr).expect("connect");
        assert_eq!(client.negotiated_version(), Some(PROTOCOL_V1));
        let img = image(11);
        let logits = client.infer("lenet", &[1, 28, 28], &img).expect("infer");
        assert_eq!(logits, expected_logits(&engine, &img), "{core:?}");
        server.shutdown();
    }
}

/// A v2-offering client negotiates v2, round-trips bit-exact, and the
/// negotiation survives a reconnect.
#[test]
fn v2_negotiation_round_trips_on_both_cores() {
    for core in cores_under_test() {
        let (mut server, engine) = lenet_server(core);
        let addr = server.local_addr();
        let mut client = Client::connect_with(
            addr,
            ClientConfig {
                version: PROTOCOL_V2,
                ..ClientConfig::default()
            },
        )
        .expect("connect");
        assert_eq!(client.negotiated_version(), Some(PROTOCOL_V2), "{core:?}");
        let img = image(23);
        for _ in 0..3 {
            let logits = client.infer("lenet", &[1, 28, 28], &img).expect("infer");
            assert_eq!(logits, expected_logits(&engine, &img), "{core:?}");
        }
        server.shutdown();
    }
}

/// Offering more than the server speaks clamps to the server's
/// maximum; offering exactly v1 locks v1 framing on the same wire.
#[test]
fn hello_offers_clamp_to_the_server_maximum() {
    let (mut server, _) = lenet_server(CoreSelect::Auto);
    let addr = server.local_addr();

    let mux = MuxClient::connect(addr).expect("mux connect");
    assert_eq!(mux.negotiated_version(), MAX_PROTOCOL_VERSION);

    // A raw Hello offering u32::MAX comes back clamped, not errored.
    let mut s = TcpStream::connect(addr).expect("raw connect");
    write_frame(
        &mut s,
        &encode_payload(&Request::Hello {
            max_version: u32::MAX,
        }),
    )
    .expect("hello write");
    match read_frame(&mut s).expect("hello reply") {
        Frame::Payload(p) => match decode_payload::<Response>(&p).expect("decode") {
            Response::Hello { version } => assert_eq!(version, MAX_PROTOCOL_VERSION),
            other => panic!("expected Hello, got {other:?}"),
        },
        Frame::Closed => panic!("server closed on a valid Hello"),
    }

    // Offering exactly 1 keeps the whole connection v1-framed.
    let mut s = TcpStream::connect(addr).expect("raw v1 connect");
    write_frame(
        &mut s,
        &encode_payload(&Request::Hello {
            max_version: PROTOCOL_V1,
        }),
    )
    .expect("hello write");
    match read_frame(&mut s).expect("hello reply") {
        Frame::Payload(p) => match decode_payload::<Response>(&p).expect("decode") {
            Response::Hello { version } => assert_eq!(version, PROTOCOL_V1),
            other => panic!("expected Hello, got {other:?}"),
        },
        Frame::Closed => panic!("server closed on a v1 Hello"),
    }
    write_frame(&mut s, &encode_payload(&Request::ListModels)).expect("v1 request");
    match read_frame(&mut s).expect("v1 reply") {
        Frame::Payload(p) => match decode_payload::<Response>(&p).expect("v1 decode") {
            Response::Models(models) => assert_eq!(models.len(), 1),
            other => panic!("expected Models, got {other:?}"),
        },
        Frame::Closed => panic!("connection must keep serving after a v1 Hello"),
    }
    server.shutdown();
}

/// Pipelining through [`MuxClient`]: a window of requests written
/// before any reply is read, every reply attributed by id and
/// bit-exact, on both cores. (The threads core serves them serially;
/// the epoll core keeps them all in flight — the wire contract is the
/// same.)
#[test]
fn pipelined_v2_requests_all_answer_bit_exact_on_both_cores() {
    const WINDOW: usize = 8;
    for core in cores_under_test() {
        let (mut server, engine) = lenet_server(core);
        let addr = server.local_addr();
        let mut mux = MuxClient::connect(addr).expect("mux connect");

        let images: Vec<Vec<f32>> = (0..WINDOW as u64).map(|i| image(100 + i)).collect();
        let mut ids = Vec::new();
        for img in &images {
            ids.push(
                mux.submit_infer("lenet", &[1, 28, 28], img)
                    .expect("submit"),
            );
        }
        let mut replies: HashMap<u64, Vec<f32>> = HashMap::new();
        for _ in 0..WINDOW {
            let (id, resp) = mux.recv().expect("reply");
            match resp {
                Response::Logits(logits) => {
                    assert!(replies.insert(id, logits).is_none(), "duplicate id {id}");
                }
                other => panic!("expected Logits, got {other:?}"),
            }
        }
        for (id, img) in ids.iter().zip(&images) {
            assert_eq!(
                replies.get(id),
                Some(&expected_logits(&engine, img)),
                "{core:?} request {id}"
            );
        }
        server.shutdown();
    }
}

/// The multiplexing payoff, made deterministic: three requests go out
/// pipelined on one connection; the micro-batcher (frozen under a
/// `ManualClock`) completes the later two *first*, and only a clock
/// advance releases the first. The replies arrive out of submission
/// order, each attributed by request id and bit-exact.
#[cfg(target_os = "linux")]
#[test]
fn out_of_order_replies_are_attributed_by_request_id() {
    let clock = Arc::new(ManualClock::new());
    let registry = Arc::new(ModelRegistry::new());
    let slow = registry.register("slow", lenet_engine(40));
    let fast = registry.register("fast", lenet_engine(41));
    let runtime = Arc::new(Runtime::with_clock(
        Arc::clone(&registry),
        SessionConfig {
            // Batches dispatch only when full (2) or when simulated
            // time passes an hour: "slow" holds one request, "fast"
            // fills immediately.
            max_batch: 2,
            max_wait: Duration::from_secs(3600),
            queue_capacity: 64,
        },
        Arc::clone(&clock) as Arc<dyn deepcam_serve::Clock>,
    ));
    let mut server = Server::bind_with_clock(
        "127.0.0.1:0",
        Arc::clone(&runtime),
        ServerConfig {
            core: CoreSelect::Epoll,
            ..ServerConfig::default()
        },
        Arc::clone(&clock) as Arc<dyn deepcam_serve::Clock>,
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut mux = MuxClient::connect(addr).expect("mux connect");
    let held_img = image(900);
    let fast_imgs = [image(901), image(902)];
    let held_id = mux
        .submit_infer("slow", &[1, 28, 28], &held_img)
        .expect("submit held");
    let fast_ids = [
        mux.submit_infer("fast", &[1, 28, 28], &fast_imgs[0])
            .expect("submit fast 0"),
        mux.submit_infer("fast", &[1, 28, 28], &fast_imgs[1])
            .expect("submit fast 1"),
    ];

    // The "fast" batch fills and dispatches with the clock frozen, so
    // the first two replies answer the *later* submissions.
    let mut early = HashMap::new();
    for _ in 0..2 {
        let (id, resp) = mux.recv().expect("early reply");
        assert_ne!(id, held_id, "held request answered while clock frozen");
        match resp {
            Response::Logits(logits) => {
                early.insert(id, logits);
            }
            other => panic!("expected Logits, got {other:?}"),
        }
    }
    for (id, img) in fast_ids.iter().zip(&fast_imgs) {
        assert_eq!(
            early.get(id),
            Some(&expected_logits(&fast, img)),
            "request {id}"
        );
    }

    // Releasing simulated time dispatches the held batch; its reply
    // arrives last, attributed to the *first* submission.
    clock.advance(Duration::from_secs(3601));
    let (id, resp) = mux.recv().expect("held reply");
    assert_eq!(id, held_id);
    match resp {
        Response::Logits(logits) => assert_eq!(logits, expected_logits(&slow, &held_img)),
        other => panic!("expected Logits, got {other:?}"),
    }
    server.shutdown();
}
