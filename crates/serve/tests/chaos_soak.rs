//! The chaos soak: seeded fault plans thrown at a live server.
//!
//! Every plan is a pure function of its seed — a failing iteration is
//! replayable from its seed alone. The contract asserted per plan:
//! the server never panics, every reply that *does* complete is
//! bit-identical to in-process inference, and a clean client still
//! round-trips immediately after the chaos connection.
//!
//! `DEEPCAM_STRESS_ITERS` scales the plan count (CI runs a small count
//! in the build-test matrix and a larger one beside the sanitizer
//! legs); Miri runs a reduced set through the same code.

use std::sync::Arc;
use std::time::{Duration, Instant};

use deepcam_core::{DeepCamEngine, EngineConfig, HashPlan};
use deepcam_models::scaled::scaled_lenet5;
use deepcam_serve::chaos::{run_soak, SoakConfig};
use deepcam_serve::{Client, ModelRegistry, Runtime, Server, ServerConfig, SessionConfig};
use deepcam_tensor::rng::seeded_rng;

fn lenet_engine(seed: u64) -> DeepCamEngine {
    let mut rng = seeded_rng(seed);
    let model = scaled_lenet5(&mut rng, 10);
    DeepCamEngine::compile(
        &model,
        EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        },
    )
    .expect("compiles")
}

fn image(seed: u64) -> Vec<f32> {
    let mut rng = seeded_rng(seed);
    (0..784)
        .map(|_| deepcam_tensor::rng::standard_normal(&mut rng) as f32)
        .collect()
}

fn soak_plans(default: usize) -> usize {
    if cfg!(miri) {
        return 2;
    }
    std::env::var("DEEPCAM_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn seeded_chaos_soak_never_corrupts_service() {
    let plans = soak_plans(100);
    let registry = Arc::new(ModelRegistry::new());
    registry.register("lenet", lenet_engine(77));
    let runtime = Arc::new(Runtime::new(
        Arc::clone(&registry),
        SessionConfig::default(),
    ));
    let mut server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&runtime),
        ServerConfig {
            // Short enough that injected stalls and mid-frame
            // disconnects are reaped quickly, long enough that a
            // trickled-but-progressing frame completes.
            read_timeout: Some(Duration::from_millis(250)),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // Reference logits straight through the runtime — the soak holds
    // every completed chaos reply to these, bit for bit.
    let images: Vec<Vec<f32>> = (0..4).map(|i| image(900 + i)).collect();
    let expected: Vec<Vec<f32>> = images
        .iter()
        .map(|img| {
            runtime
                .infer("lenet", &[1, 28, 28], img)
                .expect("reference inference")
        })
        .collect();

    let report = run_soak(
        addr,
        &SoakConfig {
            plans,
            base_seed: 0xC4A0_5000,
            model: "lenet".into(),
            dims: vec![1, 28, 28],
            images: images.clone(),
            expected: expected.clone(),
            reply_timeout: Duration::from_secs(10),
        },
    )
    .expect("soak harness ran");

    assert_eq!(report.plans_run, plans);
    assert_eq!(report.mismatched, 0, "served logits diverged: {report:?}");
    assert_eq!(
        report.clean_failures, 0,
        "a clean client failed after chaos: {report:?}"
    );
    assert_eq!(
        report.completed + report.typed_errors + report.aborted,
        plans,
        "tallies must partition the plans: {report:?}"
    );
    assert!(report.completed > 0, "no plan ever completed: {report:?}");

    // Liveness: chaos connections must not linger server-side. Each
    // plan opened exactly one chaos and one clean connection, all of
    // which close client-side, so the server drains to zero.
    let deadline = Instant::now() + Duration::from_secs(20);
    while server.active_connections() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        server.active_connections(),
        0,
        "chaos connections leaked server-side"
    );
    let stats = server.stats();
    assert_eq!(stats.accepted, 2 * plans as u64, "{stats:?}");
    assert_eq!(stats.refused, 0, "{stats:?}");

    // Final bit-exactness check through the real client.
    let mut client = Client::connect(addr).expect("clean client");
    let img = images.first().expect("images");
    let exp = expected.first().expect("expected");
    let logits = client
        .infer("lenet", &[1, 28, 28], img)
        .expect("round trip");
    assert_eq!(&logits, exp, "post-soak serving diverged");
    drop(client);
    server.shutdown();
}
