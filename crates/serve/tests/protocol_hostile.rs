//! Adversarial wire-protocol suite, mirroring the corruption half of
//! `tests/compiled_model_roundtrip.rs`: random truncation, oversized
//! length prefixes, garbage frames and over-limit requests must all
//! come back as **typed errors** — never a panic, never an allocation
//! sized by attacker-controlled bytes — and a server that has seen all
//! of it must still answer a well-formed request.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use deepcam_serve::protocol::{
    decode_payload, encode_payload, read_frame, write_frame, ErrorKind, Frame, Request, Response,
    MAX_FRAME_BYTES, MAX_IMAGE_ELEMS, MAX_MODEL_ID_BYTES,
};
use deepcam_serve::{
    Client, ModelRegistry, Runtime, ServeError, Server, ServerConfig, SessionConfig,
};
use proptest::prelude::*;

fn sample_infer() -> Request {
    Request::Infer {
        model: "lenet5".into(),
        dims: vec![1, 28, 28],
        data: (0..784).map(|i| i as f32 * 0.25 - 7.0).collect(),
    }
}

#[test]
fn every_truncation_of_every_frame_is_a_typed_error() {
    for request in [
        sample_infer(),
        Request::ListModels,
        Request::Stats { model: "m".into() },
    ] {
        let bytes = encode_payload(&request);
        // Full payload decodes; every proper prefix fails loudly.
        assert!(decode_payload::<Request>(&bytes).is_ok());
        for cut in 0..bytes.len() {
            assert!(
                decode_payload::<Request>(&bytes[..cut]).is_err(),
                "cut {cut} of {} decoded",
                bytes.len()
            );
        }
    }
}

#[test]
fn oversized_length_prefix_never_allocates_the_claim() {
    // A prefix claiming u32::MAX (and anything over MAX_FRAME_BYTES) is
    // rejected before any payload allocation.
    for claim in [
        u32::MAX,
        (MAX_FRAME_BYTES as u32) + 1,
        u32::MAX - 1,
        0, // zero-length frames are meaningless too
    ] {
        let mut cursor = std::io::Cursor::new(claim.to_le_bytes().to_vec());
        assert!(
            matches!(read_frame(&mut cursor), Err(ServeError::Protocol(_))),
            "claim {claim}"
        );
    }
    // An in-limit claim with almost no bytes behind it: the reader may
    // allocate only in arrival-sized steps, then reports I/O.
    let mut wire = (MAX_FRAME_BYTES as u32).to_le_bytes().to_vec();
    wire.extend_from_slice(&[0u8; 100]);
    let mut cursor = std::io::Cursor::new(wire);
    assert!(matches!(read_frame(&mut cursor), Err(ServeError::Io(_))));
}

#[test]
fn over_limit_requests_are_rejected_structurally() {
    // Model id over the cap.
    let huge_id = "x".repeat(MAX_MODEL_ID_BYTES + 1);
    let bytes = encode_payload(&Request::Stats { model: huge_id });
    assert!(matches!(
        decode_payload::<Request>(&bytes),
        Err(ServeError::Protocol(_))
    ));
    // Image element count over the cap (dims are honest, just huge).
    let bytes = encode_payload(&Request::Infer {
        model: "m".into(),
        dims: vec![MAX_IMAGE_ELEMS + 1],
        data: Vec::new(),
    });
    assert!(matches!(
        decode_payload::<Request>(&bytes),
        Err(ServeError::Protocol(_))
    ));
    // Too many dims.
    let bytes = encode_payload(&Request::Infer {
        model: "m".into(),
        dims: vec![1; 9],
        data: vec![0.0],
    });
    assert!(decode_payload::<Request>(&bytes).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn garbage_payloads_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Whatever comes back must be a value or a typed error — the
        // test passes by not panicking (and proves no over-allocation
        // indirectly: the decoder caps Vec preallocation at remaining
        // bytes).
        let _ = decode_payload::<Request>(&bytes);
        let _ = decode_payload::<Response>(&bytes);
    }

    #[test]
    fn random_flips_in_valid_frames_never_panic(
        flip_at in 0usize..4096,
        flip_to in any::<u8>(),
    ) {
        let mut bytes = encode_payload(&sample_infer());
        let idx = flip_at % bytes.len();
        bytes[idx] = flip_to;
        let _ = decode_payload::<Request>(&bytes);
    }
}

/// End-to-end: a server that has absorbed garbage bytes, an oversized
/// prefix, and a truncated frame still serves the next well-formed
/// connection.
#[test]
fn server_survives_hostile_connections() {
    let registry = Arc::new(ModelRegistry::new());
    let runtime = Arc::new(Runtime::new(registry, SessionConfig::default()));
    let mut server = Server::bind("127.0.0.1:0", runtime, ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // 1. Raw garbage that parses as a huge length prefix.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&[0xFF; 64]).unwrap();
        // The server answers with a Protocol error frame before closing.
        match read_frame(&mut s) {
            Ok(Frame::Payload(p)) => match decode_payload::<Response>(&p) {
                Ok(Response::Error { .. }) => {}
                other => panic!("expected error frame, got {other:?}"),
            },
            other => panic!("expected error frame, got {other:?}"),
        }
    }

    // 2. A well-formed frame whose payload is garbage: typed error,
    //    connection stays usable.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        write_frame(&mut s, &[0xAB; 32]).unwrap();
        match read_frame(&mut s).unwrap() {
            Frame::Payload(p) => match decode_payload::<Response>(&p).unwrap() {
                Response::Error { .. } => {}
                other => panic!("expected error, got {other:?}"),
            },
            Frame::Closed => panic!("connection should survive a garbage payload"),
        }
        // Same connection, now a valid request.
        write_frame(&mut s, &encode_payload(&Request::ListModels)).unwrap();
        match read_frame(&mut s).unwrap() {
            Frame::Payload(p) => match decode_payload::<Response>(&p).unwrap() {
                Response::Models(models) => assert!(models.is_empty()),
                other => panic!("expected models, got {other:?}"),
            },
            Frame::Closed => panic!("connection closed after valid request"),
        }
    }

    // 3. A truncated frame (length prefix promises more than is sent,
    //    then the client hangs up): the server just drops the
    //    connection and keeps serving others.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&100u32.to_le_bytes()).unwrap();
        s.write_all(&[1, 2, 3]).unwrap();
    }

    // 4. Fresh well-formed connection still works.
    let mut client = Client::connect(addr).unwrap();
    assert!(client.list_models().unwrap().is_empty());
    // Unknown model id comes back as the typed NotFound kind.
    match client.infer("nope", &[1, 2, 2], &[0.0; 4]) {
        Err(ServeError::Remote { kind, .. }) => {
            assert_eq!(kind, deepcam_serve::protocol::ErrorKind::NotFound);
        }
        other => panic!("expected remote NotFound, got {other:?}"),
    }
    server.shutdown();
}

/// One clean `ListModels` round trip proving the server still serves.
fn assert_still_serves(addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr).expect("fresh connection");
    assert!(client.list_models().expect("clean round trip").is_empty());
}

/// The slow-loris shape at the protocol level: a length prefix plus a
/// few payload bytes, then silence. The connection must be reaped
/// within `read_timeout` with a typed `Timeout` frame — not pinned
/// forever against `max_connections` — and the server must keep
/// serving afterwards.
#[test]
fn half_frame_then_stall_is_reaped_with_a_typed_timeout() {
    let registry = Arc::new(ModelRegistry::new());
    let runtime = Arc::new(Runtime::new(registry, SessionConfig::default()));
    let cfg = ServerConfig {
        read_timeout: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    };
    let mut server = Server::bind("127.0.0.1:0", runtime, cfg).unwrap();
    let addr = server.local_addr();

    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&10u32.to_le_bytes()).unwrap();
    s.write_all(&[1, 2, 3]).unwrap(); // 3 of 10 promised bytes, then stall
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    match read_frame(&mut s) {
        Ok(Frame::Payload(p)) => match decode_payload::<Response>(&p).unwrap() {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Timeout),
            other => panic!("expected Timeout error frame, got {other:?}"),
        },
        other => panic!("expected typed timeout frame, got {other:?}"),
    }
    // After the typed answer the server hangs up.
    assert!(matches!(read_frame(&mut s), Ok(Frame::Closed) | Err(_)));
    assert!(server.stats().timed_out >= 1);

    assert_still_serves(addr);
    server.shutdown();
}

/// The version handshake under hostile inputs: a zero offer is
/// answered once with a typed error and a hang-up (the connection's
/// version would be ambiguous), a truncated `Hello` payload is a typed
/// error the connection survives, and a mid-stream `Hello` is refused
/// while the connection keeps serving — none of it takes the server
/// down.
#[test]
fn hostile_hellos_never_take_the_server_down() {
    use deepcam_serve::protocol::{MAX_PROTOCOL_VERSION, PROTOCOL_V1};

    let registry = Arc::new(ModelRegistry::new());
    let runtime = Arc::new(Runtime::new(registry, SessionConfig::default()));
    let mut server = Server::bind("127.0.0.1:0", runtime, ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // 1. Hello { max_version: 0 }: typed error, then hang-up.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        write_frame(&mut s, &encode_payload(&Request::Hello { max_version: 0 })).unwrap();
        match read_frame(&mut s).unwrap() {
            Frame::Payload(p) => match decode_payload::<Response>(&p).unwrap() {
                Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Protocol),
                other => panic!("expected typed error, got {other:?}"),
            },
            Frame::Closed => panic!("version 0 must be answered before the hang-up"),
        }
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        assert!(matches!(read_frame(&mut s), Ok(Frame::Closed) | Err(_)));
    }

    // 2. A truncated Hello payload (the tag byte alone): typed error,
    //    frame boundaries intact, connection survives into real work.
    {
        let full = encode_payload(&Request::Hello {
            max_version: MAX_PROTOCOL_VERSION,
        });
        for cut in 1..full.len() {
            assert!(
                decode_payload::<Request>(&full[..cut]).is_err(),
                "cut {cut}"
            );
        }
        let mut s = TcpStream::connect(addr).unwrap();
        write_frame(&mut s, &full[..1]).unwrap();
        match read_frame(&mut s).unwrap() {
            Frame::Payload(p) => match decode_payload::<Response>(&p).unwrap() {
                Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Protocol),
                other => panic!("expected typed error, got {other:?}"),
            },
            Frame::Closed => panic!("truncated Hello payload must not kill the connection"),
        }
        // An undecodable first frame locks v1; the connection serves on.
        write_frame(&mut s, &encode_payload(&Request::ListModels)).unwrap();
        match read_frame(&mut s).unwrap() {
            Frame::Payload(p) => match decode_payload::<Response>(&p).unwrap() {
                Response::Models(models) => assert!(models.is_empty()),
                other => panic!("expected Models, got {other:?}"),
            },
            Frame::Closed => panic!("connection closed after the typed error"),
        }
    }

    // 3. Hello after the first frame: a protocol violation answered
    //    with a typed error, but frame boundaries are intact — the
    //    connection keeps serving v1.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        write_frame(&mut s, &encode_payload(&Request::ListModels)).unwrap();
        assert!(matches!(read_frame(&mut s).unwrap(), Frame::Payload(_)));
        write_frame(
            &mut s,
            &encode_payload(&Request::Hello {
                max_version: PROTOCOL_V1,
            }),
        )
        .unwrap();
        match read_frame(&mut s).unwrap() {
            Frame::Payload(p) => match decode_payload::<Response>(&p).unwrap() {
                Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Protocol),
                other => panic!("expected typed error, got {other:?}"),
            },
            Frame::Closed => panic!("mid-stream Hello must not kill the connection"),
        }
        write_frame(&mut s, &encode_payload(&Request::ListModels)).unwrap();
        assert!(matches!(read_frame(&mut s).unwrap(), Frame::Payload(_)));
    }

    assert!(server.stats().protocol_errors >= 3);
    assert_still_serves(addr);
    server.shutdown();
}

/// A client that sends the length prefix and then disconnects before
/// any payload byte: a mid-frame EOF the server closes quietly, and
/// which must never take the server down.
#[test]
fn disconnect_between_prefix_and_payload_is_survived() {
    let registry = Arc::new(ModelRegistry::new());
    let runtime = Arc::new(Runtime::new(registry, SessionConfig::default()));
    let mut server = Server::bind("127.0.0.1:0", runtime, ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    for _ in 0..8 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&64u32.to_le_bytes()).unwrap();
        drop(s); // hang up with the frame half-promised
        assert_still_serves(addr);
    }
    // Mid-frame EOFs are I/O hangups, not protocol violations or
    // timeouts — the robustness counters must agree.
    let stats = server.stats();
    assert_eq!(stats.timed_out, 0);
    assert_eq!(stats.protocol_errors, 0);
    server.shutdown();
}
