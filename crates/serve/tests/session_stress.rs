//! Concurrency stress for the micro-batching session: many client
//! threads race `submit`/`wait` against the dispatcher (and against
//! `shutdown`), checking that every accepted request resolves, every
//! rejection is a typed error, batching never changes results, and the
//! stats counters reconcile exactly. This is the suite the ThreadSanitizer
//! CI leg runs under `-Zsanitizer=thread`; Miri runs a reduced set.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use deepcam_core::{DeepCamEngine, EngineConfig, HashPlan};
use deepcam_models::scaled::scaled_lenet5;
use deepcam_serve::{ServeError, Session, SessionConfig};
use deepcam_tensor::rng::seeded_rng;

fn lenet_engine(seed: u64) -> DeepCamEngine {
    let mut rng = seeded_rng(seed);
    let model = scaled_lenet5(&mut rng, 10);
    DeepCamEngine::compile(
        &model,
        EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        },
    )
    .expect("compiles")
}

fn image(seed: u64) -> Vec<f32> {
    let mut rng = seeded_rng(seed);
    (0..784)
        .map(|_| deepcam_tensor::rng::standard_normal(&mut rng) as f32)
        .collect()
}

fn per_thread_iters(default: usize) -> usize {
    if cfg!(miri) {
        return 2;
    }
    std::env::var("DEEPCAM_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn concurrent_submitters_complete_or_get_typed_overload() {
    let session = Session::new(
        Arc::new(lenet_engine(21)),
        SessionConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            queue_capacity: 16,
        },
    );
    let completed = AtomicUsize::new(0);
    let rejected = AtomicUsize::new(0);
    let threads = 4u64;
    let iters = per_thread_iters(24);
    std::thread::scope(|s| {
        for t in 0..threads {
            let session = &session;
            let completed = &completed;
            let rejected = &rejected;
            s.spawn(move || {
                let img = image(900 + t);
                for _ in 0..iters {
                    match session.submit(&[1, 28, 28], &img) {
                        Ok(pending) => {
                            let logits = pending.wait().expect("accepted request resolves");
                            assert_eq!(logits.len(), 10);
                            completed.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(ServeError::Overloaded { queued, capacity }) => {
                            assert!(queued >= capacity, "typed overload must be truthful");
                            rejected.fetch_add(1, Ordering::SeqCst);
                            std::thread::yield_now();
                        }
                        Err(other) => panic!("unexpected submit error: {other:?}"),
                    }
                }
            });
        }
    });
    let stats = session.stats();
    assert_eq!(stats.submitted, completed.load(Ordering::SeqCst) as u64);
    assert_eq!(stats.completed, completed.load(Ordering::SeqCst) as u64);
    assert_eq!(stats.rejected, rejected.load(Ordering::SeqCst) as u64);
    assert_eq!(session.queue_len(), 0, "everything drained");
}

#[test]
fn batched_results_are_bit_identical_to_the_lone_request() {
    let session = Session::new(
        Arc::new(lenet_engine(22)),
        SessionConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            queue_capacity: 256,
        },
    );
    let img = image(1000);
    // A lone request (batch of 1) fixes the reference logits.
    let reference = session
        .submit(&[1, 28, 28], &img)
        .expect("lone submit")
        .wait()
        .expect("lone request resolves");
    // Racing duplicates of the same image coalesce into batches of every
    // occupancy 1..=8 over the run; each answer must be bit-identical.
    let iters = per_thread_iters(16);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let session = &session;
            let reference = &reference;
            let img = &img;
            s.spawn(move || {
                for _ in 0..iters {
                    let logits = session
                        .submit(&[1, 28, 28], img)
                        .expect("capacity 256 never overloads")
                        .wait()
                        .expect("resolves");
                    assert_eq!(&logits, reference, "batching changed a result");
                }
            });
        }
    });
    assert!(session.stats().max_occupancy >= 1);
}

#[test]
fn shutdown_races_submitters_without_losing_accepted_requests() {
    for round in 0..per_thread_iters(8) as u64 {
        let session = Arc::new(Session::new(
            Arc::new(lenet_engine(23)),
            SessionConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(1),
                queue_capacity: 256,
            },
        ));
        let accepted = AtomicUsize::new(0);
        let resolved = AtomicUsize::new(0);
        let refused = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let session = &session;
                let accepted = &accepted;
                let resolved = &resolved;
                let refused = &refused;
                s.spawn(move || {
                    let img = image(1100 + round * 10 + t);
                    loop {
                        match session.submit(&[1, 28, 28], &img) {
                            Ok(pending) => {
                                accepted.fetch_add(1, Ordering::SeqCst);
                                // Accepted before (or during) shutdown:
                                // the flush guarantee says this resolves.
                                let logits = pending.wait().expect("accepted => flushed");
                                assert_eq!(logits.len(), 10);
                                resolved.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(ServeError::ShuttingDown) => {
                                refused.fetch_add(1, Ordering::SeqCst);
                                return;
                            }
                            Err(ServeError::Overloaded { .. }) => std::thread::yield_now(),
                            Err(other) => panic!("unexpected submit error: {other:?}"),
                        }
                    }
                });
            }
            // Let the submitters race for a moment, then pull the plug.
            std::thread::sleep(Duration::from_millis(5));
            session.shutdown();
        });
        assert_eq!(
            accepted.load(Ordering::SeqCst),
            resolved.load(Ordering::SeqCst),
            "round {round}: an accepted request was dropped by shutdown"
        );
        assert!(
            refused.load(Ordering::SeqCst) >= 3,
            "round {round}: every thread must eventually observe ShuttingDown"
        );
    }
}
