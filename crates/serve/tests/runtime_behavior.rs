//! Behavioral suite for the registry and the micro-batching session:
//! lazy load + eviction, deterministic deadline batching under a
//! simulated clock, backpressure, stats counters, and submit-time
//! validation.

use std::sync::Arc;
use std::time::Duration;

use deepcam_core::{CompiledModel, DeepCamEngine, EngineConfig, HashPlan};
use deepcam_models::scaled::scaled_lenet5;
use deepcam_serve::{ManualClock, ModelRegistry, Runtime, ServeError, Session, SessionConfig};
use deepcam_tensor::rng::seeded_rng;

fn lenet_engine(seed: u64) -> DeepCamEngine {
    let mut rng = seeded_rng(seed);
    let model = scaled_lenet5(&mut rng, 10);
    DeepCamEngine::compile(
        &model,
        EngineConfig {
            plan: HashPlan::Uniform(256),
            ..EngineConfig::default()
        },
    )
    .expect("compiles")
}

fn image(seed: u64) -> Vec<f32> {
    let mut rng = seeded_rng(seed);
    (0..784)
        .map(|_| deepcam_tensor::rng::standard_normal(&mut rng) as f32)
        .collect()
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

// ---------------------------------------------------------------- registry

#[test]
fn registry_loads_lazily_and_reports_typed_errors() {
    let dir = tmp_dir("registry_lazy");
    lenet_engine(1)
        .compiled()
        .save(dir.join("lenet5.dcam"))
        .unwrap();
    std::fs::write(dir.join("corrupt.dcam"), b"not an artifact").unwrap();
    std::fs::write(dir.join("ignored.txt"), b"not a model").unwrap();

    let registry = ModelRegistry::open(&dir).unwrap();
    assert_eq!(registry.len(), 2, "only *.dcam files are indexed");
    assert_eq!(registry.loaded_count(), 0, "nothing read before first get");
    let listed = registry.list();
    assert!(listed.iter().all(|m| !m.loaded && m.model_name.is_none()));

    // Lazy load on first get.
    let engine = registry.get("lenet5").unwrap();
    assert_eq!(engine.model_name(), "LeNet5");
    assert_eq!(registry.loaded_count(), 1);
    assert!(registry
        .list()
        .iter()
        .any(|m| m.id == "lenet5" && m.loaded && m.dot_layers == Some(5)));

    // Typed errors: unknown id vs corrupt artifact.
    assert!(matches!(
        registry.get("missing"),
        Err(ServeError::ModelNotFound { model }) if model == "missing"
    ));
    assert!(matches!(
        registry.get("corrupt"),
        Err(ServeError::BadArtifact { model, .. }) if model == "corrupt"
    ));
}

#[test]
fn registry_evicts_least_recently_used() {
    let dir = tmp_dir("registry_evict");
    lenet_engine(2).compiled().save(dir.join("a.dcam")).unwrap();
    lenet_engine(3).compiled().save(dir.join("b.dcam")).unwrap();
    lenet_engine(4).compiled().save(dir.join("c.dcam")).unwrap();

    let registry = ModelRegistry::open_with_capacity(&dir, 2).unwrap();
    registry.get("a").unwrap();
    registry.get("b").unwrap();
    assert_eq!(registry.loaded_count(), 2);
    // Touch `a` so `b` is the LRU, then load `c`.
    registry.get("a").unwrap();
    registry.get("c").unwrap();
    assert_eq!(registry.loaded_count(), 2);
    let loaded: Vec<String> = registry
        .list()
        .into_iter()
        .filter(|m| m.loaded)
        .map(|m| m.id)
        .collect();
    assert_eq!(loaded, vec!["a".to_string(), "c".to_string()]);
    // The evicted entry transparently reloads.
    assert_eq!(registry.get("b").unwrap().model_name(), "LeNet5");
}

#[test]
fn in_memory_registration_is_never_evicted() {
    let dir = tmp_dir("registry_memory");
    lenet_engine(5)
        .compiled()
        .save(dir.join("disk.dcam"))
        .unwrap();
    let registry = ModelRegistry::open_with_capacity(&dir, 1).unwrap();
    registry.register("mem", lenet_engine(6));
    registry.get("disk").unwrap();
    // Registering + loading exceeds capacity 1, but only file-backed
    // engines are evictable, and "disk" is the only one.
    registry.get("mem").unwrap();
    assert!(registry.list().iter().any(|m| m.id == "mem" && m.loaded));
}

#[test]
fn corrupt_artifacts_are_quarantined_until_repaired() {
    let dir = tmp_dir("registry_quarantine");
    std::fs::write(dir.join("broken.dcam"), b"definitely not an artifact").unwrap();
    let registry = ModelRegistry::open(&dir).unwrap();

    // First get reads the file and fails with the real decode error.
    let first_detail = match registry.get("broken") {
        Err(ServeError::BadArtifact { detail, .. }) => detail,
        Err(other) => panic!("expected BadArtifact, got {other:?}"),
        Ok(_) => panic!("expected BadArtifact, got a loaded engine"),
    };
    assert!(
        !first_detail.starts_with("quarantined: "),
        "first failure must come from an actual read: {first_detail}"
    );

    // Second get fails fast off the negative cache — the quarantined
    // prefix proves the broken file was not re-read and re-parsed.
    match registry.get("broken") {
        Err(ServeError::BadArtifact { detail, .. }) => {
            assert!(detail.starts_with("quarantined: "), "{detail}");
            assert!(detail.contains(&first_detail), "{detail}");
        }
        Err(other) => panic!("expected quarantined BadArtifact, got {other:?}"),
        Ok(_) => panic!("expected quarantined BadArtifact, got a loaded engine"),
    }
    assert!(registry
        .list()
        .iter()
        .any(|m| m.id == "broken" && m.quarantined && !m.loaded));

    // Repairing the file on disk (its length/mtime key changes) clears
    // the quarantine and the model loads.
    lenet_engine(20)
        .compiled()
        .save(dir.join("broken.dcam"))
        .unwrap();
    assert_eq!(registry.get("broken").unwrap().model_name(), "LeNet5");
    assert!(registry
        .list()
        .iter()
        .any(|m| m.id == "broken" && !m.quarantined && m.loaded));
}

#[test]
fn quarantine_rekeys_when_a_still_corrupt_file_changes() {
    let dir = tmp_dir("registry_requarantine");
    std::fs::write(dir.join("bad.dcam"), b"corrupt v1").unwrap();
    let registry = ModelRegistry::open(&dir).unwrap();
    assert!(registry.get("bad").is_err());

    // Rewrite with *different* corrupt bytes: the old key no longer
    // matches, so the registry re-reads (no "quarantined:" prefix),
    // fails again, and re-quarantines against the new key.
    std::fs::write(dir.join("bad.dcam"), b"still corrupt, but longer").unwrap();
    match registry.get("bad") {
        Err(ServeError::BadArtifact { detail, .. }) => {
            assert!(!detail.starts_with("quarantined: "), "{detail}");
        }
        Err(other) => panic!("expected BadArtifact, got {other:?}"),
        Ok(_) => panic!("expected BadArtifact, got a loaded engine"),
    }
    match registry.get("bad") {
        Err(ServeError::BadArtifact { detail, .. }) => {
            assert!(detail.starts_with("quarantined: "), "{detail}");
        }
        Err(other) => panic!("expected quarantined BadArtifact, got {other:?}"),
        Ok(_) => panic!("expected quarantined BadArtifact, got a loaded engine"),
    }
}

// ---------------------------------------------------------------- batching

#[test]
fn full_batch_dispatches_without_the_clock_moving() {
    let clock = Arc::new(ManualClock::new());
    let session = Session::with_clock(
        Arc::new(lenet_engine(7)),
        SessionConfig {
            max_batch: 4,
            max_wait: Duration::from_secs(3600),
            queue_capacity: 64,
        },
        clock,
    );
    // Four submissions = one full batch; the hour-long max_wait proves
    // dispatch came from occupancy, not the deadline.
    let pendings: Vec<_> = (0..4)
        .map(|i| session.submit(&[1, 28, 28], &image(100 + i)).unwrap())
        .collect();
    for p in pendings {
        assert_eq!(p.wait().unwrap().len(), 10);
    }
    let stats = session.stats();
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.batches, 1, "all four must coalesce");
    assert_eq!(stats.mean_occupancy, 4.0);
    assert_eq!(stats.max_occupancy, 4);
}

#[test]
fn partial_batch_waits_for_the_simulated_deadline() {
    let clock = Arc::new(ManualClock::new());
    let session = Session::with_clock(
        Arc::new(lenet_engine(8)),
        SessionConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(5),
            queue_capacity: 64,
        },
        Arc::clone(&clock) as Arc<dyn deepcam_serve::Clock>,
    );
    let pending = session.submit(&[1, 28, 28], &image(200)).unwrap();
    // Real time passes, simulated time does not: the partial batch must
    // stay queued no matter how long we wait.
    std::thread::sleep(Duration::from_millis(40));
    assert!(pending.poll().is_none(), "dispatched before the deadline");
    assert_eq!(session.stats().batches, 0);
    // Advance past max_wait: the deadline path dispatches a batch of 1.
    clock.advance(Duration::from_millis(6));
    assert_eq!(pending.wait().unwrap().len(), 10);
    let stats = session.stats();
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.mean_occupancy, 1.0);
}

#[test]
fn bounded_queue_rejects_with_typed_overload() {
    let clock = Arc::new(ManualClock::new());
    let session = Session::with_clock(
        Arc::new(lenet_engine(9)),
        SessionConfig {
            max_batch: 64,
            max_wait: Duration::from_secs(3600),
            queue_capacity: 2,
        },
        clock,
    );
    // The frozen clock guarantees nothing drains: the third submission
    // must hit the bound.
    let _a = session.submit(&[1, 28, 28], &image(300)).unwrap();
    let _b = session.submit(&[1, 28, 28], &image(301)).unwrap();
    match session.submit(&[1, 28, 28], &image(302)) {
        Err(ServeError::Overloaded { queued, capacity }) => {
            assert_eq!(queued, 2);
            assert_eq!(capacity, 2);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let stats = session.stats();
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.rejected, 1);
}

#[test]
fn submit_validates_shape_before_queueing() {
    let session = Session::new(Arc::new(lenet_engine(10)), SessionConfig::default());
    // Wrong element count for LeNet5 (expects 1*28*28 = 784).
    assert!(matches!(
        session.submit(&[1, 10, 10], &[0.0; 100]),
        Err(ServeError::InvalidRequest(_))
    ));
    // dims/data mismatch.
    assert!(matches!(
        session.submit(&[1, 28, 28], &[0.0; 3]),
        Err(ServeError::InvalidRequest(_))
    ));
    // Empty images.
    assert!(matches!(
        session.submit(&[], &[]),
        Err(ServeError::InvalidRequest(_))
    ));
    // Nothing bad reached the queue.
    assert_eq!(session.stats().submitted, 0);
    assert_eq!(session.queue_len(), 0);
}

#[test]
fn shutdown_flushes_accepted_requests() {
    let clock = Arc::new(ManualClock::new());
    let session = Session::with_clock(
        Arc::new(lenet_engine(11)),
        SessionConfig {
            max_batch: 64,
            max_wait: Duration::from_secs(3600),
            queue_capacity: 64,
        },
        clock,
    );
    // Queued but (with a frozen clock and a huge batch) never
    // dispatchable — until shutdown flushes it.
    let pending = session.submit(&[1, 28, 28], &image(400)).unwrap();
    session.shutdown();
    assert_eq!(pending.wait().unwrap().len(), 10);
    assert!(matches!(
        session.submit(&[1, 28, 28], &image(401)),
        Err(ServeError::ShuttingDown)
    ));
}

#[test]
fn runtime_serves_multiple_models_and_tracks_stats_separately() {
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m1", lenet_engine(12));
    registry.register("m2", lenet_engine(13));
    let runtime = Runtime::new(
        registry,
        SessionConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(1),
            queue_capacity: 64,
        },
    );
    let img = image(500);
    assert_eq!(runtime.infer("m1", &[1, 28, 28], &img).unwrap().len(), 10);
    assert_eq!(runtime.infer("m1", &[1, 28, 28], &img).unwrap().len(), 10);
    assert_eq!(runtime.infer("m2", &[1, 28, 28], &img).unwrap().len(), 10);
    assert_eq!(runtime.stats("m1").unwrap().completed, 2);
    assert_eq!(runtime.stats("m2").unwrap().completed, 1);
    assert!(matches!(
        runtime.stats("m3"),
        Err(ServeError::ModelNotFound { .. })
    ));
    // Identical inputs through two independently compiled engines with
    // different seeds should not produce identical logits — i.e. the
    // runtime really routed to distinct models.
    let a = runtime.infer("m1", &[1, 28, 28], &img).unwrap();
    let b = runtime.infer("m2", &[1, 28, 28], &img).unwrap();
    assert_ne!(a, b);
}

#[test]
fn close_session_flushes_and_allows_recreation() {
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", lenet_engine(15));
    let runtime = Runtime::new(registry, SessionConfig::default());
    let img = image(700);
    let first = runtime.infer("m", &[1, 28, 28], &img).unwrap();
    assert!(runtime.close_session("m"));
    assert!(!runtime.close_session("m"), "second close is a no-op");
    // A fresh session recreates on demand and serves bit-identically;
    // its counters start over (close retired the old session's stats).
    let second = runtime.infer("m", &[1, 28, 28], &img).unwrap();
    assert_eq!(first, second);
    assert_eq!(runtime.stats("m").unwrap().completed, 1);
}

#[test]
fn reloaded_artifact_serves_identically_through_a_session() {
    // compile → save → registry-load → session micro-batcher must equal
    // the in-memory engine's own logits bit-for-bit.
    let dir = tmp_dir("session_artifact");
    let engine = lenet_engine(14);
    engine.compiled().save(dir.join("lenet5.dcam")).unwrap();
    let registry = Arc::new(ModelRegistry::open(&dir).unwrap());
    let runtime = Runtime::new(registry, SessionConfig::default());
    let img = image(600);
    let served = runtime.infer("lenet5", &[1, 28, 28], &img).unwrap();
    let direct = engine
        .infer(
            &deepcam_tensor::Tensor::from_vec(
                img.clone(),
                deepcam_tensor::Shape::new(&[1, 1, 28, 28]),
            )
            .unwrap(),
        )
        .unwrap();
    assert_eq!(served, direct.data());
    // Compiled before save, decoded after load: value-identical too.
    let reloaded = CompiledModel::load(dir.join("lenet5.dcam")).unwrap();
    assert_eq!(engine.compiled(), &reloaded);
}
