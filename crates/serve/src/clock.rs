//! Time sources for the micro-batcher.
//!
//! The batching decision ("dispatch when the batch is full *or* the
//! oldest request has waited `max_wait`") depends on a clock. Production
//! uses [`SystemClock`]; tests use [`ManualClock`], whose `now` only
//! moves when the test calls [`ManualClock::advance`] — which makes the
//! deadline path deterministic: a partial batch provably cannot
//! dispatch until the test advances time past the deadline.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A waker callback: wakes its target and returns whether the target
/// is still alive (`false` lets the clock prune the registration).
pub type Waker = Arc<dyn Fn() -> bool + Send + Sync>;

/// A monotonic time source the batcher reads deadlines from.
pub trait Clock: Send + Sync + 'static {
    /// The current instant.
    fn now(&self) -> Instant;

    /// Registers a callback invoked whenever the clock's notion of
    /// "now" jumps ([`ManualClock::advance`]), so timer-based waiters
    /// can re-check their deadlines immediately. A waker returning
    /// `false` (its target is gone) is dropped, so a long-lived clock
    /// never accumulates registrations from dead sessions. The system
    /// clock never jumps, so the default implementation ignores the
    /// waker.
    fn register_waker(&self, waker: Waker) {
        let _ = waker;
    }
}

/// The real monotonic clock ([`Instant::now`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    // analyze: allow(determinism, "this IS the clock boundary; everything else reads time through the Clock trait")
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// A clock that only moves when told to — the simulated time source for
/// batcher tests.
pub struct ManualClock {
    epoch: Instant,
    state: Mutex<ManualState>,
}

struct ManualState {
    advanced: Duration,
    wakers: Vec<Waker>,
}

impl ManualClock {
    /// A manual clock starting at "now" and frozen until advanced.
    // analyze: allow(determinism, "one Instant::now to fix the epoch; simulated time only moves via advance()")
    pub fn new() -> Self {
        ManualClock {
            epoch: Instant::now(),
            state: Mutex::new(ManualState {
                advanced: Duration::ZERO,
                wakers: Vec::new(),
            }),
        }
    }

    /// Moves the clock forward by `by` and wakes every registered
    /// waiter so deadline checks re-run against the new "now". Wakers
    /// whose targets are gone are pruned here, so churned sessions on a
    /// shared clock do not accumulate.
    pub fn advance(&self, by: Duration) {
        // Wake outside the lock (a waker may call back into `now`).
        let wakers: Vec<Waker> = {
            let mut st = self.state.lock().expect("manual clock lock");
            st.advanced += by;
            std::mem::take(&mut st.wakers)
        };
        let alive: Vec<Waker> = wakers.into_iter().filter(|w| w()).collect();
        self.state
            .lock()
            .expect("manual clock lock")
            .wakers
            .extend(alive);
    }

    /// Total simulated time advanced so far.
    pub fn elapsed(&self) -> Duration {
        self.state.lock().expect("manual clock lock").advanced
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        ManualClock::new()
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Instant {
        self.epoch + self.state.lock().expect("manual clock lock").advanced
    }

    fn register_waker(&self, waker: Waker) {
        self.state
            .lock()
            .expect("manual clock lock")
            .wakers
            .push(waker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock;
        let a = c.now();
        assert!(c.now() >= a);
    }

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let c = ManualClock::new();
        let t0 = c.now();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(c.now(), t0, "frozen until advanced");
        c.advance(Duration::from_millis(5));
        assert_eq!(c.now(), t0 + Duration::from_millis(5));
        assert_eq!(c.elapsed(), Duration::from_millis(5));
    }

    #[test]
    fn advance_fires_wakers_and_prunes_dead_ones() {
        let c = ManualClock::new();
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        c.register_waker(Arc::new(move || {
            f.fetch_add(1, Ordering::SeqCst);
            true
        }));
        // A waker whose target died: fires once, then is pruned.
        let dead_fired = Arc::new(AtomicUsize::new(0));
        let df = Arc::clone(&dead_fired);
        c.register_waker(Arc::new(move || {
            df.fetch_add(1, Ordering::SeqCst);
            false
        }));
        c.advance(Duration::from_millis(1));
        c.advance(Duration::from_millis(1));
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        assert_eq!(dead_fired.load(Ordering::SeqCst), 1, "pruned after first");
    }
}
