//! Deterministic fault injection for the serving transport.
//!
//! [`FaultStream`] wraps any `Read + Write` transport and replays a
//! seeded [`FaultPlan`]: partial reads/writes capped at chosen byte
//! counts, injected `Interrupted`/`WouldBlock`/`ConnectionReset`
//! errors, mid-frame stalls, and sticky disconnects. The plan is a
//! pure function of its seed, so every failing soak iteration is
//! replayable from its seed alone.
//!
//! [`run_soak`] drives N seeded plans against a live server and checks
//! the fault-tolerance contract: chaos connections may fail in typed
//! ways, but every reply that *does* complete must be bit-identical to
//! in-process inference, and a clean client must still round-trip
//! after every chaos connection.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::error::{Result, ServeError};
use crate::protocol::{
    decode_payload, encode_payload, read_frame, write_frame, Frame, Request, Response,
};

/// One injected fault, applied to one I/O call (read or write — the
/// plan is a single queue consumed by whichever call comes next).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Cap this call to at most `n` bytes — forces the peer to see the
    /// frame arrive in fragments.
    Chunk(usize),
    /// Fail this call with `ErrorKind::Interrupted` (transparent to
    /// `read_exact`/`write_all`, which retry it).
    Interrupted,
    /// Fail this call with `ErrorKind::WouldBlock`.
    WouldBlock,
    /// Fail this call with `ErrorKind::ConnectionReset`.
    Reset,
    /// Sleep before passing the call through — a mid-frame stall the
    /// peer's deadlines must tolerate or reap.
    Stall(Duration),
    /// Fail this and every later call with `ConnectionAborted`; the
    /// harness then drops the stream, hanging up mid-frame.
    Disconnect,
}

/// A replayable schedule of [`FaultOp`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    ops: Vec<FaultOp>,
}

impl FaultPlan {
    /// A plan derived purely from `seed`: 4–12 weighted ops, with the
    /// terminal ops (`Reset`, `Disconnect`) ending generation early
    /// when drawn.
    pub fn seeded(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = rng.random_range(4usize..=12);
        let mut ops = Vec::with_capacity(count);
        for _ in 0..count {
            let roll: u32 = rng.random_range(0u32..100);
            let op = match roll {
                0..=44 => FaultOp::Chunk(rng.random_range(1usize..=7)),
                45..=64 => FaultOp::Stall(Duration::from_millis(rng.random_range(1u64..=25))),
                65..=79 => FaultOp::Interrupted,
                80..=89 => FaultOp::WouldBlock,
                90..=94 => FaultOp::Reset,
                _ => FaultOp::Disconnect,
            };
            let terminal = matches!(op, FaultOp::Reset | FaultOp::Disconnect);
            ops.push(op);
            if terminal {
                break;
            }
        }
        FaultPlan { ops }
    }

    /// An explicit schedule, for targeted tests.
    pub fn from_ops(ops: Vec<FaultOp>) -> Self {
        FaultPlan { ops }
    }

    /// The schedule, in application order.
    pub fn ops(&self) -> &[FaultOp] {
        &self.ops
    }
}

/// A `Read + Write` wrapper that replays a [`FaultPlan`] over its
/// inner transport.
pub struct FaultStream<S> {
    inner: S,
    ops: VecDeque<FaultOp>,
    disconnected: bool,
}

impl<S> FaultStream<S> {
    /// Wraps `inner`, consuming one op per I/O call until the plan
    /// runs dry (after which calls pass straight through).
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultStream {
            inner,
            ops: plan.ops.into(),
            disconnected: false,
        }
    }

    /// Ops not yet applied.
    pub fn remaining_ops(&self) -> usize {
        self.ops.len()
    }

    /// Unwraps the inner transport.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Pops the next op, honoring a sticky disconnect.
    fn next_op(&mut self) -> std::io::Result<Option<FaultOp>> {
        if self.disconnected {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "injected disconnect (sticky)",
            ));
        }
        match self.ops.pop_front() {
            Some(FaultOp::Disconnect) => {
                self.disconnected = true;
                Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "injected disconnect",
                ))
            }
            Some(FaultOp::Interrupted) => Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected interrupt",
            )),
            Some(FaultOp::WouldBlock) => Err(std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                "injected would-block",
            )),
            Some(FaultOp::Reset) => Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "injected reset",
            )),
            other => Ok(other),
        }
    }
}

impl<S: Read> Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.next_op()? {
            Some(FaultOp::Chunk(n)) => {
                let cap = n.max(1).min(buf.len());
                match buf.get_mut(..cap) {
                    Some(slice) => self.inner.read(slice),
                    None => self.inner.read(buf),
                }
            }
            Some(FaultOp::Stall(d)) => {
                std::thread::sleep(d);
                self.inner.read(buf)
            }
            _ => self.inner.read(buf),
        }
    }
}

impl<S: Write> Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self.next_op()? {
            Some(FaultOp::Chunk(n)) => {
                let cap = n.max(1).min(buf.len());
                match buf.get(..cap) {
                    Some(slice) => self.inner.write(slice),
                    None => self.inner.write(buf),
                }
            }
            Some(FaultOp::Stall(d)) => {
                std::thread::sleep(d);
                self.inner.write(buf)
            }
            _ => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.disconnected {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "injected disconnect (sticky)",
            ));
        }
        self.inner.flush()
    }
}

/// What one soak run should throw at the server.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Seeded fault plans to run (one chaos connection each).
    pub plans: usize,
    /// Plan `i` uses seed `base_seed + i`.
    pub base_seed: u64,
    /// Model id every request targets.
    pub model: String,
    /// Per-image dims of the requests.
    pub dims: Vec<usize>,
    /// Input images, cycled through across plans.
    pub images: Vec<Vec<f32>>,
    /// Reference logits per image, from in-process inference — every
    /// completed reply must match them bit-for-bit.
    pub expected: Vec<Vec<f32>>,
    /// Socket read timeout on chaos and clean connections, so a wedged
    /// server fails the soak instead of hanging it.
    pub reply_timeout: Duration,
}

/// Outcome tallies of one [`run_soak`] call.
///
/// The contract a soak asserts: `mismatched == 0` and
/// `clean_failures == 0`, with `completed + typed_errors + aborted ==
/// plans_run`. Aborted plans are *expected* — injected resets and
/// disconnects kill round trips by design; what they must never kill
/// is correctness or the server's ability to serve the next client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SoakReport {
    /// Chaos plans executed.
    pub plans_run: usize,
    /// Round trips that completed with logits.
    pub completed: usize,
    /// Completed replies whose logits were not bit-identical to the
    /// reference (must be 0).
    pub mismatched: usize,
    /// Round trips answered by a typed server error frame.
    pub typed_errors: usize,
    /// Round trips killed by a transport-level failure.
    pub aborted: usize,
    /// Clean-client round trips that failed after a chaos plan
    /// (must be 0).
    pub clean_failures: usize,
}

/// Bit-exact logits comparison (NaN-safe).
fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// One chaos round trip: connect, wrap in the plan, attempt a full
/// Infer request/response.
fn chaos_round_trip(
    addr: SocketAddr,
    plan: FaultPlan,
    cfg: &SoakConfig,
    image: &[f32],
) -> Result<Response> {
    let stream =
        TcpStream::connect(addr).map_err(|e| ServeError::Io(format!("chaos connect: {e}")))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(cfg.reply_timeout));
    let _ = stream.set_write_timeout(Some(cfg.reply_timeout));
    let mut chaos = FaultStream::new(stream, plan);
    let request = Request::Infer {
        model: cfg.model.clone(),
        dims: cfg.dims.clone(),
        data: image.to_vec(),
    };
    write_frame(&mut chaos, &encode_payload(&request))?;
    match read_frame(&mut chaos)? {
        Frame::Payload(payload) => decode_payload(&payload),
        Frame::Closed => Err(ServeError::Io("server hung up before replying".into())),
    }
}

/// Runs `cfg.plans` seeded fault plans against the server at `addr`,
/// interleaving a clean-client round trip after every chaos
/// connection.
///
/// # Errors
///
/// Returns [`ServeError::Io`] only when the *clean* setup itself is
/// impossible (e.g. nothing listens at `addr` for the very first
/// connection); chaos-connection failures are tallied, not returned.
pub fn run_soak(addr: SocketAddr, cfg: &SoakConfig) -> Result<SoakReport> {
    if cfg.images.is_empty() || cfg.images.len() != cfg.expected.len() {
        return Err(ServeError::InvalidRequest(
            "soak needs images with matching expected logits".into(),
        ));
    }
    let mut report = SoakReport::default();
    for i in 0..cfg.plans {
        let plan = FaultPlan::seeded(cfg.base_seed.wrapping_add(i as u64));
        let idx = i % cfg.images.len();
        let (image, expected) = match (cfg.images.get(idx), cfg.expected.get(idx)) {
            (Some(img), Some(exp)) => (img, exp),
            _ => continue,
        };
        report.plans_run += 1;
        match chaos_round_trip(addr, plan, cfg, image) {
            Ok(Response::Logits(logits)) => {
                report.completed += 1;
                if !bits_equal(&logits, expected) {
                    report.mismatched += 1;
                }
            }
            Ok(Response::Error { .. }) => report.typed_errors += 1,
            // Any other response variant to an Infer is a server bug:
            // count it as a mismatch so the soak fails loudly.
            Ok(_) => {
                report.completed += 1;
                report.mismatched += 1;
            }
            Err(_) => report.aborted += 1,
        }
        // The invariant that matters: after every chaos connection, a
        // clean client still gets bit-exact service.
        match clean_round_trip(addr, cfg, image) {
            Ok(logits) if bits_equal(&logits, expected) => {}
            _ => report.clean_failures += 1,
        }
    }
    Ok(report)
}

/// One well-behaved round trip against `addr`.
fn clean_round_trip(addr: SocketAddr, cfg: &SoakConfig, image: &[f32]) -> Result<Vec<f32>> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| ServeError::Io(format!("clean connect: {e}")))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(cfg.reply_timeout));
    let _ = stream.set_write_timeout(Some(cfg.reply_timeout));
    let request = Request::Infer {
        model: cfg.model.clone(),
        dims: cfg.dims.clone(),
        data: image.to_vec(),
    };
    write_frame(&mut stream, &encode_payload(&request))?;
    match read_frame(&mut stream)? {
        Frame::Payload(payload) => match decode_payload(&payload)? {
            Response::Logits(logits) => Ok(logits),
            Response::Error { kind, message } => Err(ServeError::Remote { kind, message }),
            other => Err(ServeError::Protocol(format!(
                "expected Logits, got {other:?}"
            ))),
        },
        Frame::Closed => Err(ServeError::Io("server hung up before replying".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn seeded_plans_are_deterministic() {
        for seed in 0..32u64 {
            assert_eq!(FaultPlan::seeded(seed), FaultPlan::seeded(seed));
            let n = FaultPlan::seeded(seed).ops().len();
            assert!((1..=12).contains(&n), "seed {seed}: {n} ops");
        }
        // Different seeds explore different schedules (spot check).
        assert_ne!(FaultPlan::seeded(1), FaultPlan::seeded(2));
    }

    #[test]
    fn terminal_ops_end_a_plan() {
        for seed in 0..256u64 {
            let plan = FaultPlan::seeded(seed);
            for (i, op) in plan.ops().iter().enumerate() {
                if matches!(op, FaultOp::Reset | FaultOp::Disconnect) {
                    assert_eq!(i, plan.ops().len() - 1, "seed {seed}: terminal op mid-plan");
                }
            }
        }
    }

    #[test]
    fn chunk_caps_read_sizes() {
        let data = vec![7u8; 10];
        let plan = FaultPlan::from_ops(vec![FaultOp::Chunk(3), FaultOp::Chunk(2)]);
        let mut s = FaultStream::new(Cursor::new(data), plan);
        let mut buf = [0u8; 10];
        assert_eq!(s.read(&mut buf).expect("capped read"), 3);
        assert_eq!(s.read(&mut buf).expect("capped read"), 2);
        // Plan dry: the rest arrives unconstrained.
        assert_eq!(s.read(&mut buf).expect("free read"), 5);
    }

    #[test]
    fn interrupts_are_transparent_to_read_exact() {
        let data = vec![9u8; 4];
        let plan = FaultPlan::from_ops(vec![
            FaultOp::Interrupted,
            FaultOp::Chunk(1),
            FaultOp::Interrupted,
        ]);
        let mut s = FaultStream::new(Cursor::new(data), plan);
        let mut buf = [0u8; 4];
        s.read_exact(&mut buf).expect("read_exact retries EINTR");
        assert_eq!(buf, [9u8; 4]);
    }

    #[test]
    fn disconnect_is_sticky() {
        let plan = FaultPlan::from_ops(vec![FaultOp::Disconnect]);
        let mut s = FaultStream::new(Cursor::new(vec![1u8; 4]), plan);
        let mut buf = [0u8; 4];
        for _ in 0..3 {
            let err = s.read(&mut buf).expect_err("disconnected");
            assert_eq!(err.kind(), std::io::ErrorKind::ConnectionAborted);
        }
        assert!(s.flush().is_err(), "writes die too");
    }

    #[test]
    fn chunked_writes_still_complete_via_write_all() {
        let plan = FaultPlan::from_ops(vec![
            FaultOp::Chunk(2),
            FaultOp::Interrupted,
            FaultOp::Chunk(1),
        ]);
        let mut s = FaultStream::new(Vec::new(), plan);
        s.write_all(&[1, 2, 3, 4, 5, 6]).expect("write_all retries");
        assert_eq!(s.into_inner(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn injected_errors_surface_with_their_kinds() {
        let plan = FaultPlan::from_ops(vec![FaultOp::WouldBlock, FaultOp::Reset]);
        let mut s = FaultStream::new(Cursor::new(vec![0u8; 2]), plan);
        let mut buf = [0u8; 2];
        assert_eq!(
            s.read(&mut buf).expect_err("would-block").kind(),
            std::io::ErrorKind::WouldBlock
        );
        assert_eq!(
            s.read(&mut buf).expect_err("reset").kind(),
            std::io::ErrorKind::ConnectionReset
        );
        // Reset is not sticky: the transport recovers.
        assert_eq!(s.read(&mut buf).expect("pass-through"), 2);
    }
}
