//! The epoll readiness core: one thread, every connection.
//!
//! Each connection is a non-blocking read/write state machine over the
//! [`crate::protocol`] framing. Readiness comes from a level-triggered
//! [`crate::poll::Epoll`]; completions come back from the session
//! dispatcher threads through a queue + `eventfd` waker
//! ([`LoopCtl`]), keyed by (connection token, request id) so protocol
//! v2 clients multiplex many in-flight requests over one socket.
//!
//! # Contracts carried over from the threads core
//!
//! The lifecycle semantics of `crate::server` are ported one-for-one,
//! re-proven by `tests/server_lifecycle.rs` and `tests/chaos_soak.rs`
//! running against both cores:
//!
//! - **Idle vs stalled**: a connection quietly parked at a frame
//!   boundary lives under `idle_timeout` (quiet close); the moment a
//!   frame's first byte arrives an *absolute* `read_timeout` deadline
//!   is armed — a trickling peer cannot extend it — and expiry is
//!   answered once with a typed [`ErrorKind::Timeout`], then hang-up.
//! - **Refusals**: over-limit and mid-drain connects get a typed error
//!   frame written asynchronously (the accept path never blocks), a
//!   write-half close, and a bounded linger discarding peer bytes so
//!   the refusal is not lost to an RST.
//! - **Drain accounting**: `busy` rises when a complete frame is
//!   parsed and falls only when its reply's last byte is flushed (or
//!   its connection dies), so [`crate::server::Server::shutdown`]'s
//!   drain wait holds until in-flight replies are on the wire. A v2
//!   connection closing mid-drain still delivers every queued reply
//!   first.
//!
//! # Ordering
//!
//! v1 frames are served strictly one at a time per connection (parsing
//! holds while a request is in flight), preserving the threads core's
//! request→reply ordering. v2 frames all enter the micro-batcher
//! immediately and replies are written in *completion* order under
//! their request ids.

#![cfg(target_os = "linux")]

use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::io::Write;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard, Weak};
use std::time::{Duration, Instant};

use crate::error::{Result as ServeResult, ServeError};
use crate::poll::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::protocol::{
    check_frame_len, classify, decode_payload, decode_payload_v2, negotiate_version, ErrorKind,
    Request, Response, CONNECTION_SCOPED_ID, MAX_FRAME_BYTES, PROTOCOL_V1, PROTOCOL_V2,
};
use crate::server::{frame_response, handle_request, ServerShared};

/// Epoll token of the accept listener.
const LISTENER_TOKEN: u64 = 0;
/// Epoll token of the [`LoopCtl`] waker eventfd.
const WAKER_TOKEN: u64 = 1;
/// First token handed to a connection.
const FIRST_CONN_TOKEN: u64 = 2;
/// Scratch buffer per `read` syscall.
const READ_CHUNK: usize = 16 * 1024;
/// Most `read` calls serviced per readiness report per connection —
/// level-triggered epoll re-reports leftover data, so capping keeps
/// one firehose connection from starving the rest.
const READS_PER_WAKE: usize = 8;
/// How long a connection whose write half is closed may keep
/// discarding peer bytes before the hard close (mirrors the threads
/// core's bounded refusal drain).
const LINGER_TIMEOUT: Duration = Duration::from_millis(250);
/// Readiness records per `epoll_wait`.
const MAX_EVENTS: usize = 256;

/// One finished inference routed back from a session dispatcher
/// thread to the loop.
pub(crate) struct Completion {
    conn: u64,
    request: u64,
    result: ServeResult<Vec<f32>>,
}

/// The loop's cross-thread control surface: session completion sinks,
/// the clock waker and [`crate::server::Server::shutdown`] all wake
/// the loop through the eventfd; completions ride the queue.
pub(crate) struct LoopCtl {
    pub(crate) waker: EventFd,
    completions: Mutex<VecDeque<Completion>>,
}

/// The completion queue, recovering from a poisoned lock: a panicking
/// dispatcher thread must not take the event loop down with it, and
/// the queue is valid under any interleaving of push/drain.
fn lock_completions(ctl: &LoopCtl) -> MutexGuard<'_, VecDeque<Completion>> {
    ctl.completions.lock().unwrap_or_else(|p| p.into_inner())
}

impl LoopCtl {
    fn push(&self, completion: Completion) {
        lock_completions(self).push_back(completion);
        self.waker.signal();
    }

    fn drain(&self) -> VecDeque<Completion> {
        std::mem::take(&mut *lock_completions(self))
    }
}

/// Creates the epoll instance, registers the listener and waker, wires
/// the clock waker, and spawns the `deepcam-serve-epoll` loop thread.
///
/// # Errors
///
/// [`ServeError::Io`] when any of the kernel objects or the thread
/// cannot be created — surfaced from `Server::bind`, so a host that
/// cannot run the epoll core fails loudly instead of serving nothing.
pub(crate) fn spawn_event_loop(
    listener: TcpListener,
    shared: &Arc<ServerShared>,
) -> ServeResult<(std::thread::JoinHandle<()>, Arc<LoopCtl>)> {
    let epoll = Epoll::new().map_err(|e| ServeError::Io(format!("epoll_create: {e}")))?;
    let ctl = Arc::new(LoopCtl {
        waker: EventFd::new().map_err(|e| ServeError::Io(format!("eventfd: {e}")))?,
        completions: Mutex::new(VecDeque::new()),
    });
    listener
        .set_nonblocking(true)
        .map_err(|e| ServeError::Io(format!("listener nonblocking: {e}")))?;
    epoll
        .add(listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)
        .map_err(|e| ServeError::Io(format!("register listener: {e}")))?;
    epoll
        .add(ctl.waker.raw_fd(), EPOLLIN, WAKER_TOKEN)
        .map_err(|e| ServeError::Io(format!("register waker: {e}")))?;
    // A clock jump (ManualClock::advance) must re-run the deadline
    // sweep. Hold the ctl weakly so a long-lived clock never keeps a
    // dead loop's eventfd open, and report death so the clock prunes
    // the registration.
    let waker_target: Weak<LoopCtl> = Arc::downgrade(&ctl);
    shared
        .clock
        .register_waker(Arc::new(move || match waker_target.upgrade() {
            Some(ctl) => {
                ctl.waker.signal();
                true
            }
            None => false,
        }));
    let loop_shared = Arc::clone(shared);
    let loop_ctl = Arc::clone(&ctl);
    let handle = std::thread::Builder::new()
        .name("deepcam-serve-epoll".into())
        .spawn(move || run_loop(&epoll, &listener, &loop_shared, &loop_ctl))
        .map_err(|e| ServeError::Io(format!("spawn event loop: {e}")))?;
    Ok((handle, ctl))
}

/// Where a connection is in its life.
enum Phase {
    /// Serving: reading frames, writing replies.
    Open,
    /// No more frames will be served (refusal, timeout or drain
    /// answered). Once in-flight replies are queued and flushed:
    /// half-close and linger (`linger`), or close outright.
    Finishing { linger: bool },
    /// Write half closed; discarding peer bytes until EOF or the
    /// deadline, so the final frame is not lost to an RST.
    Lingering { deadline: Instant },
}

/// A reply frame's completion record in the write buffer: when
/// `sent_total` passes `end`, the reply is on the wire.
struct Marker {
    end: u64,
    /// Whether flushing releases a `busy` count (and counts toward
    /// `drained` during a drain). False for refusal/timeout frames
    /// that answer no accepted request.
    counts_busy: bool,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Received-but-unparsed bytes.
    rbuf: Vec<u8>,
    /// Negotiated protocol version; `None` until the first frame.
    version: Option<u32>,
    /// Reply bytes; `[wstart..]` still pending.
    wbuf: Vec<u8>,
    wstart: usize,
    /// Lifetime bytes queued/flushed — marker arithmetic that
    /// survives buffer compaction.
    queued_total: u64,
    sent_total: u64,
    markers: VecDeque<Marker>,
    /// Requests inside the session whose completions are pending.
    inflight: usize,
    /// Absolute mid-frame deadline, armed at a partial frame's first
    /// byte (trickling cannot extend it).
    frame_deadline: Option<Instant>,
    /// When this connection last sat at a clean frame boundary (the
    /// idle clock).
    boundary_since: Instant,
    /// Absolute reply-write deadline, re-armed on write progress.
    write_deadline: Option<Instant>,
    /// The peer closed its sending half (it may still be reading).
    peer_eof: bool,
    phase: Phase,
    /// Currently registered epoll interest.
    interest: u32,
    /// Counts toward accepted/active (false for refusals).
    served: bool,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            version: None,
            wbuf: Vec::new(),
            wstart: 0,
            queued_total: 0,
            sent_total: 0,
            markers: VecDeque::new(),
            inflight: 0,
            frame_deadline: None,
            boundary_since: now,
            write_deadline: None,
            peer_eof: false,
            phase: Phase::Open,
            interest: 0,
            served: false,
        }
    }

    fn flushed(&self) -> bool {
        self.wstart >= self.wbuf.len()
    }

    /// Clean frame boundary with nothing pending in either direction —
    /// the only state `idle_timeout` applies to.
    fn at_boundary(&self) -> bool {
        self.rbuf.is_empty() && self.inflight == 0 && self.flushed() && self.markers.is_empty()
    }

    /// The idle deadline, when one applies.
    fn idle_deadline(&self, idle_timeout: Option<Duration>) -> Option<Instant> {
        match self.phase {
            Phase::Open if self.at_boundary() && !self.peer_eof => {
                idle_timeout.and_then(|t| self.boundary_since.checked_add(t))
            }
            _ => None,
        }
    }
}

/// The loop body: wait for readiness, serve it, apply completions,
/// sweep deadlines, close the dead. Exits when the shutdown flag is
/// observed (the waker guarantees a prompt wake).
fn run_loop(epoll: &Epoll, listener: &TcpListener, shared: &Arc<ServerShared>, ctl: &Arc<LoopCtl>) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events = vec![EpollEvent::zeroed(); MAX_EVENTS];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            for (_, conn) in conns.drain() {
                close_conn(epoll, conn, shared);
            }
            return;
        }
        let timeout = wait_timeout_ms(&conns, shared);
        let n = match epoll.wait(&mut events, timeout) {
            Ok(n) => n,
            // Only a broken epoll fd lands here; back off rather than
            // spin so shutdown can still be observed.
            Err(_) => {
                std::thread::sleep(Duration::from_millis(1));
                0
            }
        };
        let mut dead: Vec<u64> = Vec::new();
        let mut accept_ready = false;
        for ev in events.iter().take(n) {
            match ev.token() {
                LISTENER_TOKEN => accept_ready = true,
                WAKER_TOKEN => ctl.waker.drain(),
                token => {
                    if let Some(conn) = conns.get_mut(&token) {
                        if !handle_io(conn, token, ev.events(), shared, ctl) {
                            dead.push(token);
                        }
                    }
                }
            }
        }
        if accept_ready {
            accept_ready_conns(listener, epoll, &mut conns, &mut next_token, shared);
        }
        // Completions arrive from dispatcher threads at any time;
        // drain unconditionally (cheap when empty). One for a
        // connection that already closed is dropped — its busy count
        // was released at close.
        for completion in ctl.drain() {
            let token = completion.conn;
            if let Some(conn) = conns.get_mut(&token) {
                if !apply_completion(conn, token, completion, shared, ctl) {
                    dead.push(token);
                }
            }
        }
        let now = shared.clock.now();
        for (token, conn) in conns.iter_mut() {
            if !check_deadlines(conn, now, shared) {
                dead.push(*token);
            }
        }
        dead.sort_unstable();
        dead.dedup();
        for token in dead {
            if let Some(conn) = conns.remove(&token) {
                close_conn(epoll, conn, shared);
            }
        }
        for (token, conn) in conns.iter_mut() {
            sync_interest(epoll, *token, conn);
        }
    }
}

/// The `epoll_wait` budget: until the nearest deadline (rounded up a
/// millisecond so expiry lands inside the wake, never a spin before
/// it), or forever when nothing is armed — the waker eventfd covers
/// completions, clock jumps and shutdown.
fn wait_timeout_ms(conns: &HashMap<u64, Conn>, shared: &ServerShared) -> Option<u32> {
    let mut next: Option<Instant> = None;
    let mut consider = |d: Option<Instant>| {
        if let Some(d) = d {
            next = Some(next.map_or(d, |n| n.min(d)));
        }
    };
    for conn in conns.values() {
        consider(conn.frame_deadline);
        consider(conn.write_deadline);
        consider(conn.idle_deadline(shared.cfg.idle_timeout));
        if let Phase::Lingering { deadline } = conn.phase {
            consider(Some(deadline));
        }
    }
    let next = next?;
    let remaining = next.saturating_duration_since(shared.clock.now());
    let ms = remaining.as_millis().saturating_add(1);
    Some(u32::try_from(ms).unwrap_or(u32::MAX))
}

/// Serves one readiness report for one connection. Returns false when
/// the connection must close now.
fn handle_io(
    conn: &mut Conn,
    token: u64,
    revents: u32,
    shared: &Arc<ServerShared>,
    ctl: &Arc<LoopCtl>,
) -> bool {
    // Writes first: flushing may release markers (busy counts) and
    // buffer space before new work queues more.
    if revents & EPOLLOUT != 0 && !flush(conn, shared) {
        return false;
    }
    if revents & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0 {
        let alive = match conn.phase {
            Phase::Open => read_and_serve(conn, token, shared, ctl),
            Phase::Finishing { .. } | Phase::Lingering { .. } => discard_reads(conn),
        };
        if !alive {
            return false;
        }
    }
    advance_phase(conn, shared)
}

/// Reads whatever arrived (bounded per wake) and parses/serves it.
fn read_and_serve(
    conn: &mut Conn,
    token: u64,
    shared: &Arc<ServerShared>,
    ctl: &Arc<LoopCtl>,
) -> bool {
    let mut scratch = [0u8; READ_CHUNK];
    for _ in 0..READS_PER_WAKE {
        match conn.stream.read(&mut scratch) {
            Ok(0) => {
                conn.peer_eof = true;
                break;
            }
            Ok(n) => {
                if let Some(chunk) = scratch.get(..n) {
                    conn.rbuf.extend_from_slice(chunk);
                }
                if n < scratch.len() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    parse_frames(conn, token, shared, ctl)
}

/// Discards peer bytes on a finishing/lingering connection (bounded
/// per wake), mirroring the threads core's refusal drain. EOF during a
/// linger means the final frame was deliverable: close.
fn discard_reads(conn: &mut Conn) -> bool {
    let mut scratch = [0u8; 1024];
    for _ in 0..READS_PER_WAKE {
        match conn.stream.read(&mut scratch) {
            Ok(0) => {
                conn.peer_eof = true;
                return !matches!(conn.phase, Phase::Lingering { .. });
            }
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

/// Parses every currently parseable frame out of `rbuf` and serves it,
/// then re-arms the boundary/mid-frame deadline state.
fn parse_frames(
    conn: &mut Conn,
    token: u64,
    shared: &Arc<ServerShared>,
    ctl: &Arc<LoopCtl>,
) -> bool {
    let mut pos = 0usize;
    let mut incomplete = false;
    loop {
        if !matches!(conn.phase, Phase::Open) {
            break;
        }
        // v1 has no request ids: replies must leave in request order,
        // so serving holds while one request is in flight (buffered
        // frames resume when its completion lands). v2 multiplexes.
        if conn.inflight > 0 && conn.version.is_some_and(|v| v < PROTOCOL_V2) {
            break;
        }
        let Some(prefix) = conn.rbuf.get(pos..pos + 4) else {
            incomplete = conn.rbuf.len() > pos;
            break;
        };
        let Ok(len_bytes) = <[u8; 4]>::try_from(prefix) else {
            return false;
        };
        let len = u32::from_le_bytes(len_bytes) as usize;
        if let Err(e) = check_frame_len(len) {
            // A bad length prefix desyncs the stream: answer once
            // (the typed-error contract), stop reading, hang up after
            // the flush.
            shared.counters.inc_protocol_errors();
            let (kind, message) = classify(&e);
            let version = conn.version.unwrap_or(PROTOCOL_V1);
            if !queue_reply(
                conn,
                version,
                CONNECTION_SCOPED_ID,
                &Response::Error { kind, message },
                false,
                shared,
            ) {
                return false;
            }
            conn.phase = Phase::Finishing { linger: true };
            break;
        }
        let Some(payload) = conn.rbuf.get(pos + 4..pos + 4 + len) else {
            incomplete = true;
            break;
        };
        let payload = payload.to_vec();
        pos += 4 + len;
        if !on_frame(conn, token, &payload, shared, ctl) {
            return false;
        }
    }
    conn.rbuf.drain(..pos.min(conn.rbuf.len()));
    if incomplete && conn.peer_eof {
        // Mid-frame EOF: the frame can never complete. Close quietly
        // (no counters), same as the threads core's `ConnRead::Io`.
        conn.rbuf.clear();
        incomplete = false;
    }
    let now = shared.clock.now();
    if incomplete {
        // First byte of a partial frame arms the absolute deadline.
        if conn.frame_deadline.is_none() {
            conn.frame_deadline = shared.cfg.read_timeout.and_then(|t| now.checked_add(t));
        }
    } else {
        conn.frame_deadline = None;
        conn.boundary_since = now;
    }
    true
}

/// Serves one complete frame payload: drain gate, version sniffing,
/// then dispatch — `Infer` into the micro-batcher with a completion
/// sink, control requests inline.
fn on_frame(
    conn: &mut Conn,
    token: u64,
    payload: &[u8],
    shared: &Arc<ServerShared>,
    ctl: &Arc<LoopCtl>,
) -> bool {
    // Count this request in-flight *before* checking the drain flag,
    // so the drain wait can never observe `busy == 0` while a received
    // frame is slipping into the runtime.
    shared.busy.fetch_add(1, Ordering::SeqCst);
    let wire_version = conn.version.unwrap_or(PROTOCOL_V1);
    if shared.draining.load(Ordering::SeqCst) {
        shared.busy.fetch_sub(1, Ordering::SeqCst);
        // Echo the request id when the frame is well-formed v2, so a
        // multiplexing client can attribute the refusal.
        let req_id = if wire_version >= PROTOCOL_V2 {
            decode_payload_v2::<Request>(payload)
                .map(|(id, _)| id)
                .unwrap_or(CONNECTION_SCOPED_ID)
        } else {
            CONNECTION_SCOPED_ID
        };
        let resp = Response::Error {
            kind: ErrorKind::Draining,
            message: "server is draining for shutdown".into(),
        };
        if !queue_reply(conn, wire_version, req_id, &resp, false, shared) {
            return false;
        }
        conn.phase = Phase::Finishing { linger: true };
        return true;
    }
    let (req_id, decoded) = if wire_version >= PROTOCOL_V2 {
        match decode_payload_v2::<Request>(payload) {
            Ok((id, req)) => (id, Ok(req)),
            Err(e) => (CONNECTION_SCOPED_ID, Err(e)),
        }
    } else {
        (CONNECTION_SCOPED_ID, decode_payload::<Request>(payload))
    };
    match decoded {
        Ok(Request::Hello { max_version }) if conn.version.is_none() => {
            match negotiate_version(max_version) {
                Ok(v) => {
                    conn.version = Some(v);
                    // The handshake reply itself is always v1-framed;
                    // the negotiated version governs later frames.
                    queue_reply(
                        conn,
                        PROTOCOL_V1,
                        CONNECTION_SCOPED_ID,
                        &Response::Hello { version: v },
                        true,
                        shared,
                    )
                }
                // Version 0 leaves the connection's version ambiguous:
                // answer once, hang up.
                Err(e) => {
                    shared.counters.inc_protocol_errors();
                    let (kind, message) = classify(&e);
                    let alive = queue_reply(
                        conn,
                        PROTOCOL_V1,
                        CONNECTION_SCOPED_ID,
                        &Response::Error { kind, message },
                        true,
                        shared,
                    );
                    conn.phase = Phase::Finishing { linger: true };
                    alive
                }
            }
        }
        Ok(Request::Hello { .. }) => {
            // Hello after the first frame: a violation, but frame
            // boundaries are intact — answer and keep serving.
            shared.counters.inc_protocol_errors();
            let (kind, message) = classify(&ServeError::Protocol(
                "Hello is only valid as a connection's first frame".to_string(),
            ));
            queue_reply(
                conn,
                wire_version,
                req_id,
                &Response::Error { kind, message },
                true,
                shared,
            )
        }
        Ok(Request::Infer { model, dims, data }) => {
            conn.version.get_or_insert(PROTOCOL_V1);
            let sink_ctl = Arc::clone(ctl);
            let outcome = shared
                .runtime
                .submit_sink(&model, &dims, &data, move |result| {
                    sink_ctl.push(Completion {
                        conn: token,
                        request: req_id,
                        result,
                    });
                });
            match outcome {
                Ok(()) => {
                    conn.inflight += 1;
                    true
                }
                Err(e) => {
                    let (kind, message) = classify(&e);
                    queue_reply(
                        conn,
                        wire_version,
                        req_id,
                        &Response::Error { kind, message },
                        true,
                        shared,
                    )
                }
            }
        }
        Ok(request) => {
            conn.version.get_or_insert(PROTOCOL_V1);
            let resp = handle_request(shared, request);
            queue_reply(conn, wire_version, req_id, &resp, true, shared)
        }
        Err(e) => {
            // Frame boundaries are intact, so a garbage payload is
            // answered and the connection keeps serving (and a
            // first-frame garbage payload locks v1).
            conn.version.get_or_insert(PROTOCOL_V1);
            shared.counters.inc_protocol_errors();
            let (kind, message) = classify(&e);
            queue_reply(
                conn,
                wire_version,
                req_id,
                &Response::Error { kind, message },
                true,
                shared,
            )
        }
    }
}

/// One arrived completion: frame the reply under the connection's
/// version and resume parsing (a v1 connection may have the next
/// frame waiting on exactly this reply).
fn apply_completion(
    conn: &mut Conn,
    token: u64,
    completion: Completion,
    shared: &Arc<ServerShared>,
    ctl: &Arc<LoopCtl>,
) -> bool {
    conn.inflight = conn.inflight.saturating_sub(1);
    let resp = match completion.result {
        Ok(logits) => Response::Logits(logits),
        Err(e) => {
            let (kind, message) = classify(&e);
            Response::Error { kind, message }
        }
    };
    let version = conn.version.unwrap_or(PROTOCOL_V1);
    if !queue_reply(conn, version, completion.request, &resp, true, shared) {
        return false;
    }
    if !parse_frames(conn, token, shared, ctl) {
        return false;
    }
    advance_phase(conn, shared)
}

/// Appends one framed reply to the write buffer with its completion
/// marker and flushes what the socket will take now.
fn queue_reply(
    conn: &mut Conn,
    version: u32,
    req_id: u64,
    resp: &Response,
    counts_busy: bool,
    shared: &ServerShared,
) -> bool {
    let payload = frame_response(version, req_id, resp);
    if payload.len() > MAX_FRAME_BYTES {
        // Unreachable for the replies this server builds; refuse to
        // desync the stream if it ever becomes reachable.
        return false;
    }
    conn.wbuf
        .extend_from_slice(&(payload.len() as u32).to_le_bytes());
    conn.wbuf.extend_from_slice(&payload);
    conn.queued_total += 4 + payload.len() as u64;
    conn.markers.push_back(Marker {
        end: conn.queued_total,
        counts_busy,
    });
    flush(conn, shared)
}

/// Writes as much pending reply data as the socket accepts, releases
/// completed markers (busy counts, drain accounting), and maintains
/// the write deadline.
fn flush(conn: &mut Conn, shared: &ServerShared) -> bool {
    let mut progressed = false;
    loop {
        let pending = match conn.wbuf.get(conn.wstart..) {
            Some(p) if !p.is_empty() => p,
            _ => break,
        };
        match conn.stream.write(pending) {
            Ok(0) => return false,
            Ok(n) => {
                conn.wstart += n;
                conn.sent_total += n as u64;
                progressed = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    if conn.flushed() {
        conn.wbuf.clear();
        conn.wstart = 0;
        conn.write_deadline = None;
    } else if progressed || conn.write_deadline.is_none() {
        // A peer that keeps taking bytes keeps its budget (like the
        // threads core's per-write timer); one that stops reading is
        // reaped when the armed deadline lapses.
        conn.write_deadline = shared
            .cfg
            .write_timeout
            .and_then(|t| shared.clock.now().checked_add(t));
    }
    let draining = shared.draining.load(Ordering::SeqCst);
    while let Some(marker) = conn.markers.front() {
        if marker.end > conn.sent_total {
            break;
        }
        if marker.counts_busy {
            // Decrement only now, with the reply's last byte on the
            // wire: the drain wait holds until in-flight replies are
            // delivered, not merely computed.
            shared.busy.fetch_sub(1, Ordering::SeqCst);
            if draining {
                shared.counters.inc_drained();
            }
        }
        conn.markers.pop_front();
    }
    true
}

/// Moves a connection's phase forward once its obligations are met.
/// Returns false when it should close now.
fn advance_phase(conn: &mut Conn, shared: &ServerShared) -> bool {
    match conn.phase {
        Phase::Open => {
            // A half-closed peer is served to the last buffered frame
            // and reply (it may still be reading); only a fully idle
            // one closes.
            if conn.peer_eof && conn.rbuf.is_empty() && conn.inflight == 0 && conn.at_boundary() {
                return false;
            }
            true
        }
        Phase::Finishing { linger } => {
            if conn.inflight > 0 || !conn.flushed() {
                return true;
            }
            if !linger || conn.peer_eof {
                return false;
            }
            // Half-close, then discard whatever the peer was mid-way
            // through sending: a hard close here would race its write
            // and the RST could discard the final frame unread.
            let _ = conn.stream.shutdown(Shutdown::Write);
            match shared.clock.now().checked_add(LINGER_TIMEOUT) {
                Some(deadline) => {
                    conn.phase = Phase::Lingering { deadline };
                    true
                }
                None => false,
            }
        }
        Phase::Lingering { .. } => true,
    }
}

/// Expires whatever deadline lapsed. Returns false when the
/// connection should close now.
fn check_deadlines(conn: &mut Conn, now: Instant, shared: &ServerShared) -> bool {
    if let Phase::Lingering { deadline } = conn.phase {
        if now >= deadline {
            return false;
        }
    }
    if matches!(conn.phase, Phase::Open) {
        if let Some(deadline) = conn.frame_deadline {
            if now >= deadline {
                // Slow-loris: answer once with the typed timeout, stop
                // reading, hang up after the flush.
                shared.counters.inc_timed_out();
                let version = conn.version.unwrap_or(PROTOCOL_V1);
                let resp = Response::Error {
                    kind: ErrorKind::Timeout,
                    message: "connection stalled mid-frame past read_timeout".into(),
                };
                conn.frame_deadline = None;
                conn.rbuf.clear();
                if !queue_reply(conn, version, CONNECTION_SCOPED_ID, &resp, false, shared) {
                    return false;
                }
                conn.phase = Phase::Finishing { linger: true };
                return advance_phase(conn, shared);
            }
        } else if let Some(deadline) = conn.idle_deadline(shared.cfg.idle_timeout) {
            if now >= deadline {
                // Idle past its welcome: done, quietly (EOF, no error
                // frame, no counter — it did nothing wrong mid-frame).
                return false;
            }
        }
    }
    if let Some(deadline) = conn.write_deadline {
        if now >= deadline {
            // Zero-window peer stalling reply writes: reap it.
            return false;
        }
    }
    true
}

/// Accepts every pending connection: the admission gate (drain, then
/// connection limit) refuses with a typed frame that flushes through
/// the same non-blocking machinery as any reply, so refusals can never
/// stall the accept path.
fn accept_ready_conns(
    listener: &TcpListener,
    epoll: &Epoll,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    shared: &Arc<ServerShared>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // Transient per-connection failures (ECONNABORTED) or fd
            // exhaustion: yield to the next wake rather than spin.
            Err(_) => break,
        };
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let token = *next_token;
        *next_token += 1;
        let mut conn = Conn::new(stream, shared.clock.now());
        let refusal = if shared.draining.load(Ordering::SeqCst) {
            shared.counters.inc_refused();
            Some(Response::Error {
                kind: ErrorKind::Draining,
                message: "server is draining for shutdown".into(),
            })
        } else {
            let active = shared.active.load(Ordering::SeqCst);
            if active >= shared.cfg.max_connections {
                shared.counters.inc_refused();
                Some(Response::Error {
                    kind: ErrorKind::Overloaded,
                    message: format!("server at its connection limit ({active} active)"),
                })
            } else {
                None
            }
        };
        match refusal {
            Some(resp) => {
                if !queue_reply(
                    &mut conn,
                    PROTOCOL_V1,
                    CONNECTION_SCOPED_ID,
                    &resp,
                    false,
                    shared,
                ) {
                    continue;
                }
                conn.phase = Phase::Finishing { linger: true };
                if !advance_phase(&mut conn, shared) {
                    continue;
                }
            }
            None => {
                conn.served = true;
                let _ = conn.stream.set_nodelay(true);
                shared.counters.inc_accepted();
                shared.active.fetch_add(1, Ordering::SeqCst);
            }
        }
        let interest = desired_interest(&conn);
        if epoll.add(conn.stream.as_raw_fd(), interest, token).is_err() {
            if conn.served {
                shared.active.fetch_sub(1, Ordering::SeqCst);
            }
            continue;
        }
        conn.interest = interest;
        conns.insert(token, conn);
    }
}

fn desired_interest(conn: &Conn) -> u32 {
    let mut interest = 0;
    if !conn.flushed() {
        interest |= EPOLLOUT;
    }
    if !conn.peer_eof {
        interest |= EPOLLIN | EPOLLRDHUP;
    }
    interest
}

fn sync_interest(epoll: &Epoll, token: u64, conn: &mut Conn) {
    let want = desired_interest(conn);
    if want != conn.interest && epoll.modify(conn.stream.as_raw_fd(), want, token).is_ok() {
        conn.interest = want;
    }
}

/// Releases everything a closing connection still holds: its epoll
/// registration, the busy counts of unflushed replies and of
/// submissions whose completions have not landed (those completions
/// are dropped on arrival), and its `active` slot.
fn close_conn(epoll: &Epoll, conn: Conn, shared: &ServerShared) {
    let _ = epoll.delete(conn.stream.as_raw_fd());
    let unreleased = conn
        .markers
        .iter()
        .filter(|m| m.end > conn.sent_total && m.counts_busy)
        .count()
        + conn.inflight;
    for _ in 0..unreleased {
        shared.busy.fetch_sub(1, Ordering::SeqCst);
    }
    if conn.served {
        shared.active.fetch_sub(1, Ordering::SeqCst);
    }
    // Dropping the stream closes its fd.
}
