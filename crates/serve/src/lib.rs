//! # deepcam-serve
//!
//! The serving runtime the ROADMAP's "heavy traffic" north star hangs
//! off: everything between a compiled [`deepcam_core::CompiledModel`]
//! artifact and a client socket.
//!
//! ```text
//!                    ┌────────────────────────────────────────────┐
//!  *.dcam artifacts →│ ModelRegistry      lazy load, LRU eviction │
//!                    └───────────────┬────────────────────────────┘
//!                                    │ Arc<DeepCamEngine>
//!                    ┌───────────────▼────────────────────────────┐
//!  submit()/infer() →│ Runtime → Session   bounded queue, dynamic │
//!                    │ micro-batcher → DeepCamEngine::infer_each  │
//!                    └───────────────┬────────────────────────────┘
//!                                    │ logits rows
//!                    ┌───────────────▼────────────────────────────┐
//!  TCP clients      →│ Server / Client     length-prefixed binary │
//!                    │ frames (serde::bin), hostile-input safe    │
//!                    └────────────────────────────────────────────┘
//! ```
//!
//! * [`registry::ModelRegistry`] — `DCAM` v1 artifacts keyed by model
//!   id, loaded lazily, evicted least-recently-used, with typed errors
//!   for missing/corrupt artifacts.
//! * [`session::Session`] / [`session::Runtime`] — the one submission
//!   path: a bounded request queue and a dynamic micro-batcher that
//!   coalesces concurrent single-image requests into
//!   [`deepcam_core::DeepCamEngine::infer_each`] calls. Coalescing is
//!   **bit-invisible**: served logits are identical to serial
//!   submission for every batch composition, worker count and noise
//!   level. Backpressure is a typed [`ServeError::Overloaded`];
//!   per-model counters track requests, batches, occupancy and p50/p99
//!   latency.
//! * [`server::Server`] / [`client::Client`] — a `std::net`-only TCP
//!   server speaking the [`protocol`] frames (`Infer`, `ListModels`,
//!   `Stats`, `ServerStats`), with per-connection limits and
//!   hostile-input-safe decoding. Connections live under typed
//!   deadlines (`read_timeout` reaps mid-frame stalls, `idle_timeout`
//!   governs quiet keep-alives), shutdown is a two-phase graceful
//!   drain, and the client retries transport faults, `Overloaded` and
//!   `Draining` under a seeded deterministic
//!   [`client::RetryPolicy`] — safe because inference is pure and
//!   bit-exact. Two interchangeable connection cores sit behind
//!   [`server::ServerConfig::core`] (see [`core_select`]): the
//!   portable thread-per-connection core, and on Linux a
//!   dependency-free epoll readiness loop ([`poll`] + `event_loop`)
//!   that multiplexes every connection on one thread and serves
//!   protocol-v2 clients many requests in flight per socket.
//! * [`client::MuxClient`] — the pipelining counterpart: negotiates
//!   protocol v2 and keys replies by request id, so callers keep many
//!   requests outstanding on one connection.
//! * [`chaos`] — deterministic fault injection: seeded
//!   [`chaos::FaultPlan`]s replayed by a [`chaos::FaultStream`]
//!   wrapper (partial I/O, injected errno faults, stalls, mid-frame
//!   disconnects) and a [`chaos::run_soak`] harness that pins the
//!   fault-tolerance contract against a live server.
//!
//! # Example
//!
//! ```no_run
//! use std::sync::Arc;
//! use deepcam_serve::{ModelRegistry, Runtime, SessionConfig};
//!
//! let registry = Arc::new(ModelRegistry::open("./models")?);
//! let runtime = Runtime::new(registry, SessionConfig::default());
//! let logits = runtime.infer("lenet5", &[1, 28, 28], &vec![0.0; 784])?;
//! assert_eq!(logits.len(), 10);
//! # Ok::<(), deepcam_serve::ServeError>(())
//! ```

// Machine-checked by deepcam-analyze (lint A2): every unsafe block in
// this crate lives in `poll` (the audited epoll/eventfd syscall
// wrappers), carries a `// SAFETY:` justification, and is registered
// in ANALYZE_UNSAFE.md. `deny` (not `forbid`) so exactly that module
// can opt in with `#![allow(unsafe_code)]`; everything else stays
// compiler-enforced safe.
#![deny(unsafe_code)]

pub mod chaos;
pub mod client;
pub mod clock;
pub mod core_select;
pub mod error;
mod event_loop;
pub mod poll;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod session;
pub mod stats;

pub use chaos::{FaultOp, FaultPlan, FaultStream, SoakConfig, SoakReport};
pub use client::{Client, ClientConfig, MuxClient, RetryPolicy};
pub use clock::{Clock, ManualClock, SystemClock, Waker};
pub use core_select::{epoll_available, CoreSelect, ServerCore, SERVE_CORE_ENV};
pub use error::{Result, ServeError};
pub use registry::{ModelInfo, ModelRegistry};
pub use server::{Server, ServerConfig};
pub use session::{Pending, Runtime, Session, SessionConfig};
pub use stats::{LatencyHistogram, ServerStats, SessionStats};
