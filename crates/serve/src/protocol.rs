//! The length-prefixed binary wire protocol, built on the workspace's
//! [`serde::bin`] codec.
//!
//! # Framing
//!
//! Every message is one frame: a little-endian `u32` payload length
//! followed by that many payload bytes. The payload is a
//! [`Request`] or [`Response`] encoded with [`serde::bin::BinCodec`]
//! (leading tag byte, fields in declaration order). Limits are enforced
//! *before* allocation: a frame longer than [`MAX_FRAME_BYTES`] is
//! rejected from its prefix alone, and the payload buffer grows only as
//! bytes actually arrive — a hostile length prefix cannot reserve
//! memory it never sends.
//!
//! # Frames
//!
//! | tag | frame | payload |
//! |---|---|---|
//! | `0` | `Request::Infer` | model id, per-image dims, f32 image data |
//! | `1` | `Request::ListModels` | — |
//! | `2` | `Request::Stats` | model id |
//! | `3` | `Request::ServerStats` | — |
//! | `4` | `Request::Hello` | highest protocol version the client speaks |
//! | `0` | `Response::Logits` | f32 logits row |
//! | `1` | `Response::Models` | id + residency per model |
//! | `2` | `Response::Stats` | serving counters snapshot |
//! | `3` | `Response::Error` | [`ErrorKind`] + message |
//! | `4` | `Response::ServerStats` | server robustness counters |
//! | `5` | `Response::Hello` | protocol version the connection will speak |
//!
//! # Protocol versions and multiplexing
//!
//! Two wire versions share the framing above:
//!
//! - **v1** (the original): a frame payload is exactly one encoded
//!   message. Strictly request→reply in order — at most one request is
//!   outstanding per connection.
//! - **v2**: every payload after the handshake is a little-endian
//!   `u64` *request id* followed by the v1 encoding of the message.
//!   Clients choose ids and may pipeline many requests; the server
//!   echoes each reply under the request's id, and replies may arrive
//!   **out of order** (the epoll core completes them as the
//!   micro-batcher finishes). Connection-scoped errors that answer no
//!   particular request (`Timeout`, a malformed length prefix) carry
//!   the reserved [`CONNECTION_SCOPED_ID`].
//!
//! Negotiation is first-frame sniffing, so v1 clients need no changes:
//! a connection's first frame either is a v1-encoded
//! [`Request::Hello`] carrying the client's highest version — answered
//! with a v1-encoded [`Response::Hello`] choosing
//! `min(client_max, 2)` ([`negotiate_version`]), after which the
//! connection speaks the chosen version — or it is any other frame,
//! which locks the connection to v1 for its lifetime. A `Hello`
//! advertising version 0, or arriving after negotiation, is a protocol
//! error.
//!
//! Decoding is hostile-input safe: truncation, unknown tags, trailing
//! bytes, over-limit dims/lengths and dims/data mismatches all return
//! typed errors (`tests/protocol_hostile.rs` fuzzes this).

use std::io::{Read, Write};

use serde::bin::{BinCodec, BinError, BinResult, Reader, Writer};

use crate::error::{Result, ServeError};

/// Hard cap on one frame's payload bytes (16 MiB).
pub const MAX_FRAME_BYTES: usize = 1 << 24;
/// Most dimensions an image tensor may declare.
pub const MAX_DIMS: usize = 8;
/// Most elements an image may carry (4 Mi f32 = 16 MiB, the frame cap).
pub const MAX_IMAGE_ELEMS: usize = 1 << 22;
/// Longest model id accepted on the wire, in bytes.
pub const MAX_MODEL_ID_BYTES: usize = 256;
/// The original strictly-ordered request→reply protocol.
pub const PROTOCOL_V1: u32 = 1;
/// The multiplexed protocol: request-id-prefixed payloads, replies may
/// arrive out of order.
pub const PROTOCOL_V2: u32 = 2;
/// Highest protocol version this build speaks.
pub const MAX_PROTOCOL_VERSION: u32 = PROTOCOL_V2;
/// Reserved v2 request id for connection-scoped errors that answer no
/// particular request (mid-frame [`ErrorKind::Timeout`], malformed
/// length prefixes). Clients must not send it.
pub const CONNECTION_SCOPED_ID: u64 = u64::MAX;
/// Payload chunk size frame reads grow by (allocation tracks received
/// bytes, not the claimed length).
const READ_CHUNK: usize = 64 * 1024;

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one image through a model's session.
    Infer {
        /// Registry id of the model to serve.
        model: String,
        /// Per-image dims (no batch axis), e.g. `[1, 28, 28]`.
        dims: Vec<usize>,
        /// Row-major image data; length must equal the dims product.
        data: Vec<f32>,
    },
    /// List every model the registry knows.
    ListModels,
    /// Fetch one model's serving counters.
    Stats {
        /// Registry id of the model.
        model: String,
    },
    /// Fetch the server's connection-level robustness counters.
    ServerStats,
    /// Version handshake: must be a connection's first frame when
    /// sent. The server answers with [`Response::Hello`] choosing
    /// `min(max_version, MAX_PROTOCOL_VERSION)`; version 0 is a
    /// protocol error.
    Hello {
        /// Highest protocol version the client speaks (≥ 1).
        max_version: u32,
    },
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The logits row for an `Infer` request.
    Logits(Vec<f32>),
    /// The registry listing for a `ListModels` request.
    Models(Vec<WireModelInfo>),
    /// The counters for a `Stats` request.
    Stats(WireStats),
    /// The request failed; `kind` classifies it for typed client-side
    /// handling.
    Error {
        /// Coarse error class.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
    /// The robustness counters for a `ServerStats` request.
    ServerStats(WireServerStats),
    /// Handshake reply: the protocol version every subsequent frame on
    /// this connection speaks.
    Hello {
        /// Negotiated version (`min(client max, MAX_PROTOCOL_VERSION)`).
        version: u32,
    },
}

/// One registry entry on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireModelInfo {
    /// Registry id.
    pub id: String,
    /// Whether the engine is currently resident.
    pub loaded: bool,
}

/// A [`crate::stats::SessionStats`] snapshot on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered with logits.
    pub completed: u64,
    /// Requests answered with an engine error.
    pub failed: u64,
    /// Requests rejected by backpressure.
    pub rejected: u64,
    /// Engine batches dispatched.
    pub batches: u64,
    /// Mean images per dispatched batch.
    pub mean_occupancy: f64,
    /// Largest batch dispatched.
    pub max_occupancy: u64,
    /// Median submit→reply latency, milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile submit→reply latency, milliseconds.
    pub p99_latency_ms: f64,
}

/// Coarse error classes a [`Response::Error`] carries, so clients can
/// react (retry on `Overloaded`/`Draining`, fail fast on `NotFound`)
/// without parsing messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Unknown model id.
    NotFound,
    /// The model's artifact failed to load.
    BadArtifact,
    /// Backpressure: the session queue is full.
    Overloaded,
    /// The request was malformed.
    InvalidRequest,
    /// Inference failed inside the engine.
    Engine,
    /// The client violated the wire protocol.
    Protocol,
    /// Anything else (internal I/O).
    Internal,
    /// The client stalled mid-frame past the server's `read_timeout`;
    /// the server answers this once and hangs up. Idle connections at a
    /// frame *boundary* never receive it.
    Timeout,
    /// The server is draining for graceful shutdown: requests already
    /// in flight complete, requests arriving mid-drain get this.
    /// Retryable — the computation is pure, and another replica (or the
    /// restarted server) will produce a bit-identical answer.
    Draining,
}

impl BinCodec for ErrorKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            ErrorKind::NotFound => 0,
            ErrorKind::BadArtifact => 1,
            ErrorKind::Overloaded => 2,
            ErrorKind::InvalidRequest => 3,
            ErrorKind::Engine => 4,
            ErrorKind::Protocol => 5,
            ErrorKind::Internal => 6,
            ErrorKind::Timeout => 7,
            ErrorKind::Draining => 8,
        });
    }

    fn decode(r: &mut Reader<'_>) -> BinResult<Self> {
        Ok(match r.get_u8()? {
            0 => ErrorKind::NotFound,
            1 => ErrorKind::BadArtifact,
            2 => ErrorKind::Overloaded,
            3 => ErrorKind::InvalidRequest,
            4 => ErrorKind::Engine,
            5 => ErrorKind::Protocol,
            6 => ErrorKind::Internal,
            7 => ErrorKind::Timeout,
            8 => ErrorKind::Draining,
            other => return Err(BinError::Invalid(format!("ErrorKind tag {other}"))),
        })
    }
}

/// A [`crate::stats::ServerStats`] snapshot on the wire: the server's
/// connection-level robustness counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireServerStats {
    /// Connections accepted into service.
    pub accepted: u64,
    /// Connections refused (over the limit, or arriving mid-drain).
    pub refused: u64,
    /// Connections reaped for stalling mid-frame past `read_timeout`.
    pub timed_out: u64,
    /// Wire-protocol violations answered with a typed error.
    pub protocol_errors: u64,
    /// Requests whose replies were delivered during a graceful drain.
    pub drained: u64,
}

impl BinCodec for WireServerStats {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.accepted);
        w.put_u64(self.refused);
        w.put_u64(self.timed_out);
        w.put_u64(self.protocol_errors);
        w.put_u64(self.drained);
    }

    fn decode(r: &mut Reader<'_>) -> BinResult<Self> {
        Ok(WireServerStats {
            accepted: r.get_u64()?,
            refused: r.get_u64()?,
            timed_out: r.get_u64()?,
            protocol_errors: r.get_u64()?,
            drained: r.get_u64()?,
        })
    }
}

/// Decodes a wire model id, enforcing [`MAX_MODEL_ID_BYTES`].
fn decode_model_id(r: &mut Reader<'_>) -> BinResult<String> {
    let id = r.get_str()?;
    if id.len() > MAX_MODEL_ID_BYTES {
        return Err(BinError::Invalid(format!(
            "model id of {} bytes exceeds the {MAX_MODEL_ID_BYTES}-byte limit",
            id.len()
        )));
    }
    Ok(id)
}

impl BinCodec for Request {
    fn encode(&self, w: &mut Writer) {
        match self {
            Request::Infer { model, dims, data } => {
                w.put_u8(0);
                w.put_str(model);
                dims.encode(w);
                data.encode(w);
            }
            Request::ListModels => w.put_u8(1),
            Request::Stats { model } => {
                w.put_u8(2);
                w.put_str(model);
            }
            Request::ServerStats => w.put_u8(3),
            Request::Hello { max_version } => {
                w.put_u8(4);
                w.put_u32(*max_version);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> BinResult<Self> {
        match r.get_u8()? {
            0 => {
                let model = decode_model_id(r)?;
                let dims: Vec<usize> = BinCodec::decode(r)?;
                if dims.is_empty() || dims.len() > MAX_DIMS {
                    return Err(BinError::Invalid(format!(
                        "image declares {} dims (limit 1..={MAX_DIMS})",
                        dims.len()
                    )));
                }
                let mut elems = 1usize;
                for &d in &dims {
                    elems = d
                        .checked_mul(elems)
                        .filter(|&e| e <= MAX_IMAGE_ELEMS && d > 0)
                        .ok_or_else(|| {
                            BinError::Invalid(format!(
                                "image dims {dims:?} overflow the {MAX_IMAGE_ELEMS}-element limit"
                            ))
                        })?;
                }
                let data: Vec<f32> = BinCodec::decode(r)?;
                if data.len() != elems {
                    return Err(BinError::Invalid(format!(
                        "image dims {dims:?} imply {elems} elements, frame carries {}",
                        data.len()
                    )));
                }
                Ok(Request::Infer { model, dims, data })
            }
            1 => Ok(Request::ListModels),
            2 => Ok(Request::Stats {
                model: decode_model_id(r)?,
            }),
            3 => Ok(Request::ServerStats),
            4 => Ok(Request::Hello {
                max_version: r.get_u32()?,
            }),
            other => Err(BinError::Invalid(format!("Request tag {other}"))),
        }
    }
}

impl BinCodec for WireModelInfo {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.id);
        w.put_bool(self.loaded);
    }

    fn decode(r: &mut Reader<'_>) -> BinResult<Self> {
        Ok(WireModelInfo {
            id: decode_model_id(r)?,
            loaded: r.get_bool()?,
        })
    }
}

impl BinCodec for WireStats {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.submitted);
        w.put_u64(self.completed);
        w.put_u64(self.failed);
        w.put_u64(self.rejected);
        w.put_u64(self.batches);
        w.put_f64(self.mean_occupancy);
        w.put_u64(self.max_occupancy);
        w.put_f64(self.p50_latency_ms);
        w.put_f64(self.p99_latency_ms);
    }

    fn decode(r: &mut Reader<'_>) -> BinResult<Self> {
        Ok(WireStats {
            submitted: r.get_u64()?,
            completed: r.get_u64()?,
            failed: r.get_u64()?,
            rejected: r.get_u64()?,
            batches: r.get_u64()?,
            mean_occupancy: r.get_f64()?,
            max_occupancy: r.get_u64()?,
            p50_latency_ms: r.get_f64()?,
            p99_latency_ms: r.get_f64()?,
        })
    }
}

impl BinCodec for Response {
    fn encode(&self, w: &mut Writer) {
        match self {
            Response::Logits(logits) => {
                w.put_u8(0);
                logits.encode(w);
            }
            Response::Models(models) => {
                w.put_u8(1);
                models.encode(w);
            }
            Response::Stats(stats) => {
                w.put_u8(2);
                stats.encode(w);
            }
            Response::Error { kind, message } => {
                w.put_u8(3);
                kind.encode(w);
                w.put_str(message);
            }
            Response::ServerStats(stats) => {
                w.put_u8(4);
                stats.encode(w);
            }
            Response::Hello { version } => {
                w.put_u8(5);
                w.put_u32(*version);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> BinResult<Self> {
        match r.get_u8()? {
            0 => {
                let logits: Vec<f32> = BinCodec::decode(r)?;
                if logits.len() > MAX_IMAGE_ELEMS {
                    return Err(BinError::Invalid(format!(
                        "logits row of {} elements exceeds the {MAX_IMAGE_ELEMS} limit",
                        logits.len()
                    )));
                }
                Ok(Response::Logits(logits))
            }
            1 => Ok(Response::Models(BinCodec::decode(r)?)),
            2 => Ok(Response::Stats(BinCodec::decode(r)?)),
            3 => Ok(Response::Error {
                kind: BinCodec::decode(r)?,
                message: r.get_str()?,
            }),
            4 => Ok(Response::ServerStats(BinCodec::decode(r)?)),
            5 => Ok(Response::Hello {
                version: r.get_u32()?,
            }),
            other => Err(BinError::Invalid(format!("Response tag {other}"))),
        }
    }
}

/// Encodes one message into a standalone payload (no frame prefix).
pub fn encode_payload<T: BinCodec>(msg: &T) -> Vec<u8> {
    let mut w = Writer::new();
    msg.encode(&mut w);
    w.into_bytes()
}

/// Decodes one message from a complete frame payload, rejecting
/// trailing bytes.
///
/// # Errors
///
/// [`ServeError::Protocol`] on any malformed payload.
pub fn decode_payload<T: BinCodec>(payload: &[u8]) -> Result<T> {
    let mut r = Reader::new(payload);
    let msg = T::decode(&mut r).map_err(|e| ServeError::Protocol(e.to_string()))?;
    r.finish()
        .map_err(|e| ServeError::Protocol(e.to_string()))?;
    Ok(msg)
}

/// Encodes one message as a protocol-v2 payload: the request id
/// followed by the v1 encoding (no frame prefix).
pub fn encode_payload_v2<T: BinCodec>(request_id: u64, msg: &T) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(request_id);
    msg.encode(&mut w);
    w.into_bytes()
}

/// Decodes a protocol-v2 payload into its request id and message,
/// rejecting trailing bytes.
///
/// # Errors
///
/// [`ServeError::Protocol`] on any malformed payload (including one
/// too short to carry the id).
pub fn decode_payload_v2<T: BinCodec>(payload: &[u8]) -> Result<(u64, T)> {
    let mut r = Reader::new(payload);
    let id = r
        .get_u64()
        .map_err(|e| ServeError::Protocol(format!("v2 request id: {e}")))?;
    let msg = T::decode(&mut r).map_err(|e| ServeError::Protocol(e.to_string()))?;
    r.finish()
        .map_err(|e| ServeError::Protocol(e.to_string()))?;
    Ok((id, msg))
}

/// Picks the version a connection speaks from the client's advertised
/// maximum: `min(client_max, MAX_PROTOCOL_VERSION)`, or a typed
/// protocol error for the nonsensical version 0.
///
/// # Errors
///
/// [`ServeError::Protocol`] when `client_max` is 0.
pub fn negotiate_version(client_max: u32) -> Result<u32> {
    if client_max == 0 {
        return Err(ServeError::Protocol(
            "Hello advertises protocol version 0 (versions start at 1)".to_string(),
        ));
    }
    Ok(client_max.min(MAX_PROTOCOL_VERSION))
}

/// Writes one frame (length prefix + payload) and flushes.
///
/// # Errors
///
/// [`ServeError::Protocol`] when `payload` exceeds [`MAX_FRAME_BYTES`]
/// (nothing is written); [`ServeError::Io`] on socket failure.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(ServeError::Protocol(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte limit",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Outcome of [`read_frame`] distinguishing a clean close from abuse.
#[derive(Debug)]
pub enum Frame {
    /// A complete payload arrived.
    Payload(Vec<u8>),
    /// The peer closed the stream at a frame boundary.
    Closed,
}

/// Validates a decoded frame-length prefix *before* any allocation:
/// zero and over-[`MAX_FRAME_BYTES`] lengths are protocol violations.
/// Shared by [`read_frame`] and the server's deadline-aware reader.
///
/// # Errors
///
/// [`ServeError::Protocol`] for zero/over-limit lengths.
pub fn check_frame_len(len: usize) -> Result<()> {
    if len == 0 || len > MAX_FRAME_BYTES {
        return Err(ServeError::Protocol(format!(
            "frame length {len} outside 1..={MAX_FRAME_BYTES}"
        )));
    }
    Ok(())
}

/// Reads one frame. The length prefix is validated against
/// [`MAX_FRAME_BYTES`] *before* any payload allocation, and the payload
/// buffer grows in 64 KiB steps as bytes arrive, so a
/// hostile prefix can never cause an over-allocation.
///
/// # Errors
///
/// [`ServeError::Protocol`] for zero/over-limit lengths;
/// [`ServeError::Io`] for mid-frame EOF or socket failure.
pub fn read_frame(r: &mut impl Read) -> Result<Frame> {
    let mut prefix = [0u8; 4];
    match r.read_exact(&mut prefix) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(Frame::Closed),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(prefix) as usize;
    check_frame_len(len)?;
    let mut payload = Vec::with_capacity(len.min(READ_CHUNK));
    let mut remaining = len;
    while remaining > 0 {
        let step = remaining.min(READ_CHUNK);
        let start = payload.len();
        payload.resize(start + step, 0);
        let dst = payload
            .get_mut(start..)
            .ok_or_else(|| ServeError::Io("mid-frame read: chunk bounds".to_string()))?;
        r.read_exact(dst)
            .map_err(|e| ServeError::Io(format!("mid-frame read ({remaining} bytes left): {e}")))?;
        remaining -= step;
    }
    Ok(Frame::Payload(payload))
}

/// Maps a server-side failure to the (kind, message) pair put on the
/// wire.
pub fn classify(e: &ServeError) -> (ErrorKind, String) {
    let kind = match e {
        ServeError::ModelNotFound { .. } => ErrorKind::NotFound,
        ServeError::BadArtifact { .. } => ErrorKind::BadArtifact,
        ServeError::Overloaded { .. } => ErrorKind::Overloaded,
        ServeError::InvalidRequest(_) => ErrorKind::InvalidRequest,
        ServeError::Engine(_) => ErrorKind::Engine,
        ServeError::Protocol(_) => ErrorKind::Protocol,
        ServeError::ShuttingDown => ErrorKind::Draining,
        ServeError::Io(_) | ServeError::Remote { .. } => ErrorKind::Internal,
    };
    (kind, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: &Request) {
        let bytes = encode_payload(req);
        let back: Request = decode_payload(&bytes).expect("decodes");
        assert_eq!(req, &back);
    }

    #[test]
    fn requests_round_trip() {
        roundtrip_request(&Request::Infer {
            model: "lenet5".into(),
            dims: vec![1, 28, 28],
            data: vec![0.5; 784],
        });
        roundtrip_request(&Request::ListModels);
        roundtrip_request(&Request::Stats {
            model: "vgg11".into(),
        });
        roundtrip_request(&Request::ServerStats);
        roundtrip_request(&Request::Hello { max_version: 2 });
        roundtrip_request(&Request::Hello {
            max_version: u32::MAX,
        });
    }

    #[test]
    fn hello_response_round_trips() {
        let resp = Response::Hello { version: 2 };
        let back: Response = decode_payload(&encode_payload(&resp)).expect("decodes");
        assert_eq!(resp, back);
    }

    #[test]
    fn v2_payloads_round_trip_with_their_ids() {
        for id in [0u64, 1, 42, u64::MAX - 1, CONNECTION_SCOPED_ID] {
            let req = Request::Stats { model: "m".into() };
            let bytes = encode_payload_v2(id, &req);
            let (back_id, back): (u64, Request) = decode_payload_v2(&bytes).expect("decodes");
            assert_eq!(back_id, id);
            assert_eq!(back, req);
        }
    }

    #[test]
    fn v2_decode_rejects_short_and_trailing_payloads() {
        // Too short to even carry the id.
        for len in 0..8 {
            let bytes = vec![0u8; len];
            assert!(matches!(
                decode_payload_v2::<Request>(&bytes),
                Err(ServeError::Protocol(_))
            ));
        }
        // Valid id, then garbage after a valid message.
        let mut bytes = encode_payload_v2(9, &Request::ListModels);
        bytes.push(0xFF);
        assert!(matches!(
            decode_payload_v2::<Request>(&bytes),
            Err(ServeError::Protocol(_))
        ));
        // A v1 payload is not a valid v2 payload (the id bytes eat the
        // tag) — decoding must fail cleanly, never panic.
        let v1 = encode_payload(&Request::ListModels);
        assert!(decode_payload_v2::<Request>(&v1).is_err());
    }

    #[test]
    fn negotiation_clamps_to_the_build_maximum() {
        assert!(negotiate_version(0).is_err());
        assert_eq!(negotiate_version(1).expect("v1"), PROTOCOL_V1);
        assert_eq!(negotiate_version(2).expect("v2"), PROTOCOL_V2);
        assert_eq!(
            negotiate_version(u32::MAX).expect("future client"),
            MAX_PROTOCOL_VERSION
        );
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Logits(vec![1.0, -2.5, f32::NAN]),
            Response::Models(vec![WireModelInfo {
                id: "a".into(),
                loaded: true,
            }]),
            Response::Stats(WireStats {
                submitted: 10,
                completed: 9,
                failed: 1,
                rejected: 0,
                batches: 3,
                mean_occupancy: 3.33,
                max_occupancy: 4,
                p50_latency_ms: 1.0,
                p99_latency_ms: 9.5,
            }),
            Response::ServerStats(WireServerStats {
                accepted: 12,
                refused: 3,
                timed_out: 2,
                protocol_errors: 1,
                drained: 4,
            }),
            Response::Error {
                kind: ErrorKind::Overloaded,
                message: "queue full".into(),
            },
            Response::Error {
                kind: ErrorKind::Timeout,
                message: "stalled mid-frame".into(),
            },
            Response::Error {
                kind: ErrorKind::Draining,
                message: "shutting down".into(),
            },
        ] {
            let bytes = encode_payload(&resp);
            let back: Response = decode_payload(&bytes).expect("decodes");
            match (&resp, &back) {
                // NaN logits: compare bit patterns.
                (Response::Logits(a), Response::Logits(b)) => {
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
                _ => assert_eq!(resp, back),
            }
        }
    }

    #[test]
    fn infer_decode_rejects_dims_data_mismatch() {
        let mut w = Writer::new();
        w.put_u8(0);
        w.put_str("m");
        vec![2usize, 2].encode(&mut w);
        vec![1.0f32; 5].encode(&mut w); // 5 != 4
        assert!(decode_payload::<Request>(&w.into_bytes()).is_err());
    }

    #[test]
    fn infer_decode_rejects_overflowing_dims() {
        // Product overflows usize — must be a typed error, not a panic.
        let mut w = Writer::new();
        w.put_u8(0);
        w.put_str("m");
        vec![usize::MAX, usize::MAX].encode(&mut w);
        Vec::<f32>::new().encode(&mut w);
        assert!(decode_payload::<Request>(&w.into_bytes()).is_err());
        // Product over the element cap but not overflowing.
        let mut w = Writer::new();
        w.put_u8(0);
        w.put_str("m");
        vec![MAX_IMAGE_ELEMS, 2].encode(&mut w);
        Vec::<f32>::new().encode(&mut w);
        assert!(decode_payload::<Request>(&w.into_bytes()).is_err());
        // Zero dims are meaningless for an image.
        let mut w = Writer::new();
        w.put_u8(0);
        w.put_str("m");
        vec![0usize, 4].encode(&mut w);
        Vec::<f32>::new().encode(&mut w);
        assert!(decode_payload::<Request>(&w.into_bytes()).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_payload(&Request::ListModels);
        bytes.push(0);
        assert!(matches!(
            decode_payload::<Request>(&bytes),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let payload = encode_payload(&Request::Stats { model: "x".into() });
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        match read_frame(&mut cursor).unwrap() {
            Frame::Payload(p) => assert_eq!(p, payload),
            Frame::Closed => panic!("expected payload"),
        }
        // EOF at the boundary is a clean close.
        assert!(matches!(read_frame(&mut cursor).unwrap(), Frame::Closed));
    }

    #[test]
    fn oversized_and_zero_length_prefixes_are_typed_errors() {
        let mut cursor = std::io::Cursor::new(u32::MAX.to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ServeError::Protocol(_))
        ));
        let mut cursor = std::io::Cursor::new(0u32.to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ServeError::Protocol(_))
        ));
        // A length claiming more bytes than will ever arrive: I/O error
        // once the stream dries up, allocation bounded by arrival.
        let mut wire = ((MAX_FRAME_BYTES) as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&[7u8; 16]);
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(read_frame(&mut cursor), Err(ServeError::Io(_))));
    }

    #[test]
    fn check_frame_len_bounds() {
        assert!(check_frame_len(1).is_ok());
        assert!(check_frame_len(MAX_FRAME_BYTES).is_ok());
        assert!(check_frame_len(0).is_err());
        assert!(check_frame_len(MAX_FRAME_BYTES + 1).is_err());
    }

    #[test]
    fn write_frame_refuses_over_limit_payloads() {
        let mut sink = Vec::new();
        let huge = vec![0u8; MAX_FRAME_BYTES + 1];
        assert!(matches!(
            write_frame(&mut sink, &huge),
            Err(ServeError::Protocol(_))
        ));
        assert!(sink.is_empty(), "nothing must hit the wire");
    }

    #[test]
    fn classify_covers_every_error() {
        let cases = [
            (
                ServeError::ModelNotFound { model: "x".into() },
                ErrorKind::NotFound,
            ),
            (
                ServeError::Overloaded {
                    queued: 1,
                    capacity: 1,
                },
                ErrorKind::Overloaded,
            ),
            (ServeError::Protocol("p".into()), ErrorKind::Protocol),
            (ServeError::ShuttingDown, ErrorKind::Draining),
        ];
        for (err, want) in cases {
            assert_eq!(classify(&err).0, want, "{err}");
        }
    }
}
