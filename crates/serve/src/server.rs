//! A dependency-free (`std::net`) TCP inference server over the
//! [`crate::protocol`] framing.
//!
//! Two connection cores share this module's lifecycle contracts,
//! selected by [`ServerConfig::core`] / `DEEPCAM_SERVE_CORE`
//! ([`crate::core_select`]):
//!
//! - **threads** (this file): one accept thread plus one blocking
//!   thread per connection — portable, simple, capped by thread count.
//! - **epoll** (`crate::event_loop`, Linux default): one event-loop
//!   thread multiplexing every connection through readiness polling,
//!   built for many more concurrent connections than threads.
//!
//! Either way every connection submits through the shared [`Runtime`],
//! so concurrent clients' requests coalesce in the per-model
//! micro-batchers and replies stay bit-identical between cores.
//! Per-connection limits (frame size, image size, connection count)
//! are enforced before any allocation or engine work.
//!
//! # Connection lifecycle
//!
//! Each connection distinguishes three ways of "not sending bytes":
//!
//! - **Idle at a frame boundary** — no bytes of the next frame have
//!   arrived. Governed by [`ServerConfig::idle_timeout`] (default:
//!   wait forever); hitting it closes the connection quietly.
//! - **Stalled mid-frame** — the first byte of a frame arrived but the
//!   rest didn't within [`ServerConfig::read_timeout`]. This is the
//!   slow-loris shape: the connection is answered once with a typed
//!   [`ErrorKind::Timeout`] frame and hung up, so a half-frame peer
//!   can never pin a connection thread against `max_connections`.
//! - **Not reading replies** — a zero-window peer stalling reply
//!   writes is reaped by [`ServerConfig::write_timeout`].
//!
//! # Graceful drain
//!
//! [`Server::shutdown`] is a two-phase drain: the accept gate starts
//! refusing with [`ErrorKind::Draining`], in-flight requests complete
//! through the session flush and their replies are written (bounded by
//! [`ServerConfig::drain_timeout`]), then every remaining stream is
//! hard-closed and the accept thread joined.

use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::clock::{Clock, SystemClock};
use crate::core_select::{self, CoreSelect, ServerCore};
use crate::error::{Result, ServeError};
use crate::protocol::{
    check_frame_len, classify, decode_payload, decode_payload_v2, encode_payload,
    encode_payload_v2, negotiate_version, write_frame, ErrorKind, Request, Response, WireModelInfo,
    WireServerStats, WireStats, CONNECTION_SCOPED_ID, PROTOCOL_V1, PROTOCOL_V2,
};
use crate::session::Runtime;
use crate::stats::{ServerCounters, ServerStats};

/// Payload chunk size the deadline-aware reader grows by (allocation
/// tracks received bytes, not the claimed length — same contract as
/// `protocol::read_frame`).
const READ_CHUNK: usize = 64 * 1024;

/// Write timeout for refusal frames: long enough for any cooperating
/// peer, short enough that a zero-window peer only pins the detached
/// refusal thread briefly.
const REFUSE_WRITE_TIMEOUT: Duration = Duration::from_millis(250);

/// Server limits and knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Most simultaneously served connections; excess connects receive
    /// an `Overloaded` error frame and are closed.
    pub max_connections: usize,
    /// Mid-frame deadline: once the first byte of a frame arrives, the
    /// rest must follow within this budget or the connection is
    /// answered with [`ErrorKind::Timeout`] and closed. `None` disables
    /// the deadline (a half-frame peer can then pin its thread).
    pub read_timeout: Option<Duration>,
    /// Per-write deadline on reply frames; a peer that stops reading
    /// (zero window) is reaped instead of pinning the thread. `None`
    /// blocks forever.
    pub write_timeout: Option<Duration>,
    /// How long a connection may sit with *no* bytes of a next frame
    /// before being closed quietly. `None` (default) waits forever —
    /// idle-at-boundary is a healthy keep-alive connection.
    pub idle_timeout: Option<Duration>,
    /// Phase-one budget of [`Server::shutdown`]: how long in-flight
    /// requests get to complete and write their replies before the
    /// hard close.
    pub drain_timeout: Duration,
    /// Which connection core runs this server:
    /// [`CoreSelect::Auto`] (the default) consults
    /// `DEEPCAM_SERVE_CORE`, then the platform default (epoll on
    /// Linux, threads elsewhere); an explicit selection wins outright.
    pub core: CoreSelect,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            idle_timeout: None,
            drain_timeout: Duration::from_secs(5),
            core: CoreSelect::Auto,
        }
    }
}

/// State both connection cores share: the runtime, config, clock,
/// lifecycle flags and robustness counters. The threads core reaches
/// it from the accept/connection threads; the epoll core from its one
/// event-loop thread (`crate::event_loop`).
pub(crate) struct ServerShared {
    pub(crate) runtime: Arc<Runtime>,
    pub(crate) cfg: ServerConfig,
    pub(crate) clock: Arc<dyn Clock>,
    pub(crate) shutdown: AtomicBool,
    /// Latched by [`Server::shutdown`] before the drain wait: the
    /// accept gate refuses, and frames already buffered on live
    /// connections are answered with [`ErrorKind::Draining`].
    pub(crate) draining: AtomicBool,
    pub(crate) active: AtomicUsize,
    /// Requests currently between frame receipt and reply write. The
    /// drain wait in [`Server::shutdown`] blocks on this reaching 0.
    pub(crate) busy: AtomicUsize,
    next_conn_id: AtomicUsize,
    pub(crate) counters: ServerCounters,
    /// Clones of live connection streams keyed by connection id, kept
    /// so shutdown can unblock their reader threads (threads core
    /// only; the epoll core owns its streams inside the loop). Each
    /// connection removes its own entry on exit, so the map (and its
    /// file descriptors) tracks live connections, not connection
    /// history.
    conns: Mutex<std::collections::HashMap<usize, TcpStream>>,
}

/// The tracked-connection table, recovering from a poisoned lock: a
/// panicking connection thread must not take the server's shutdown
/// path (or other connections) down with it, and the map of stream
/// clones is valid under any interleaving of inserts/removes.
fn lock_conns(
    shared: &ServerShared,
) -> std::sync::MutexGuard<'_, std::collections::HashMap<usize, TcpStream>> {
    shared.conns.lock().unwrap_or_else(|p| p.into_inner())
}

/// The per-core runtime half of a [`Server`]: which threads exist and
/// how phase 2 of shutdown unblocks them.
enum CoreRuntime {
    /// One accept thread plus one thread per connection.
    Threads {
        accept: Option<std::thread::JoinHandle<()>>,
    },
    /// One event-loop thread multiplexing every connection.
    #[cfg(target_os = "linux")]
    Epoll {
        thread: Option<std::thread::JoinHandle<()>>,
        ctl: Arc<crate::event_loop::LoopCtl>,
    },
}

/// A running TCP inference server. Shuts down on drop (or explicitly
/// via [`Server::shutdown`]).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    core: CoreRuntime,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections against `runtime`, reading deadlines from
    /// the system clock.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the bind fails.
    pub fn bind(
        addr: impl ToSocketAddrs,
        runtime: Arc<Runtime>,
        cfg: ServerConfig,
    ) -> Result<Server> {
        Server::bind_with_clock(addr, runtime, cfg, Arc::new(SystemClock))
    }

    /// [`Server::bind`] with an explicit time source, so deadline and
    /// drain behavior can be driven deterministically from tests via
    /// [`crate::clock::ManualClock`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the bind fails.
    pub fn bind_with_clock(
        addr: impl ToSocketAddrs,
        runtime: Arc<Runtime>,
        cfg: ServerConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Server> {
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::Io(format!("bind: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("local_addr: {e}")))?;
        let resolved = core_select::resolve(cfg.core);
        let shared = Arc::new(ServerShared {
            runtime,
            cfg,
            clock,
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            busy: AtomicUsize::new(0),
            next_conn_id: AtomicUsize::new(0),
            counters: ServerCounters::default(),
            conns: Mutex::new(std::collections::HashMap::new()),
        });
        let core = match resolved {
            ServerCore::Threads => {
                let accept_shared = Arc::clone(&shared);
                let accept = std::thread::Builder::new()
                    .name("deepcam-serve-accept".into())
                    .spawn(move || accept_loop(&listener, &accept_shared))
                    .map_err(|e| ServeError::Io(format!("spawn accept thread: {e}")))?;
                CoreRuntime::Threads {
                    accept: Some(accept),
                }
            }
            #[cfg(target_os = "linux")]
            ServerCore::Epoll => {
                let (thread, ctl) = crate::event_loop::spawn_event_loop(listener, &shared)?;
                CoreRuntime::Epoll {
                    thread: Some(thread),
                    ctl,
                }
            }
            // `core_select::resolve` only returns Epoll where it can run.
            #[cfg(not(target_os = "linux"))]
            ServerCore::Epoll => {
                return Err(ServeError::Io(
                    "epoll core resolved on a non-Linux host".to_string(),
                ))
            }
        };
        Ok(Server { addr, shared, core })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// A snapshot of the connection robustness counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.counters.snapshot()
    }

    /// Stable name of the connection core this server runs
    /// (`"threads"` or `"epoll"`).
    pub fn core_name(&self) -> &'static str {
        match &self.core {
            CoreRuntime::Threads { .. } => ServerCore::Threads.name(),
            #[cfg(target_os = "linux")]
            CoreRuntime::Epoll { .. } => ServerCore::Epoll.name(),
        }
    }

    /// Two-phase graceful drain. Phase 1: stop admitting work (the
    /// accept gate refuses with [`ErrorKind::Draining`], frames
    /// arriving on live connections are answered likewise) and wait up
    /// to [`ServerConfig::drain_timeout`] for in-flight requests to
    /// complete through the session flush and write their replies.
    /// Phase 2: hard-close every remaining stream, unblock and join
    /// the accept loop. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        self.shared.draining.store(true, Ordering::SeqCst);
        #[cfg(target_os = "linux")]
        if let CoreRuntime::Epoll { ctl, .. } = &self.core {
            // Wake the loop so the accept gate starts refusing now,
            // not at its next natural wakeup.
            ctl.waker.signal();
        }
        let start = self.shared.clock.now();
        while self.shared.busy.load(Ordering::SeqCst) > 0
            && self.shared.clock.now().saturating_duration_since(start)
                < self.shared.cfg.drain_timeout
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        match &mut self.core {
            CoreRuntime::Threads { accept } => {
                // Unblock connection readers first, then the accept
                // loop (via a throwaway connect so `incoming()` yields
                // once more).
                for (_, conn) in lock_conns(&self.shared).drain() {
                    let _ = conn.shutdown(Shutdown::Both);
                }
                let _ = TcpStream::connect(self.addr);
                if let Some(handle) = accept.take() {
                    let _ = handle.join();
                }
            }
            #[cfg(target_os = "linux")]
            CoreRuntime::Epoll { thread, ctl } => {
                // The loop observes the shutdown flag on wake, closes
                // every connection itself and exits.
                ctl.waker.signal();
                if let Some(handle) = thread.take() {
                    let _ = handle.join();
                }
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        if shared.draining.load(Ordering::SeqCst) {
            shared.counters.inc_refused();
            refuse_connection(
                stream,
                ErrorKind::Draining,
                "server is draining for shutdown".into(),
            );
            continue;
        }
        let previous = shared.active.fetch_add(1, Ordering::SeqCst);
        if previous >= shared.cfg.max_connections {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            shared.counters.inc_refused();
            refuse_connection(
                stream,
                ErrorKind::Overloaded,
                format!("server at its connection limit ({previous} active)"),
            );
            continue;
        }
        shared.counters.inc_accepted();
        let _ = stream.set_nodelay(true);
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::SeqCst);
        if let Ok(clone) = stream.try_clone() {
            lock_conns(shared).insert(conn_id, clone);
        }
        let conn_shared = Arc::clone(shared);
        // Connection threads are not joined: shutdown unblocks them by
        // closing their streams, after which they exit promptly.
        let _ = std::thread::Builder::new()
            .name("deepcam-serve-conn".into())
            .spawn(move || {
                serve_connection(stream, &conn_shared);
                // Release this connection's tracked clone (and its fd).
                lock_conns(&conn_shared).remove(&conn_id);
                conn_shared.active.fetch_sub(1, Ordering::SeqCst);
            });
    }
}

/// Best-effort typed refusal to a connection the accept gate rejected.
///
/// The frame is written from a short-lived detached thread under
/// [`REFUSE_WRITE_TIMEOUT`], so a zero-window peer can never stall
/// `accept_loop` itself (the accept thread used to write this frame
/// inline and block). If the thread cannot be spawned the stream just
/// drops — a hang-up is an acceptable refusal.
fn refuse_connection(stream: TcpStream, kind: ErrorKind, message: String) {
    let _ = stream.set_write_timeout(Some(REFUSE_WRITE_TIMEOUT));
    let _ = stream.set_read_timeout(Some(REFUSE_WRITE_TIMEOUT));
    let _ = std::thread::Builder::new()
        .name("deepcam-serve-refuse".into())
        .spawn(move || {
            let mut stream = stream;
            let payload = encode_payload(&Response::Error { kind, message });
            let _ = write_frame(&mut stream, &payload);
            // Half-close, then briefly drain whatever the peer was
            // mid-way through sending. A hard close here would race
            // the peer's own write: the resulting RST can discard the
            // refusal frame before the peer reads it. The drain is
            // bounded (read timeout x iteration cap) so a trickling
            // peer cannot pin this thread.
            let _ = stream.shutdown(Shutdown::Write);
            let mut sink = [0u8; 1024];
            for _ in 0..8 {
                match stream.read(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
        });
}

/// What one attempt to read a frame from a connection produced.
enum ConnRead {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary.
    Closed,
    /// No bytes arrived within `idle_timeout` at a frame boundary.
    Idle,
    /// Mid-frame deadline (`read_timeout`) exceeded: the slow-loris
    /// shape, answered with [`ErrorKind::Timeout`].
    Stalled,
    /// Malformed length prefix: answered once, then hang-up.
    Protocol(ServeError),
    /// Mid-frame EOF or hard socket error: close quietly.
    Io,
}

/// Outcome of arming the socket read timer against a frame deadline.
enum Arm {
    Armed,
    Expired,
    Failed,
}

/// Points the socket's read timer at what remains of `deadline`
/// according to `clock` (or disarms it when there is no deadline).
fn arm_read_timer(stream: &TcpStream, deadline: Option<Instant>, clock: &dyn Clock) -> Arm {
    let remaining = match deadline {
        None => None,
        Some(deadline) => {
            let left = deadline.saturating_duration_since(clock.now());
            if left.is_zero() {
                return Arm::Expired;
            }
            Some(left)
        }
    };
    match stream.set_read_timeout(remaining) {
        Ok(()) => Arm::Armed,
        Err(_) => Arm::Failed,
    }
}

/// True for the error kinds a socket read timer produces.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one frame under the connection-lifecycle deadlines.
///
/// Waiting for the *first* byte of a frame runs under `idle_timeout`
/// (None = forever). The moment the first byte arrives, a per-frame
/// deadline of `read_timeout` is armed and re-armed with the remaining
/// budget after every partial read — a peer trickling one byte per
/// interval cannot reset it, which is what makes the slow-loris test
/// deterministic.
fn read_one_frame(stream: &mut TcpStream, shared: &ServerShared) -> ConnRead {
    // Phase 1: the 4-byte length prefix.
    if stream.set_read_timeout(shared.cfg.idle_timeout).is_err() {
        return ConnRead::Io;
    }
    let mut prefix = [0u8; 4];
    let mut got = 0usize;
    let mut deadline: Option<Instant> = None;
    let mut mid_frame = false;
    while got < prefix.len() {
        let Some(buf) = prefix.get_mut(got..) else {
            return ConnRead::Io;
        };
        match stream.read(buf) {
            Ok(0) => {
                return if got == 0 {
                    ConnRead::Closed
                } else {
                    ConnRead::Io
                };
            }
            Ok(n) => {
                got += n;
                if !mid_frame {
                    // First byte of a frame: arm the mid-frame deadline.
                    mid_frame = true;
                    deadline = shared
                        .cfg
                        .read_timeout
                        .and_then(|t| shared.clock.now().checked_add(t));
                }
                match arm_read_timer(stream, deadline, shared.clock.as_ref()) {
                    Arm::Armed => {}
                    Arm::Expired => return ConnRead::Stalled,
                    Arm::Failed => return ConnRead::Io,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                return if got == 0 {
                    ConnRead::Idle
                } else {
                    ConnRead::Stalled
                };
            }
            Err(_) => return ConnRead::Io,
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if let Err(e) = check_frame_len(len) {
        return ConnRead::Protocol(e);
    }
    // Phase 2: the payload, under the same frame deadline. Allocation
    // grows with received bytes (READ_CHUNK steps), never the claimed
    // length — the same hostile-prefix contract as `read_frame`.
    let mut payload: Vec<u8> = Vec::with_capacity(len.min(READ_CHUNK));
    while payload.len() < len {
        let start = payload.len();
        let step = (len - start).min(READ_CHUNK);
        payload.resize(start + step, 0);
        let Some(buf) = payload.get_mut(start..) else {
            return ConnRead::Io;
        };
        match stream.read(buf) {
            Ok(0) => return ConnRead::Io,
            Ok(n) => {
                payload.truncate(start + n);
                match arm_read_timer(stream, deadline, shared.clock.as_ref()) {
                    Arm::Armed => {}
                    Arm::Expired => return ConnRead::Stalled,
                    Arm::Failed => return ConnRead::Io,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                payload.truncate(start);
            }
            Err(e) if is_timeout(&e) => return ConnRead::Stalled,
            Err(_) => return ConnRead::Io,
        }
    }
    ConnRead::Frame(payload)
}

/// Frames `resp` for a connection speaking `version`: v2 payloads
/// carry `req_id` (or [`CONNECTION_SCOPED_ID`] for errors that answer
/// no particular request), v1 payloads the bare encoding. Shared by
/// both connection cores.
pub(crate) fn frame_response(version: u32, req_id: u64, resp: &Response) -> Vec<u8> {
    if version >= PROTOCOL_V2 {
        encode_payload_v2(req_id, resp)
    } else {
        encode_payload(resp)
    }
}

/// One connection's request/response loop (threads core). Speaks both
/// protocol versions: the first frame is sniffed for a
/// [`Request::Hello`]; anything else locks the connection to v1. The
/// threads core serves strictly one request at a time, so v2 clients
/// pipelining here get their replies in order — out-of-order
/// completion is the epoll core's (`crate::event_loop`) territory.
fn serve_connection(mut stream: TcpStream, shared: &Arc<ServerShared>) {
    if stream.set_write_timeout(shared.cfg.write_timeout).is_err() {
        return;
    }
    // Negotiated protocol version; `None` until the first frame.
    let mut version: Option<u32> = None;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let wire_version = version.unwrap_or(PROTOCOL_V1);
        let payload = match read_one_frame(&mut stream, shared) {
            ConnRead::Frame(p) => p,
            // Clean close at a frame boundary, or an idle connection
            // past its welcome: done, quietly.
            ConnRead::Closed | ConnRead::Idle => return,
            // Slow-loris: answer once with the typed timeout, hang up.
            ConnRead::Stalled => {
                shared.counters.inc_timed_out();
                let resp = Response::Error {
                    kind: ErrorKind::Timeout,
                    message: "connection stalled mid-frame past read_timeout".into(),
                };
                let _ = write_frame(
                    &mut stream,
                    &frame_response(wire_version, CONNECTION_SCOPED_ID, &resp),
                );
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            // A bad length prefix desyncs the stream: answer once (the
            // typed-error contract) and hang up.
            ConnRead::Protocol(e) => {
                shared.counters.inc_protocol_errors();
                let (kind, message) = classify(&e);
                let _ = write_frame(
                    &mut stream,
                    &frame_response(
                        wire_version,
                        CONNECTION_SCOPED_ID,
                        &Response::Error { kind, message },
                    ),
                );
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            ConnRead::Io => return,
        };
        // Count this request in-flight *before* checking the drain
        // flag, so the drain wait can never observe `busy == 0` while
        // a received frame is slipping into the runtime.
        shared.busy.fetch_add(1, Ordering::SeqCst);
        if shared.draining.load(Ordering::SeqCst) {
            shared.busy.fetch_sub(1, Ordering::SeqCst);
            // Echo the request id when the frame is well-formed v2, so
            // a multiplexing client can attribute the refusal.
            let req_id = if wire_version >= PROTOCOL_V2 {
                decode_payload_v2::<Request>(&payload)
                    .map(|(id, _)| id)
                    .unwrap_or(CONNECTION_SCOPED_ID)
            } else {
                CONNECTION_SCOPED_ID
            };
            let resp = Response::Error {
                kind: ErrorKind::Draining,
                message: "server is draining for shutdown".into(),
            };
            let _ = write_frame(&mut stream, &frame_response(wire_version, req_id, &resp));
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        // Decode under the locked version. Frame boundaries are intact
        // here, so a garbage *payload* is answered and the connection
        // keeps serving.
        let (req_id, decoded) = if wire_version >= PROTOCOL_V2 {
            match decode_payload_v2::<Request>(&payload) {
                Ok((id, req)) => (id, Ok(req)),
                Err(e) => (CONNECTION_SCOPED_ID, Err(e)),
            }
        } else {
            (CONNECTION_SCOPED_ID, decode_payload::<Request>(&payload))
        };
        let mut hangup_after_reply = false;
        let response = match decoded {
            Ok(Request::Hello { max_version }) if version.is_none() => {
                match negotiate_version(max_version) {
                    Ok(v) => {
                        version = Some(v);
                        Response::Hello { version: v }
                    }
                    // A version-0 Hello leaves the connection's version
                    // ambiguous: answer once, hang up.
                    Err(e) => {
                        shared.counters.inc_protocol_errors();
                        hangup_after_reply = true;
                        let (kind, message) = classify(&e);
                        Response::Error { kind, message }
                    }
                }
            }
            Ok(Request::Hello { .. }) => {
                // Hello after the first frame: a violation, but frame
                // boundaries are intact — answer and keep serving.
                shared.counters.inc_protocol_errors();
                let (kind, message) = classify(&ServeError::Protocol(
                    "Hello is only valid as a connection's first frame".to_string(),
                ));
                Response::Error { kind, message }
            }
            Ok(request) => {
                version.get_or_insert(PROTOCOL_V1);
                handle_request(shared, request)
            }
            Err(e) => {
                version.get_or_insert(PROTOCOL_V1);
                shared.counters.inc_protocol_errors();
                let (kind, message) = classify(&e);
                Response::Error { kind, message }
            }
        };
        // The handshake reply itself is always v1-framed: the
        // negotiated version governs *subsequent* frames.
        let framed = match &response {
            Response::Hello { .. } => encode_payload(&response),
            _ => frame_response(version.unwrap_or(PROTOCOL_V1), req_id, &response),
        };
        let wrote = write_frame(&mut stream, &framed).is_ok();
        let was_draining = shared.draining.load(Ordering::SeqCst);
        // Decrement *after* the reply write: the drain wait holds until
        // in-flight replies are on the wire, not merely computed.
        shared.busy.fetch_sub(1, Ordering::SeqCst);
        if was_draining {
            if wrote {
                shared.counters.inc_drained();
            }
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        if hangup_after_reply {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        if !wrote {
            return;
        }
    }
}

/// Executes one decoded request against the runtime. Blocking for
/// `Infer` (the threads core's shape); the epoll core submits `Infer`
/// asynchronously itself and only routes its control requests here.
pub(crate) fn handle_request(shared: &ServerShared, request: Request) -> Response {
    let outcome = match request {
        // The decode already enforced dims/data consistency and size
        // caps; the session re-validates against the model's expected
        // image size.
        Request::Infer { model, dims, data } => shared
            .runtime
            .infer(&model, &dims, &data)
            .map(Response::Logits),
        Request::ListModels => Ok(Response::Models(
            shared
                .runtime
                .list()
                .into_iter()
                .map(|m| WireModelInfo {
                    id: m.id,
                    loaded: m.loaded,
                })
                .collect(),
        )),
        Request::Stats { model } => shared.runtime.stats(&model).map(|s| {
            Response::Stats(WireStats {
                submitted: s.submitted,
                completed: s.completed,
                failed: s.failed,
                rejected: s.rejected,
                batches: s.batches,
                mean_occupancy: s.mean_occupancy,
                max_occupancy: s.max_occupancy as u64,
                p50_latency_ms: s.p50_latency_ms,
                p99_latency_ms: s.p99_latency_ms,
            })
        }),
        Request::ServerStats => {
            let s = shared.counters.snapshot();
            Ok(Response::ServerStats(WireServerStats {
                accepted: s.accepted,
                refused: s.refused,
                timed_out: s.timed_out,
                protocol_errors: s.protocol_errors,
                drained: s.drained,
            }))
        }
        // Both cores intercept Hello before dispatching here; a stray
        // one is a protocol violation, answered typed.
        Request::Hello { .. } => Err(ServeError::Protocol(
            "Hello is only valid as a connection's first frame".to_string(),
        )),
    };
    outcome.unwrap_or_else(|e| {
        let (kind, message) = classify(&e);
        Response::Error { kind, message }
    })
}
