//! A dependency-free (`std::net`) TCP inference server over the
//! [`crate::protocol`] framing.
//!
//! One accept thread plus one thread per connection; every connection
//! submits through the shared [`Runtime`], so concurrent clients'
//! requests coalesce in the per-model micro-batchers. Per-connection
//! limits (frame size, image size, connection count) are enforced
//! before any allocation or engine work.

use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::{Result, ServeError};
use crate::protocol::{
    classify, decode_payload, encode_payload, read_frame, write_frame, ErrorKind, Frame, Request,
    Response, WireModelInfo, WireStats,
};
use crate::session::Runtime;

/// Server limits and knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Most simultaneously served connections; excess connects receive
    /// an `Overloaded` error frame and are closed.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
        }
    }
}

struct ServerShared {
    runtime: Arc<Runtime>,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    next_conn_id: AtomicUsize,
    /// Clones of live connection streams keyed by connection id, kept
    /// so shutdown can unblock their reader threads. Each connection
    /// removes its own entry on exit, so the map (and its file
    /// descriptors) tracks live connections, not connection history.
    conns: Mutex<std::collections::HashMap<usize, TcpStream>>,
}

/// The tracked-connection table, recovering from a poisoned lock: a
/// panicking connection thread must not take the server's shutdown
/// path (or other connections) down with it, and the map of stream
/// clones is valid under any interleaving of inserts/removes.
fn lock_conns(
    shared: &ServerShared,
) -> std::sync::MutexGuard<'_, std::collections::HashMap<usize, TcpStream>> {
    shared.conns.lock().unwrap_or_else(|p| p.into_inner())
}

/// A running TCP inference server. Shuts down on drop (or explicitly
/// via [`Server::shutdown`]).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections against `runtime`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the bind fails.
    pub fn bind(
        addr: impl ToSocketAddrs,
        runtime: Arc<Runtime>,
        cfg: ServerConfig,
    ) -> Result<Server> {
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::Io(format!("bind: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("local_addr: {e}")))?;
        let shared = Arc::new(ServerShared {
            runtime,
            cfg,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            next_conn_id: AtomicUsize::new(0),
            conns: Mutex::new(std::collections::HashMap::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("deepcam-serve-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .map_err(|e| ServeError::Io(format!("spawn accept thread: {e}")))?;
        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Stops accepting, unblocks every connection thread, and joins the
    /// accept loop. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock connection readers first, then the accept loop (via a
        // throwaway connect so `incoming()` yields once more).
        for (_, conn) in lock_conns(&self.shared).drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let previous = shared.active.fetch_add(1, Ordering::SeqCst);
        if previous >= shared.cfg.max_connections {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            refuse_connection(stream, previous);
            continue;
        }
        let _ = stream.set_nodelay(true);
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::SeqCst);
        if let Ok(clone) = stream.try_clone() {
            lock_conns(shared).insert(conn_id, clone);
        }
        let conn_shared = Arc::clone(shared);
        // Connection threads are not joined: shutdown unblocks them by
        // closing their streams, after which they exit promptly.
        let _ = std::thread::Builder::new()
            .name("deepcam-serve-conn".into())
            .spawn(move || {
                serve_connection(stream, &conn_shared);
                // Release this connection's tracked clone (and its fd).
                lock_conns(&conn_shared).remove(&conn_id);
                conn_shared.active.fetch_sub(1, Ordering::SeqCst);
            });
    }
}

/// Best-effort `Overloaded` reply to a connection over the limit.
fn refuse_connection(mut stream: TcpStream, active: usize) {
    let resp = Response::Error {
        kind: ErrorKind::Overloaded,
        message: format!("server at its connection limit ({active} active)"),
    };
    let _ = write_frame(&mut stream, &encode_payload(&resp));
    let _ = stream.shutdown(Shutdown::Both);
}

/// One connection's request/response loop.
fn serve_connection(mut stream: TcpStream, shared: &Arc<ServerShared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let payload = match read_frame(&mut stream) {
            Ok(Frame::Payload(p)) => p,
            // Clean close at a frame boundary: done.
            Ok(Frame::Closed) => return,
            // A bad length prefix desyncs the stream: answer once (the
            // typed-error contract) and hang up.
            Err(e @ ServeError::Protocol(_)) => {
                let (kind, message) = classify(&e);
                let _ = write_frame(
                    &mut stream,
                    &encode_payload(&Response::Error { kind, message }),
                );
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            Err(_) => return,
        };
        // Frame boundaries are intact here, so a garbage *payload* is
        // answered and the connection keeps serving.
        let response = match decode_payload::<Request>(&payload) {
            Ok(request) => handle_request(&shared.runtime, request),
            Err(e) => {
                let (kind, message) = classify(&e);
                Response::Error { kind, message }
            }
        };
        if write_frame(&mut stream, &encode_payload(&response)).is_err() {
            return;
        }
    }
}

/// Executes one decoded request against the runtime.
fn handle_request(runtime: &Runtime, request: Request) -> Response {
    let outcome = match request {
        // The decode already enforced dims/data consistency and size
        // caps; the session re-validates against the model's expected
        // image size.
        Request::Infer { model, dims, data } => {
            runtime.infer(&model, &dims, &data).map(Response::Logits)
        }
        Request::ListModels => Ok(Response::Models(
            runtime
                .list()
                .into_iter()
                .map(|m| WireModelInfo {
                    id: m.id,
                    loaded: m.loaded,
                })
                .collect(),
        )),
        Request::Stats { model } => runtime.stats(&model).map(|s| {
            Response::Stats(WireStats {
                submitted: s.submitted,
                completed: s.completed,
                failed: s.failed,
                rejected: s.rejected,
                batches: s.batches,
                mean_occupancy: s.mean_occupancy,
                max_occupancy: s.max_occupancy as u64,
                p50_latency_ms: s.p50_latency_ms,
                p99_latency_ms: s.p99_latency_ms,
            })
        }),
    };
    outcome.unwrap_or_else(|e| {
        let (kind, message) = classify(&e);
        Response::Error { kind, message }
    })
}
