//! Directory-backed model registry: `DCAM` artifacts keyed by model id,
//! loaded lazily and evicted least-recently-used.
//!
//! A registry is the serving fleet's view of "what models exist": every
//! `<id>.dcam` file in the registry directory is an entry, but nothing
//! is read from disk until the first [`ModelRegistry::get`] for that id
//! — loading a large zoo directory costs one `readdir`. Engines built
//! in-process (tests, benches) can be [`ModelRegistry::register`]ed
//! directly without touching disk.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use deepcam_core::DeepCamEngine;

use crate::error::{Result, ServeError};

/// File extension of serialized [`deepcam_core::CompiledModel`]
/// artifacts.
pub const ARTIFACT_EXT: &str = "dcam";

/// One registry entry's public description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// Registry id (the artifact's file stem, or the name it was
    /// registered under).
    pub id: String,
    /// Whether the engine is resident in the **registry's cache**. An
    /// evicted engine may still be alive through other handles (an open
    /// [`crate::session::Session`], in-flight callers) — this flag
    /// tracks what the registry itself holds.
    pub loaded: bool,
    /// Source model name (`None` until first load).
    pub model_name: Option<String>,
    /// Dot layers compiled to CAM form (`None` until first load).
    pub dot_layers: Option<usize>,
    /// Whether the artifact is negative-cached as corrupt: its last
    /// load failed and the file has not changed since, so `get`s fail
    /// fast without re-reading it.
    pub quarantined: bool,
}

enum Source {
    /// Lazily loaded from (and evictable back to) this artifact file.
    File(PathBuf),
    /// Registered in-process; there is no file to reload from, so the
    /// engine is never evicted.
    Memory,
}

/// Negative-cache record of a corrupt artifact, keyed to the exact
/// file state (length + mtime) whose load failed. A matching file on a
/// later `get` fails fast without re-reading or re-parsing it; a file
/// whose key changed (repaired, rewritten) gets a fresh load attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Quarantine {
    len: u64,
    mtime: Option<std::time::SystemTime>,
    detail: String,
}

struct Entry {
    source: Source,
    engine: Option<Arc<DeepCamEngine>>,
    /// Eviction clock: registry tick of the last `get`.
    last_used: u64,
    /// Set while the artifact is negative-cached as corrupt.
    quarantine: Option<Quarantine>,
}

struct Inner {
    entries: BTreeMap<String, Entry>,
    tick: u64,
}

/// A thread-safe, lazily-loading model store. See the
/// [module docs](self).
pub struct ModelRegistry {
    inner: Mutex<Inner>,
    /// Max file-backed engines kept resident at once.
    capacity: usize,
}

impl ModelRegistry {
    /// An empty registry (models arrive via
    /// [`ModelRegistry::register`]). Unlimited residency.
    pub fn new() -> Self {
        ModelRegistry {
            inner: Mutex::new(Inner {
                entries: BTreeMap::new(),
                tick: 0,
            }),
            capacity: usize::MAX,
        }
    }

    /// Opens a registry over `dir`, indexing every `*.dcam` file by its
    /// stem. Files are *not* read yet — corrupt artifacts surface as
    /// typed errors on first [`ModelRegistry::get`], not here.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the directory cannot be read.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_capacity(dir, usize::MAX)
    }

    /// [`ModelRegistry::open`] with an eviction bound: at most
    /// `capacity` file-backed engines stay resident in the registry's
    /// cache; loading one more evicts the least-recently-used (its
    /// entry stays listed and reloads on the next `get`). `capacity`
    /// is clamped to ≥ 1.
    ///
    /// The bound governs only this cache: callers that keep the
    /// returned `Arc` (notably open sessions) pin their engine for as
    /// long as they hold it — eviction drops the registry's handle, it
    /// cannot reclaim a model something is still serving.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the directory cannot be read.
    pub fn open_with_capacity(dir: impl AsRef<Path>, capacity: usize) -> Result<Self> {
        let registry = ModelRegistry {
            inner: Mutex::new(Inner {
                entries: BTreeMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
        };
        registry.rescan(dir)?;
        Ok(registry)
    }

    /// Re-indexes `dir`, adding artifacts that appeared since the last
    /// scan (already-known ids keep their loaded engines). Returns the
    /// number of ids now known.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the directory cannot be read.
    pub fn rescan(&self, dir: impl AsRef<Path>) -> Result<usize> {
        let dir = dir.as_ref();
        let listing = std::fs::read_dir(dir)
            .map_err(|e| ServeError::Io(format!("reading registry dir {}: {e}", dir.display())))?;
        let mut inner = self.inner.lock().expect("registry lock");
        for item in listing {
            let path = item
                .map_err(|e| {
                    ServeError::Io(format!("reading registry dir {}: {e}", dir.display()))
                })?
                .path();
            if path.extension().and_then(|e| e.to_str()) != Some(ARTIFACT_EXT) {
                continue;
            }
            let Some(id) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            inner.entries.entry(id.to_string()).or_insert(Entry {
                source: Source::File(path.clone()),
                engine: None,
                last_used: 0,
                quarantine: None,
            });
        }
        Ok(inner.entries.len())
    }

    /// Registers an in-process engine under `id` (replacing any previous
    /// entry with that id) and returns the shared handle.
    pub fn register(&self, id: impl Into<String>, engine: DeepCamEngine) -> Arc<DeepCamEngine> {
        let engine = Arc::new(engine);
        let mut inner = self.inner.lock().expect("registry lock");
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(
            id.into(),
            Entry {
                source: Source::Memory,
                engine: Some(Arc::clone(&engine)),
                last_used: tick,
                quarantine: None,
            },
        );
        engine
    }

    /// The engine for `id`, loading its artifact on first use and
    /// evicting the least-recently-used file-backed engine when the
    /// residency bound is exceeded.
    ///
    /// A cold load runs **outside** the registry lock — reading and
    /// decoding a large artifact never stalls `get`s for models that
    /// are already resident. If two callers race the same cold model,
    /// both load, but every caller ends up sharing whichever engine
    /// was cached first.
    ///
    /// # Errors
    ///
    /// [`ServeError::ModelNotFound`] for unknown ids;
    /// [`ServeError::BadArtifact`] when the artifact fails to read,
    /// decode or validate — or when it is quarantined: a failed load
    /// negative-caches the file's (length, mtime) key, and as long as
    /// the file on disk still matches, later `get`s fail fast without
    /// re-reading a broken multi-MiB artifact. Repairing the file
    /// (which changes the key) clears the quarantine and reloads.
    pub fn get(&self, id: &str) -> Result<Arc<DeepCamEngine>> {
        // Fast path (and path lookup) under the lock.
        let (path, quarantine) = {
            let mut inner = self.inner.lock().expect("registry lock");
            inner.tick += 1;
            let tick = inner.tick;
            let entry = inner
                .entries
                .get_mut(id)
                .ok_or_else(|| ServeError::ModelNotFound { model: id.into() })?;
            entry.last_used = tick;
            if let Some(engine) = &entry.engine {
                return Ok(Arc::clone(engine));
            }
            let Source::File(path) = &entry.source else {
                unreachable!("memory entries always hold their engine");
            };
            (path.clone(), entry.quarantine.clone())
        };
        // Quarantine check: one cheap stat instead of a full read when
        // the file is still the exact bytes that failed last time.
        let stat = std::fs::metadata(&path)
            .ok()
            .map(|m| (m.len(), m.modified().ok()));
        if let (Some(q), Some((len, mtime))) = (&quarantine, &stat) {
            if q.len == *len && q.mtime == *mtime {
                return Err(ServeError::BadArtifact {
                    model: id.into(),
                    detail: format!("quarantined: {}", q.detail),
                });
            }
        }
        // Slow path: disk read + decode with no locks held.
        let loaded = DeepCamEngine::load(&path).map_err(|e| ServeError::BadArtifact {
            model: id.into(),
            detail: e.to_string(),
        });
        let engine = match loaded {
            Ok(engine) => Arc::new(engine),
            Err(e) => {
                // Negative-cache this exact file state (when it could
                // be keyed) so the broken artifact is not re-parsed on
                // every request.
                if let Some((len, mtime)) = stat {
                    let detail = match &e {
                        ServeError::BadArtifact { detail, .. } => detail.clone(),
                        other => other.to_string(),
                    };
                    let mut inner = self.inner.lock().expect("registry lock");
                    if let Some(entry) = inner.entries.get_mut(id) {
                        entry.quarantine = Some(Quarantine { len, mtime, detail });
                    }
                }
                return Err(e);
            }
        };
        let mut inner = self.inner.lock().expect("registry lock");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.entries.get_mut(id) {
            entry.last_used = tick;
            // A successful load from this file state supersedes any
            // stale quarantine.
            entry.quarantine = None;
            // A racing loader may have cached first; share its engine
            // so every caller holds the same instance.
            if let Some(existing) = &entry.engine {
                return Ok(Arc::clone(existing));
            }
            entry.engine = Some(Arc::clone(&engine));
        }
        self.evict_over_capacity(&mut inner);
        Ok(engine)
    }

    /// Drops the least-recently-used *file-backed* engines until at most
    /// `capacity` stay resident. In-memory registrations are exempt —
    /// they have no artifact to reload from.
    fn evict_over_capacity(&self, inner: &mut Inner) {
        loop {
            let resident = inner
                .entries
                .values()
                .filter(|e| e.engine.is_some() && matches!(e.source, Source::File(_)))
                .count();
            if resident <= self.capacity {
                return;
            }
            let Some(victim) = inner
                .entries
                .values_mut()
                .filter(|e| e.engine.is_some() && matches!(e.source, Source::File(_)))
                .min_by_key(|e| e.last_used)
            else {
                return;
            };
            victim.engine = None;
        }
    }

    /// Every known id with its residency status, sorted by id.
    pub fn list(&self) -> Vec<ModelInfo> {
        let inner = self.inner.lock().expect("registry lock");
        inner
            .entries
            .iter()
            .map(|(id, e)| ModelInfo {
                id: id.clone(),
                loaded: e.engine.is_some(),
                model_name: e.engine.as_ref().map(|eng| eng.model_name().to_string()),
                dot_layers: e.engine.as_ref().map(|eng| eng.dot_layers()),
                quarantined: e.quarantine.is_some(),
            })
            .collect()
    }

    /// Number of known model ids.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry lock").entries.len()
    }

    /// Whether the registry knows no models.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of currently resident engines.
    pub fn loaded_count(&self) -> usize {
        self.inner
            .lock()
            .expect("registry lock")
            .entries
            .values()
            .filter(|e| e.engine.is_some())
            .count()
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        ModelRegistry::new()
    }
}
