//! A blocking client for the [`crate::server`] protocol, with per-call
//! socket timeouts and a deterministic retry policy.
//!
//! Retries are safe *because inference is pure*: `infer` is bit-exact
//! and side-effect free, so re-sending a request whose reply was lost
//! can never change a result. The policy therefore retries exactly the
//! failures where the server's answer is "not now, nothing is wrong
//! with the request": transport errors, [`ErrorKind::Overloaded`]
//! backpressure, and [`ErrorKind::Draining`] shutdowns. Typed request
//! errors (`NotFound`, `InvalidRequest`, …) fail fast — retrying them
//! would just repeat the refusal.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::clock::{Clock, SystemClock};
use crate::error::{Result, ServeError};
use crate::protocol::{
    decode_payload, decode_payload_v2, encode_payload, encode_payload_v2, read_frame, write_frame,
    ErrorKind, Frame, Request, Response, WireModelInfo, WireServerStats, WireStats,
    CONNECTION_SCOPED_ID, MAX_PROTOCOL_VERSION, PROTOCOL_V1, PROTOCOL_V2,
};

/// When and how [`Client`] retries a failed call.
///
/// Backoff before attempt `n+1` is `min(base_backoff · 2ⁿ,
/// max_backoff)` scaled by a jitter factor in `[0.5, 1.0)` drawn from
/// a [`StdRng`] seeded with `seed` — the whole schedule is a pure
/// function of the policy, so tests replay it exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` means fail fast.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Ceiling the exponential backoff saturates at.
    pub max_backoff: Duration,
    /// Overall budget across all attempts and backoffs, measured from
    /// the start of the call; `None` bounds the call only by
    /// `max_attempts`.
    pub overall_deadline: Option<Duration>,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries: every failure surfaces on the first attempt.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            overall_deadline: None,
            seed: 0,
        }
    }
}

impl Default for RetryPolicy {
    /// Four attempts, 10 ms base backoff capped at 1 s, 30 s overall.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            overall_deadline: Some(Duration::from_secs(30)),
            seed: 0x5eed_cafe,
        }
    }
}

/// Jittered exponential backoff before retry number `attempt`
/// (0-based). Pure: the same `(policy, attempt, rng state)` always
/// produces the same delay.
fn backoff_delay(policy: &RetryPolicy, attempt: u32, rng: &mut StdRng) -> Duration {
    let doubled = policy
        .base_backoff
        .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX));
    let capped = doubled.min(policy.max_backoff);
    let jitter: f64 = rng.random_range(0.5f64..1.0);
    capped.mul_f64(jitter)
}

/// Socket timeouts and retry behavior for a [`Client`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClientConfig {
    /// Per-read socket deadline (covers waiting for a reply frame).
    pub read_timeout: Option<Duration>,
    /// Per-write socket deadline.
    pub write_timeout: Option<Duration>,
    /// The retry policy; [`RetryPolicy::none`] by default, so plain
    /// [`Client::connect`] behaves exactly like the pre-retry client.
    pub retry: RetryPolicy,
    /// Highest protocol version to offer the server.
    /// [`PROTOCOL_V1`] (the default) skips the handshake entirely and
    /// speaks the original wire format; `>= 2` sends a `Hello` on each
    /// (re)connect and frames requests under whatever version the
    /// server answers with.
    pub version: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            retry: RetryPolicy::none(),
            version: PROTOCOL_V1,
        }
    }
}

/// A connected client speaking one request/response at a time.
pub struct Client {
    addrs: Vec<SocketAddr>,
    cfg: ClientConfig,
    clock: Arc<dyn Clock>,
    rng: StdRng,
    stream: Option<TcpStream>,
    /// Version negotiated on the current stream; `None` until the
    /// handshake (or the v1 short-circuit) has run.
    negotiated: Option<u32>,
    next_request_id: u64,
    last_attempts: u32,
}

impl Client {
    /// Connects to a running [`crate::server::Server`] with default
    /// timeouts and no retries.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the connect fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit timeouts and retry policy.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the connect fails.
    pub fn connect_with(addr: impl ToSocketAddrs, cfg: ClientConfig) -> Result<Client> {
        Client::connect_with_clock(addr, cfg, Arc::new(SystemClock))
    }

    /// [`Client::connect_with`] with an explicit time source, so the
    /// overall-deadline check can be driven from tests.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the connect fails.
    pub fn connect_with_clock(
        addr: impl ToSocketAddrs,
        cfg: ClientConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Client> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| ServeError::Io(format!("resolve: {e}")))?
            .collect();
        if addrs.is_empty() {
            return Err(ServeError::Io("address resolved to nothing".into()));
        }
        let rng = StdRng::seed_from_u64(cfg.retry.seed);
        let mut client = Client {
            addrs,
            cfg,
            clock,
            rng,
            stream: None,
            negotiated: None,
            next_request_id: 0,
            last_attempts: 0,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// The protocol version the current connection speaks, when one is
    /// established and (if requested) negotiated.
    pub fn negotiated_version(&self) -> Option<u32> {
        self.negotiated
    }

    /// Attempts the most recent call made, including the successful
    /// one — `1` when the first try succeeded. Exposed so retry tests
    /// can assert the schedule actually ran.
    pub fn last_call_attempts(&self) -> u32 {
        self.last_attempts
    }

    /// Re-establishes the connection if the last call tore it down,
    /// re-running the version handshake on every fresh stream (a
    /// reconnect may land on a different server).
    fn ensure_connected(&mut self) -> Result<&mut TcpStream> {
        if self.stream.is_none() {
            self.negotiated = None;
            let mut last_err: Option<std::io::Error> = None;
            for addr in &self.addrs {
                match TcpStream::connect(addr) {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        let _ = s.set_read_timeout(self.cfg.read_timeout);
                        let _ = s.set_write_timeout(self.cfg.write_timeout);
                        self.stream = Some(s);
                        last_err = None;
                        break;
                    }
                    Err(e) => last_err = Some(e),
                }
            }
            if let Some(e) = last_err {
                return Err(ServeError::Io(format!("connect: {e}")));
            }
        }
        if self.negotiated.is_none() {
            let version = if self.cfg.version > PROTOCOL_V1 {
                self.handshake()?
            } else {
                PROTOCOL_V1
            };
            self.negotiated = Some(version);
        }
        self.stream
            .as_mut()
            .ok_or_else(|| ServeError::Io("not connected".into()))
    }

    /// The v1-framed `Hello` exchange on a fresh stream.
    fn handshake(&mut self) -> Result<u32> {
        let offered = self.cfg.version;
        let stream = self
            .stream
            .as_mut()
            .ok_or_else(|| ServeError::Io("not connected".into()))?;
        write_frame(
            stream,
            &encode_payload(&Request::Hello {
                max_version: offered,
            }),
        )?;
        match read_frame(stream)? {
            Frame::Payload(payload) => match decode_payload::<Response>(&payload)? {
                Response::Hello { version } if version >= PROTOCOL_V1 && version <= offered => {
                    Ok(version)
                }
                Response::Hello { version } => Err(ServeError::Protocol(format!(
                    "server negotiated unsupported protocol version {version} (offered up to \
                     {offered})"
                ))),
                Response::Error { kind, message } => Err(ServeError::Remote { kind, message }),
                other => Err(ServeError::Protocol(format!(
                    "expected Hello, got {other:?}"
                ))),
            },
            Frame::Closed => Err(ServeError::Io(
                "server closed the connection during the version handshake".into(),
            )),
        }
    }

    /// One wire round trip. Transport failures drop the stream so the
    /// next attempt reconnects; a typed server error leaves the
    /// (healthy) connection in place and surfaces as
    /// [`ServeError::Remote`].
    fn call_once(&mut self, request: &Request) -> Result<Response> {
        let outcome: Result<Response> = (|| {
            self.ensure_connected()?;
            let version = self.negotiated.unwrap_or(PROTOCOL_V1);
            let req_id = self.next_request_id;
            if version >= PROTOCOL_V2 {
                self.next_request_id = self.next_request_id.wrapping_add(1);
            }
            let stream = self
                .stream
                .as_mut()
                .ok_or_else(|| ServeError::Io("not connected".into()))?;
            if version >= PROTOCOL_V2 {
                write_frame(stream, &encode_payload_v2(req_id, request))?;
                match read_frame(stream)? {
                    Frame::Payload(payload) => {
                        let (id, resp) = decode_payload_v2::<Response>(&payload)?;
                        // Connection-scoped errors (timeouts, drains)
                        // carry the sentinel id; this client has one
                        // request outstanding, so both attributions
                        // answer it.
                        if id != req_id && id != CONNECTION_SCOPED_ID {
                            return Err(ServeError::Protocol(format!(
                                "reply carries request id {id}, expected {req_id}"
                            )));
                        }
                        Ok(resp)
                    }
                    Frame::Closed => Err(ServeError::Io(
                        "server closed the connection mid-call".into(),
                    )),
                }
            } else {
                write_frame(stream, &encode_payload(request))?;
                match read_frame(stream)? {
                    Frame::Payload(payload) => decode_payload(&payload),
                    Frame::Closed => Err(ServeError::Io(
                        "server closed the connection mid-call".into(),
                    )),
                }
            }
        })();
        match outcome {
            Ok(Response::Error { kind, message }) => Err(ServeError::Remote { kind, message }),
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    /// One request/response round trip under the retry policy.
    fn call(&mut self, request: &Request) -> Result<Response> {
        let deadline = self
            .cfg
            .retry
            .overall_deadline
            .and_then(|d| self.clock.now().checked_add(d));
        let max_attempts = self.cfg.retry.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            self.last_attempts = attempt;
            let err = match self.call_once(request) {
                Ok(resp) => return Ok(resp),
                Err(e) => e,
            };
            if !is_retryable(&err) || attempt >= max_attempts {
                return Err(err);
            }
            let delay = backoff_delay(&self.cfg.retry, attempt - 1, &mut self.rng);
            if let Some(deadline) = deadline {
                // Would the backoff alone blow the budget? Give up and
                // surface the last failure rather than oversleeping.
                match self.clock.now().checked_add(delay) {
                    Some(resumes_at) if resumes_at <= deadline => {}
                    _ => return Err(err),
                }
            }
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
    }

    /// Runs one image (per-image dims, e.g. `[1, 28, 28]`) through
    /// `model`'s session and returns its logits row.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] carrying the server's typed error, or
    /// transport errors (after the retry policy is exhausted).
    pub fn infer(&mut self, model: &str, dims: &[usize], data: &[f32]) -> Result<Vec<f32>> {
        match self.call(&Request::Infer {
            model: model.into(),
            dims: dims.to_vec(),
            data: data.to_vec(),
        })? {
            Response::Logits(logits) => Ok(logits),
            other => Err(ServeError::Protocol(format!(
                "expected Logits, got {other:?}"
            ))),
        }
    }

    /// Lists the models the server's registry knows.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::infer`].
    pub fn list_models(&mut self) -> Result<Vec<WireModelInfo>> {
        match self.call(&Request::ListModels)? {
            Response::Models(models) => Ok(models),
            other => Err(ServeError::Protocol(format!(
                "expected Models, got {other:?}"
            ))),
        }
    }

    /// Fetches one model's serving counters.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::infer`].
    pub fn stats(&mut self, model: &str) -> Result<WireStats> {
        match self.call(&Request::Stats {
            model: model.into(),
        })? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ServeError::Protocol(format!(
                "expected Stats, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's connection robustness counters.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::infer`].
    pub fn server_stats(&mut self) -> Result<WireServerStats> {
        match self.call(&Request::ServerStats)? {
            Response::ServerStats(stats) => Ok(stats),
            other => Err(ServeError::Protocol(format!(
                "expected ServerStats, got {other:?}"
            ))),
        }
    }
}

/// A pipelining protocol-v2 client: many requests in flight on one
/// connection, replies keyed by request id.
///
/// [`MuxClient::submit`] writes a request and returns immediately with
/// its id; [`MuxClient::recv`] blocks for the *next* reply, which —
/// this being the whole point of v2 — may answer any outstanding id.
/// Pair them however the workload likes (a fixed window, fire-all-
/// then-drain, one reader thread). No retry machinery: a pipelined
/// stream has no safe notion of "re-send just this one", so transport
/// errors surface raw and the caller reconnects.
pub struct MuxClient {
    stream: TcpStream,
    version: u32,
    next_id: u64,
}

impl MuxClient {
    /// Connects and negotiates protocol v2 with default timeouts.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the connect fails, and
    /// [`ServeError::Protocol`] when the server only speaks v1 —
    /// multiplexing is meaningless without request ids.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<MuxClient> {
        MuxClient::connect_with(
            addr,
            Some(Duration::from_secs(30)),
            Some(Duration::from_secs(30)),
        )
    }

    /// [`MuxClient::connect`] with explicit socket timeouts.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MuxClient::connect`].
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        read_timeout: Option<Duration>,
        write_timeout: Option<Duration>,
    ) -> Result<MuxClient> {
        let mut last_err: Option<std::io::Error> = None;
        let mut stream: Option<TcpStream> = None;
        for addr in addr
            .to_socket_addrs()
            .map_err(|e| ServeError::Io(format!("resolve: {e}")))?
        {
            match TcpStream::connect(addr) {
                Ok(s) => {
                    stream = Some(s);
                    last_err = None;
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let stream = match (stream, last_err) {
            (Some(s), _) => s,
            (None, Some(e)) => return Err(ServeError::Io(format!("connect: {e}"))),
            (None, None) => return Err(ServeError::Io("address resolved to nothing".into())),
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(read_timeout);
        let _ = stream.set_write_timeout(write_timeout);
        let mut client = MuxClient {
            stream,
            version: PROTOCOL_V1,
            next_id: 0,
        };
        write_frame(
            &mut client.stream,
            &encode_payload(&Request::Hello {
                max_version: MAX_PROTOCOL_VERSION,
            }),
        )?;
        let version = match read_frame(&mut client.stream)? {
            Frame::Payload(payload) => match decode_payload::<Response>(&payload)? {
                Response::Hello { version } => version,
                Response::Error { kind, message } => {
                    return Err(ServeError::Remote { kind, message })
                }
                other => {
                    return Err(ServeError::Protocol(format!(
                        "expected Hello, got {other:?}"
                    )))
                }
            },
            Frame::Closed => {
                return Err(ServeError::Io(
                    "server closed the connection during the version handshake".into(),
                ))
            }
        };
        if version < PROTOCOL_V2 {
            return Err(ServeError::Protocol(format!(
                "server negotiated protocol version {version}; multiplexing requires v2"
            )));
        }
        client.version = version;
        Ok(client)
    }

    /// The version the server answered the handshake with.
    pub fn negotiated_version(&self) -> u32 {
        self.version
    }

    /// Writes one request frame and returns its request id without
    /// waiting for the reply.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on transport failure; the connection is then
    /// unusable.
    pub fn submit(&mut self, request: &Request) -> Result<u64> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        write_frame(&mut self.stream, &encode_payload_v2(id, request))?;
        Ok(id)
    }

    /// [`MuxClient::submit`] for the common inference case.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MuxClient::submit`].
    pub fn submit_infer(&mut self, model: &str, dims: &[usize], data: &[f32]) -> Result<u64> {
        self.submit(&Request::Infer {
            model: model.into(),
            dims: dims.to_vec(),
            data: data.to_vec(),
        })
    }

    /// Blocks for the next reply frame, whichever outstanding request
    /// it answers. Connection-scoped frames (timeouts, drain notices)
    /// come back under [`CONNECTION_SCOPED_ID`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on transport failure or server hang-up,
    /// [`ServeError::Protocol`] on an undecodable reply. A typed
    /// server error is **not** an `Err` here — it is a
    /// `(id, Response::Error { .. })` value, because it answers one
    /// request while others remain in flight.
    pub fn recv(&mut self) -> Result<(u64, Response)> {
        match read_frame(&mut self.stream)? {
            Frame::Payload(payload) => decode_payload_v2::<Response>(&payload),
            Frame::Closed => Err(ServeError::Io(
                "server closed the connection with replies outstanding".into(),
            )),
        }
    }
}

/// The retry gate: transport failures plus the two "not now" server
/// answers. Everything else is a fact about the request and fails
/// fast.
fn is_retryable(e: &ServeError) -> bool {
    match e {
        ServeError::Io(_) => true,
        ServeError::Remote { kind, .. } => {
            matches!(kind, ErrorKind::Overloaded | ErrorKind::Draining)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_for_a_seed() {
        let policy = RetryPolicy::default();
        let mut a = StdRng::seed_from_u64(policy.seed);
        let mut b = StdRng::seed_from_u64(policy.seed);
        for attempt in 0..6 {
            assert_eq!(
                backoff_delay(&policy, attempt, &mut a),
                backoff_delay(&policy, attempt, &mut b)
            );
        }
    }

    #[test]
    fn backoff_doubles_within_jitter_bounds_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(160),
            overall_deadline: None,
            seed: 7,
        };
        let mut rng = StdRng::seed_from_u64(policy.seed);
        for attempt in 0..12 {
            let nominal = policy
                .base_backoff
                .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
                .min(policy.max_backoff);
            let d = backoff_delay(&policy, attempt, &mut rng);
            // Jitter is in [0.5, 1.0); pad the bounds one nanosecond
            // for `mul_f64`'s rounding.
            assert!(
                d + Duration::from_nanos(1) >= nominal.mul_f64(0.5),
                "attempt {attempt}: {d:?}"
            );
            assert!(d <= nominal, "attempt {attempt}: {d:?} vs {nominal:?}");
            if attempt >= 4 {
                // 10 ms · 2⁴ = 160 ms hits the cap.
                assert!(d < policy.max_backoff);
            }
        }
    }

    #[test]
    fn huge_attempt_counts_saturate_instead_of_overflowing() {
        let policy = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff: Duration::from_secs(1),
            max_backoff: Duration::from_secs(5),
            overall_deadline: None,
            seed: 1,
        };
        let mut rng = StdRng::seed_from_u64(policy.seed);
        let d = backoff_delay(&policy, 64, &mut rng);
        assert!(d <= policy.max_backoff);
    }

    #[test]
    fn retry_gate_matches_the_contract() {
        assert!(is_retryable(&ServeError::Io("broken pipe".into())));
        assert!(is_retryable(&ServeError::Remote {
            kind: ErrorKind::Overloaded,
            message: String::new(),
        }));
        assert!(is_retryable(&ServeError::Remote {
            kind: ErrorKind::Draining,
            message: String::new(),
        }));
        for kind in [
            ErrorKind::NotFound,
            ErrorKind::BadArtifact,
            ErrorKind::InvalidRequest,
            ErrorKind::Engine,
            ErrorKind::Protocol,
            ErrorKind::Internal,
            ErrorKind::Timeout,
        ] {
            assert!(
                !is_retryable(&ServeError::Remote {
                    kind,
                    message: String::new(),
                }),
                "{kind:?} must fail fast"
            );
        }
        assert!(!is_retryable(&ServeError::Protocol("desync".into())));
        assert!(!is_retryable(&ServeError::ShuttingDown));
    }

    #[test]
    fn none_policy_is_single_attempt() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.base_backoff, Duration::ZERO);
    }
}
