//! A small blocking client for the [`crate::server`] protocol — the
//! counterpart examples and benches drive round-trips with.

use std::net::{TcpStream, ToSocketAddrs};

use crate::error::{Result, ServeError};
use crate::protocol::{
    decode_payload, encode_payload, read_frame, write_frame, Frame, Request, Response,
    WireModelInfo, WireStats,
};

/// A connected client speaking one request/response at a time.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running [`crate::server::Server`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the connect fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream =
            TcpStream::connect(addr).map_err(|e| ServeError::Io(format!("connect: {e}")))?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// One request/response round trip.
    fn call(&mut self, request: &Request) -> Result<Response> {
        write_frame(&mut self.stream, &encode_payload(request))?;
        match read_frame(&mut self.stream)? {
            Frame::Payload(payload) => decode_payload(&payload),
            Frame::Closed => Err(ServeError::Io(
                "server closed the connection mid-call".into(),
            )),
        }
    }

    /// Runs one image (per-image dims, e.g. `[1, 28, 28]`) through
    /// `model`'s session and returns its logits row.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] carrying the server's typed error, or
    /// transport errors.
    pub fn infer(&mut self, model: &str, dims: &[usize], data: &[f32]) -> Result<Vec<f32>> {
        match self.call(&Request::Infer {
            model: model.into(),
            dims: dims.to_vec(),
            data: data.to_vec(),
        })? {
            Response::Logits(logits) => Ok(logits),
            Response::Error { kind, message } => Err(ServeError::Remote { kind, message }),
            other => Err(ServeError::Protocol(format!(
                "expected Logits, got {other:?}"
            ))),
        }
    }

    /// Lists the models the server's registry knows.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::infer`].
    pub fn list_models(&mut self) -> Result<Vec<WireModelInfo>> {
        match self.call(&Request::ListModels)? {
            Response::Models(models) => Ok(models),
            Response::Error { kind, message } => Err(ServeError::Remote { kind, message }),
            other => Err(ServeError::Protocol(format!(
                "expected Models, got {other:?}"
            ))),
        }
    }

    /// Fetches one model's serving counters.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::infer`].
    pub fn stats(&mut self, model: &str) -> Result<WireStats> {
        match self.call(&Request::Stats {
            model: model.into(),
        })? {
            Response::Stats(stats) => Ok(stats),
            Response::Error { kind, message } => Err(ServeError::Remote { kind, message }),
            other => Err(ServeError::Protocol(format!(
                "expected Stats, got {other:?}"
            ))),
        }
    }
}
