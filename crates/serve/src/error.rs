//! Typed errors for the serving runtime.

use std::fmt;

use deepcam_core::CoreError;

use crate::protocol::ErrorKind;

/// Error returned by the registry, sessions, server and client.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The requested model id is not in the registry.
    ModelNotFound {
        /// The id the caller asked for.
        model: String,
    },
    /// The model's artifact exists but could not be read, decoded or
    /// validated.
    BadArtifact {
        /// The id whose artifact failed to load.
        model: String,
        /// The underlying artifact error.
        detail: String,
    },
    /// The session's bounded request queue is full — backpressure. The
    /// caller should retry later or shed load.
    Overloaded {
        /// Requests queued when this one was rejected.
        queued: usize,
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// The request itself is malformed (bad shape, empty image, wrong
    /// element count for the model).
    InvalidRequest(String),
    /// Inference failed inside the engine.
    Engine(CoreError),
    /// The peer violated the wire protocol (bad frame length, unknown
    /// tag, trailing bytes, over-limit sizes).
    Protocol(String),
    /// A socket or file operation failed.
    Io(String),
    /// The session or server is shutting down and no longer accepts
    /// work.
    ShuttingDown,
    /// The server reported an error over the wire (client side only):
    /// the transported kind plus the server's message.
    Remote {
        /// Coarse error class the server put on the wire.
        kind: ErrorKind,
        /// The server's human-readable message.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ModelNotFound { model } => {
                write!(f, "model {model:?} is not in the registry")
            }
            ServeError::BadArtifact { model, detail } => {
                write!(f, "artifact for model {model:?} failed to load: {detail}")
            }
            ServeError::Overloaded { queued, capacity } => write!(
                f,
                "session overloaded: {queued} requests queued (capacity {capacity})"
            ),
            ServeError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            ServeError::Engine(e) => write!(f, "inference failed: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServeError::Io(msg) => write!(f, "i/o error: {msg}"),
            ServeError::ShuttingDown => write!(f, "serving runtime is shutting down"),
            ServeError::Remote { kind, message } => {
                write!(f, "server error ({kind:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_essentials() {
        let e = ServeError::ModelNotFound {
            model: "lenet5".into(),
        };
        assert!(e.to_string().contains("lenet5"));
        let e = ServeError::Overloaded {
            queued: 7,
            capacity: 8,
        };
        assert!(e.to_string().contains('7') && e.to_string().contains('8'));
        let e = ServeError::BadArtifact {
            model: "vgg".into(),
            detail: "bad magic".into(),
        };
        assert!(e.to_string().contains("bad magic"));
    }

    #[test]
    fn engine_errors_keep_their_source() {
        use std::error::Error;
        let e = ServeError::Engine(CoreError::InvalidInput("x".into()));
        assert!(e.source().is_some());
        assert!(ServeError::ShuttingDown.source().is_none());
    }
}
