//! Selection of the server's connection core: the readiness-polling
//! epoll event loop (Linux) or the portable thread-per-connection
//! fallback.
//!
//! Resolution order mirrors `DEEPCAM_SIMD`: an explicit
//! [`CoreSelect`] in [`crate::ServerConfig`] wins outright (benches
//! sweep both cores regardless of the environment); `CoreSelect::Auto`
//! consults the `DEEPCAM_SERVE_CORE` environment variable
//! (`auto`/`threads`/`epoll`), and unset/`auto` picks the platform
//! default — epoll where available, threads elsewhere. Every
//! misconfiguration (unknown value, `epoll` on a non-Linux host)
//! degrades with a once-per-message stderr warning rather than an
//! error: both cores serve bit-identical replies, so the choice is
//! purely operational.
//!
//! This module deliberately owns the only `DEEPCAM_SERVE_CORE` read in
//! the crate and is excluded from the A5 determinism file set for it;
//! the private `resolve_env` is pure so every outcome is unit-testable
//! without touching the process environment.

use std::sync::{Mutex, OnceLock};

/// Environment variable overriding the connection core.
pub const SERVE_CORE_ENV: &str = "DEEPCAM_SERVE_CORE";

/// The connection core requested by configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoreSelect {
    /// Defer to `DEEPCAM_SERVE_CORE`, then the platform default.
    #[default]
    Auto,
    /// Force the thread-per-connection core.
    Threads,
    /// Force the epoll readiness core (falls back to threads with a
    /// warning on hosts without epoll).
    Epoll,
}

/// The connection core a server actually runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerCore {
    /// One blocking reader thread per connection (portable).
    Threads,
    /// One event-loop thread multiplexing every connection (Linux).
    Epoll,
}

impl ServerCore {
    /// Stable lowercase name (bench JSON, logs).
    pub fn name(self) -> &'static str {
        match self {
            ServerCore::Threads => "threads",
            ServerCore::Epoll => "epoll",
        }
    }
}

/// Whether the epoll core can run on this build target.
pub const fn epoll_available() -> bool {
    cfg!(target_os = "linux")
}

const fn platform_default() -> ServerCore {
    if epoll_available() {
        ServerCore::Epoll
    } else {
        ServerCore::Threads
    }
}

/// Pure resolution of (config selection, env value) to the running
/// core plus the warning to emit when the request cannot be honored.
fn resolve_env(select: CoreSelect, raw: Option<&str>) -> (ServerCore, Option<String>) {
    let requested = match select {
        CoreSelect::Threads => Some(ServerCore::Threads),
        CoreSelect::Epoll => Some(ServerCore::Epoll),
        CoreSelect::Auto => match raw.map(str::trim) {
            None => None,
            Some("") | Some("auto") => None,
            Some("threads") => Some(ServerCore::Threads),
            Some("epoll") => Some(ServerCore::Epoll),
            Some(_) => {
                return (
                    platform_default(),
                    Some(format!(
                        "warning: ignoring unknown {SERVE_CORE_ENV}={:?} (expected auto, \
                         threads or epoll); using the {} core",
                        raw.unwrap_or(""),
                        platform_default().name()
                    )),
                );
            }
        },
    };
    match requested {
        None => (platform_default(), None),
        Some(ServerCore::Threads) => (ServerCore::Threads, None),
        Some(ServerCore::Epoll) if epoll_available() => (ServerCore::Epoll, None),
        Some(ServerCore::Epoll) => (
            ServerCore::Threads,
            Some(format!(
                "warning: the epoll serve core requires Linux; falling back to the threads \
                 core (replies are bit-identical either way; set {SERVE_CORE_ENV}=threads \
                 to silence this)"
            )),
        ),
    }
}

/// Resolves the core a [`crate::Server`] bind should run, reading
/// `DEEPCAM_SERVE_CORE` only when the config says [`CoreSelect::Auto`]
/// and warning (once per distinct message) when a request degrades.
pub(crate) fn resolve(select: CoreSelect) -> ServerCore {
    let raw = match select {
        CoreSelect::Auto => std::env::var(SERVE_CORE_ENV).ok(),
        _ => None,
    };
    let (core, warning) = resolve_env(select, raw.as_deref());
    if let Some(msg) = warning {
        emit_env_warning_once(&msg);
    }
    core
}

/// Prints `msg` to stderr once per distinct message (same discipline
/// as the `DEEPCAM_SIMD` / `DEEPCAM_WORKERS` warnings).
fn emit_env_warning_once(msg: &str) {
    static WARNED: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    let mut seen = WARNED
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .expect("serve core warning lock");
    if seen.iter().any(|m| m == msg) {
        return;
    }
    eprintln!("{msg}");
    seen.push(msg.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_config_ignores_env() {
        let (core, warn) = resolve_env(CoreSelect::Threads, Some("epoll"));
        assert_eq!(core, ServerCore::Threads);
        assert!(warn.is_none());
        if epoll_available() {
            let (core, warn) = resolve_env(CoreSelect::Epoll, Some("threads"));
            assert_eq!(core, ServerCore::Epoll);
            assert!(warn.is_none());
        }
    }

    #[test]
    fn auto_consults_env_then_platform_default() {
        let (core, warn) = resolve_env(CoreSelect::Auto, None);
        assert_eq!(core, platform_default());
        assert!(warn.is_none());
        let (core, warn) = resolve_env(CoreSelect::Auto, Some("auto"));
        assert_eq!(core, platform_default());
        assert!(warn.is_none());
        let (core, warn) = resolve_env(CoreSelect::Auto, Some("threads"));
        assert_eq!(core, ServerCore::Threads);
        assert!(warn.is_none());
        if epoll_available() {
            let (core, warn) = resolve_env(CoreSelect::Auto, Some("epoll"));
            assert_eq!(core, ServerCore::Epoll);
            assert!(warn.is_none());
        }
    }

    #[test]
    fn unknown_env_value_warns_and_falls_back() {
        let (core, warn) = resolve_env(CoreSelect::Auto, Some("iouring"));
        assert_eq!(core, platform_default());
        let msg = warn.expect("warning");
        assert!(msg.contains("DEEPCAM_SERVE_CORE"), "{msg}");
        assert!(msg.contains("iouring"), "{msg}");
    }

    #[test]
    fn whitespace_env_value_is_auto() {
        let (core, warn) = resolve_env(CoreSelect::Auto, Some("  "));
        assert_eq!(core, platform_default());
        assert!(warn.is_none());
        let (core, warn) = resolve_env(CoreSelect::Auto, Some(" threads "));
        assert_eq!(core, ServerCore::Threads);
        assert!(warn.is_none());
    }

    #[cfg(not(target_os = "linux"))]
    #[test]
    fn epoll_request_degrades_off_linux() {
        let (core, warn) = resolve_env(CoreSelect::Epoll, None);
        assert_eq!(core, ServerCore::Threads);
        assert!(warn.expect("warning").contains("requires Linux"));
    }

    #[test]
    fn core_names_are_stable() {
        assert_eq!(ServerCore::Threads.name(), "threads");
        assert_eq!(ServerCore::Epoll.name(), "epoll");
    }
}
