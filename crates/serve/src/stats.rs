//! Per-session serving counters: request/batch counts, occupancy, and
//! a fixed-footprint latency histogram for p50/p99 — plus the
//! server-level connection robustness counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Buckets in a [`LatencyHistogram`]: 4 exact sub-microsecond values
/// plus 4 linear sub-buckets for each of the 62 octaves `[2^m, 2^(m+1))`
/// µs, `m ∈ [2, 63]`.
const HIST_BUCKETS: usize = 4 + 62 * 4;

/// A log-linear latency histogram over microseconds: power-of-two
/// octaves, each split into 4 linear sub-buckets.
///
/// Values `0..=3` µs get exact buckets; a value in octave
/// `[2^m, 2^(m+1))` µs lands in the sub-bucket
/// `(us >> (m-2)) & 3`, covering `[(4+s)·2^(m-2), (5+s)·2^(m-2))` µs.
/// Every bucket's width is at most ¼ of its lower bound, so a reported
/// quantile is never more than 25% above a recorded latency — tight
/// enough that p50 and p99 stay distinguishable inside one octave
/// (the plain power-of-two histogram this replaces reported them
/// identically whenever both landed within a 2× band). Footprint stays
/// constant (252 counters) no matter how many requests are recorded.
///
/// The top bucket is a catch-all for `≥ 7·2^61 µs` (including
/// durations whose microsecond count saturates `u64`), so quantiles
/// landing there report the saturated bound `u64::MAX` µs rather than
/// a value below a recorded latency; the 25% guarantee applies to
/// every bucket below it.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; HIST_BUCKETS],
    total: u64,
}

/// Bucket index for a latency of `us` microseconds.
#[inline]
fn bucket_index(us: u64) -> usize {
    if us < 4 {
        return us as usize;
    }
    // us >= 4 ⇒ at least 3 significant bits ⇒ m ∈ [2, 63].
    let m = 63 - us.leading_zeros() as usize;
    let sub = ((us >> (m - 2)) & 3) as usize;
    4 + (m - 2) * 4 + sub
}

/// Upper bound of bucket `i` in microseconds (saturating: the top
/// bucket's nominal bound is `2^64`, which clamps to `u64::MAX`).
#[inline]
fn bucket_upper_us(i: usize) -> u64 {
    if i < 4 {
        return i as u64 + 1;
    }
    let m = 2 + (i - 4) / 4;
    let sub = ((i - 4) % 4) as u128;
    u64::try_from((5 + sub) << (m - 2)).unwrap_or(u64::MAX)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [0; HIST_BUCKETS],
            total: 0,
        }
    }

    /// Records one request latency.
    pub fn record(&mut self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let bucket = bucket_index(us).min(HIST_BUCKETS - 1);
        self.counts[bucket] += 1;
        self.total += 1;
    }

    /// Samples recorded so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The quantile `q ∈ [0, 1]` in milliseconds (upper bucket bound; 0
    /// when nothing was recorded).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_us(i) as f64 / 1000.0;
            }
        }
        bucket_upper_us(HIST_BUCKETS - 1) as f64 / 1000.0
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Mutable counter state a [`crate::session::Session`] keeps under its
/// stats lock.
#[derive(Debug, Clone, Default)]
pub(crate) struct StatsInner {
    pub(crate) submitted: u64,
    pub(crate) completed: u64,
    pub(crate) failed: u64,
    pub(crate) rejected: u64,
    pub(crate) batches: u64,
    pub(crate) occupancy_sum: u64,
    pub(crate) max_occupancy: usize,
    pub(crate) latency: LatencyHistogram,
}

impl StatsInner {
    pub(crate) fn snapshot(&self) -> SessionStats {
        SessionStats {
            submitted: self.submitted,
            completed: self.completed,
            failed: self.failed,
            rejected: self.rejected,
            batches: self.batches,
            mean_occupancy: if self.batches == 0 {
                0.0
            } else {
                self.occupancy_sum as f64 / self.batches as f64
            },
            max_occupancy: self.max_occupancy,
            p50_latency_ms: self.latency.quantile_ms(0.50),
            p99_latency_ms: self.latency.quantile_ms(0.99),
        }
    }
}

/// A point-in-time snapshot of one session's serving counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests that completed with logits.
    pub completed: u64,
    /// Requests that completed with an engine error.
    pub failed: u64,
    /// Requests rejected by backpressure ([`crate::ServeError::Overloaded`]).
    pub rejected: u64,
    /// Engine batches dispatched.
    pub batches: u64,
    /// Mean images per dispatched batch (`0` before the first batch).
    pub mean_occupancy: f64,
    /// Largest batch dispatched so far.
    pub max_occupancy: usize,
    /// Median submit→reply latency in milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile submit→reply latency in milliseconds.
    pub p99_latency_ms: f64,
}

/// Shared connection-lifecycle counters the server's accept and
/// connection threads bump concurrently.
///
/// All increments are `Relaxed`: the counters are monotonic telemetry,
/// never used to synchronize, so a snapshot taken mid-flight may lag a
/// concurrent increment but can never tear or go backwards.
#[derive(Debug, Default)]
pub(crate) struct ServerCounters {
    accepted: AtomicU64,
    refused: AtomicU64,
    timed_out: AtomicU64,
    protocol_errors: AtomicU64,
    drained: AtomicU64,
}

impl ServerCounters {
    pub(crate) fn inc_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inc_refused(&self) {
        self.refused.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inc_timed_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inc_protocol_errors(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inc_drained(&self) {
        self.drained.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ServerStats {
        ServerStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of the server's connection robustness
/// counters — what happened to every socket the listener ever saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Connections accepted into a connection thread.
    pub accepted: u64,
    /// Connections refused at the accept gate (over `max_connections`,
    /// or arriving mid-drain).
    pub refused: u64,
    /// Connections reaped for stalling mid-frame past `read_timeout`
    /// (answered with [`crate::protocol::ErrorKind::Timeout`]).
    pub timed_out: u64,
    /// Malformed frames (bad length prefix or undecodable payload).
    pub protocol_errors: u64,
    /// In-flight requests whose replies were delivered during a
    /// graceful drain.
    pub drained: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.quantile_ms(0.5), 0.0);
        assert_eq!(h.quantile_ms(0.99), 0.0);
    }

    #[test]
    fn quantiles_bound_recorded_latencies() {
        let mut h = LatencyHistogram::new();
        // 99 fast requests at ~100 µs, one slow outlier at ~50 ms.
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(50));
        assert_eq!(h.total(), 100);
        let p50 = h.quantile_ms(0.50);
        let p99 = h.quantile_ms(0.99);
        let p100 = h.quantile_ms(1.0);
        // p50 sits in 100 µs's sub-bucket [96, 112) µs: bound 112 µs.
        assert!((0.1..=0.112001).contains(&p50), "p50 {p50}");
        // p99 is still in the fast bucket (99 of 100 samples)…
        assert!(p99 <= 0.112001, "p99 {p99}");
        // …while the max lands in 50 ms's sub-bucket [49.152, 57.344).
        assert!((50.0..=57.344001).contains(&p100), "p100 {p100}");
        assert!(p50 <= p99 && p99 <= p100);
    }

    #[test]
    fn sub_buckets_distinguish_p50_from_p99_within_an_octave() {
        // 9 ms and 15 ms share the [8.192, 16.384) ms octave — the old
        // power-of-two histogram reported both quantiles as 16.384 ms.
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(Duration::from_millis(9));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(15));
        }
        let p50 = h.quantile_ms(0.50);
        let p99 = h.quantile_ms(0.99);
        assert!(p50 < p99, "p50 {p50} vs p99 {p99}");
        // Each bound stays within 25% of its recorded latency.
        assert!((9.0..=11.25).contains(&p50), "p50 {p50}");
        assert!((15.0..=18.75).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn every_bucket_bound_is_within_a_quarter_of_its_lower_edge() {
        // Spot-check the log-linear mapping across the full range:
        // record → quantile must give a bound in [us, 1.25 · us].
        for shift in 2..63u32 {
            for offset in [0u64, 1, 3] {
                let us = (1u64 << shift) + (offset << shift.saturating_sub(2));
                let mut h = LatencyHistogram::new();
                h.record(Duration::from_micros(us));
                let bound_us = h.quantile_ms(1.0) * 1000.0;
                assert!(bound_us > us as f64, "{us}: bound {bound_us}");
                assert!(bound_us <= us as f64 * 1.25 + 1.0, "{us}: bound {bound_us}");
            }
        }
    }

    #[test]
    fn zero_and_huge_latencies_do_not_panic() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(1 << 40));
        assert_eq!(h.total(), 2);
        assert!(h.quantile_ms(1.0) > 0.0);
    }

    #[test]
    fn catch_all_bucket_bound_is_not_below_recorded_latency() {
        let mut h = LatencyHistogram::new();
        // as_micros = 2^53 · 10^6 > u64::MAX: the conversion saturates
        // and the sample lands in the catch-all bucket. The reported
        // bound must not undercut the actual (clamped) latency.
        let huge = Duration::from_secs(1 << 53);
        h.record(huge);
        let clamped_ms = u64::MAX as f64 / 1000.0;
        assert_eq!(h.quantile_ms(1.0), clamped_ms);
        assert!(h.quantile_ms(1.0) >= clamped_ms);
        // 2^62 µs resolves to a finite sub-bucket bound (5·2^60 µs)
        // that still sits above the recorded latency.
        let mut h2 = LatencyHistogram::new();
        h2.record(Duration::from_micros(1 << 62));
        let bound_ms = h2.quantile_ms(1.0);
        assert!(bound_ms > (1u64 << 62) as f64 / 1000.0, "{bound_ms}");
        assert!(bound_ms < clamped_ms, "{bound_ms}");
        // The nominal top-of-range value shares the saturated bound —
        // the 25% guarantee stops below the catch-all, by design.
        let mut h3 = LatencyHistogram::new();
        h3.record(Duration::from_micros(u64::MAX));
        assert_eq!(h3.quantile_ms(1.0), clamped_ms);
    }

    #[test]
    fn server_counters_start_zero_and_count_independently() {
        let c = ServerCounters::default();
        assert_eq!(c.snapshot(), ServerStats::default());
        c.inc_accepted();
        c.inc_accepted();
        c.inc_refused();
        c.inc_timed_out();
        c.inc_protocol_errors();
        c.inc_drained();
        let s = c.snapshot();
        assert_eq!(
            s,
            ServerStats {
                accepted: 2,
                refused: 1,
                timed_out: 1,
                protocol_errors: 1,
                drained: 1,
            }
        );
    }

    #[test]
    fn server_counters_survive_concurrent_increments() {
        use std::sync::Arc;
        let c = Arc::new(ServerCounters::default());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc_accepted();
                        c.inc_drained();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("counter thread");
        }
        let s = c.snapshot();
        assert_eq!(s.accepted, 4000);
        assert_eq!(s.drained, 4000);
        assert_eq!(s.refused, 0);
    }

    #[test]
    fn snapshot_derives_mean_occupancy() {
        let inner = StatsInner {
            submitted: 10,
            completed: 10,
            batches: 4,
            occupancy_sum: 10,
            max_occupancy: 4,
            ..StatsInner::default()
        };
        let s = inner.snapshot();
        assert_eq!(s.mean_occupancy, 2.5);
        assert_eq!(s.max_occupancy, 4);
        // No batches yet → occupancy 0, not NaN.
        assert_eq!(StatsInner::default().snapshot().mean_occupancy, 0.0);
    }
}
