//! The one submission path: a per-model [`Session`] with a bounded
//! request queue and a dynamic micro-batcher, plus the multi-model
//! [`Runtime`] façade the TCP server and in-process clients share.
//!
//! # How a request flows
//!
//! 1. [`Session::submit`] validates the image, applies backpressure
//!    (bounded queue → typed [`ServeError::Overloaded`]) and enqueues it
//!    with a reply channel, returning a [`Pending`] handle.
//!    ([`Session::submit_sink`] is the same path with a caller-supplied
//!    completion callback instead of a channel — the epoll server core
//!    routes replies back to its event loop this way.)
//! 2. The session's dispatcher thread coalesces queued requests into a
//!    micro-batch: it dispatches as soon as `max_batch` same-shaped
//!    requests are waiting, or when the oldest request has waited
//!    `max_wait` (the deadline is read from a [`Clock`], so tests drive
//!    it deterministically with [`crate::clock::ManualClock`]).
//! 3. The batch runs through [`DeepCamEngine::infer_each`], whose
//!    contract makes coalescing invisible: every image's logits are
//!    bit-identical to a lone `infer` call, whatever the batch
//!    composition (`tests/serve_differential.rs`).
//! 4. Each request's logits row is sent back over its reply channel and
//!    the per-model counters (requests, batches, occupancy, latency
//!    percentiles) are updated.
//!
//! Dropping the session flushes the queue: already-accepted requests
//! are still served before the dispatcher exits.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

use deepcam_core::DeepCamEngine;
use deepcam_tensor::{Shape, Tensor};

use crate::clock::{Clock, SystemClock};
use crate::error::{Result, ServeError};
use crate::registry::{ModelInfo, ModelRegistry};
use crate::stats::{SessionStats, StatsInner};

/// Tuning knobs of one session's micro-batcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionConfig {
    /// Most images coalesced into one engine call.
    pub max_batch: usize,
    /// Longest a queued request may wait for co-travellers before a
    /// partial batch dispatches anyway.
    pub max_wait: Duration,
    /// Bounded-queue capacity; submissions beyond it are rejected with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            queue_capacity: 256,
        }
    }
}

/// Whether a queue snapshot is ready to dispatch — the batcher's single
/// decision rule, kept pure so the deadline arithmetic is unit-testable
/// without threads or clocks.
pub(crate) fn batch_ready(
    leading_same_shape: usize,
    oldest_age: Duration,
    cfg: &SessionConfig,
) -> bool {
    leading_same_shape >= cfg.max_batch.max(1) || oldest_age >= cfg.max_wait
}

/// One request's completion: invoked exactly once with its result.
/// Runs on the dispatcher thread with no session locks held, so a sink
/// may re-enter the session or take unrelated locks (the event loop's
/// completion queue) without ordering hazards.
type ReplySink = Box<dyn FnOnce(Result<Vec<f32>>) + Send>;

struct QueuedRequest {
    /// Per-image dims (no batch axis), e.g. `[1, 28, 28]`.
    dims: Vec<usize>,
    data: Vec<f32>,
    enqueued: Instant,
    reply: ReplySink,
}

struct QueueState {
    queue: VecDeque<QueuedRequest>,
    shutdown: bool,
}

struct SessionShared {
    state: Mutex<QueueState>,
    changed: Condvar,
    stats: Mutex<StatsInner>,
}

/// A pending inference: the caller's half of one request's reply
/// channel.
pub struct Pending {
    rx: Receiver<Result<Vec<f32>>>,
}

impl std::fmt::Debug for Pending {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pending").finish_non_exhaustive()
    }
}

impl Pending {
    /// Blocks until the logits (or the request's error) arrive.
    ///
    /// # Errors
    ///
    /// Whatever the batch produced; [`ServeError::ShuttingDown`] if the
    /// session died without replying.
    pub fn wait(self) -> Result<Vec<f32>> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Blocks up to `timeout` for the reply. `None` means the request
    /// is still in flight (and this `Pending` stays usable — callers
    /// under a deadline can keep polling or give up without losing the
    /// reply channel); `Some` carries the same outcomes as
    /// [`Pending::wait`].
    pub fn wait_timeout(&self, timeout: std::time::Duration) -> Option<Result<Vec<f32>>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => None,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                Some(Err(ServeError::ShuttingDown))
            }
        }
    }

    /// Non-blocking probe: `None` while the request is still queued or
    /// in flight.
    pub fn poll(&self) -> Option<Result<Vec<f32>>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}

/// One model's submission path: bounded queue + dispatcher thread. See
/// the [module docs](self).
pub struct Session {
    engine: Arc<DeepCamEngine>,
    cfg: SessionConfig,
    clock: Arc<dyn Clock>,
    shared: Arc<SessionShared>,
    /// Expected elements per image when the compiled IR carries static
    /// shapes — submit-time validation that keeps a misshapen request
    /// from ever reaching (and failing) a coalesced batch.
    expected_elems: Option<usize>,
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Session {
    /// Spawns a session (and its dispatcher thread) over `engine`,
    /// timed by the real clock.
    pub fn new(engine: Arc<DeepCamEngine>, cfg: SessionConfig) -> Arc<Session> {
        Session::with_clock(engine, cfg, Arc::new(SystemClock))
    }

    /// [`Session::new`] with an explicit time source — pass a
    /// [`crate::clock::ManualClock`] to drive the max-wait deadline
    /// deterministically in tests.
    pub fn with_clock(
        engine: Arc<DeepCamEngine>,
        cfg: SessionConfig,
        clock: Arc<dyn Clock>,
    ) -> Arc<Session> {
        let shared = Arc::new(SessionShared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            changed: Condvar::new(),
            stats: Mutex::new(StatsInner::default()),
        });
        // A clock jump must re-run the deadline check; hold the shared
        // state weakly so a long-lived clock never keeps a dead
        // session's queue alive, and report death so the clock prunes
        // the registration.
        let waker_target: Weak<SessionShared> = Arc::downgrade(&shared);
        clock.register_waker(Arc::new(move || match waker_target.upgrade() {
            Some(shared) => {
                shared.changed.notify_all();
                true
            }
            None => false,
        }));
        let expected_elems = expected_image_elems(&engine);
        let session = Arc::new(Session {
            engine: Arc::clone(&engine),
            cfg: cfg.clone(),
            clock: Arc::clone(&clock),
            shared: Arc::clone(&shared),
            expected_elems,
            dispatcher: Mutex::new(None),
        });
        let handle = std::thread::Builder::new()
            .name("deepcam-session".into())
            .spawn(move || dispatch_loop(&engine, &shared, &cfg, clock.as_ref()))
            .expect("spawn session dispatcher");
        *session.dispatcher.lock().expect("dispatcher lock") = Some(handle);
        session
    }

    /// The engine this session serves.
    pub fn engine(&self) -> &Arc<DeepCamEngine> {
        &self.engine
    }

    /// Enqueues one image (shape per image, no batch axis — e.g.
    /// `[1, 28, 28]`) and returns its [`Pending`] reply handle.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] for empty/misshapen images,
    /// [`ServeError::Overloaded`] when the bounded queue is full,
    /// [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, dims: &[usize], data: &[f32]) -> Result<Pending> {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        self.submit_sink(dims, data, move |result| {
            let _ = tx.send(result);
        })?;
        Ok(Pending { rx })
    }

    /// [`Session::submit`] with a caller-supplied completion instead of
    /// a reply channel: `sink` is invoked exactly once, on the
    /// dispatcher thread with no session locks held, when the request's
    /// batch completes. On a submit *error* the sink is returned
    /// undisturbed inside the `Err` path semantics — it is simply
    /// dropped uncalled, and the caller reports the error itself.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Session::submit`].
    pub fn submit_sink(
        &self,
        dims: &[usize],
        data: &[f32],
        sink: impl FnOnce(Result<Vec<f32>>) + Send + 'static,
    ) -> Result<()> {
        // Checked product, mirroring the wire decoder: this is public
        // API, so hostile dims can arrive without passing protocol.rs.
        let mut elems = 1usize;
        for &d in dims {
            elems = match d.checked_mul(elems) {
                Some(e) if d > 0 => e,
                _ => {
                    return Err(ServeError::InvalidRequest(format!(
                        "image dims {dims:?} are zero or overflow"
                    )))
                }
            };
        }
        if dims.is_empty() {
            return Err(ServeError::InvalidRequest(format!(
                "image dims {dims:?} describe no elements"
            )));
        }
        if elems != data.len() {
            return Err(ServeError::InvalidRequest(format!(
                "image dims {dims:?} imply {elems} elements, got {}",
                data.len()
            )));
        }
        if let Some(expected) = self.expected_elems {
            if elems != expected {
                return Err(ServeError::InvalidRequest(format!(
                    "model {:?} expects {expected} elements per image, got {elems}",
                    self.engine.model_name()
                )));
            }
        }
        {
            let mut st = self.shared.state.lock().expect("session lock");
            if st.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if st.queue.len() >= self.cfg.queue_capacity.max(1) {
                let queued = st.queue.len();
                drop(st);
                self.shared.stats.lock().expect("stats lock").rejected += 1;
                return Err(ServeError::Overloaded {
                    queued,
                    capacity: self.cfg.queue_capacity.max(1),
                });
            }
            // Count the submission while still holding the queue lock:
            // the dispatcher cannot complete this request before the
            // lock drops, so a stats snapshot can never observe
            // `completed > submitted`.
            self.shared.stats.lock().expect("stats lock").submitted += 1;
            st.queue.push_back(QueuedRequest {
                dims: dims.to_vec(),
                data: data.to_vec(),
                enqueued: self.clock.now(),
                reply: Box::new(sink),
            });
        }
        self.shared.changed.notify_all();
        Ok(())
    }

    /// Blocking single-image inference: [`Session::submit`] +
    /// [`Pending::wait`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Session::submit`], plus whatever the batch
    /// produced.
    pub fn infer(&self, dims: &[usize], data: &[f32]) -> Result<Vec<f32>> {
        self.submit(dims, data)?.wait()
    }

    /// A point-in-time snapshot of this session's counters.
    pub fn stats(&self) -> SessionStats {
        self.shared.stats.lock().expect("stats lock").snapshot()
    }

    /// Requests currently queued (excluding any batch in flight).
    pub fn queue_len(&self) -> usize {
        self.shared.state.lock().expect("session lock").queue.len()
    }

    /// Stops accepting work, serves everything already queued, and
    /// joins the dispatcher. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.state.lock().expect("session lock");
            st.shutdown = true;
        }
        self.shared.changed.notify_all();
        let handle = self.dispatcher.lock().expect("dispatcher lock").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Elements per image the compiled model expects, when its IR carries
/// static shapes (`None` otherwise — validation then falls to the
/// engine's own shape errors).
fn expected_image_elems(engine: &DeepCamEngine) -> Option<usize> {
    let ir = &engine.compiled().ir;
    let first = ir.dots.first()?;
    // The first dot layer's unique-input count is the model input size
    // only when nothing runs before it.
    if ir.preamble.is_empty() && first.shape.input_elems > 0 {
        Some(first.shape.input_elems)
    } else {
        None
    }
}

/// Length of the queue's leading run of same-shaped requests — the
/// most that can coalesce into the next batch without reordering.
fn leading_same_shape(queue: &VecDeque<QueuedRequest>, cap: usize) -> usize {
    let Some(front) = queue.front() else { return 0 };
    queue
        .iter()
        .take(cap.max(1))
        .take_while(|r| r.dims == front.dims)
        .count()
}

/// The dispatcher thread: waits for a dispatchable batch, drains it,
/// runs it, replies. Exits once shutdown is flagged *and* the queue is
/// empty, so accepted requests are always served.
fn dispatch_loop(
    engine: &Arc<DeepCamEngine>,
    shared: &Arc<SessionShared>,
    cfg: &SessionConfig,
    clock: &dyn Clock,
) {
    loop {
        let batch: Vec<QueuedRequest> = {
            let mut st = shared.state.lock().expect("session lock");
            loop {
                if st.queue.is_empty() {
                    if st.shutdown {
                        return;
                    }
                    st = shared.changed.wait(st).expect("session lock");
                    continue;
                }
                if st.shutdown {
                    break; // flush whatever is queued, without waiting
                }
                let now = clock.now();
                let oldest = st.queue.front().expect("non-empty queue").enqueued;
                let age = now.saturating_duration_since(oldest);
                let run = leading_same_shape(&st.queue, cfg.max_batch);
                if batch_ready(run, age, cfg) {
                    break;
                }
                // Sleep until the deadline (or a queue/clock change). A
                // manual clock wakes us via its registered waker; a
                // spurious or real-time wake just re-checks above.
                let deadline = oldest + cfg.max_wait;
                let timeout = deadline.saturating_duration_since(now);
                let (g, _) = shared
                    .changed
                    .wait_timeout(st, timeout.max(Duration::from_micros(100)))
                    .expect("session lock");
                st = g;
            }
            let run = leading_same_shape(&st.queue, cfg.max_batch);
            st.queue.drain(..run.max(1)).collect()
        };
        run_batch(engine, shared, clock, batch);
    }
}

/// Runs one coalesced micro-batch and replies to every request in it.
fn run_batch(
    engine: &Arc<DeepCamEngine>,
    shared: &Arc<SessionShared>,
    clock: &dyn Clock,
    batch: Vec<QueuedRequest>,
) {
    if batch.is_empty() {
        return;
    }
    let occupancy = batch.len();
    let per_image: usize = batch[0].dims.iter().product();
    let mut dims = vec![occupancy];
    dims.extend_from_slice(&batch[0].dims);
    let mut data = Vec::with_capacity(occupancy * per_image);
    for req in &batch {
        data.extend_from_slice(&req.data);
    }
    let result = Tensor::from_vec(data, Shape::new(&dims))
        .map_err(|e| ServeError::Engine(e.into()))
        .and_then(|images| engine.infer_each(&images).map_err(ServeError::Engine));
    let now = clock.now();
    let mut replies: Vec<(ReplySink, Result<Vec<f32>>)> = Vec::with_capacity(occupancy);
    {
        let mut stats = shared.stats.lock().expect("stats lock");
        stats.batches += 1;
        stats.occupancy_sum += occupancy as u64;
        stats.max_occupancy = stats.max_occupancy.max(occupancy);
        match result {
            Ok(logits) => {
                let classes = logits.shape().dim(1);
                for (row, req) in batch.into_iter().enumerate() {
                    let out = logits.data()[row * classes..(row + 1) * classes].to_vec();
                    stats.completed += 1;
                    stats
                        .latency
                        .record(now.saturating_duration_since(req.enqueued));
                    replies.push((req.reply, Ok(out)));
                }
            }
            Err(e) => {
                for req in batch {
                    stats.failed += 1;
                    stats
                        .latency
                        .record(now.saturating_duration_since(req.enqueued));
                    replies.push((req.reply, Err(e.clone())));
                }
            }
        }
    }
    // Completions run strictly after the stats lock drops: a sink is
    // arbitrary caller code (the epoll core's routes a reply through
    // its own completion queue) and must never nest inside our locks.
    for (sink, result) in replies {
        sink(result);
    }
}

/// The multi-model serving façade: a [`ModelRegistry`] plus one lazily
/// created [`Session`] per served model, all sharing a clock and a
/// session configuration. This is the single object the TCP server,
/// benches and examples submit through.
pub struct Runtime {
    registry: Arc<ModelRegistry>,
    cfg: SessionConfig,
    clock: Arc<dyn Clock>,
    sessions: Mutex<HashMap<String, Arc<Session>>>,
}

impl Runtime {
    /// A runtime over `registry`, timed by the real clock.
    pub fn new(registry: Arc<ModelRegistry>, cfg: SessionConfig) -> Self {
        Runtime::with_clock(registry, cfg, Arc::new(SystemClock))
    }

    /// [`Runtime::new`] with an explicit time source for tests.
    pub fn with_clock(
        registry: Arc<ModelRegistry>,
        cfg: SessionConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        Runtime {
            registry,
            cfg,
            clock,
            sessions: Mutex::new(HashMap::new()),
        }
    }

    /// The registry this runtime serves from.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The session serving `model`, creating it (and loading the
    /// model's artifact) on first use.
    ///
    /// The cold path — artifact load + session spawn — runs without the
    /// session-map lock held, so opening one cold model never stalls
    /// traffic to models that are already serving.
    ///
    /// An open session pins its engine in memory for as long as it
    /// lives, independent of the registry's residency bound (which
    /// governs only the registry's own cache): a model with an open
    /// session is a model you are actively serving. Use
    /// [`Runtime::close_session`] to retire one.
    ///
    /// # Errors
    ///
    /// Propagates registry errors ([`ServeError::ModelNotFound`],
    /// [`ServeError::BadArtifact`]).
    pub fn session(&self, model: &str) -> Result<Arc<Session>> {
        if let Some(session) = self.sessions.lock().expect("runtime lock").get(model) {
            return Ok(Arc::clone(session));
        }
        // Cold path: load with no locks held (the registry does its own
        // fine-grained locking), then publish — reusing a racer's
        // session if one appeared meanwhile.
        let engine = self.registry.get(model)?;
        let mut sessions = self.sessions.lock().expect("runtime lock");
        if let Some(session) = sessions.get(model) {
            return Ok(Arc::clone(session));
        }
        let session = Session::with_clock(engine, self.cfg.clone(), Arc::clone(&self.clock));
        sessions.insert(model.to_string(), Arc::clone(&session));
        Ok(session)
    }

    /// Retires `model`'s session: it stops accepting work, serves
    /// everything already queued, and releases its engine pin (the
    /// engine itself stays resident only while the registry cache or
    /// in-flight handles still hold it). Returns whether a session
    /// existed. The next [`Runtime::session`] call recreates one.
    pub fn close_session(&self, model: &str) -> bool {
        let removed = self.sessions.lock().expect("runtime lock").remove(model);
        match removed {
            Some(session) => {
                session.shutdown();
                true
            }
            None => false,
        }
    }

    /// Blocking single-image inference against `model` through its
    /// session's micro-batcher.
    ///
    /// # Errors
    ///
    /// Registry errors, submit errors, or the batch's engine error.
    pub fn infer(&self, model: &str, dims: &[usize], data: &[f32]) -> Result<Vec<f32>> {
        self.session(model)?.infer(dims, data)
    }

    /// Non-blocking submission against `model`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Session::submit`] plus registry errors.
    pub fn submit(&self, model: &str, dims: &[usize], data: &[f32]) -> Result<Pending> {
        self.session(model)?.submit(dims, data)
    }

    /// Completion-callback submission against `model`
    /// ([`Session::submit_sink`] through the registry).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Session::submit`] plus registry errors; on
    /// `Err` the sink was never (and will never be) invoked.
    pub fn submit_sink(
        &self,
        model: &str,
        dims: &[usize],
        data: &[f32],
        sink: impl FnOnce(Result<Vec<f32>>) + Send + 'static,
    ) -> Result<()> {
        self.session(model)?.submit_sink(dims, data, sink)
    }

    /// Serving counters for `model` (zeroed if its session has not been
    /// created yet).
    ///
    /// # Errors
    ///
    /// [`ServeError::ModelNotFound`] for ids the registry has never
    /// heard of.
    pub fn stats(&self, model: &str) -> Result<SessionStats> {
        if let Some(session) = self.sessions.lock().expect("runtime lock").get(model) {
            return Ok(session.stats());
        }
        // No traffic yet: still distinguish "idle model" from "unknown".
        if self.registry.list().iter().any(|m| m.id == model) {
            Ok(StatsInner::default().snapshot())
        } else {
            Err(ServeError::ModelNotFound {
                model: model.into(),
            })
        }
    }

    /// Every model the registry knows, with residency status.
    pub fn list(&self) -> Vec<ModelInfo> {
        self.registry.list()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_ready_rule() {
        let cfg = SessionConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(2),
            queue_capacity: 8,
        };
        // Neither full nor expired.
        assert!(!batch_ready(3, Duration::from_micros(100), &cfg));
        // Full batch dispatches regardless of age.
        assert!(batch_ready(4, Duration::ZERO, &cfg));
        // Deadline expiry dispatches a partial batch.
        assert!(batch_ready(1, Duration::from_millis(2), &cfg));
        assert!(batch_ready(1, Duration::from_secs(1), &cfg));
        // Degenerate max_batch of 0 behaves like 1.
        let tiny = SessionConfig {
            max_batch: 0,
            ..cfg
        };
        assert!(batch_ready(1, Duration::ZERO, &tiny));
    }

    #[test]
    fn leading_same_shape_stops_at_shape_change() {
        let mk = |dims: &[usize]| QueuedRequest {
            dims: dims.to_vec(),
            data: vec![0.0; dims.iter().product()],
            enqueued: Instant::now(),
            reply: Box::new(|_| {}),
        };
        let mut q = VecDeque::new();
        assert_eq!(leading_same_shape(&q, 8), 0);
        q.push_back(mk(&[2, 2]));
        q.push_back(mk(&[2, 2]));
        q.push_back(mk(&[3]));
        q.push_back(mk(&[2, 2]));
        assert_eq!(leading_same_shape(&q, 8), 2);
        assert_eq!(leading_same_shape(&q, 1), 1);
    }
}
