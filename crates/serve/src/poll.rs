//! Audited raw-syscall wrappers for the Linux readiness-polling core.
//!
//! The workspace vendors no crates, so `epoll` and `eventfd` are
//! reached through `extern "C"` declarations against the C library —
//! the same no-dependency discipline as `deepcam-tensor`'s
//! `ThreadPool`. Every `unsafe` block in this file is a single FFI
//! call with a `// SAFETY:` comment and is registered in
//! `ANALYZE_UNSAFE.md`; the rest of the crate stays
//! `deny(unsafe_code)`.
//!
//! The wrappers are deliberately thin and panic-free: they own their
//! file descriptors ([`Epoll`], [`EventFd`] close on drop), translate
//! every failing return into [`std::io::Error`], and expose only the
//! calls the event loop needs — create, ctl, wait, and an `eventfd`
//! wake channel. Edge-triggered modes are not exposed: the event loop
//! is level-triggered on purpose (a missed wakeup re-arms itself on
//! the next `epoll_wait`, so there is no starvation proof to carry).
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::RawFd;

use std::os::raw::{c_int, c_uint, c_void};

// The C library entry points. Names and ABI are pinned by the Linux
// man pages (epoll_create1(2), epoll_ctl(2), epoll_wait(2),
// eventfd(2)); glibc and musl both export them with these signatures.
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

/// Readiness for reading (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Readiness for writing (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`); always reported, never requested.
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (`EPOLLHUP`); always reported, never requested.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// One readiness record, ABI-compatible with the kernel's
/// `struct epoll_event`. The x86-64 kernel declares it packed (a
/// 12-byte struct); other architectures use natural alignment.
#[derive(Clone, Copy)]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-chosen token identifying the registered fd.
    pub data: u64,
}

impl EpollEvent {
    /// A zeroed record, used to fill the `epoll_wait` output buffer.
    pub const fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }

    /// The readiness bitmask (reads through the possibly-packed field).
    pub fn events(&self) -> u32 {
        self.events
    }

    /// The registration token (reads through the possibly-packed field).
    pub fn token(&self) -> u64 {
        self.data
    }
}

/// Closes a raw fd, ignoring the result: this runs on drop paths where
/// there is no caller to report to, and the fd is never reused after.
fn close_fd(fd: RawFd) {
    // SAFETY: `fd` was returned by a successful `epoll_create1` or
    // `eventfd` call and is owned exclusively by the wrapper being
    // dropped, so it is open here and closed exactly once.
    unsafe {
        close(fd);
    }
}

/// An owned epoll instance.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    ///
    /// # Errors
    ///
    /// Returns the OS error when the kernel refuses (fd exhaustion).
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: `epoll_create1` takes no pointers; any flag value is
        // safe to pass and errors surface as a -1 return checked below.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    /// Registers `fd` for `interest` events, reported with `token`.
    ///
    /// # Errors
    ///
    /// Returns the OS error (`EEXIST`, `EBADF`, ...) on failure.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes the registered interest/token for `fd`.
    ///
    /// # Errors
    ///
    /// Returns the OS error (`ENOENT`, `EBADF`, ...) on failure.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregisters `fd`.
    ///
    /// # Errors
    ///
    /// Returns the OS error (`ENOENT`, `EBADF`, ...) on failure.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `event` is a live, properly initialized EpollEvent
        // for the duration of the call; the kernel only reads it (and
        // ignores it entirely for EPOLL_CTL_DEL). `self.fd` is the
        // epoll fd owned by this struct.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Blocks until readiness or `timeout_ms` (`None` = wait forever),
    /// filling `events` from the front. Returns how many records are
    /// valid. `EINTR` is retried internally.
    ///
    /// # Errors
    ///
    /// Returns the OS error when the wait itself fails (`EBADF`).
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: Option<u32>) -> io::Result<usize> {
        if events.is_empty() {
            return Ok(0);
        }
        let max = c_int::try_from(events.len()).unwrap_or(c_int::MAX);
        let timeout = match timeout_ms {
            None => -1,
            Some(ms) => c_int::try_from(ms).unwrap_or(c_int::MAX),
        };
        loop {
            // SAFETY: `events` is a live mutable slice of `max`
            // initialized EpollEvent records, so the kernel writes at
            // most `max` records into memory we exclusively borrow.
            // `self.fd` is the epoll fd owned by this struct.
            let rc = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), max, timeout) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}

/// A nonblocking `eventfd` wake channel: any thread may
/// [`signal`](EventFd::signal) it, and the event loop both polls it
/// for readability and [`drain`](EventFd::drain)s it once woken.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates a close-on-exec, nonblocking eventfd with counter 0.
    ///
    /// # Errors
    ///
    /// Returns the OS error when the kernel refuses (fd exhaustion).
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: `eventfd` takes no pointers; any initval/flags are
        // safe to pass and errors surface as a -1 return checked below.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { fd })
    }

    /// The raw fd, for registering with an [`Epoll`].
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Wakes any `epoll_wait` watching this eventfd. Best-effort and
    /// infallible from the caller's view: a full counter (`EAGAIN`)
    /// already guarantees the watcher is wakeable.
    pub fn signal(&self) {
        let one: u64 = 1;
        // SAFETY: writes exactly 8 bytes from a live local u64, the
        // size eventfd(2) requires; the fd is open for the lifetime of
        // `self` and `write` is thread-safe per POSIX.
        let _ = unsafe { write(self.fd, (&raw const one).cast::<c_void>(), 8) };
    }

    /// Consumes all pending wake signals (resets the counter), so a
    /// level-triggered poll stops reporting this fd readable.
    pub fn drain(&self) {
        let mut count: u64 = 0;
        // SAFETY: reads exactly 8 bytes into a live local u64, the
        // size eventfd(2) requires; the fd is open for the lifetime of
        // `self` and nonblocking, so the call cannot hang.
        let _ = unsafe { read(self.fd, (&raw mut count).cast::<c_void>(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn eventfd_signals_and_drains_through_epoll() {
        let ep = Epoll::new().expect("epoll");
        let efd = EventFd::new().expect("eventfd");
        ep.add(efd.raw_fd(), EPOLLIN, 7).expect("add");

        let mut events = [EpollEvent::zeroed(); 4];
        // Nothing signaled yet: a zero-timeout wait reports nothing.
        assert_eq!(ep.wait(&mut events, Some(0)).expect("wait"), 0);

        efd.signal();
        efd.signal();
        let n = ep.wait(&mut events, Some(1000)).expect("wait");
        assert_eq!(n, 1);
        let ev = events[0];
        assert_eq!(ev.token(), 7);
        assert_ne!(ev.events() & EPOLLIN, 0);

        // Drain resets the counter; the level-triggered report stops.
        efd.drain();
        assert_eq!(ep.wait(&mut events, Some(0)).expect("wait"), 0);
    }

    #[test]
    fn socket_readiness_reports_registered_token() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        let ep = Epoll::new().expect("epoll");
        use std::os::fd::AsRawFd;
        ep.add(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 42)
            .expect("add");

        let mut events = [EpollEvent::zeroed(); 4];
        assert_eq!(ep.wait(&mut events, Some(0)).expect("wait"), 0);

        client.write_all(b"ping").expect("write");
        let n = ep.wait(&mut events, Some(1000)).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert_ne!(events[0].events() & EPOLLIN, 0);

        let mut server = server;
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).expect("read"), 4);

        // Interest can be rewritten and removed.
        ep.modify(server.as_raw_fd(), EPOLLIN | EPOLLOUT, 43)
            .expect("modify");
        let n = ep.wait(&mut events, Some(1000)).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 43);
        assert_ne!(events[0].events() & EPOLLOUT, 0);
        ep.delete(server.as_raw_fd()).expect("delete");
        assert_eq!(ep.wait(&mut events, Some(0)).expect("wait"), 0);
    }

    #[test]
    fn peer_hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");

        let ep = Epoll::new().expect("epoll");
        use std::os::fd::AsRawFd;
        ep.add(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 9)
            .expect("add");
        drop(client);

        let mut events = [EpollEvent::zeroed(); 4];
        let n = ep.wait(&mut events, Some(1000)).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 9);
        assert_ne!(
            events[0].events() & (EPOLLRDHUP | EPOLLHUP | EPOLLIN),
            0,
            "hangup must surface as readable/rdhup"
        );
    }
}
