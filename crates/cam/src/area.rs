//! Array area model (the second half of Fig. 8).
//!
//! Constants follow the paper's technology assumptions: 45 nm logic with a
//! 2T-2FeFET CAM cell that is ~7.5× smaller than the 16T CMOS TCAM cell
//! (Yin et al., cited in §II-A). The *physical* array always instantiates
//! all four chunks — variable hash length is a runtime power optimization,
//! not an area one — so area depends on the full 1024-bit word plus
//! peripherals.

use serde::{Deserialize, Serialize};

use crate::chunk::{CHUNK_BITS, MAX_CHUNKS};
use crate::config::CamConfig;

/// Analytical area model, all values in µm² (45 nm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// One 2T-2FeFET ternary cell.
    pub cell_um2: f64,
    /// Clocked self-referenced sense amplifier, one per row.
    pub sense_amp_um2: f64,
    /// Match-line precharge + row control, one per row.
    pub row_periphery_um2: f64,
    /// Search-line driver, one per column.
    pub col_driver_um2: f64,
    /// Transmission-gate pair per row per chunk boundary.
    pub gate_um2: f64,
    /// Fixed decode/control block.
    pub fixed_um2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            // 16T CMOS TCAM ≈ 5.3 µm² at 45 nm; ÷7.5 ≈ 0.7 µm².
            cell_um2: 0.7,
            sense_amp_um2: 8.0,
            row_periphery_um2: 3.0,
            col_driver_um2: 1.5,
            gate_um2: 0.9,
            fixed_um2: 500.0,
        }
    }
}

impl AreaModel {
    /// Total silicon area of the physical array in µm².
    ///
    /// Uses the *physical* word length (4 × 256 bits) regardless of how
    /// many chunks the configuration currently enables.
    pub fn array_area_um2(&self, cfg: &CamConfig) -> f64 {
        let rows = cfg.rows as f64;
        let physical_cols = (CHUNK_BITS * MAX_CHUNKS) as f64;
        rows * physical_cols * self.cell_um2
            + rows * (self.sense_amp_um2 + self.row_periphery_um2)
            + rows * (MAX_CHUNKS - 1) as f64 * self.gate_um2
            + physical_cols * self.col_driver_um2
            + self.fixed_um2
    }

    /// Area in mm², the unit Fig. 8 uses.
    pub fn array_area_mm2(&self, cfg: &CamConfig) -> f64 {
        self.array_area_um2(cfg) / 1e6
    }

    /// Area of a hypothetical fixed-width array with `cols` columns (used
    /// by the Fig. 8 sweep, which treats each row×col point as its own
    /// design).
    pub fn fixed_array_area_um2(&self, rows: usize, cols: usize) -> f64 {
        let chunk_boundaries = (cols / CHUNK_BITS).saturating_sub(1) as f64;
        rows as f64 * cols as f64 * self.cell_um2
            + rows as f64 * (self.sense_amp_um2 + self.row_periphery_um2)
            + rows as f64 * chunk_boundaries * self.gate_um2
            + cols as f64 * self.col_driver_um2
            + self.fixed_um2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_scales_with_rows() {
        let m = AreaModel::default();
        let a64 = m.array_area_um2(&CamConfig::new(64, 256).unwrap());
        let a512 = m.array_area_um2(&CamConfig::new(512, 256).unwrap());
        let ratio = a512 / a64;
        assert!(ratio > 6.0 && ratio < 8.5, "ratio {ratio}");
    }

    #[test]
    fn area_independent_of_enabled_chunks() {
        // Chunk-disable saves power, not silicon.
        let m = AreaModel::default();
        let a = m.array_area_um2(&CamConfig::new(64, 256).unwrap());
        let b = m.array_area_um2(&CamConfig::new(64, 1024).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn fixed_array_area_scales_with_cols() {
        let m = AreaModel::default();
        let narrow = m.fixed_array_area_um2(64, 256);
        let wide = m.fixed_array_area_um2(64, 1024);
        assert!(wide / narrow > 3.0, "ratio {}", wide / narrow);
    }

    #[test]
    fn mm2_conversion() {
        let m = AreaModel::default();
        let cfg = CamConfig::new(64, 256).unwrap();
        assert!((m.array_area_mm2(&cfg) * 1e6 - m.array_area_um2(&cfg)).abs() < 1e-9);
    }

    #[test]
    fn plausible_magnitude() {
        // A 512x1024 FeFET array should be well under 1 mm².
        let m = AreaModel::default();
        let a = m.array_area_mm2(&CamConfig::new(512, 1024).unwrap());
        assert!(a > 0.01 && a < 1.0, "area {a} mm²");
    }
}
