//! Clocked self-referenced sense-amplifier model (Ni et al. 2019).
//!
//! Physics being modelled: during a search, every mismatching cell in a
//! row turns on one pull-down path on that row's match line. With `d`
//! mismatches the ML discharges roughly `d`+ times faster than with one,
//! so the time for the ML to cross the sensing threshold is
//!
//! ```text
//! t(d) ≈ t₁ / d      (d ≥ 1),    t(0) = ∞ (full match, no pull-down)
//! ```
//!
//! The clocked self-referenced SA samples the ML at every clock edge and
//! records the first edge at which the line has fallen below threshold.
//! Quantizing *time* therefore quantizes Hamming distance *non-uniformly*:
//! small distances (long discharge times) are resolved finely, large
//! distances coarsely — exactly the behaviour reported by Ni et al.
//!
//! [`SenseModel::Exact`] bypasses the quantization (ideal readout);
//! [`SenseModel::Clocked`] applies it and is the hardware-faithful
//! default for ablation studies. The functional accuracy experiments of
//! the paper implicitly assume near-ideal readout, so `deepcam-core`
//! uses `Exact` unless an experiment asks otherwise.

use serde::{Deserialize, Serialize};

/// Sense-amplifier readout model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum SenseModel {
    /// Ideal readout: the reported distance equals the true distance.
    #[default]
    Exact,
    /// Clocked sampling with `levels` distinguishable discharge-time bins
    /// across `max_hd` (the active word length).
    Clocked {
        /// Number of clock edges in the sensing window.
        levels: usize,
    },
}

impl SenseModel {
    /// Applies the readout model to a true Hamming distance `hd` for a
    /// word of `word_bits` active bits, returning the distance the
    /// post-processing unit will see.
    ///
    /// Guarantees: `read(0) == 0` (a full match never discharges), the
    /// output is monotone in `hd`, and output never exceeds `word_bits`.
    pub fn read(&self, hd: usize, word_bits: usize) -> usize {
        match *self {
            SenseModel::Exact => hd.min(word_bits),
            SenseModel::Clocked { levels } => {
                let levels = levels.max(1);
                if hd == 0 {
                    return 0;
                }
                let hd = hd.min(word_bits) as f64;
                // Discharge time in units of t₁: t = 1/hd. The sensing
                // window spans [1/word_bits, 1]; clock edge index
                // i ∈ [0, levels) samples time t_i on a geometric grid
                // (constant-ratio spacing matches an RC discharge sampled
                // by a fixed clock against an exponential ramp).
                let t = 1.0 / hd;
                let t_min = 1.0 / word_bits.max(1) as f64;
                // ratio = t_min^(1/levels)
                let ratio = (t_min.ln() / (levels as f64)).exp();
                // Find the bin whose representative time is closest to t.
                let mut level = 0usize;
                let mut edge = 1.0f64;
                while level + 1 < levels && edge * ratio >= t {
                    edge *= ratio;
                    level += 1;
                }
                // Convert the sampled time back to an HD estimate.
                let hd_est = (1.0 / edge).round() as usize;
                hd_est.clamp(1, word_bits)
            }
        }
    }

    /// Worst-case absolute readout error over all distances for a given
    /// word length (diagnostic used by tests and the ablation bench).
    pub fn max_error(&self, word_bits: usize) -> usize {
        (0..=word_bits)
            .map(|hd| self.read(hd, word_bits).abs_diff(hd))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_is_identity() {
        let s = SenseModel::Exact;
        for hd in 0..=256 {
            assert_eq!(s.read(hd, 256), hd);
        }
    }

    #[test]
    fn exact_clamps_to_word() {
        assert_eq!(SenseModel::Exact.read(300, 256), 256);
    }

    #[test]
    fn clocked_full_match_reads_zero() {
        let s = SenseModel::Clocked { levels: 16 };
        assert_eq!(s.read(0, 1024), 0);
    }

    #[test]
    fn clocked_is_monotone() {
        for &levels in &[4usize, 16, 64] {
            let s = SenseModel::Clocked { levels };
            let mut prev = 0;
            for hd in 0..=512 {
                let r = s.read(hd, 512);
                assert!(r >= prev, "levels={levels}: non-monotone at hd={hd}");
                prev = r;
            }
        }
    }

    #[test]
    fn clocked_resolves_small_distances_finely() {
        // The self-referenced SA's signature property: small HD readings
        // are much more accurate than large ones.
        let s = SenseModel::Clocked { levels: 64 };
        let small_err: usize = (1..=8).map(|hd| s.read(hd, 1024).abs_diff(hd)).sum();
        let large_err: usize = (1000..=1008).map(|hd| s.read(hd, 1024).abs_diff(hd)).sum();
        assert!(
            small_err < large_err,
            "small {small_err} should be < large {large_err}"
        );
        assert!(small_err <= 8, "small distances nearly exact: {small_err}");
    }

    #[test]
    fn more_levels_reduce_error() {
        let coarse = SenseModel::Clocked { levels: 8 }.max_error(512);
        let fine = SenseModel::Clocked { levels: 128 }.max_error(512);
        assert!(fine <= coarse, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn output_bounded_by_word() {
        let s = SenseModel::Clocked { levels: 16 };
        for hd in 0..=2048 {
            assert!(s.read(hd, 1024) <= 1024);
        }
    }

    #[test]
    fn default_is_exact() {
        assert_eq!(SenseModel::default(), SenseModel::Exact);
    }
}
