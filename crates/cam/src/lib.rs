//! # deepcam-cam
//!
//! A behavioural + cost model of the dynamic-size FeFET content
//! addressable memory at the heart of DeepCAM (paper §III-B, Fig. 6).
//!
//! The hardware being modelled:
//!
//! * a CAM array of `R ∈ {64,128,256,512}` rows;
//! * each word is built from **four 256-bit chunks** joined by
//!   transmission gates, so the active word length (= hash length) is
//!   reconfigurable to 256/512/768/1024 bits ([`chunk`]);
//! * a search broadcasts a key on the search lines and every row's match
//!   line (ML) discharges at a rate proportional to its number of
//!   mismatching cells; the **clocked self-referenced sense amplifier**
//!   (Ni et al., Nature Electronics 2019) converts discharge time to a
//!   Hamming-distance estimate for *all rows in parallel* — the O(1)
//!   dot-product time claim ([`sense`]);
//! * search/write energy and array area follow an EvaCAM-style analytical
//!   model calibrated to published FeFET CAM figures ([`energy`],
//!   [`area`]).
//!
//! [`array::CamArray`] is the functional simulator used by
//! `deepcam-core`'s inference engine; [`energy::CamCostModel`] is queried
//! by the scheduler for cycle and energy accounting.
//!
//! # Example
//!
//! ```
//! use deepcam_cam::{CamArray, CamConfig};
//! use deepcam_hash::BitVec;
//!
//! let mut cam = CamArray::new(CamConfig::new(64, 256)?);
//! cam.write_row(0, BitVec::from_bools(&[true; 256]))?;
//! let hits = cam.search(&BitVec::from_bools(&[false; 256]))?;
//! assert_eq!(hits[0].hamming, 256);
//! # Ok::<(), deepcam_cam::CamError>(())
//! ```

// Machine-checked by deepcam-analyze (lint A2): this crate holds no
// unsafe code, and the compiler now enforces that it never grows any.
#![forbid(unsafe_code)]

pub mod area;
pub mod array;
pub mod chunk;
pub mod config;
pub mod energy;
pub mod error;
pub mod sense;

pub use area::AreaModel;
pub use array::{CamArray, SearchHit};
pub use chunk::ChunkConfig;
pub use config::{CamConfig, SUPPORTED_COL_SIZES, SUPPORTED_ROW_SIZES};
pub use energy::{CamCostModel, SearchCost};
pub use error::CamError;
pub use sense::SenseModel;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, CamError>;
