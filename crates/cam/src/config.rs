//! CAM array configuration.

use serde::{Deserialize, Serialize};

use crate::chunk::ChunkConfig;
use crate::error::CamError;
use crate::sense::SenseModel;
use crate::Result;

/// Row counts evaluated in the paper (Fig. 8 / Fig. 9).
pub const SUPPORTED_ROW_SIZES: [usize; 4] = [64, 128, 256, 512];

/// Word lengths (columns) supported by the four-chunk word (Fig. 8).
pub const SUPPORTED_COL_SIZES: [usize; 4] = [256, 512, 768, 1024];

/// Configuration of one dynamic-size CAM array.
///
/// # Example
///
/// ```
/// use deepcam_cam::CamConfig;
///
/// let cfg = CamConfig::new(64, 512)?;
/// assert_eq!(cfg.rows, 64);
/// assert_eq!(cfg.word_bits(), 512);
/// # Ok::<(), deepcam_cam::CamError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CamConfig {
    /// Number of rows (stored contexts searched in parallel).
    pub rows: usize,
    /// Chunk configuration selecting the active word length.
    pub chunks: ChunkConfig,
    /// Sense-amplifier model used to read Hamming distances.
    pub sense: SenseModel,
    /// Clock frequency in Hz (the paper evaluates at 300 MHz).
    pub clock_hz: f64,
}

impl CamConfig {
    /// Creates a configuration with the default sense model and the
    /// paper's 300 MHz clock.
    ///
    /// # Errors
    ///
    /// Returns [`CamError::InvalidConfig`] when `rows` is not one of
    /// {64,128,256,512} or `word_bits` is not one of {256,512,768,1024}.
    pub fn new(rows: usize, word_bits: usize) -> Result<Self> {
        if !SUPPORTED_ROW_SIZES.contains(&rows) {
            return Err(CamError::InvalidConfig(format!(
                "row count {rows} not in {SUPPORTED_ROW_SIZES:?}"
            )));
        }
        Ok(CamConfig {
            rows,
            chunks: ChunkConfig::for_hash_len(word_bits)?,
            sense: SenseModel::default(),
            clock_hz: 300e6,
        })
    }

    /// Builder-style sense-model override.
    pub fn with_sense(mut self, sense: SenseModel) -> Self {
        self.sense = sense;
        self
    }

    /// Active word length in bits.
    pub fn word_bits(&self) -> usize {
        self.chunks.word_bits()
    }

    /// Duration of one clock cycle in seconds.
    pub fn cycle_time_s(&self) -> f64 {
        1.0 / self.clock_hz
    }

    /// Reconfigures the active word length (the transmission-gate enable
    /// signals — this is cheap at runtime, which is the whole point of the
    /// dynamic design).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ChunkConfig::for_hash_len`].
    pub fn set_word_bits(&mut self, word_bits: usize) -> Result<()> {
        self.chunks = ChunkConfig::for_hash_len(word_bits)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_configs() {
        for &r in &SUPPORTED_ROW_SIZES {
            for &c in &SUPPORTED_COL_SIZES {
                let cfg = CamConfig::new(r, c).unwrap();
                assert_eq!(cfg.rows, r);
                assert_eq!(cfg.word_bits(), c);
            }
        }
    }

    #[test]
    fn invalid_rows_rejected() {
        assert!(CamConfig::new(63, 256).is_err());
        assert!(CamConfig::new(1024, 256).is_err());
    }

    #[test]
    fn reconfigure_word_length() {
        let mut cfg = CamConfig::new(64, 256).unwrap();
        cfg.set_word_bits(1024).unwrap();
        assert_eq!(cfg.word_bits(), 1024);
        assert!(cfg.set_word_bits(257).is_err());
        // Failed reconfiguration leaves the config unchanged.
        assert_eq!(cfg.word_bits(), 1024);
    }

    #[test]
    fn clock_default_is_300mhz() {
        let cfg = CamConfig::new(64, 256).unwrap();
        assert!((cfg.clock_hz - 300e6).abs() < 1.0);
        assert!((cfg.cycle_time_s() - 3.333e-9).abs() < 1e-11);
    }
}
