//! Dynamic word-length chunking (paper §III-B, Fig. 6).
//!
//! The CAM word is physically four 256-bit chunks. Adjacent chunks are
//! joined by transmission gates (full CMOS pass gates, chosen over single
//! NMOS/PMOS switches so the match-line voltage is forwarded without
//! degradation). Enabling 1–4 chunks selects a word — and therefore hash —
//! length of 256/512/768/1024 bits. Disabled chunks are neither precharged
//! nor searched, which is where the variable-hash-length energy saving
//! comes from.

use serde::{Deserialize, Serialize};

use crate::error::CamError;
use crate::Result;

/// Bits per physical chunk.
pub const CHUNK_BITS: usize = 256;

/// Maximum number of chunks per word.
pub const MAX_CHUNKS: usize = 4;

/// Number of enabled 256-bit chunks (1–4).
///
/// # Example
///
/// ```
/// use deepcam_cam::ChunkConfig;
///
/// let c = ChunkConfig::for_hash_len(768)?;
/// assert_eq!(c.enabled(), 3);
/// assert_eq!(c.word_bits(), 768);
/// # Ok::<(), deepcam_cam::CamError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChunkConfig {
    enabled: usize,
}

impl ChunkConfig {
    /// Enables `enabled` chunks.
    ///
    /// # Errors
    ///
    /// Returns [`CamError::InvalidConfig`] unless `1 <= enabled <= 4`.
    pub fn new(enabled: usize) -> Result<Self> {
        if !(1..=MAX_CHUNKS).contains(&enabled) {
            return Err(CamError::InvalidConfig(format!(
                "chunk count must be 1..={MAX_CHUNKS}, got {enabled}"
            )));
        }
        Ok(ChunkConfig { enabled })
    }

    /// Smallest chunk configuration whose word holds `hash_len` bits.
    ///
    /// # Errors
    ///
    /// Returns [`CamError::InvalidConfig`] when `hash_len` is zero, not a
    /// multiple of 256, or above 1024 — the paper's hardware only supports
    /// the four discrete widths.
    pub fn for_hash_len(hash_len: usize) -> Result<Self> {
        if hash_len == 0
            || !hash_len.is_multiple_of(CHUNK_BITS)
            || hash_len > CHUNK_BITS * MAX_CHUNKS
        {
            return Err(CamError::InvalidConfig(format!(
                "hash length {hash_len} not in {{256, 512, 768, 1024}}"
            )));
        }
        ChunkConfig::new(hash_len / CHUNK_BITS)
    }

    /// Number of enabled chunks.
    pub fn enabled(&self) -> usize {
        self.enabled
    }

    /// Active word length in bits.
    pub fn word_bits(&self) -> usize {
        self.enabled * CHUNK_BITS
    }

    /// Number of closed transmission-gate boundaries per row (one between
    /// each pair of adjacent enabled chunks).
    pub fn active_gates(&self) -> usize {
        self.enabled - 1
    }

    /// Fraction of the physical word that is active (drives the energy
    /// saving of variable hash lengths).
    pub fn active_fraction(&self) -> f64 {
        self.enabled as f64 / MAX_CHUNKS as f64
    }

    /// All valid configurations, smallest first.
    pub fn all() -> [ChunkConfig; MAX_CHUNKS] {
        [
            ChunkConfig { enabled: 1 },
            ChunkConfig { enabled: 2 },
            ChunkConfig { enabled: 3 },
            ChunkConfig { enabled: 4 },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_hash_len_selects_chunks() {
        assert_eq!(ChunkConfig::for_hash_len(256).unwrap().enabled(), 1);
        assert_eq!(ChunkConfig::for_hash_len(512).unwrap().enabled(), 2);
        assert_eq!(ChunkConfig::for_hash_len(768).unwrap().enabled(), 3);
        assert_eq!(ChunkConfig::for_hash_len(1024).unwrap().enabled(), 4);
    }

    #[test]
    fn rejects_unsupported_lengths() {
        for bad in [0usize, 100, 255, 300, 1025, 2048] {
            assert!(ChunkConfig::for_hash_len(bad).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn new_bounds() {
        assert!(ChunkConfig::new(0).is_err());
        assert!(ChunkConfig::new(5).is_err());
        assert!(ChunkConfig::new(4).is_ok());
    }

    #[test]
    fn gates_and_fraction() {
        let c = ChunkConfig::new(3).unwrap();
        assert_eq!(c.active_gates(), 2);
        assert!((c.active_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(ChunkConfig::new(1).unwrap().active_gates(), 0);
    }

    #[test]
    fn all_is_ordered() {
        let all = ChunkConfig::all();
        for (i, c) in all.iter().enumerate() {
            assert_eq!(c.enabled(), i + 1);
        }
    }
}
