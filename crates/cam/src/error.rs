//! Error type for CAM operations.

use std::fmt;

/// Error returned by CAM configuration and array operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CamError {
    /// Row index beyond the array height.
    RowOutOfRange {
        /// Offending row index.
        row: usize,
        /// Array height.
        rows: usize,
    },
    /// Stored word or search key width differs from the configured word
    /// length.
    WordLengthMismatch {
        /// Width the array is configured for.
        expected: usize,
        /// Width of the offending word.
        actual: usize,
    },
    /// Configuration invalid (unsupported row count, word length not a
    /// multiple of the chunk size, etc.).
    InvalidConfig(String),
    /// Attempted to load more contexts than the array has rows.
    CapacityExceeded {
        /// Number of contexts offered.
        offered: usize,
        /// Number of rows available.
        rows: usize,
    },
}

impl fmt::Display for CamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CamError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range for {rows}-row array")
            }
            CamError::WordLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "word length {actual} does not match configured {expected}"
                )
            }
            CamError::InvalidConfig(msg) => write!(f, "invalid CAM configuration: {msg}"),
            CamError::CapacityExceeded { offered, rows } => {
                write!(f, "cannot load {offered} contexts into {rows} rows")
            }
        }
    }
}

impl std::error::Error for CamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CamError::RowOutOfRange { row: 70, rows: 64 }
            .to_string()
            .contains("70"));
        assert!(CamError::WordLengthMismatch {
            expected: 256,
            actual: 100
        }
        .to_string()
        .contains("256"));
        assert!(CamError::CapacityExceeded {
            offered: 100,
            rows: 64
        }
        .to_string()
        .contains("100"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<CamError>();
    }
}
