//! Functional CAM array simulator.
//!
//! Storage is a [`PackedHashes`] slab plus an occupancy bitmap rather
//! than a `Vec<Option<BitVec>>`: every stored word lives in one
//! contiguous row-major allocation, searched through the same dispatched
//! XOR+popcount microkernel the inference engine's weight tiles use,
//! instead of a pointer chase through per-row heap vectors. The
//! occupancy bitmap doubles as an EIE-style skip index: a search walks
//! it word by word, skipping 64 rows per all-zero word without touching
//! the slab (the software twin of keeping empty match lines unsensed).
//! The [`BitVec`] API is kept for construction and tests.

use deepcam_hash::{low_mask, BitVec, PackedHashes};
use deepcam_tensor::pool::{split_ranges, ThreadPool};
use serde::{Deserialize, Serialize};

use crate::config::CamConfig;
use crate::error::CamError;
use crate::Result;

/// The result of one row's match-line evaluation during a search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchHit {
    /// Row index.
    pub row: usize,
    /// True Hamming distance between the key and the stored word.
    pub hamming: usize,
    /// Distance as reported by the configured sense amplifier (equals
    /// `hamming` under [`crate::SenseModel::Exact`]).
    pub sensed: usize,
}

/// A dynamic-size CAM array: `rows` words of the configured active word
/// length, searched in parallel.
///
/// The array is *functional*: it returns exact (or sense-amp-quantized)
/// Hamming distances. Energy and latency are accounted separately via
/// [`crate::CamCostModel`], keeping behaviour and cost models independent
/// — the same split EvaCAM makes between functional and circuit level.
///
/// # Example
///
/// ```
/// use deepcam_cam::{CamArray, CamConfig};
/// use deepcam_hash::BitVec;
///
/// let mut cam = CamArray::new(CamConfig::new(64, 256)?);
/// let word = BitVec::from_bools(&[true; 256]);
/// cam.write_row(3, word.clone())?;
/// let hits = cam.search(&word)?;
/// assert_eq!(hits.len(), 1); // only occupied rows respond
/// assert_eq!(hits[0].row, 3);
/// assert_eq!(hits[0].hamming, 0);
/// # Ok::<(), deepcam_cam::CamError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CamArray {
    config: CamConfig,
    /// All row words in one contiguous slab (stale garbage may remain in
    /// unoccupied rows; `occupied` is the source of truth).
    packed: PackedHashes,
    /// Occupancy bitmap, one bit per row (bit set = row holds a word).
    occupied: Vec<u64>,
}

impl CamArray {
    /// Creates an empty array.
    pub fn new(config: CamConfig) -> Self {
        let packed = PackedHashes::zeroed(config.word_bits(), config.rows);
        let occupied = vec![0u64; config.rows.div_ceil(64)];
        CamArray {
            config,
            packed,
            occupied,
        }
    }

    /// The array configuration.
    pub fn config(&self) -> &CamConfig {
        &self.config
    }

    /// Number of rows currently holding a word.
    pub fn occupied_rows(&self) -> usize {
        self.occupied.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Row utilization in `[0, 1]` — the quantity plotted in Fig. 9.
    pub fn utilization(&self) -> f64 {
        self.occupied_rows() as f64 / self.config.rows.max(1) as f64
    }

    /// Writes a word into row `row`.
    ///
    /// # Errors
    ///
    /// Returns [`CamError::RowOutOfRange`] or
    /// [`CamError::WordLengthMismatch`] (the word must exactly fill the
    /// active word length).
    pub fn write_row(&mut self, row: usize, word: BitVec) -> Result<()> {
        if row >= self.config.rows {
            return Err(CamError::RowOutOfRange {
                row,
                rows: self.config.rows,
            });
        }
        if word.len() != self.config.word_bits() {
            return Err(CamError::WordLengthMismatch {
                expected: self.config.word_bits(),
                actual: word.len(),
            });
        }
        self.packed
            .set_row(row, &word)
            .expect("row and width validated above");
        self.occupied[row / 64] |= 1 << (row % 64);
        Ok(())
    }

    /// Clears every row (a new tile is about to be loaded).
    ///
    /// Only the occupancy bitmap is reset; stale slab words are never
    /// read because searches filter on occupancy.
    pub fn clear(&mut self) {
        for w in &mut self.occupied {
            *w = 0;
        }
    }

    /// Loads a batch of words into rows `0..words.len()`, clearing the
    /// array first. This is the "tile load" operation of the scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`CamError::CapacityExceeded`] when more words than rows
    /// are offered, or a word-length error from [`CamArray::write_row`].
    pub fn load(&mut self, words: &[BitVec]) -> Result<()> {
        if words.len() > self.config.rows {
            return Err(CamError::CapacityExceeded {
                offered: words.len(),
                rows: self.config.rows,
            });
        }
        self.clear();
        for (i, w) in words.iter().enumerate() {
            self.write_row(i, w.clone())?;
        }
        Ok(())
    }

    /// Reconfigures the active word length, clearing all rows (stored
    /// words are only meaningful at the width they were written).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CamConfig::set_word_bits`].
    pub fn set_word_bits(&mut self, word_bits: usize) -> Result<()> {
        self.config.set_word_bits(word_bits)?;
        // The slab stride depends on the word width — reallocate it.
        self.packed = PackedHashes::zeroed(word_bits, self.config.rows);
        self.clear();
        Ok(())
    }

    /// Searches the key against all occupied rows *in parallel* (O(1)
    /// array time), returning one hit per occupied row in row order.
    ///
    /// # Errors
    ///
    /// Returns [`CamError::WordLengthMismatch`] when the key width differs
    /// from the active word length.
    pub fn search(&self, key: &BitVec) -> Result<Vec<SearchHit>> {
        if key.len() != self.config.word_bits() {
            return Err(CamError::WordLengthMismatch {
                expected: self.config.word_bits(),
                actual: key.len(),
            });
        }
        Ok(self.search_rows(key, 0, self.config.rows))
    }

    /// [`CamArray::search`] sharded over contiguous row ranges across
    /// `shards` pool workers — the software analogue of splitting the
    /// array into independently-sensed sub-arrays.
    ///
    /// Returns the same hits in the same (row) order as the unsharded
    /// search for every shard count: each shard scans a disjoint row
    /// range and the per-shard hit lists are concatenated in range order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CamArray::search`].
    pub fn search_sharded(&self, key: &BitVec, shards: usize) -> Result<Vec<SearchHit>> {
        if key.len() != self.config.word_bits() {
            return Err(CamError::WordLengthMismatch {
                expected: self.config.word_bits(),
                actual: key.len(),
            });
        }
        if shards <= 1 || self.config.rows <= 1 {
            return Ok(self.search_rows(key, 0, self.config.rows));
        }
        let ranges = split_ranges(self.config.rows, shards);
        let per_shard: Vec<Vec<SearchHit>> = ThreadPool::global().run_indexed(ranges.len(), |si| {
            let r = &ranges[si];
            self.search_rows(key, r.start, r.end)
        });
        Ok(per_shard.concat())
    }

    /// Match-line evaluation for rows `lo..hi` (key width already
    /// validated). Row order within the range is preserved.
    ///
    /// The occupancy bitmap drives an EIE-style zero-run skip: the scan
    /// walks one bitmap word (64 rows) at a time and an all-zero word is
    /// skipped without touching the slab at all. Fully-occupied spans
    /// take one linear [`PackedHashes::hamming_range_into`] pass —
    /// mirroring how every match line evaluates simultaneously in the
    /// real array — and partially-occupied spans visit only the set bits
    /// through [`PackedHashes::hamming_row`], so stale slab rows are
    /// never read (empty rows keep their match lines silent).
    fn search_rows(&self, key: &BitVec, lo: usize, hi: usize) -> Vec<SearchHit> {
        let word_bits = self.config.word_bits();
        let key_words = key.words();
        if lo >= hi {
            return Vec::new();
        }
        let words = lo / 64..hi.div_ceil(64);
        let in_range = |wi: usize| {
            let base = wi * 64;
            let span_lo = lo.max(base) - base;
            let span_hi = hi.min(base + 64) - base;
            self.occupied[wi] & (low_mask(span_hi) & !low_mask(span_lo))
        };
        let occupied_in_range: usize = words
            .clone()
            .map(|wi| in_range(wi).count_ones() as usize)
            .sum();
        let mut hits = Vec::with_capacity(occupied_in_range);
        let push = |hits: &mut Vec<SearchHit>, row: usize, d: u32| {
            let hamming = d as usize;
            hits.push(SearchHit {
                row,
                hamming,
                sensed: self.config.sense.read(hamming, word_bits),
            });
        };
        let mut dists = [0u32; 64];
        for wi in words {
            let base = wi * 64;
            let span_lo = lo.max(base) - base;
            let span_hi = hi.min(base + 64) - base;
            let span_mask = low_mask(span_hi) & !low_mask(span_lo);
            let masked = self.occupied[wi] & span_mask;
            if masked == 0 {
                // Zero run: 64 rows skipped with one bitmap-word load.
                continue;
            }
            if masked == span_mask {
                // Dense span: one contiguous range pass over the slab.
                let (rlo, rhi) = (base + span_lo, base + span_hi);
                let span = &mut dists[..rhi - rlo];
                self.packed.hamming_range_into(key_words, rlo, rhi, span);
                for (off, &d) in span.iter().enumerate() {
                    push(&mut hits, rlo + off, d);
                }
            } else {
                // Sparse span: visit set bits only, in ascending row
                // order (clearing the lowest set bit each step).
                let mut m = masked;
                while m != 0 {
                    let row = base + m.trailing_zeros() as usize;
                    m &= m - 1;
                    push(&mut hits, row, self.packed.hamming_row(row, key_words));
                }
            }
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sense::SenseModel;
    use deepcam_tensor::rng::seeded_rng;
    use rand::RngExt;

    fn random_word(bits: usize, rng: &mut impl rand::Rng) -> BitVec {
        let mut w = BitVec::zeros(bits);
        for i in 0..bits {
            if rng.random::<bool>() {
                w.set(i, true);
            }
        }
        w
    }

    #[test]
    fn empty_array_returns_no_hits() {
        let cam = CamArray::new(CamConfig::new(64, 256).unwrap());
        let hits = cam.search(&BitVec::zeros(256)).unwrap();
        assert!(hits.is_empty());
        assert_eq!(cam.utilization(), 0.0);
    }

    #[test]
    fn search_matches_reference_popcount() {
        let mut rng = seeded_rng(1);
        let mut cam = CamArray::new(CamConfig::new(64, 512).unwrap());
        let words: Vec<BitVec> = (0..64).map(|_| random_word(512, &mut rng)).collect();
        cam.load(&words).unwrap();
        let key = random_word(512, &mut rng);
        let hits = cam.search(&key).unwrap();
        assert_eq!(hits.len(), 64);
        for hit in hits {
            let expected = words[hit.row].hamming(&key).unwrap();
            assert_eq!(hit.hamming, expected);
            assert_eq!(hit.sensed, expected); // Exact sense model
        }
    }

    #[test]
    fn clocked_sense_quantizes() {
        let mut rng = seeded_rng(2);
        let cfg = CamConfig::new(64, 256)
            .unwrap()
            .with_sense(SenseModel::Clocked { levels: 8 });
        let mut cam = CamArray::new(cfg);
        let words: Vec<BitVec> = (0..16).map(|_| random_word(256, &mut rng)).collect();
        cam.load(&words).unwrap();
        let key = random_word(256, &mut rng);
        let hits = cam.search(&key).unwrap();
        // Coarse sensing rarely matches everywhere; true values stay exact.
        assert!(hits.iter().any(|h| h.sensed != h.hamming));
        for hit in hits {
            assert_eq!(hit.hamming, words[hit.row].hamming(&key).unwrap());
        }
    }

    #[test]
    fn sharded_search_matches_unsharded() {
        let mut rng = seeded_rng(5);
        let mut cam = CamArray::new(CamConfig::new(64, 256).unwrap());
        // Sparse occupancy: hits must keep row indices, not shard-local
        // offsets, and empty rows must stay silent in every shard.
        for row in (0..64).step_by(3) {
            cam.write_row(row, random_word(256, &mut rng)).unwrap();
        }
        let key = random_word(256, &mut rng);
        let reference = cam.search(&key).unwrap();
        for shards in [1usize, 2, 3, 7, 64, 200] {
            let sharded = cam.search_sharded(&key, shards).unwrap();
            assert_eq!(reference, sharded, "shards {shards}");
        }
    }

    #[test]
    fn sharded_search_validates_key_width() {
        let cam = CamArray::new(CamConfig::new(64, 512).unwrap());
        assert!(cam.search_sharded(&BitVec::zeros(256), 4).is_err());
    }

    #[test]
    fn occupancy_skip_paths_agree_with_reference() {
        // 256 rows = 4 bitmap words, one per skip path: word 0 dense
        // (range-kernel pass), word 1 all-empty (zero-run skip), word 2
        // sparse (per-set-bit visits), word 3 straddling a shard split.
        let mut rng = seeded_rng(9);
        let mut cam = CamArray::new(CamConfig::new(256, 256).unwrap());
        let mut stored: Vec<Option<BitVec>> = vec![None; 256];
        let mut occupy = |cam: &mut CamArray, stored: &mut Vec<Option<BitVec>>, row: usize| {
            let w = random_word(256, &mut rng);
            cam.write_row(row, w.clone()).unwrap();
            stored[row] = Some(w);
        };
        for row in 0..64 {
            occupy(&mut cam, &mut stored, row);
        }
        for row in [128, 131, 160, 190, 191] {
            occupy(&mut cam, &mut stored, row);
        }
        for row in 200..220 {
            occupy(&mut cam, &mut stored, row);
        }
        let key = BitVec::from_bools(&[true; 256]);
        let expected: Vec<(usize, usize)> = stored
            .iter()
            .enumerate()
            .filter_map(|(row, w)| w.as_ref().map(|w| (row, w.hamming(&key).unwrap())))
            .collect();
        let hits = cam.search(&key).unwrap();
        let got: Vec<(usize, usize)> = hits.iter().map(|h| (h.row, h.hamming)).collect();
        assert_eq!(got, expected);
        // Sharded ranges slice bitmap words mid-span; results must agree.
        for shards in [2usize, 3, 5, 13] {
            let sharded = cam.search_sharded(&key, shards).unwrap();
            assert_eq!(sharded, hits, "shards {shards}");
        }
    }

    #[test]
    fn load_validates_capacity() {
        let mut cam = CamArray::new(CamConfig::new(64, 256).unwrap());
        let words: Vec<BitVec> = (0..65).map(|_| BitVec::zeros(256)).collect();
        assert!(matches!(
            cam.load(&words),
            Err(CamError::CapacityExceeded { offered: 65, .. })
        ));
    }

    #[test]
    fn partial_load_utilization() {
        // The paper's weight-stationary example: 6 kernels in a 64-row CAM
        // → 9.4% utilization.
        let mut cam = CamArray::new(CamConfig::new(64, 256).unwrap());
        let words: Vec<BitVec> = (0..6).map(|_| BitVec::zeros(256)).collect();
        cam.load(&words).unwrap();
        assert_eq!(cam.occupied_rows(), 6);
        assert!((cam.utilization() - 6.0 / 64.0).abs() < 1e-9);
    }

    #[test]
    fn write_row_validates() {
        let mut cam = CamArray::new(CamConfig::new(64, 256).unwrap());
        assert!(cam.write_row(64, BitVec::zeros(256)).is_err());
        assert!(cam.write_row(0, BitVec::zeros(255)).is_err());
    }

    #[test]
    fn key_width_validated() {
        let cam = CamArray::new(CamConfig::new(64, 512).unwrap());
        assert!(cam.search(&BitVec::zeros(256)).is_err());
    }

    #[test]
    fn reconfigure_clears_rows() {
        let mut cam = CamArray::new(CamConfig::new(64, 256).unwrap());
        cam.write_row(0, BitVec::zeros(256)).unwrap();
        cam.set_word_bits(512).unwrap();
        assert_eq!(cam.occupied_rows(), 0);
        assert_eq!(cam.config().word_bits(), 512);
        // Old-width writes now fail.
        assert!(cam.write_row(0, BitVec::zeros(256)).is_err());
    }

    #[test]
    fn load_replaces_previous_tile() {
        let mut cam = CamArray::new(CamConfig::new(64, 256).unwrap());
        cam.load(&vec![BitVec::zeros(256); 10]).unwrap();
        cam.load(&vec![BitVec::zeros(256); 3]).unwrap();
        assert_eq!(cam.occupied_rows(), 3);
    }
}
