//! EvaCAM-style analytical energy and latency model.
//!
//! The paper extracts FeFET CAM search energy and area from EvaCAM (Liu
//! et al., DATE 2022) for row sizes {64,128,256,512} and column sizes
//! {256,512,768,1024} (Fig. 8). EvaCAM itself is closed simulation
//! tooling, so this module substitutes an analytical model with the same
//! structure — per-bit array terms plus per-row/per-column peripheral
//! terms — calibrated to published FeFET TCAM figures:
//!
//! * FeFET TCAM search ≈ 1 fJ/bit/search and ~2.4× lower search energy
//!   than CMOS (Yin et al., IEEE TED 2020; paper §II-A);
//! * sense-amplifier + match-line peripheral ≈ tens of fJ per row;
//! * FeFET program (write) pulses ≈ 10 fJ/bit.
//!
//! Absolute joules are approximate by design; what the experiments rely
//! on is the *scaling*: energy linear in active bits (rows × enabled
//! chunks × 256) with a peripheral floor — this is what makes variable
//! hash lengths profitable (Fig. 10).

use serde::{Deserialize, Serialize};

use crate::config::CamConfig;

/// Energy and latency of one CAM operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchCost {
    /// Dynamic energy in joules.
    pub energy_j: f64,
    /// Latency in clock cycles.
    pub cycles: u64,
}

/// Per-operation cost model for a CAM configuration.
///
/// # Example
///
/// ```
/// use deepcam_cam::{CamConfig, CamCostModel};
///
/// let model = CamCostModel::default();
/// let small = model.search_cost(&CamConfig::new(64, 256)?);
/// let large = model.search_cost(&CamConfig::new(512, 1024)?);
/// assert!(large.energy_j > small.energy_j * 20.0); // ~32x more bits
/// assert_eq!(small.cycles, large.cycles);          // O(1) search time
/// # Ok::<(), deepcam_cam::CamError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CamCostModel {
    /// Search energy per active cell (search-line toggle + cell
    /// evaluation), joules/bit.
    pub search_energy_per_bit: f64,
    /// Match-line precharge energy per active cell, joules/bit.
    pub precharge_energy_per_bit: f64,
    /// Clocked self-referenced sense amplifier energy per row per search.
    pub sense_amp_energy_per_row: f64,
    /// Energy of one closed transmission gate per row per search.
    pub gate_energy: f64,
    /// Search-line driver energy per active column per search.
    pub driver_energy_per_col: f64,
    /// Fixed per-search control/decode energy.
    pub fixed_search_energy: f64,
    /// FeFET program energy per bit written.
    pub write_energy_per_bit: f64,
    /// Fixed per-row-write control energy.
    pub fixed_write_energy: f64,
    /// Search latency in cycles: precharge + sense window + readout.
    pub search_cycles: u64,
    /// Cycles to program one row.
    pub write_cycles_per_row: u64,
}

impl Default for CamCostModel {
    fn default() -> Self {
        CamCostModel {
            search_energy_per_bit: 1.0e-15,    // 1.0 fJ/bit
            precharge_energy_per_bit: 0.4e-15, // 0.4 fJ/bit
            sense_amp_energy_per_row: 15.0e-15,
            gate_energy: 2.0e-15,
            driver_energy_per_col: 5.0e-15,
            fixed_search_energy: 0.5e-12, // 0.5 pJ
            write_energy_per_bit: 10.0e-15,
            fixed_write_energy: 0.1e-12,
            search_cycles: 4, // precharge(1) + sense(2) + readout(1)
            write_cycles_per_row: 2,
        }
    }
}

impl CamCostModel {
    /// Cost of one parallel search over the whole array.
    ///
    /// Energy scales with *active* bits only: disabled chunks are neither
    /// precharged nor driven. Latency is constant — the O(1) property.
    pub fn search_cost(&self, cfg: &CamConfig) -> SearchCost {
        self.search_cost_with_rows(cfg, cfg.rows)
    }

    /// Cost of one parallel search when only `active_rows` rows hold
    /// valid contexts — unoccupied rows are neither precharged nor
    /// sensed, so a partially-filled tile searches cheaper.
    ///
    /// # Panics
    ///
    /// Panics if `active_rows > cfg.rows`.
    pub fn search_cost_with_rows(&self, cfg: &CamConfig, active_rows: usize) -> SearchCost {
        assert!(
            active_rows <= cfg.rows,
            "active rows {active_rows} exceed array height {}",
            cfg.rows
        );
        let rows = active_rows as f64;
        let cols = cfg.word_bits() as f64;
        let bits = rows * cols;
        let energy = bits * (self.search_energy_per_bit + self.precharge_energy_per_bit)
            + rows * self.sense_amp_energy_per_row
            + rows * cfg.chunks.active_gates() as f64 * self.gate_energy
            + cols * self.driver_energy_per_col
            + self.fixed_search_energy;
        SearchCost {
            energy_j: energy,
            cycles: self.search_cycles,
        }
    }

    /// Cost of writing `rows_written` rows (a tile load).
    pub fn write_cost(&self, cfg: &CamConfig, rows_written: usize) -> SearchCost {
        let bits = rows_written as f64 * cfg.word_bits() as f64;
        SearchCost {
            energy_j: bits * self.write_energy_per_bit
                + rows_written as f64 * self.fixed_write_energy,
            cycles: self.write_cycles_per_row * rows_written as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rows: usize, cols: usize) -> CamConfig {
        CamConfig::new(rows, cols).unwrap()
    }

    #[test]
    fn search_energy_scales_with_bits() {
        let m = CamCostModel::default();
        let e64 = m.search_cost(&cfg(64, 256)).energy_j;
        let e128 = m.search_cost(&cfg(128, 256)).energy_j;
        let e512w = m.search_cost(&cfg(64, 512)).energy_j;
        // Doubling rows slightly more than doubles the array term but the
        // fixed term damps it; ratio must be in (1.5, 2.2).
        assert!(e128 / e64 > 1.5 && e128 / e64 < 2.2, "ratio {}", e128 / e64);
        assert!(e512w > e64 * 1.5);
    }

    #[test]
    fn variable_hash_length_saves_energy() {
        // The crux of Fig. 10: 256-bit search must cost much less than
        // 1024-bit search on the same rows.
        let m = CamCostModel::default();
        let short = m.search_cost(&cfg(64, 256)).energy_j;
        let long = m.search_cost(&cfg(64, 1024)).energy_j;
        assert!(
            long / short > 2.5,
            "1024-bit should cost >2.5x a 256-bit search, got {}",
            long / short
        );
    }

    #[test]
    fn latency_is_constant_in_size() {
        let m = CamCostModel::default();
        assert_eq!(
            m.search_cost(&cfg(64, 256)).cycles,
            m.search_cost(&cfg(512, 1024)).cycles
        );
    }

    #[test]
    fn write_cost_scales_with_rows() {
        let m = CamCostModel::default();
        let c = cfg(64, 256);
        let one = m.write_cost(&c, 1);
        let ten = m.write_cost(&c, 10);
        assert!((ten.energy_j / one.energy_j - 10.0).abs() < 1e-6);
        assert_eq!(ten.cycles, 10 * one.cycles);
        assert_eq!(m.write_cost(&c, 0).cycles, 0);
    }

    #[test]
    fn energy_magnitudes_plausible() {
        // 64x256 search should land in the tens of picojoules — the scale
        // EvaCAM reports for FeFET arrays of this size.
        let m = CamCostModel::default();
        let e = m.search_cost(&cfg(64, 256)).energy_j;
        assert!(e > 1e-12 && e < 1e-10, "implausible search energy {e}");
    }
}
