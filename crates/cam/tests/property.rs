//! Property-based tests for the CAM hardware model.

use deepcam_cam::{
    AreaModel, CamArray, CamConfig, CamCostModel, ChunkConfig, SenseModel, SUPPORTED_COL_SIZES,
    SUPPORTED_ROW_SIZES,
};
use deepcam_hash::BitVec;
use proptest::prelude::*;

fn word(len: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(any::<bool>(), len).prop_map(|v| BitVec::from_bools(&v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn search_results_independent_of_row_order_content(
        words in proptest::collection::vec(word(256), 1..16),
        key in word(256),
    ) {
        // Loading the same multiset of words twice gives identical hits.
        let mut cam1 = CamArray::new(CamConfig::new(64, 256).unwrap());
        cam1.load(&words).unwrap();
        let mut cam2 = CamArray::new(CamConfig::new(64, 256).unwrap());
        cam2.load(&words).unwrap();
        prop_assert_eq!(cam1.search(&key).unwrap(), cam2.search(&key).unwrap());
    }

    #[test]
    fn hamming_bounds_hold(words in proptest::collection::vec(word(512), 1..8), key in word(512)) {
        let mut cam = CamArray::new(CamConfig::new(64, 512).unwrap());
        cam.load(&words).unwrap();
        for hit in cam.search(&key).unwrap() {
            prop_assert!(hit.hamming <= 512);
            prop_assert!(hit.sensed <= 512);
        }
    }

    #[test]
    fn searching_stored_word_gives_zero(words in proptest::collection::vec(word(256), 1..8)) {
        let mut cam = CamArray::new(CamConfig::new(64, 256).unwrap());
        cam.load(&words).unwrap();
        for (i, w) in words.iter().enumerate() {
            let hits = cam.search(w).unwrap();
            prop_assert_eq!(hits[i].hamming, 0);
            prop_assert_eq!(hits[i].sensed, 0); // exact match never discharges
        }
    }

    #[test]
    fn clocked_sense_never_reports_zero_for_mismatch(
        hd in 1usize..1024,
        levels in 1usize..256,
    ) {
        let s = SenseModel::Clocked { levels };
        prop_assert!(s.read(hd, 1024) >= 1);
    }

    #[test]
    fn search_energy_monotone_in_active_rows(
        rows_idx in 0usize..4,
        cols_idx in 0usize..4,
        active in 1usize..64,
    ) {
        let cfg = CamConfig::new(SUPPORTED_ROW_SIZES[rows_idx], SUPPORTED_COL_SIZES[cols_idx]).unwrap();
        prop_assume!(active < cfg.rows);
        let m = CamCostModel::default();
        let less = m.search_cost_with_rows(&cfg, active).energy_j;
        let more = m.search_cost_with_rows(&cfg, active + 1).energy_j;
        prop_assert!(more > less);
    }

    #[test]
    fn area_monotone_in_rows(rows_idx in 0usize..3) {
        let m = AreaModel::default();
        let small = m.array_area_um2(&CamConfig::new(SUPPORTED_ROW_SIZES[rows_idx], 256).unwrap());
        let large = m.array_area_um2(&CamConfig::new(SUPPORTED_ROW_SIZES[rows_idx + 1], 256).unwrap());
        prop_assert!(large > small);
    }

    #[test]
    fn chunk_roundtrip(enabled in 1usize..=4) {
        let c = ChunkConfig::new(enabled).unwrap();
        prop_assert_eq!(ChunkConfig::for_hash_len(c.word_bits()).unwrap(), c);
        prop_assert_eq!(c.active_gates() + 1, c.enabled());
    }

    #[test]
    fn write_then_clear_empties(words in proptest::collection::vec(word(256), 1..10)) {
        let mut cam = CamArray::new(CamConfig::new(64, 256).unwrap());
        cam.load(&words).unwrap();
        prop_assert_eq!(cam.occupied_rows(), words.len());
        cam.clear();
        prop_assert_eq!(cam.occupied_rows(), 0);
        prop_assert!(cam.search(&BitVec::zeros(256)).unwrap().is_empty());
    }
}
