//! Analog processing-in-memory comparators (Table II).
//!
//! Table II of the paper compares DeepCAM against two *algebraic* analog
//! PIM engines on VGG11/CIFAR10:
//!
//! | Work | Device | Energy/inf (µJ) | Cycles/inf (×10⁵) |
//! |---|---|---|---|
//! | NeuroSim (Peng et al.) | RRAM | 34.98 | 5.74 |
//! | Valavi et al. | SRAM (charge domain) | 3.55 | 2.56 |
//! | DeepCAM (VHL) | FeFET | 0.488 | 2.652 |
//!
//! NeuroSim and the Valavi chip are closed tooling/silicon, so this
//! module models each as (energy-per-MAC, MACs-per-cycle) constants
//! **anchored to the published VGG11 row** and applies them to arbitrary
//! model specs. The anchoring is exact by construction for VGG11 — that
//! is the point of a comparator row — while other workloads extrapolate
//! linearly in MACs, which is how analog-macro papers scale their own
//! projections.

use deepcam_core::LayerIr;
use deepcam_models::{DotLayer, ModelSpec};
use serde::{Deserialize, Serialize};

use crate::report::{BaselineReport, LayerCost};

/// VGG11 (CIFAR10) MAC count used for anchoring, matching
/// `deepcam_models::zoo::vgg11()`.
const VGG11_MACS: f64 = 153.2e6;

/// Which published PIM engine to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PimTechnology {
    /// RRAM crossbar macro benchmarked with DNN+NeuroSim (IEDM 2019).
    NeuroSimRram,
    /// 64-tile SRAM charge-domain compute CNN accelerator (JSSC 2019).
    ValaviSram,
}

impl PimTechnology {
    /// Display name matching Table II.
    pub fn name(&self) -> &'static str {
        match self {
            PimTechnology::NeuroSimRram => "NeuroSim (RRAM)",
            PimTechnology::ValaviSram => "Valavi et al. (SRAM)",
        }
    }

    /// Dot-product mode — both comparators are algebraic engines.
    pub fn dot_product_mode(&self) -> &'static str {
        "Algebraic"
    }

    /// Published VGG11/CIFAR10 anchor: `(energy µJ, cycles ×10⁵)`.
    pub fn vgg11_anchor(&self) -> (f64, f64) {
        match self {
            PimTechnology::NeuroSimRram => (34.98, 5.74),
            PimTechnology::ValaviSram => (3.55, 2.56),
        }
    }
}

/// An analog PIM engine as an anchored analytical model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalogPim {
    /// Which published engine this instance models.
    pub technology: PimTechnology,
    /// Energy per MAC in joules (derived from the anchor).
    pub energy_per_mac: f64,
    /// Effective MAC throughput per cycle (derived from the anchor).
    pub macs_per_cycle: f64,
}

impl AnalogPim {
    /// Creates the model for a published engine.
    pub fn new(technology: PimTechnology) -> Self {
        let (uj, cycles_1e5) = technology.vgg11_anchor();
        AnalogPim {
            technology,
            energy_per_mac: uj * 1e-6 / VGG11_MACS,
            macs_per_cycle: VGG11_MACS / (cycles_1e5 * 1e5),
        }
    }

    /// Cost of one dot-product layer.
    pub fn layer_cost(&self, layer: &DotLayer) -> LayerCost {
        let macs = layer.macs() as f64;
        LayerCost {
            name: layer.name.clone(),
            cycles: (macs / self.macs_per_cycle).ceil() as u64,
            energy_j: macs * self.energy_per_mac,
            utilization: 1.0,
        }
    }

    /// Runs a whole model spec (lowered through the shared pipeline IR).
    pub fn run(&self, model: &ModelSpec) -> BaselineReport {
        self.run_ir(&LayerIr::from_spec(model))
    }

    /// Runs a lowered model — the same [`LayerIr`] the DeepCAM engine,
    /// scheduler and auto-tuner consume.
    pub fn run_ir(&self, ir: &LayerIr) -> BaselineReport {
        let layers = ir.dots.iter().map(|d| self.layer_cost(&d.shape)).collect();
        BaselineReport::from_layers(self.technology.name(), ir.workload.clone(), layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcam_models::zoo;

    #[test]
    fn anchors_reproduce_table2_for_vgg11() {
        let vgg = zoo::vgg11();
        for (tech, uj, cyc) in [
            (PimTechnology::NeuroSimRram, 34.98, 5.74e5),
            (PimTechnology::ValaviSram, 3.55, 2.56e5),
        ] {
            let r = AnalogPim::new(tech).run(&vgg);
            assert!(
                (r.energy_uj() - uj).abs() / uj < 0.03,
                "{}: energy {} vs anchor {uj}",
                tech.name(),
                r.energy_uj()
            );
            assert!(
                (r.total_cycles as f64 - cyc).abs() / cyc < 0.03,
                "{}: cycles {} vs anchor {cyc}",
                tech.name(),
                r.total_cycles
            );
        }
    }

    #[test]
    fn sram_beats_rram_energy() {
        let vgg = zoo::vgg11();
        let rram = AnalogPim::new(PimTechnology::NeuroSimRram).run(&vgg);
        let sram = AnalogPim::new(PimTechnology::ValaviSram).run(&vgg);
        assert!(sram.total_energy_j < rram.total_energy_j);
        assert!(sram.total_cycles < rram.total_cycles);
    }

    #[test]
    fn extrapolates_linearly_in_macs() {
        let pim = AnalogPim::new(PimTechnology::ValaviSram);
        let small = pim.run(&zoo::lenet5());
        let big = pim.run(&zoo::vgg16());
        let mac_ratio = zoo::vgg16().total_macs() as f64 / zoo::lenet5().total_macs() as f64;
        let e_ratio = big.total_energy_j / small.total_energy_j;
        assert!((e_ratio / mac_ratio - 1.0).abs() < 0.01);
    }

    #[test]
    fn both_are_algebraic_engines() {
        assert_eq!(PimTechnology::NeuroSimRram.dot_product_mode(), "Algebraic");
        assert_eq!(PimTechnology::ValaviSram.dot_product_mode(), "Algebraic");
    }
}
