//! # deepcam-baselines
//!
//! The comparison systems of the DeepCAM evaluation, as analytical
//! simulators over weight-free [`deepcam_models::ModelSpec`]s:
//!
//! * [`eyeriss`] — a SCALE-Sim-style cycle model of the Eyeriss systolic
//!   array (14×12 PEs, INT8, weight-stationary) plus an energy model with
//!   the RF/NoC/SRAM/DRAM access hierarchy of the original paper;
//! * [`cpu`] — an Intel Skylake AVX-512 VNNI throughput model;
//! * [`pim`] — the two analog processing-in-memory comparators of
//!   Table II: an RRAM engine benchmarked with NeuroSim (Peng et al.) and
//!   the SRAM charge-domain engine of Valavi et al., anchored to their
//!   published VGG11/CIFAR10 numbers.
//!
//! All three consume only layer shapes — cycle and energy counts are
//! independent of weight values.
//!
//! # Example
//!
//! ```
//! use deepcam_baselines::eyeriss::Eyeriss;
//! use deepcam_models::zoo;
//!
//! let eyeriss = Eyeriss::paper_config();
//! let report = eyeriss.run(&zoo::lenet5());
//! assert!(report.total_cycles > 0);
//! ```

// Machine-checked by deepcam-analyze (lint A2): this crate holds no
// unsafe code, and the compiler now enforces that it never grows any.
#![forbid(unsafe_code)]

pub mod cpu;
pub mod eyeriss;
pub mod pim;
pub mod report;

pub use cpu::SkylakeCpu;
pub use eyeriss::Eyeriss;
pub use pim::{AnalogPim, PimTechnology};
pub use report::{BaselineReport, LayerCost};
