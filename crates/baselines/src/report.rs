//! Common report types shared by all baseline simulators.

use serde::{Deserialize, Serialize};

/// Cost of one layer on a baseline accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Layer name.
    pub name: String,
    /// Compute cycles.
    pub cycles: u64,
    /// Dynamic energy in joules.
    pub energy_j: f64,
    /// Processing-element utilization in `[0, 1]` (1.0 when the notion
    /// does not apply).
    pub utilization: f64,
}

/// Whole-model inference cost on a baseline accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineReport {
    /// Accelerator name.
    pub accelerator: String,
    /// Workload label (e.g. `"LeNet5 MNIST"`).
    pub workload: String,
    /// Per-layer breakdown for the dot-product layers.
    pub layers: Vec<LayerCost>,
    /// Total inference cycles.
    pub total_cycles: u64,
    /// Total dynamic energy per inference in joules.
    pub total_energy_j: f64,
}

impl BaselineReport {
    /// Builds a report from per-layer costs.
    pub fn from_layers(
        accelerator: impl Into<String>,
        workload: impl Into<String>,
        layers: Vec<LayerCost>,
    ) -> Self {
        let total_cycles = layers.iter().map(|l| l.cycles).sum();
        let total_energy_j = layers.iter().map(|l| l.energy_j).sum();
        BaselineReport {
            accelerator: accelerator.into(),
            workload: workload.into(),
            layers,
            total_cycles,
            total_energy_j,
        }
    }

    /// Cycle-weighted mean utilization.
    pub fn mean_utilization(&self) -> f64 {
        let total: u64 = self.layers.iter().map(|l| l.cycles).sum();
        if total == 0 {
            return 0.0;
        }
        self.layers
            .iter()
            .map(|l| l.utilization * l.cycles as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Energy in microjoules (the unit of Table II).
    pub fn energy_uj(&self) -> f64 {
        self.total_energy_j * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(name: &str, cycles: u64, energy: f64, util: f64) -> LayerCost {
        LayerCost {
            name: name.into(),
            cycles,
            energy_j: energy,
            utilization: util,
        }
    }

    #[test]
    fn totals_sum_layers() {
        let r = BaselineReport::from_layers(
            "X",
            "W",
            vec![layer("a", 10, 1e-9, 0.5), layer("b", 30, 3e-9, 1.0)],
        );
        assert_eq!(r.total_cycles, 40);
        assert!((r.total_energy_j - 4e-9).abs() < 1e-15);
    }

    #[test]
    fn utilization_is_cycle_weighted() {
        let r = BaselineReport::from_layers(
            "X",
            "W",
            vec![layer("a", 10, 0.0, 0.5), layer("b", 30, 0.0, 1.0)],
        );
        assert!((r.mean_utilization() - 0.875).abs() < 1e-9);
    }

    #[test]
    fn empty_report() {
        let r = BaselineReport::from_layers("X", "W", vec![]);
        assert_eq!(r.total_cycles, 0);
        assert_eq!(r.mean_utilization(), 0.0);
    }

    #[test]
    fn energy_unit_conversion() {
        let r = BaselineReport::from_layers("X", "W", vec![layer("a", 1, 2.5e-6, 1.0)]);
        assert!((r.energy_uj() - 2.5).abs() < 1e-9);
    }
}
