//! SCALE-Sim-style model of the Eyeriss systolic array.
//!
//! The paper's baseline: Eyeriss with a 14×12 processing-element array and
//! an INT8 datapath, cycle counts extracted with a modified SCALE-Sim.
//! This module reproduces SCALE-Sim's first-order weight-stationary
//! arithmetic:
//!
//! * the im2col view of a conv layer is a `[P, n] × [n, M]` GEMM;
//! * the array holds an `S_r×S_c` tile of the `n×M` weight matrix, so the
//!   GEMM needs `ceil(n/S_r)·ceil(M/S_c)` folds;
//! * each fold costs an array fill (`S_r` cycles), a stream of all `P`
//!   input vectors, and a drain (`S_c − 1` cycles);
//! * layers whose operand footprint exceeds the on-chip SRAM stall on
//!   DRAM at a configurable bandwidth, as in SCALE-Sim's memory model.
//!
//! Energy follows the Eyeriss paper's hierarchy ratios (§I of DeepCAM:
//! SRAM ≈ 6× and DRAM ≈ 200× the cost of a MAC): every MAC pays the ALU,
//! an RF access and its share of NoC traffic; SRAM is touched once per
//! operand use distance; DRAM once per unique operand byte.

use deepcam_core::LayerIr;
use deepcam_models::{DotLayer, ModelSpec};
use serde::{Deserialize, Serialize};

use crate::report::{BaselineReport, LayerCost};

/// Eyeriss configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Eyeriss {
    /// PE array rows (mapped along the patch dimension `n`).
    pub rows: usize,
    /// PE array columns (mapped along the kernel dimension `M`).
    pub cols: usize,
    /// Clock frequency in Hz.
    pub clock_hz: f64,
    /// On-chip SRAM bytes (Eyeriss: 108 kB).
    pub sram_bytes: usize,
    /// DRAM bandwidth in bytes/cycle for the stall model.
    pub dram_bytes_per_cycle: f64,
    /// Energy of one INT8 MAC (ALU only), joules.
    pub mac_energy: f64,
    /// Register-file access energy per MAC, joules.
    pub rf_energy: f64,
    /// Array NoC energy per MAC, joules.
    pub noc_energy: f64,
    /// SRAM access energy per byte, joules.
    pub sram_energy_per_byte: f64,
    /// DRAM access energy per byte, joules.
    pub dram_energy_per_byte: f64,
}

impl Eyeriss {
    /// The paper's configuration: 14×12 PEs, INT8, 200 MHz core clock
    /// (original Eyeriss), 108 kB SRAM.
    ///
    /// Energy constants are 45 nm estimates chosen to honour the paper's
    /// quoted hierarchy: `sram ≈ 6×` and `dram ≈ 200×` the dot-product
    /// (MAC) energy.
    pub fn paper_config() -> Self {
        let mac = 0.9e-12; // 0.9 pJ INT8 MAC + control at 45 nm
        Eyeriss {
            rows: 14,
            cols: 12,
            clock_hz: 200e6,
            sram_bytes: 108 * 1024,
            dram_bytes_per_cycle: 16.0,
            mac_energy: mac,
            rf_energy: 0.9e-12,  // local scratchpad read+write per MAC
            noc_energy: 0.4e-12, // inter-PE forwarding per MAC
            sram_energy_per_byte: 6.0 * mac,
            dram_energy_per_byte: 200.0 * mac,
        }
    }

    /// Cycles, energy and utilization of one dot-product layer.
    pub fn layer_cost(&self, layer: &DotLayer) -> LayerCost {
        let fold_r = layer.n.div_ceil(self.rows);
        let fold_c = layer.m.div_ceil(self.cols);
        let folds = (fold_r * fold_c) as u64;
        // Per fold: fill the weight tile, stream all P activations, drain.
        let per_fold = (self.rows + layer.p + self.cols - 1) as u64;
        let compute_cycles = folds * per_fold;

        // Utilization: mapped PEs averaged over folds. Edge folds map
        // fewer rows/cols.
        let full_r = layer.n / self.rows;
        let rem_r = layer.n % self.rows;
        let full_c = layer.m / self.cols;
        let rem_c = layer.m % self.cols;
        let mut mapped = 0f64;
        for fr in 0..fold_r {
            let r_used = if fr < full_r { self.rows } else { rem_r };
            for fc in 0..fold_c {
                let c_used = if fc < full_c { self.cols } else { rem_c };
                mapped += (r_used * c_used) as f64;
            }
        }
        let utilization = mapped / (folds as f64 * (self.rows * self.cols) as f64);

        // Memory traffic (INT8 = 1 byte/operand). DRAM is charged per
        // *unique* operand byte — im2col duplication is served on-chip —
        // with a spill factor when the working set exceeds the SRAM
        // (operands then stream from DRAM more than once, capped at 2 by
        // double buffering, matching SCALE-Sim's first-order estimate).
        let weight_bytes = (layer.n * layer.m) as f64;
        let act_bytes = layer.input_elems as f64;
        let out_bytes = (layer.m * layer.p) as f64;
        let unique_bytes = weight_bytes + act_bytes + out_bytes;
        let spill = if unique_bytes > self.sram_bytes as f64 {
            2.0
        } else {
            1.0
        };
        let dram_bytes = unique_bytes * spill;
        let dram_cycles = (dram_bytes / self.dram_bytes_per_cycle) as u64;
        // Compute and DRAM overlap under double buffering; the layer is
        // bound by the slower of the two.
        let cycles = compute_cycles.max(dram_cycles);

        let macs = layer.macs() as f64;
        // SRAM is touched once per activation broadcast (one read serves a
        // full PE column) and once per partial-sum spill (one write per PE
        // row of accumulation).
        let sram_bytes_touched = macs / self.cols as f64 + macs / self.rows as f64;
        let energy = macs * (self.mac_energy + self.rf_energy + self.noc_energy)
            + sram_bytes_touched * self.sram_energy_per_byte
            + dram_bytes * self.dram_energy_per_byte;

        LayerCost {
            name: layer.name.clone(),
            cycles,
            energy_j: energy,
            utilization,
        }
    }

    /// Runs a whole model spec (lowered through the shared pipeline IR).
    pub fn run(&self, model: &ModelSpec) -> BaselineReport {
        self.run_ir(&LayerIr::from_spec(model))
    }

    /// Runs a lowered model — the same [`LayerIr`] the DeepCAM engine,
    /// scheduler and auto-tuner consume.
    pub fn run_ir(&self, ir: &LayerIr) -> BaselineReport {
        let layers = ir.dots.iter().map(|d| self.layer_cost(&d.shape)).collect();
        BaselineReport::from_layers("Eyeriss 14x12 INT8", ir.workload.clone(), layers)
    }
}

impl Default for Eyeriss {
    fn default() -> Self {
        Eyeriss::paper_config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcam_models::zoo;

    #[test]
    fn lenet_cycles_plausible() {
        let e = Eyeriss::paper_config();
        let r = e.run(&zoo::lenet5());
        // First-order systolic arithmetic puts LeNet in the 10⁴–10⁵ range.
        assert!(
            r.total_cycles > 5_000 && r.total_cycles < 500_000,
            "cycles {}",
            r.total_cycles
        );
    }

    #[test]
    fn bigger_models_cost_more() {
        let e = Eyeriss::paper_config();
        let lenet = e.run(&zoo::lenet5());
        let vgg = e.run(&zoo::vgg11());
        let resnet = e.run(&zoo::resnet18());
        assert!(vgg.total_cycles > 50 * lenet.total_cycles);
        assert!(resnet.total_cycles > vgg.total_cycles);
        assert!(resnet.total_energy_j > vgg.total_energy_j);
    }

    #[test]
    fn utilization_bounds() {
        let e = Eyeriss::paper_config();
        for model in zoo::all_workloads() {
            let r = e.run(&model);
            let u = r.mean_utilization();
            assert!(u > 0.0 && u <= 1.0, "{}: {u}", model.name);
        }
    }

    #[test]
    fn perfect_fit_layer_has_full_utilization() {
        let e = Eyeriss::paper_config();
        let layer = DotLayer {
            name: "fit".into(),
            p: 100,
            m: 12,
            n: 14,
            input_elems: 14 * 100,
        };
        let c = e.layer_cost(&layer);
        assert!((c.utilization - 1.0).abs() < 1e-9);
        // One fold of compute; this tiny layer is DRAM-bound, so cycles are
        // at least the compute floor.
        assert!(c.cycles >= (14 + 100 + 11) as u64);
        assert!(c.cycles < 1_000);
    }

    #[test]
    fn small_layer_underutilizes() {
        // LeNet conv1: n=25, M=6 on 14x12 → util well below 1.
        let e = Eyeriss::paper_config();
        let layer = DotLayer {
            name: "conv1".into(),
            p: 784,
            m: 6,
            n: 25,
            input_elems: 32 * 32,
        };
        let c = e.layer_cost(&layer);
        assert!(c.utilization < 0.5, "util {}", c.utilization);
    }

    #[test]
    fn energy_per_mac_in_expected_band() {
        // Effective energy/MAC (incl. memory) should be a few pJ — the
        // published Eyeriss ballpark.
        let e = Eyeriss::paper_config();
        let model = zoo::vgg11();
        let r = e.run(&model);
        let per_mac = r.total_energy_j / model.total_macs() as f64;
        // Published Eyeriss system efficiency is ~10-17 pJ/MAC (65 nm);
        // our 45 nm batch-1 model with DRAM weight traffic lands slightly
        // above the core-only figure.
        assert!(
            per_mac > 1e-12 && per_mac < 30e-12,
            "effective {per_mac} J/MAC"
        );
    }

    #[test]
    fn dram_bound_layer_stalls() {
        let e = Eyeriss::paper_config();
        // Huge FC layer: working set >> SRAM.
        let layer = DotLayer {
            name: "fc".into(),
            p: 1,
            m: 4096,
            n: 25088,
            input_elems: 25088,
        };
        let c = e.layer_cost(&layer);
        // Must be DRAM-bound: cycles ≈ bytes/bandwidth > pure compute.
        let folds = (25088usize.div_ceil(14) * 4096usize.div_ceil(12)) as u64;
        let compute = folds * (14 + 1 + 11) as u64;
        assert!(c.cycles >= compute);
    }
}
