//! Intel Skylake AVX-512 VNNI throughput model.
//!
//! The paper's second baseline is a Skylake-class CPU with the AVX-512
//! vector neural-network instructions. One `vpdpbusd` performs 64 INT8
//! multiply-accumulates; Skylake-SP issues two such FMAs per cycle on
//! ports 0+5, giving a 128 MAC/cycle peak. Real GEMM kernels reach a
//! fraction of that peak (loads, edge handling, pointer chasing), modelled
//! by a single efficiency factor, plus a fixed per-layer software
//! overhead (loop setup, im2col, cache warmup).

use deepcam_core::LayerIr;
use deepcam_models::{DotLayer, ModelSpec};
use serde::{Deserialize, Serialize};

use crate::report::{BaselineReport, LayerCost};

/// Skylake AVX-512 VNNI CPU model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkylakeCpu {
    /// Peak INT8 MACs per cycle (2 ports × 64 MACs).
    pub peak_macs_per_cycle: f64,
    /// Sustained fraction of peak for conv/GEMM kernels.
    pub efficiency: f64,
    /// Fixed per-layer overhead cycles (dispatch, im2col, edge code).
    pub layer_overhead_cycles: u64,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Package energy per cycle (used only for rough energy estimates —
    /// the paper compares CPUs on cycles, calling them "energy-hungry"
    /// without quoting numbers).
    pub energy_per_cycle: f64,
}

impl SkylakeCpu {
    /// The paper's configuration: Skylake with AVX-512 VNNI.
    pub fn paper_config() -> Self {
        SkylakeCpu {
            peak_macs_per_cycle: 128.0,
            efficiency: 0.35,
            layer_overhead_cycles: 2_000,
            clock_hz: 2.1e9,
            // ~20 W core at 2.1 GHz ≈ 9.5 nJ/cycle.
            energy_per_cycle: 9.5e-9,
        }
    }

    /// Cycles for one dot-product layer.
    pub fn layer_cost(&self, layer: &DotLayer) -> LayerCost {
        let sustained = self.peak_macs_per_cycle * self.efficiency;
        let cycles = (layer.macs() as f64 / sustained).ceil() as u64 + self.layer_overhead_cycles;
        LayerCost {
            name: layer.name.clone(),
            cycles,
            energy_j: cycles as f64 * self.energy_per_cycle,
            utilization: self.efficiency,
        }
    }

    /// Runs a whole model spec (lowered through the shared pipeline IR).
    pub fn run(&self, model: &ModelSpec) -> BaselineReport {
        self.run_ir(&LayerIr::from_spec(model))
    }

    /// Runs a lowered model — the same [`LayerIr`] the DeepCAM engine,
    /// scheduler and auto-tuner consume.
    pub fn run_ir(&self, ir: &LayerIr) -> BaselineReport {
        let layers = ir.dots.iter().map(|d| self.layer_cost(&d.shape)).collect();
        BaselineReport::from_layers("Skylake AVX-512", ir.workload.clone(), layers)
    }
}

impl Default for SkylakeCpu {
    fn default() -> Self {
        SkylakeCpu::paper_config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eyeriss::Eyeriss;
    use deepcam_models::zoo;

    #[test]
    fn throughput_arithmetic() {
        let cpu = SkylakeCpu::paper_config();
        let layer = DotLayer {
            name: "x".into(),
            p: 1000,
            m: 64,
            n: 576,
            input_elems: 64 * 32 * 32,
        };
        let c = cpu.layer_cost(&layer);
        let expected = (layer.macs() as f64 / (128.0 * 0.35)).ceil() as u64 + 2_000;
        assert_eq!(c.cycles, expected);
    }

    #[test]
    fn overhead_dominates_tiny_layers() {
        let cpu = SkylakeCpu::paper_config();
        let tiny = DotLayer {
            name: "fc".into(),
            p: 1,
            m: 10,
            n: 84,
            input_elems: 84,
        };
        let c = cpu.layer_cost(&tiny);
        assert!(c.cycles >= 2_000 && c.cycles < 2_100);
    }

    #[test]
    fn cpu_slower_than_eyeriss_per_inference() {
        // 168 dedicated PEs at full INT8 utilization beat 44.8 effective
        // CPU MACs/cycle — the premise of the paper's Fig. 9.
        let cpu = SkylakeCpu::paper_config().run(&zoo::vgg16());
        let eye = Eyeriss::paper_config().run(&zoo::vgg16());
        assert!(
            cpu.total_cycles > eye.total_cycles,
            "cpu {} vs eyeriss {}",
            cpu.total_cycles,
            eye.total_cycles
        );
    }

    #[test]
    fn scales_with_model() {
        let cpu = SkylakeCpu::paper_config();
        let a = cpu.run(&zoo::lenet5()).total_cycles;
        let b = cpu.run(&zoo::resnet18()).total_cycles;
        assert!(b > 100 * a);
    }
}
