//! Property-based tests for the hashing and geometric dot-product layer.

use deepcam_hash::cosine::{approx_cosine, exact_cosine};
use deepcam_hash::geometric::{CosineMode, DotOptions, GeometricDot, NormMode};
use deepcam_hash::{BitVec, Minifloat8, ProjectionMatrix};
use proptest::prelude::*;

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-5.0f32..5.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn angle_estimate_is_bounded(a in vec_strategy(12), b in vec_strategy(12), seed in 0u64..30) {
        let gd = GeometricDot::new(12, 512, seed).unwrap();
        let theta = gd.estimate_angle(&a, &b).unwrap();
        prop_assert!((0.0..=std::f32::consts::PI + 1e-6).contains(&theta));
    }

    #[test]
    fn dot_magnitude_bounded_by_norm_product(
        a in vec_strategy(10),
        b in vec_strategy(10),
        seed in 0u64..30,
    ) {
        let gd = GeometricDot::new(10, 256, seed).unwrap();
        let opts = DotOptions { cosine: CosineMode::Exact, norm: NormMode::Fp32, hash_len: None };
        let d = gd.dot_with(&a, &b, opts).unwrap();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        // |cos| ≤ 1 always, so the reconstruction can never exceed ‖a‖‖b‖.
        prop_assert!(d.abs() <= na * nb * (1.0 + 1e-4));
    }

    #[test]
    fn symmetric_in_operands(a in vec_strategy(8), b in vec_strategy(8), seed in 0u64..20) {
        let gd = GeometricDot::new(8, 256, seed).unwrap();
        let ab = gd.dot(&a, &b).unwrap();
        let ba = gd.dot(&b, &a).unwrap();
        prop_assert!((ab - ba).abs() < 1e-5, "{} vs {}", ab, ba);
    }

    #[test]
    fn cosine_approx_within_documented_bound(theta in 0.0f32..std::f32::consts::PI) {
        // Worst case of eq. 5 sits near π/3 at ≈ 0.167.
        let err = (approx_cosine(theta) - exact_cosine(theta)).abs();
        prop_assert!(err <= 0.18, "error {} at theta {}", err, theta);
    }

    #[test]
    fn cosine_approx_is_odd_around_pi_half(theta in 0.0f32..std::f32::consts::FRAC_PI_2) {
        let a = approx_cosine(theta);
        let b = approx_cosine(std::f32::consts::PI - theta);
        prop_assert!((a + b).abs() < 1e-5);
    }

    #[test]
    fn minifloat_round_trip_bits(bits in any::<u8>()) {
        // Every byte decodes to a finite value that re-encodes to itself
        // (up to the ±0 / duplicate-zero cases).
        let v = Minifloat8::from_bits(bits).to_f32();
        prop_assert!(v.is_finite());
        let re = Minifloat8::from_f32(v);
        prop_assert!((re.to_f32() - v).abs() < 1e-9);
    }

    #[test]
    fn projection_deterministic_and_seed_sensitive(seed in 0u64..1000) {
        let a = ProjectionMatrix::generate(6, 64, seed);
        let b = ProjectionMatrix::generate(6, 64, seed);
        prop_assert_eq!(a.row(0), b.row(0));
        let c = ProjectionMatrix::generate(6, 64, seed.wrapping_add(1));
        prop_assert!(a.row(0) != c.row(0));
    }

    #[test]
    fn bitvec_prefix_never_increases_distance(
        bools_a in proptest::collection::vec(any::<bool>(), 128),
        bools_b in proptest::collection::vec(any::<bool>(), 128),
        k in 1usize..128,
    ) {
        let a = BitVec::from_bools(&bools_a);
        let b = BitVec::from_bools(&bools_b);
        let full = a.hamming(&b).unwrap();
        let prefix = a.hamming_prefix(&b, k).unwrap();
        prop_assert!(prefix <= full);
        prop_assert!(prefix <= k);
    }

    #[test]
    fn wordwise_builders_equal_bitwise_reference(
        bools in proptest::collection::vec(any::<bool>(), 0..200),
        vals in proptest::collection::vec(-4.0f32..4.0, 0..200),
    ) {
        // Bit-wise reference: one set() per true bit, the pre-packing
        // implementation of the builders.
        let mut ref_bools = BitVec::zeros(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                ref_bools.set(i, true);
            }
        }
        prop_assert_eq!(BitVec::from_bools(&bools), ref_bools);

        let mut ref_signs = BitVec::zeros(vals.len());
        for (i, &x) in vals.iter().enumerate() {
            if x >= 0.0 {
                ref_signs.set(i, true);
            }
        }
        let fast = BitVec::from_signs(&vals);
        prop_assert_eq!(&fast, &ref_signs);

        // And the scratch-buffer packer writes the identical words.
        let mut words = vec![u64::MAX; vals.len().div_ceil(64)];
        deepcam_hash::bitvec::pack_signs_into(&vals, &mut words);
        prop_assert_eq!(words.as_slice(), fast.words());
    }

    #[test]
    fn count_ones_consistent_with_self_complement(
        bools in proptest::collection::vec(any::<bool>(), 100),
    ) {
        let v = BitVec::from_bools(&bools);
        let mut flipped = v.clone();
        for i in 0..100 {
            flipped.flip(i);
        }
        prop_assert_eq!(v.hamming(&flipped).unwrap(), 100);
        prop_assert_eq!(v.count_ones() + flipped.count_ones(), 100);
    }
}
