//! Per-width scalar-vs-SIMD differential suite: every kernel variant the
//! host detects must be **bitwise equal** to the scalar oracle
//! (`hamming_words`) on every width — explicit boundary widths around
//! the word, lane and Harley–Seal group sizes, plus randomized
//! property-based sweeps.
//!
//! These tests gate the SIMD wave: a variant that disagrees with scalar
//! on any input is a correctness bug, never a tolerance question —
//! popcounts are exact integers.

use deepcam_hash::packed::hamming_words;
use deepcam_hash::simd::{detected, force_variant, hamming_pair_with, hamming_range_with, Variant};
use deepcam_hash::{BitVec, PackedHashes};
use proptest::prelude::*;

/// The boundary widths (in bits) the suite must cover: 1, the word edges
/// (63/64/65), the AVX2 lane and Harley–Seal group edges (255/256/257),
/// and the full four-chunk CAM width.
const BOUNDARY_BITS: [usize; 9] = [1, 63, 64, 65, 255, 256, 257, 512, 1024];

/// Deterministic splittable word pattern (no RNG needed for the
/// fixed-width sweeps).
fn mixed_word(seed: u64, i: u64) -> u64 {
    (seed.wrapping_add(i).wrapping_mul(0x9E37_79B9_7F4A_7C15)).rotate_left((i % 63) as u32)
}

fn patterned_bitvec(bits: usize, seed: u64) -> BitVec {
    let bools: Vec<bool> = (0..bits)
        .map(|i| mixed_word(seed, (i / 64) as u64) >> (i % 64) & 1 == 1)
        .collect();
    BitVec::from_bools(&bools)
}

#[test]
fn every_detected_variant_matches_scalar_on_boundary_widths() {
    for &bits in &BOUNDARY_BITS {
        let rows: Vec<BitVec> = (0..17).map(|r| patterned_bitvec(bits, r as u64)).collect();
        let tile = PackedHashes::from_bitvecs(bits, &rows).expect("equal widths");
        let query = patterned_bitvec(bits, 777);
        let wpr = tile.words_per_row();
        let slab: Vec<u64> = (0..tile.rows())
            .flat_map(|r| tile.row_words(r).iter().copied())
            .collect();

        // Scalar oracle, three independent routes that must agree: the
        // BitVec reference, hamming_words, and the scalar range kernel.
        let mut want = vec![0u32; tile.rows()];
        hamming_range_with(Variant::Scalar, &slab, wpr, query.words(), &mut want);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(
                want[r] as usize,
                row.hamming(&query).unwrap(),
                "bits {bits} row {r}"
            );
            assert_eq!(want[r], hamming_words(tile.row_words(r), query.words()));
        }

        for &v in detected() {
            let mut got = vec![0u32; tile.rows()];
            hamming_range_with(v, &slab, wpr, query.words(), &mut got);
            assert_eq!(got, want, "bits {bits} variant {}", v.name());
            for (r, &w) in want.iter().enumerate() {
                assert_eq!(
                    hamming_pair_with(v, tile.row_words(r), query.words()),
                    w,
                    "bits {bits} variant {} row {r}",
                    v.name()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_rows_match_scalar_on_every_variant(
        bits in 1usize..700,
        rows in 1usize..12,
        seed in 0u64..10_000,
    ) {
        let words: Vec<BitVec> = (0..rows)
            .map(|r| patterned_bitvec(bits, seed.wrapping_add(r as u64)))
            .collect();
        let tile = PackedHashes::from_bitvecs(bits, &words).unwrap();
        let query = patterned_bitvec(bits, seed ^ 0xABCD);
        let mut want = vec![0u32; rows];
        tile.hamming_into(query.words(), &mut want);
        // The dispatched pass must agree with the BitVec reference…
        for (row, w) in words.iter().enumerate() {
            prop_assert_eq!(want[row] as usize, w.hamming(&query).unwrap());
        }
        // …and every detected variant must agree bitwise with scalar.
        for &v in detected() {
            for (row, w) in words.iter().enumerate() {
                let got = hamming_pair_with(v, tile.row_words(row), query.words());
                prop_assert_eq!(got, want[row], "variant {} row {} ({:?})", v.name(), row, w.len());
            }
        }
    }
}

#[test]
fn forced_variants_drive_the_public_kernel() {
    // force_variant repoints the dispatched entry points themselves; the
    // results must be identical for every detected variant (flipping the
    // active variant mid-run is benign by the bit-exactness contract).
    let bits = 511;
    let rows: Vec<BitVec> = (0..9)
        .map(|r| patterned_bitvec(bits, 40 + r as u64))
        .collect();
    let tile = PackedHashes::from_bitvecs(bits, &rows).unwrap();
    let query = patterned_bitvec(bits, 99);
    let mut want = vec![0u32; rows.len()];
    let initial = force_variant(Variant::Scalar).expect("scalar always detected");
    tile.hamming_into(query.words(), &mut want);
    for &v in detected() {
        force_variant(v).expect("detected variant");
        let mut got = vec![0u32; rows.len()];
        tile.hamming_into(query.words(), &mut got);
        assert_eq!(got, want, "variant {}", v.name());
        for (row, &w) in want.iter().enumerate() {
            assert_eq!(tile.hamming_row(row, query.words()), w);
        }
    }
    let _ = force_variant(initial);
}

#[test]
fn hamming_words_length_contract_is_checked_in_release() {
    let caught = std::panic::catch_unwind(|| hamming_words(&[0u64; 3], &[0u64; 4]));
    assert!(
        caught.is_err(),
        "mismatched lengths must panic, not truncate"
    );
}
