//! Error metrics for approximation-quality experiments (Fig. 2).

use serde::{Deserialize, Serialize};

/// Summary statistics of an approximation error sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorStats {
    /// Number of (approx, reference) pairs.
    pub count: usize,
    /// Mean absolute error.
    pub mae: f32,
    /// Root-mean-square error.
    pub rmse: f32,
    /// Mean relative error `|a - r| / max(|r|, eps)`. Dominated by
    /// near-zero references; prefer [`ErrorStats::normalized_rmse`] for
    /// ensemble comparisons.
    pub mean_relative: f32,
    /// Maximum absolute error in the sample.
    pub max_abs: f32,
    /// Mean absolute reference magnitude (the scale of the data).
    pub mean_abs_reference: f32,
}

impl ErrorStats {
    /// Computes statistics from paired approximate and reference values.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_pairs(approx: &[f32], reference: &[f32]) -> Self {
        assert_eq!(
            approx.len(),
            reference.len(),
            "paired samples must have equal length"
        );
        let n = approx.len();
        if n == 0 {
            return ErrorStats {
                count: 0,
                mae: 0.0,
                rmse: 0.0,
                mean_relative: 0.0,
                max_abs: 0.0,
                mean_abs_reference: 0.0,
            };
        }
        let mut abs_sum = 0.0f64;
        let mut sq_sum = 0.0f64;
        let mut rel_sum = 0.0f64;
        let mut ref_sum = 0.0f64;
        let mut max_abs = 0.0f32;
        for (&a, &r) in approx.iter().zip(reference.iter()) {
            let e = (a - r).abs();
            abs_sum += e as f64;
            sq_sum += (e as f64) * (e as f64);
            rel_sum += (e / r.abs().max(1e-6)) as f64;
            ref_sum += r.abs() as f64;
            max_abs = max_abs.max(e);
        }
        ErrorStats {
            count: n,
            mae: (abs_sum / n as f64) as f32,
            rmse: (sq_sum / n as f64).sqrt() as f32,
            mean_relative: (rel_sum / n as f64) as f32,
            max_abs,
            mean_abs_reference: (ref_sum / n as f64) as f32,
        }
    }

    /// RMSE divided by the mean reference magnitude — a scale-free error
    /// measure that is robust to near-zero individual references.
    pub fn normalized_rmse(&self) -> f32 {
        if self.mean_abs_reference == 0.0 {
            0.0
        } else {
            self.rmse / self.mean_abs_reference
        }
    }
}

impl std::fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mae={:.4} rmse={:.4} rel={:.2}% max={:.4}",
            self.count,
            self.mae,
            self.rmse,
            self.mean_relative * 100.0,
            self.max_abs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_for_identical() {
        let s = ErrorStats::from_pairs(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
        assert_eq!(s.mae, 0.0);
        assert_eq!(s.rmse, 0.0);
        assert_eq!(s.max_abs, 0.0);
    }

    #[test]
    fn known_values() {
        let s = ErrorStats::from_pairs(&[1.0, 3.0], &[2.0, 1.0]);
        assert_eq!(s.count, 2);
        assert!((s.mae - 1.5).abs() < 1e-6);
        let expected_rmse = ((1.0f64 + 4.0) / 2.0).sqrt() as f32;
        assert!((s.rmse - expected_rmse).abs() < 1e-6);
        assert_eq!(s.max_abs, 2.0);
    }

    #[test]
    fn empty_sample() {
        let s = ErrorStats::from_pairs(&[], &[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mae, 0.0);
    }

    #[test]
    fn display_contains_fields() {
        let s = ErrorStats::from_pairs(&[1.0], &[2.0]);
        let out = s.to_string();
        assert!(out.contains("mae=1.0000"));
        assert!(out.contains("n=1"));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        ErrorStats::from_pairs(&[1.0], &[1.0, 2.0]);
    }
}
