//! The approximate geometric dot-product (paper eq. 2–4).

use serde::{Deserialize, Serialize};

use crate::cosine::{approx_cosine, exact_cosine};
use crate::error::HashError;
use crate::minifloat::Minifloat8;
use crate::projection::ProjectionMatrix;
use crate::Result;

/// How the cosine of the estimated angle is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CosineMode {
    /// The paper's piecewise-linear eq. 5 (hardware default).
    #[default]
    PiecewiseEq5,
    /// Library cosine — the ablation reference.
    Exact,
}

impl CosineMode {
    /// Evaluates the selected cosine at `theta`.
    pub fn eval(self, theta: f32) -> f32 {
        match self {
            CosineMode::PiecewiseEq5 => approx_cosine(theta),
            CosineMode::Exact => exact_cosine(theta),
        }
    }
}

/// How operand L2 norms enter the final multiply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum NormMode {
    /// Quantize through the 8-bit minifloat (hardware default, §III-A).
    #[default]
    Minifloat8,
    /// Full-precision norms — the ablation reference.
    Fp32,
}

impl serde::bin::BinCodec for CosineMode {
    fn encode(&self, w: &mut serde::bin::Writer) {
        w.put_u8(match self {
            CosineMode::PiecewiseEq5 => 0,
            CosineMode::Exact => 1,
        });
    }

    fn decode(r: &mut serde::bin::Reader<'_>) -> serde::bin::BinResult<Self> {
        match r.get_u8()? {
            0 => Ok(CosineMode::PiecewiseEq5),
            1 => Ok(CosineMode::Exact),
            other => Err(serde::bin::BinError::Invalid(format!(
                "CosineMode tag {other}"
            ))),
        }
    }
}

impl serde::bin::BinCodec for NormMode {
    fn encode(&self, w: &mut serde::bin::Writer) {
        w.put_u8(match self {
            NormMode::Minifloat8 => 0,
            NormMode::Fp32 => 1,
        });
    }

    fn decode(r: &mut serde::bin::Reader<'_>) -> serde::bin::BinResult<Self> {
        match r.get_u8()? {
            0 => Ok(NormMode::Minifloat8),
            1 => Ok(NormMode::Fp32),
            other => Err(serde::bin::BinError::Invalid(format!(
                "NormMode tag {other}"
            ))),
        }
    }
}

impl NormMode {
    /// Applies the selected quantization to a norm.
    pub fn apply(self, norm: f32) -> f32 {
        match self {
            NormMode::Minifloat8 => Minifloat8::quantize(norm),
            NormMode::Fp32 => norm,
        }
    }
}

/// Tunable details of the approximation, for ablations and the variable
/// hash-length strategy.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DotOptions {
    /// Compare only the first `k` hash bits (`None` = full width). This is
    /// the software twin of disabling CAM chunks.
    pub hash_len: Option<usize>,
    /// Cosine evaluation mode.
    pub cosine: CosineMode,
    /// Norm quantization mode.
    pub norm: NormMode,
}

/// Approximate geometric dot-product engine: owns a projection matrix and
/// reconstructs `x·y ≈ ‖x‖‖y‖cos((π/k)·HD(hash(x),hash(y)))`.
///
/// # Example
///
/// ```
/// use deepcam_hash::GeometricDot;
///
/// let gd = GeometricDot::new(4, 1024, 7)?;
/// let x = [0.6012, 0.8383, 0.6859, 0.5712];
/// let y = [0.9044, 0.5352, 0.8110, 0.9243];
/// let approx = gd.dot(&x, &y)?;
/// assert!((approx - 2.0765).abs() < 0.3); // vs the algebraic 2.0765
/// # Ok::<(), deepcam_hash::HashError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeometricDot {
    projection: ProjectionMatrix,
}

impl GeometricDot {
    /// Creates an engine for `input_dim`-dimensional vectors with a
    /// `hash_len`-bit hash.
    ///
    /// # Errors
    ///
    /// Returns [`HashError::InvalidConfig`] for zero dimensions.
    pub fn new(input_dim: usize, hash_len: usize, seed: u64) -> Result<Self> {
        if input_dim == 0 || hash_len == 0 {
            return Err(HashError::InvalidConfig(
                "input_dim and hash_len must be > 0".into(),
            ));
        }
        Ok(GeometricDot {
            projection: ProjectionMatrix::generate(input_dim, hash_len, seed),
        })
    }

    /// The underlying projection matrix.
    pub fn projection(&self) -> &ProjectionMatrix {
        &self.projection
    }

    /// Full hash width `k`.
    pub fn hash_len(&self) -> usize {
        self.projection.hash_len()
    }

    /// Converts a Hamming distance at width `k` into an angle estimate:
    /// `θ ≈ π·HD/k` (eq. 3).
    pub fn angle_from_hamming(hd: usize, k: usize) -> f32 {
        std::f32::consts::PI * hd as f32 / k.max(1) as f32
    }

    /// Estimates the angle between `x` and `y` from their hashes.
    ///
    /// # Errors
    ///
    /// Returns a dimension error when either vector mismatches the
    /// projection.
    pub fn estimate_angle(&self, x: &[f32], y: &[f32]) -> Result<f32> {
        let hx = self.projection.hash(x)?;
        let hy = self.projection.hash(y)?;
        let hd = hx.hamming(&hy)?;
        Ok(Self::angle_from_hamming(hd, self.hash_len()))
    }

    /// Approximate dot-product with default (hardware) options.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GeometricDot::estimate_angle`].
    pub fn dot(&self, x: &[f32], y: &[f32]) -> Result<f32> {
        self.dot_with(x, y, DotOptions::default())
    }

    /// Approximate dot-product with explicit [`DotOptions`].
    ///
    /// # Errors
    ///
    /// Returns dimension errors from hashing and
    /// [`HashError::InvalidHashLength`] when `opts.hash_len` exceeds the
    /// projection width.
    pub fn dot_with(&self, x: &[f32], y: &[f32], opts: DotOptions) -> Result<f32> {
        let k = match opts.hash_len {
            Some(k) => {
                if k == 0 || k > self.hash_len() {
                    return Err(HashError::InvalidHashLength {
                        requested: k,
                        max: self.hash_len(),
                    });
                }
                k
            }
            None => self.hash_len(),
        };
        let hx = self.projection.hash(x)?;
        let hy = self.projection.hash(y)?;
        let hd = hx.hamming_prefix(&hy, k)?;
        let theta = Self::angle_from_hamming(hd, k);
        let nx = opts.norm.apply(l2(x));
        let ny = opts.norm.apply(l2(y));
        Ok(nx * ny * opts.cosine.eval(theta))
    }

    /// The algebraic reference `Σ xᵢyᵢ` (eq. 1), for error measurement.
    ///
    /// # Errors
    ///
    /// Returns a dimension error when the lengths differ.
    pub fn algebraic(x: &[f32], y: &[f32]) -> Result<f32> {
        if x.len() != y.len() {
            return Err(HashError::DimensionMismatch {
                expected: x.len(),
                actual: y.len(),
            });
        }
        Ok(x.iter().zip(y.iter()).map(|(a, b)| a * b).sum())
    }
}

fn l2(v: &[f32]) -> f32 {
    v.iter().map(|&x| x * x).sum::<f32>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcam_tensor::rng::{fill_normal, seeded_rng};

    #[test]
    fn identical_vectors_have_zero_angle() {
        let gd = GeometricDot::new(8, 512, 1).unwrap();
        let x = [0.3, -0.2, 0.8, 0.5, -0.1, 0.9, 0.4, -0.7];
        let theta = gd.estimate_angle(&x, &x).unwrap();
        assert_eq!(theta, 0.0);
        let d = gd
            .dot_with(
                &x,
                &x,
                DotOptions {
                    norm: NormMode::Fp32,
                    ..DotOptions::default()
                },
            )
            .unwrap();
        let alg = GeometricDot::algebraic(&x, &x).unwrap();
        assert!((d - alg).abs() / alg < 0.01, "{d} vs {alg}");
    }

    #[test]
    fn opposite_vectors_have_pi_angle() {
        let gd = GeometricDot::new(6, 1024, 2).unwrap();
        let x = [0.5, -0.3, 0.2, 0.9, -0.8, 0.1];
        let y: Vec<f32> = x.iter().map(|v| -v).collect();
        let theta = gd.estimate_angle(&x, &y).unwrap();
        assert!((theta - std::f32::consts::PI).abs() < 0.02);
    }

    #[test]
    fn orthogonal_vectors_near_half_pi() {
        let gd = GeometricDot::new(2, 4096, 3).unwrap();
        let theta = gd.estimate_angle(&[1.0, 0.0], &[0.0, 1.0]).unwrap();
        assert!(
            (theta - std::f32::consts::FRAC_PI_2).abs() < 0.1,
            "theta {theta}"
        );
    }

    #[test]
    fn paper_worked_example_converges_with_k() {
        // Fig. 2 of the paper: longer hashes approximate 2.0765 better.
        let x = [0.6012f32, 0.8383, 0.6859, 0.5712];
        let y = [0.9044f32, 0.5352, 0.8110, 0.9243];
        let reference = 2.0765f32;
        let mut errors = Vec::new();
        for &k in &[64usize, 512, 4096] {
            // Average over seeds to smooth hash variance.
            let mut acc = 0.0;
            let seeds = 8;
            for seed in 0..seeds {
                let gd = GeometricDot::new(4, k, seed).unwrap();
                let opts = DotOptions {
                    cosine: CosineMode::Exact,
                    norm: NormMode::Fp32,
                    hash_len: None,
                };
                acc += (gd.dot_with(&x, &y, opts).unwrap() - reference).abs();
            }
            errors.push(acc / seeds as f32);
        }
        assert!(
            errors[2] < errors[0],
            "error should shrink with k: {errors:?}"
        );
        assert!(errors[2] < 0.1, "k=4096 error too large: {}", errors[2]);
    }

    #[test]
    fn estimator_concentration_on_random_vectors() {
        // For random Gaussian vectors the angle estimate should be within
        // a few degrees of the true angle at k=1024.
        let mut rng = seeded_rng(99);
        let gd = GeometricDot::new(32, 1024, 5).unwrap();
        for _ in 0..20 {
            let mut x = vec![0.0f32; 32];
            let mut y = vec![0.0f32; 32];
            fill_normal(&mut rng, &mut x, 0.0, 1.0);
            fill_normal(&mut rng, &mut y, 0.0, 1.0);
            let true_theta = {
                let d = GeometricDot::algebraic(&x, &y).unwrap();
                (d / (l2(&x) * l2(&y))).clamp(-1.0, 1.0).acos()
            };
            let est = gd.estimate_angle(&x, &y).unwrap();
            assert!(
                (est - true_theta).abs() < 0.15,
                "estimate {est} vs true {true_theta}"
            );
        }
    }

    #[test]
    fn prefix_hash_len_matches_dedicated_projection_statistics() {
        // Using a 256-bit prefix of a 1024-bit projection behaves like a
        // 256-bit hash (both are 256 i.i.d. hyperplanes).
        let gd = GeometricDot::new(16, 1024, 11).unwrap();
        let mut rng = seeded_rng(1);
        let mut x = vec![0.0f32; 16];
        let mut y = vec![0.0f32; 16];
        fill_normal(&mut rng, &mut x, 0.0, 1.0);
        fill_normal(&mut rng, &mut y, 0.0, 1.0);
        let opts = DotOptions {
            hash_len: Some(256),
            cosine: CosineMode::Exact,
            norm: NormMode::Fp32,
        };
        let d256 = gd.dot_with(&x, &y, opts).unwrap();
        let alg = GeometricDot::algebraic(&x, &y).unwrap();
        // Coarser, but in the right ballpark.
        assert!((d256 - alg).abs() < l2(&x) * l2(&y) * 0.25);
    }

    #[test]
    fn invalid_hash_len_rejected() {
        let gd = GeometricDot::new(4, 64, 0).unwrap();
        let opts = DotOptions {
            hash_len: Some(65),
            ..DotOptions::default()
        };
        assert!(gd.dot_with(&[1.0; 4], &[1.0; 4], opts).is_err());
        let opts0 = DotOptions {
            hash_len: Some(0),
            ..DotOptions::default()
        };
        assert!(gd.dot_with(&[1.0; 4], &[1.0; 4], opts0).is_err());
    }

    #[test]
    fn minifloat_norms_change_result_slightly() {
        let gd = GeometricDot::new(8, 512, 4).unwrap();
        let x = [1.01, 2.3, -0.7, 0.01, 0.6, -1.4, 2.2, 0.9];
        let y = [0.4, -1.3, 0.8, 1.7, -0.2, 0.5, 1.1, -0.6];
        let exact = gd
            .dot_with(
                &x,
                &y,
                DotOptions {
                    norm: NormMode::Fp32,
                    ..Default::default()
                },
            )
            .unwrap();
        let quant = gd
            .dot_with(
                &x,
                &y,
                DotOptions {
                    norm: NormMode::Minifloat8,
                    ..Default::default()
                },
            )
            .unwrap();
        // Within the ~6% relative step of two 1-4-3 quantizations…
        assert!((exact - quant).abs() <= exact.abs() * 0.15 + 0.05);
    }

    #[test]
    fn zero_config_rejected() {
        assert!(GeometricDot::new(0, 64, 0).is_err());
        assert!(GeometricDot::new(4, 0, 0).is_err());
    }
}
