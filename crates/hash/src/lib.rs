//! # deepcam-hash
//!
//! The mathematical core of DeepCAM (DATE 2023): random-hyperplane hashing
//! and the approximate *geometric* dot-product that replaces
//! multiply-accumulate in the accelerator.
//!
//! The paper's pipeline (§II-B and §III-A):
//!
//! 1. A vector `x ∈ R^n` is projected by a Gaussian random matrix
//!    `C ∈ R^{n×k}` and reduced to its sign bits:
//!    `hash(x) = sign(x·C) ∈ {0,1}^k` ([`projection`]).
//! 2. The angle between two vectors is estimated from the Hamming distance
//!    of their hashes: `θ ≈ (π/k)·HD(hash(x), hash(y))` (eq. 3, Goemans &
//!    Williamson) ([`geometric`]).
//! 3. The dot-product is reconstructed as
//!    `x·y ≈ ‖x‖‖y‖·cos(θ)` (eq. 4) with a cheap piecewise-linear cosine
//!    (eq. 5, [`cosine`]) and 8-bit minifloat norms ([`minifloat`]).
//! 4. A *context* — the (norm, hash-bits) pair for one im2col patch or one
//!    kernel — is the unit stored in, or searched against, the CAM
//!    ([`context`]).
//!
//! # Example: reproduce the paper's §II-B worked example
//!
//! ```
//! use deepcam_hash::geometric::GeometricDot;
//!
//! let x = [0.6012, 0.8383, 0.6859, 0.5712];
//! let y = [0.9044, 0.5352, 0.8110, 0.9243];
//! // Algebraic reference: 2.0765. Long hashes approximate it closely.
//! let gd = GeometricDot::new(4, 2048, 42)?;
//! let approx = gd.dot(&x, &y)?;
//! assert!((approx - 2.0765).abs() < 0.2);
//! # Ok::<(), deepcam_hash::HashError>(())
//! ```

// Machine-checked by deepcam-analyze (lint A2): the only unsafe in this
// crate lives in the `simd` kernel files (feature-gated `std::arch`
// loads plus the detection-guarded dispatch wrappers), every token is
// SAFETY-commented and registered in ANALYZE_UNSAFE.md, and unsafe
// operations inside unsafe fns still need their own explicit blocks.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bitvec;
pub mod context;
pub mod cosine;
pub mod error;
pub mod geometric;
pub mod minifloat;
pub mod packed;
pub mod projection;
pub mod simd;
pub mod stats;

pub use bitvec::{low_mask, tail_garbage_mask, BitVec};
pub use context::{Context, ContextGenerator, ContextSet};
pub use error::HashError;
pub use geometric::GeometricDot;
pub use minifloat::Minifloat8;
pub use packed::PackedHashes;
pub use projection::ProjectionMatrix;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, HashError>;

/// The four hash lengths supported by the dynamic-size CAM (one 256-bit
/// chunk up to all four chunks; paper §III-B).
pub const SUPPORTED_HASH_LENGTHS: [usize; 4] = [256, 512, 768, 1024];

/// Word width of one CAM chunk in bits.
pub const CHUNK_BITS: usize = 256;
