//! Packed hash tiles — the contiguous storage layout of the hot path.
//!
//! A [`PackedHashes`] tile holds every hash of one CAM tile (all M kernel
//! contexts of a layer, or all rows of a [`CamArray`]) in **one**
//! row-major `Vec<u64>` slab with a fixed words-per-row stride:
//!
//! ```text
//! row 0: | w0 | w1 | w2 | w3 |      ← k bits in ⌈k/64⌉ words,
//! row 1: | w0 | w1 | w2 | w3 |        trailing bits of the last
//! ...                                  word always zero
//! row M: | w0 | w1 | w2 | w3 |
//! ```
//!
//! Compared to a `Vec<BitVec>` (one heap allocation per row, a length
//! field re-checked per comparison), the slab gives the Hamming
//! microkernel [`PackedHashes::hamming_into`] a single linear pass over
//! contiguous memory through the runtime-dispatched kernel table in
//! [`crate::simd`] (scalar 4×-unrolled fallback, AVX2 Harley–Seal,
//! AVX-512 `VPOPCNTDQ`, NEON `vcnt`), with no per-row `Option`, no
//! per-call length `Result`, and no tail masking in the loop — the
//! *masked tail word is handled once at build time* by the
//! trailing-zero invariant every [`BitVec`] builder upholds.
//!
//! This is the software twin of the data-layout argument in
//! "Full-Stack Optimization for CAM-Only DNN Inference": packing and
//! placement, not the match primitive, decide throughput.
//!
//! [`CamArray`]: https://docs.rs/deepcam-cam

use serde::{Deserialize, Serialize};

use crate::bitvec::BitVec;
use crate::error::HashError;
use crate::Result;

const WORD_BITS: usize = 64;

/// A dense tile of equal-width hashes in one contiguous row-major slab.
///
/// # Example
///
/// ```
/// use deepcam_hash::{BitVec, PackedHashes};
///
/// let rows = vec![
///     BitVec::from_bools(&[true; 100]),
///     BitVec::from_bools(&[false; 100]),
/// ];
/// let tile = PackedHashes::from_bitvecs(100, &rows)?;
/// let query = BitVec::from_bools(&[true; 100]);
/// let mut dists = vec![0u32; tile.rows()];
/// tile.hamming_into(query.words(), &mut dists);
/// assert_eq!(dists, [0, 100]);
/// # Ok::<(), deepcam_hash::HashError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedHashes {
    bits: usize,
    words_per_row: usize,
    rows: usize,
    /// Row-major `[rows * words_per_row]`; trailing bits of each row's
    /// last word are zero (the build-time tail mask).
    slab: Vec<u64>,
}

impl PackedHashes {
    /// Creates an empty tile for `bits`-wide hashes.
    pub fn new(bits: usize) -> Self {
        PackedHashes {
            bits,
            words_per_row: bits.div_ceil(WORD_BITS),
            rows: 0,
            slab: Vec::new(),
        }
    }

    /// Creates an all-zero tile with `rows` pre-allocated rows (used by
    /// fixed-geometry consumers like the CAM array, which overwrite rows
    /// in place).
    pub fn zeroed(bits: usize, rows: usize) -> Self {
        let words_per_row = bits.div_ceil(WORD_BITS);
        PackedHashes {
            bits,
            words_per_row,
            rows,
            slab: vec![0; rows * words_per_row],
        }
    }

    /// Packs a slice of equal-width [`BitVec`]s into one tile.
    ///
    /// # Errors
    ///
    /// Returns [`HashError::LengthMismatch`] when any row's width differs
    /// from `bits` — the single up-front check that replaces the
    /// per-comparison length `Result` of the `BitVec` path.
    pub fn from_bitvecs(bits: usize, rows: &[BitVec]) -> Result<Self> {
        let mut tile = PackedHashes::new(bits);
        tile.slab.reserve(rows.len() * tile.words_per_row);
        for row in rows {
            tile.push(row)?;
        }
        Ok(tile)
    }

    /// Appends one hash row.
    ///
    /// # Errors
    ///
    /// Returns [`HashError::LengthMismatch`] when the row width differs
    /// from the tile width.
    pub fn push(&mut self, row: &BitVec) -> Result<()> {
        if row.len() != self.bits {
            return Err(HashError::LengthMismatch {
                lhs: self.bits,
                rhs: row.len(),
            });
        }
        self.slab.extend_from_slice(row.words());
        self.rows += 1;
        Ok(())
    }

    /// Overwrites row `row` in place.
    ///
    /// # Errors
    ///
    /// Returns [`HashError::LengthMismatch`] on a width mismatch, or
    /// [`HashError::InvalidConfig`] when `row` is out of range.
    pub fn set_row(&mut self, row: usize, word: &BitVec) -> Result<()> {
        if word.len() != self.bits {
            return Err(HashError::LengthMismatch {
                lhs: self.bits,
                rhs: word.len(),
            });
        }
        if row >= self.rows {
            return Err(HashError::InvalidConfig(format!(
                "row {row} out of range {}",
                self.rows
            )));
        }
        let start = row * self.words_per_row;
        self.slab[start..start + self.words_per_row].copy_from_slice(word.words());
        Ok(())
    }

    /// Hash width in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Words per row (the fixed stride of the slab).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Returns `true` when the tile holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The packed words of row `row`.
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of range.
    pub fn row_words(&self, row: usize) -> &[u64] {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        &self.slab[row * self.words_per_row..(row + 1) * self.words_per_row]
    }

    /// Reconstructs row `row` as a [`BitVec`] (construction/test API; the
    /// hot path never calls this).
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of range.
    pub fn row_bitvec(&self, row: usize) -> BitVec {
        let words = self.row_words(row);
        let mut v = BitVec::zeros(self.bits);
        for (i, &w) in words.iter().enumerate() {
            for b in 0..WORD_BITS {
                let bit = i * WORD_BITS + b;
                if bit >= self.bits {
                    break;
                }
                if (w >> b) & 1 == 1 {
                    v.set(bit, true);
                }
            }
        }
        v
    }

    /// The Hamming microkernel: fills `out[i]` with the distance between
    /// `query_words` and row `i`, for every row, in one pass over the
    /// contiguous slab.
    ///
    /// `query_words` must obey the [`BitVec`] trailing-zero invariant
    /// (every builder in this crate does), so no tail mask is applied in
    /// the loop. The pass runs on the kernel the [`crate::simd`]
    /// dispatch table selected for this host (scalar fallback, AVX2
    /// Harley–Seal, AVX-512 `VPOPCNTDQ` or NEON `vcnt`) — every variant
    /// is bit-identical to [`hamming_words`], the scalar oracle.
    ///
    /// # Panics
    ///
    /// Panics when `query_words` is not exactly `words_per_row` long or
    /// `out` is not exactly `rows` long.
    #[inline]
    // analyze: alloc-free
    pub fn hamming_into(&self, query_words: &[u64], out: &mut [u32]) {
        self.hamming_range_into(query_words, 0, self.rows, out);
    }

    /// [`PackedHashes::hamming_into`] over rows `lo..hi` only (the
    /// building block of sharded CAM search: each shard scans a disjoint
    /// contiguous row range of the same slab).
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or descending, when
    /// `query_words` is not exactly `words_per_row` long, or when `out`
    /// is not exactly `hi - lo` long.
    // analyze: alloc-free
    pub fn hamming_range_into(&self, query_words: &[u64], lo: usize, hi: usize, out: &mut [u32]) {
        assert!(lo <= hi && hi <= self.rows, "row range {lo}..{hi} invalid");
        assert_eq!(
            query_words.len(),
            self.words_per_row,
            "query width must match the tile stride"
        );
        assert_eq!(out.len(), hi - lo, "output slot per row in range");
        let wpr = self.words_per_row;
        crate::simd::hamming_range(&self.slab[lo * wpr..hi * wpr], wpr, query_words, out);
    }

    /// Hamming distance between row `row` and `query_words`, through the
    /// same dispatched kernel as [`PackedHashes::hamming_into`] (the
    /// single-row primitive of the occupancy-skip CAM scan, which visits
    /// sparse survivors one at a time instead of the whole range).
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of range or `query_words` is not exactly
    /// `words_per_row` long.
    #[inline]
    // analyze: alloc-free
    pub fn hamming_row(&self, row: usize, query_words: &[u64]) -> u32 {
        assert_eq!(
            query_words.len(),
            self.words_per_row,
            "query width must match the tile stride"
        );
        crate::simd::hamming_pair(self.row_words(row), query_words)
    }
}

impl serde::bin::BinCodec for PackedHashes {
    fn encode(&self, w: &mut serde::bin::Writer) {
        w.put_usize(self.bits);
        w.put_usize(self.rows);
        // words_per_row is derived from bits; the slab length is derived
        // from both — neither is encoded, so a decoded tile can never be
        // internally inconsistent.
        for &word in &self.slab {
            w.put_u64(word);
        }
    }

    fn decode(r: &mut serde::bin::Reader<'_>) -> serde::bin::BinResult<Self> {
        let bits = r.get_usize()?;
        let rows = r.get_usize()?;
        if bits == 0 {
            return Err(serde::bin::BinError::Invalid(
                "packed tile width must be > 0".into(),
            ));
        }
        let words_per_row = bits.div_ceil(WORD_BITS);
        let total = rows
            .checked_mul(words_per_row)
            .ok_or_else(|| serde::bin::BinError::Invalid("packed tile size overflow".into()))?;
        let mut slab = Vec::with_capacity(total.min(r.remaining() / 8));
        for _ in 0..total {
            slab.push(r.get_u64()?);
        }
        // Re-assert the trailing-zero invariant every builder upholds:
        // the Hamming microkernel skips tail masking because of it.
        let mask = crate::bitvec::tail_garbage_mask(bits);
        if mask != 0 {
            for row in 0..rows {
                if slab[row * words_per_row + words_per_row - 1] & mask != 0 {
                    return Err(serde::bin::BinError::Invalid(format!(
                        "packed tile row {row} has non-zero bits past width {bits}"
                    )));
                }
            }
        }
        Ok(PackedHashes {
            bits,
            words_per_row,
            rows,
            slab,
        })
    }
}

/// XOR + popcount over two equal-length word slices — the **scalar
/// oracle** every dispatched SIMD variant is differentially pinned to.
///
/// Shared by the tile microkernel and any caller that already holds
/// packed words (e.g. scratch query buffers built by
/// [`pack_signs_into`](crate::bitvec::pack_signs_into)). The length
/// contract is checked **once here, outside the word loop** — a
/// `debug_assert!` would silently truncate to the shorter slice in
/// release builds, reporting a plausible-but-wrong distance.
///
/// # Panics
///
/// Panics when `a` and `b` differ in length.
#[inline]
pub fn hamming_words(a: &[u64], b: &[u64]) -> u32 {
    assert_eq!(
        a.len(),
        b.len(),
        "hamming_words requires equal-length slices"
    );
    crate::simd::scalar::hamming_pair(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterned(bits: usize, step: usize) -> BitVec {
        let bools: Vec<bool> = (0..bits).map(|i| i % step == 0).collect();
        BitVec::from_bools(&bools)
    }

    #[test]
    fn layout_is_row_major_with_fixed_stride() {
        let rows = vec![patterned(100, 3), patterned(100, 5), patterned(100, 7)];
        let tile = PackedHashes::from_bitvecs(100, &rows).unwrap();
        assert_eq!(tile.rows(), 3);
        assert_eq!(tile.bits(), 100);
        assert_eq!(tile.words_per_row(), 2);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(tile.row_words(i), row.words());
            assert_eq!(tile.row_bitvec(i), *row);
        }
    }

    #[test]
    fn hamming_into_matches_bitvec_reference() {
        for bits in [1usize, 63, 64, 65, 100, 256, 300, 512, 1024] {
            let rows: Vec<BitVec> = (2..9).map(|s| patterned(bits, s)).collect();
            let tile = PackedHashes::from_bitvecs(bits, &rows).unwrap();
            let query = patterned(bits, 4);
            let mut dists = vec![0u32; tile.rows()];
            tile.hamming_into(query.words(), &mut dists);
            for (row, &d) in rows.iter().zip(dists.iter()) {
                assert_eq!(d as usize, row.hamming(&query).unwrap(), "bits {bits}");
            }
        }
    }

    #[test]
    fn hamming_range_matches_full_pass() {
        let bits = 192;
        let rows: Vec<BitVec> = (2..12).map(|s| patterned(bits, s)).collect();
        let tile = PackedHashes::from_bitvecs(bits, &rows).unwrap();
        let query = patterned(bits, 3);
        let mut full = vec![0u32; tile.rows()];
        tile.hamming_into(query.words(), &mut full);
        for lo in 0..tile.rows() {
            for hi in lo..=tile.rows() {
                let mut part = vec![0u32; hi - lo];
                tile.hamming_range_into(query.words(), lo, hi, &mut part);
                assert_eq!(part.as_slice(), &full[lo..hi], "range {lo}..{hi}");
            }
        }
    }

    #[test]
    fn push_rejects_width_mismatch() {
        let mut tile = PackedHashes::new(128);
        assert!(tile.push(&BitVec::zeros(127)).is_err());
        assert!(tile.push(&BitVec::zeros(128)).is_ok());
        assert_eq!(tile.rows(), 1);
    }

    #[test]
    fn set_row_overwrites_in_place() {
        let mut tile = PackedHashes::zeroed(70, 4);
        assert_eq!(tile.rows(), 4);
        let word = patterned(70, 2);
        tile.set_row(2, &word).unwrap();
        assert_eq!(tile.row_bitvec(2), word);
        assert_eq!(tile.row_bitvec(1), BitVec::zeros(70));
        assert!(tile.set_row(4, &word).is_err());
        assert!(tile.set_row(0, &BitVec::zeros(71)).is_err());
    }

    #[test]
    fn scratch_query_needs_no_tail_mask() {
        // A query packed by pack_signs_into compares equal to the BitVec
        // path even at non-word-multiple widths, because both uphold the
        // trailing-zero invariant.
        let bits = 70usize;
        let vals: Vec<f32> = (0..bits).map(|i| (i as f32) - 35.5).collect();
        let mut scratch = vec![u64::MAX; bits.div_ceil(64)];
        crate::bitvec::pack_signs_into(&vals, &mut scratch);
        let rows = vec![patterned(bits, 3), patterned(bits, 2)];
        let tile = PackedHashes::from_bitvecs(bits, &rows).unwrap();
        let mut dists = vec![0u32; 2];
        tile.hamming_into(&scratch, &mut dists);
        let query = BitVec::from_signs(&vals);
        for (row, &d) in rows.iter().zip(dists.iter()) {
            assert_eq!(d as usize, row.hamming(&query).unwrap());
        }
    }

    #[test]
    fn hamming_words_unrolled_equals_scalar() {
        for len in [0usize, 1, 3, 4, 5, 7, 8, 16, 17] {
            let a: Vec<u64> = (0..len as u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9))
                .collect();
            let b: Vec<u64> = (0..len as u64)
                .map(|i| i.wrapping_mul(0x85EB_CA6B))
                .collect();
            let scalar: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
            assert_eq!(hamming_words(&a, &b), scalar, "len {len}");
        }
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn hamming_words_rejects_length_mismatch() {
        // A release-build contract, not a debug_assert: truncating to the
        // shorter slice would report a plausible-but-wrong distance.
        hamming_words(&[0u64; 4], &[0u64; 3]);
    }

    #[test]
    fn hamming_row_matches_range_kernel() {
        let bits = 300;
        let rows: Vec<BitVec> = (2..9).map(|s| patterned(bits, s)).collect();
        let tile = PackedHashes::from_bitvecs(bits, &rows).unwrap();
        let query = patterned(bits, 4);
        let mut dists = vec![0u32; tile.rows()];
        tile.hamming_into(query.words(), &mut dists);
        for (row, &want) in dists.iter().enumerate() {
            assert_eq!(tile.hamming_row(row, query.words()), want, "row {row}");
        }
    }

    #[test]
    fn empty_tile() {
        let tile = PackedHashes::new(256);
        assert!(tile.is_empty());
        let mut out = vec![];
        tile.hamming_into(&[0u64; 4], &mut out);
    }
}
