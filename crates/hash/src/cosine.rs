//! The paper's piecewise-linear cosine approximation (eq. 5).
//!
//! A true cosine in hardware needs LUTs or CORDIC iterations; DeepCAM
//! instead uses two linear segments plus a mirror rule, evaluated by the
//! post-processing module in a single multiply-add:
//!
//! ```text
//! cosine(θ) = 1 − θ/π            for 0     < θ ≤ π/3
//!           = −0.96·θ + 1.51     for π/3   < θ ≤ π/2
//!           = −cosine(π − θ)     for θ > π/2
//! ```
//!
//! The first segment is exact at θ=0 and intentionally coarse (the paper
//! relies on CNN error tolerance); the second tracks cos closely near
//! π/2; the mirror rule extends to obtuse angles.

/// Evaluates the paper's eq. 5 approximation.
///
/// `theta` is clamped to `[0, π]` first — Hamming-derived angles can land
/// a hair outside through floating-point noise, and physical angles are
/// bounded anyway.
///
/// # Example
///
/// ```
/// use deepcam_hash::cosine::approx_cosine;
///
/// assert!((approx_cosine(0.0) - 1.0).abs() < 1e-6);
/// assert!(approx_cosine(std::f32::consts::FRAC_PI_2).abs() < 0.01);
/// assert!((approx_cosine(std::f32::consts::PI) + 1.0).abs() < 1e-6);
/// ```
pub fn approx_cosine(theta: f32) -> f32 {
    use std::f32::consts::{FRAC_PI_2, FRAC_PI_3, PI};

    fn approx_acute(t: f32) -> f32 {
        if t <= FRAC_PI_3 {
            1.0 - t / PI
        } else {
            -0.96 * t + 1.51
        }
    }

    let t = theta.clamp(0.0, PI);
    if t > FRAC_PI_2 {
        (-approx_acute(PI - t)).clamp(-1.0, 1.0)
    } else {
        approx_acute(t).clamp(-1.0, 1.0)
    }
}

/// Exact cosine, used as the ablation reference for eq. 5.
pub fn exact_cosine(theta: f32) -> f32 {
    theta.clamp(0.0, std::f32::consts::PI).cos()
}

/// Maximum absolute error of [`approx_cosine`] against [`exact_cosine`]
/// over a uniform grid of `samples` angles in `[0, π]`.
///
/// Used by the ablation benches to quantify how much accuracy eq. 5
/// sacrifices.
pub fn max_abs_error(samples: usize) -> f32 {
    let mut worst = 0.0f32;
    for i in 0..samples {
        let theta = std::f32::consts::PI * i as f32 / (samples.max(2) - 1) as f32;
        worst = worst.max((approx_cosine(theta) - exact_cosine(theta)).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::{FRAC_PI_2, FRAC_PI_3, PI};

    #[test]
    fn endpoints() {
        assert!((approx_cosine(0.0) - 1.0).abs() < 1e-6);
        assert!((approx_cosine(PI) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn right_angle_near_zero() {
        // Segment 2 at π/2: −0.96·1.5708 + 1.51 ≈ 0.002.
        assert!(approx_cosine(FRAC_PI_2).abs() < 0.01);
    }

    #[test]
    fn first_segment_formula() {
        let t = 0.5;
        assert!((approx_cosine(t) - (1.0 - t / PI)).abs() < 1e-6);
    }

    #[test]
    fn second_segment_formula() {
        let t = 1.2; // between π/3 ≈ 1.047 and π/2 ≈ 1.571
        assert!((approx_cosine(t) - (-0.96 * t + 1.51)).abs() < 1e-6);
    }

    #[test]
    fn mirror_rule_for_obtuse() {
        for &t in &[1.8f32, 2.2, 2.8, 3.0] {
            assert!(
                (approx_cosine(t) + approx_cosine(PI - t)).abs() < 1e-6,
                "mirror failed at {t}"
            );
        }
    }

    #[test]
    fn clamps_out_of_range_angles() {
        assert_eq!(approx_cosine(-0.5), approx_cosine(0.0));
        assert_eq!(approx_cosine(4.0), approx_cosine(PI));
    }

    #[test]
    fn error_is_bounded_as_paper_assumes() {
        // The coarse first segment peaks near π/3: |1 − 1/3 − 0.5| ≈ 0.167.
        let e = max_abs_error(10_000);
        assert!(e < 0.18, "max error {e}");
        // And it is genuinely approximate, not exact.
        assert!(e > 0.1);
    }

    #[test]
    fn monotone_decreasing_within_segments() {
        // cos is decreasing on [0, π]; the approximation should be too,
        // except at the (documented) discontinuity at π/3.
        let mut prev = approx_cosine(0.0);
        for i in 1..1000 {
            let t = PI * i as f32 / 999.0;
            let cur = approx_cosine(t);
            let just_crossed_pi3 = (t - FRAC_PI_3).abs() < PI / 999.0;
            if !just_crossed_pi3 {
                assert!(cur <= prev + 1e-4, "not decreasing at θ={t}");
            }
            prev = cur;
        }
    }
}
