//! Error type for hashing and context generation.

use std::fmt;

/// Error returned by fallible operations in `deepcam-hash`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HashError {
    /// Input vector length differs from the projection's expected
    /// dimensionality.
    DimensionMismatch {
        /// Dimensionality the projection was built for.
        expected: usize,
        /// Dimensionality of the offending input.
        actual: usize,
    },
    /// Two bit vectors of different lengths were compared.
    LengthMismatch {
        /// Length of the left operand in bits.
        lhs: usize,
        /// Length of the right operand in bits.
        rhs: usize,
    },
    /// A requested hash length is invalid (zero, or exceeding the
    /// projection width when prefix hashing).
    InvalidHashLength {
        /// The offending length.
        requested: usize,
        /// The maximum allowed in this situation.
        max: usize,
    },
    /// A configuration parameter was invalid (zero dimensions etc.).
    InvalidConfig(String),
}

impl fmt::Display for HashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HashError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "input has dimension {actual}, projection expects {expected}"
                )
            }
            HashError::LengthMismatch { lhs, rhs } => {
                write!(f, "bit vector lengths differ: {lhs} vs {rhs}")
            }
            HashError::InvalidHashLength { requested, max } => {
                write!(f, "hash length {requested} invalid (max {max})")
            }
            HashError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for HashError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(HashError::DimensionMismatch {
            expected: 4,
            actual: 5
        }
        .to_string()
        .contains("projection expects 4"));
        assert!(HashError::LengthMismatch { lhs: 8, rhs: 16 }
            .to_string()
            .contains("8 vs 16"));
    }

    #[test]
    fn is_error_trait_object() {
        let e: Box<dyn std::error::Error + Send + Sync> =
            Box::new(HashError::InvalidConfig("x".into()));
        assert!(e.to_string().contains("invalid configuration"));
    }
}
