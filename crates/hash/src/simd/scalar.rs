//! Scalar XOR+popcount kernels — the always-available fallback and the
//! differential oracle every SIMD variant is tested against.
//!
//! `u64::count_ones` compiles to the hardware `popcnt` instruction on
//! every target the workspace builds for (the `-C target-cpu=native`
//! baseline), so "scalar" here means one word per operation, not a
//! bit-twiddling loop. The word loop is 4×-unrolled; widths that are a
//! multiple of 256 bits (the paper's chunk granularity) take only the
//! unrolled path.

/// Hamming distance of `query` against every `wpr`-word row of `slab`.
///
/// The slab/query/out contract (equal strides, one output slot per
/// row) is validated once by the dispatch layer in
/// [`super::hamming_range`] before any kernel runs.
pub(crate) fn hamming_range(slab: &[u64], wpr: usize, query: &[u64], out: &mut [u32]) {
    debug_assert_eq!(query.len(), wpr);
    debug_assert_eq!(slab.len(), out.len() * wpr);
    for (row_words, o) in slab.chunks_exact(wpr).zip(out.iter_mut()) {
        *o = hamming_pair(row_words, query);
    }
}

/// XOR + popcount over two equal-length word slices, 4×-unrolled.
///
/// Length equality is the caller's contract (checked by the public
/// entry points [`crate::packed::hamming_words`] and
/// [`super::hamming_pair`]); the `debug_assert!` documents it here.
#[inline]
pub(crate) fn hamming_pair(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0u32;
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        acc += (ca[0] ^ cb[0]).count_ones()
            + (ca[1] ^ cb[1]).count_ones()
            + (ca[2] ^ cb[2]).count_ones()
            + (ca[3] ^ cb[3]).count_ones();
    }
    for (&wa, &wb) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        acc += (wa ^ wb).count_ones();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrolled_equals_wordwise_reference() {
        for len in [0usize, 1, 3, 4, 5, 7, 8, 16, 17] {
            let a: Vec<u64> = (0..len as u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9))
                .collect();
            let b: Vec<u64> = (0..len as u64)
                .map(|i| i.wrapping_mul(0x85EB_CA6B))
                .collect();
            let reference: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
            assert_eq!(hamming_pair(&a, &b), reference, "len {len}");
        }
    }

    #[test]
    fn range_is_one_pair_per_row() {
        let wpr = 3;
        let slab: Vec<u64> = (0..12u64).map(|i| i * 0x0101_0101).collect();
        let query = vec![0xF0F0u64; wpr];
        let mut out = vec![0u32; 4];
        hamming_range(&slab, wpr, &query, &mut out);
        for (row, &got) in out.iter().enumerate() {
            let want = hamming_pair(&slab[row * wpr..(row + 1) * wpr], &query);
            assert_eq!(got, want, "row {row}");
        }
    }
}
