//! x86-64 Hamming kernels: AVX2 Harley–Seal popcount and AVX-512
//! `VPOPCNTDQ`.
//!
//! Selected at runtime by the dispatch table in [`super`]; the plain
//! wrapper functions at the bottom are the only entries the table
//! installs, and it installs them **only after**
//! `is_x86_feature_detected!` confirmed the features — that detection
//! is the soundness argument for every `unsafe` in this file.
//!
//! The AVX2 path is the published state of the art for this shape
//! (Muła/Kurz/Lemire, "Faster Population Counts Using AVX2
//! Instructions"): per 256-bit lane a nibble-LUT `vpshufb` popcount,
//! and across groups of four lanes a Harley–Seal carry-save adder that
//! replaces four per-lane popcounts with three plus two CSAs. The
//! AVX-512 path uses the dedicated `vpopcntq` instruction over 512-bit
//! blocks. Both paths are exact integer popcounts — bit-identical to
//! the scalar oracle by construction, and pinned against it by the
//! per-width differential suite.

#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;

// ---------------------------------------------------------------------
// AVX2: Harley–Seal carry-save popcount over 256-bit lanes.
// ---------------------------------------------------------------------

/// Unaligned 256-bit load of `words[at..at + 4]`.
#[inline]
#[target_feature(enable = "avx2")]
fn load256(words: &[u64], at: usize) -> __m256i {
    debug_assert!(at + 4 <= words.len());
    // SAFETY: the debug_assert documents the caller contract (all call
    // sites below advance `at` in bounds-checked strides of 4), the
    // source is a live `&[u64]` allocation, and `_mm256_loadu_si256`
    // has no alignment requirement — this reads 32 in-bounds bytes.
    unsafe { _mm256_loadu_si256(words.as_ptr().add(at).cast()) }
}

/// Per-byte popcount of one 256-bit lane via the nibble-LUT `vpshufb`
/// trick: each byte is split into two nibbles, both looked up in a
/// 16-entry popcount table, and the halves summed. Every output byte
/// is ≤ 8.
#[inline]
#[target_feature(enable = "avx2")]
fn popcnt_bytes(v: __m256i) -> __m256i {
    #[rustfmt::skip]
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let nibble = _mm256_set1_epi8(0x0f);
    let lo = _mm256_and_si256(v, nibble);
    let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), nibble);
    _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi))
}

/// One Harley–Seal carry-save adder step: compresses three bit vectors
/// of weight 1 into one of weight 1 (`sum`) and one of weight 2
/// (`carry`), so their popcounts satisfy
/// `pop(a) + pop(b) + pop(c) = pop(sum) + 2·pop(carry)`.
#[inline]
#[target_feature(enable = "avx2")]
fn csa(a: __m256i, b: __m256i, c: __m256i) -> (__m256i, __m256i) {
    let u = _mm256_xor_si256(a, b);
    let sum = _mm256_xor_si256(u, c);
    let carry = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
    (sum, carry)
}

/// Hamming distance between two equal-length word slices on AVX2.
///
/// Groups of four XORed lanes (16 words) go through the Harley–Seal
/// compression; remaining full lanes take the plain per-lane LUT
/// popcount; tail words (< 4) use scalar `count_ones`. Byte counts are
/// reduced to quadword sums with `vpsadbw` (maximum per-byte value
/// before reduction is 8 + 2·16 = 40, far from overflow).
#[target_feature(enable = "avx2")]
fn pair_avx2(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let zero = _mm256_setzero_si256();
    let mut qacc = zero; // four u64 partial sums
    let mut i = 0usize;
    while i + 16 <= n {
        let x0 = _mm256_xor_si256(load256(a, i), load256(b, i));
        let x1 = _mm256_xor_si256(load256(a, i + 4), load256(b, i + 4));
        let x2 = _mm256_xor_si256(load256(a, i + 8), load256(b, i + 8));
        let x3 = _mm256_xor_si256(load256(a, i + 12), load256(b, i + 12));
        // Harley–Seal: 4 weight-1 vectors → 1 weight-1 + 2 weight-2.
        let (s1, c1) = csa(x0, x1, x2);
        let (s2, c2) = csa(s1, x3, zero);
        let w1 = popcnt_bytes(s2);
        let w2 = _mm256_add_epi8(popcnt_bytes(c1), popcnt_bytes(c2));
        let bytes = _mm256_add_epi8(w1, _mm256_add_epi8(w2, w2));
        qacc = _mm256_add_epi64(qacc, _mm256_sad_epu8(bytes, zero));
        i += 16;
    }
    while i + 4 <= n {
        let x = _mm256_xor_si256(load256(a, i), load256(b, i));
        qacc = _mm256_add_epi64(qacc, _mm256_sad_epu8(popcnt_bytes(x), zero));
        i += 4;
    }
    let mut total = (_mm256_extract_epi64::<0>(qacc)
        + _mm256_extract_epi64::<1>(qacc)
        + _mm256_extract_epi64::<2>(qacc)
        + _mm256_extract_epi64::<3>(qacc)) as u32;
    while i < n {
        total += (a[i] ^ b[i]).count_ones();
        i += 1;
    }
    total
}

/// Range kernel on AVX2: one [`pair_avx2`] per contiguous row.
#[target_feature(enable = "avx2")]
fn range_avx2(slab: &[u64], wpr: usize, query: &[u64], out: &mut [u32]) {
    for (row_words, o) in slab.chunks_exact(wpr).zip(out.iter_mut()) {
        *o = pair_avx2(row_words, query);
    }
}

// ---------------------------------------------------------------------
// AVX-512: hardware per-quadword popcount (VPOPCNTDQ).
// ---------------------------------------------------------------------

/// Unaligned 512-bit load of `words[at..at + 8]`.
#[inline]
#[target_feature(enable = "avx512f")]
fn load512(words: &[u64], at: usize) -> __m512i {
    debug_assert!(at + 8 <= words.len());
    // SAFETY: the debug_assert documents the caller contract (call
    // sites advance `at` in bounds-checked strides of 8), the source is
    // a live `&[u64]` allocation, and `_mm512_loadu_si512` has no
    // alignment requirement — this reads 64 in-bounds bytes.
    unsafe { _mm512_loadu_si512(words.as_ptr().add(at).cast()) }
}

/// Hamming distance between two equal-length word slices using
/// `vpopcntq`: XOR, per-quadword hardware popcount, quadword
/// accumulate; tail words (< 8) use scalar `count_ones`.
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
fn pair_avx512(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut acc = _mm512_setzero_si512();
    let mut i = 0usize;
    while i + 8 <= n {
        let x = _mm512_xor_si512(load512(a, i), load512(b, i));
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
        i += 8;
    }
    let mut total = _mm512_reduce_add_epi64(acc) as u32;
    while i < n {
        total += (a[i] ^ b[i]).count_ones();
        i += 1;
    }
    total
}

/// Range kernel on AVX-512: one [`pair_avx512`] per contiguous row.
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
fn range_avx512(slab: &[u64], wpr: usize, query: &[u64], out: &mut [u32]) {
    for (row_words, o) in slab.chunks_exact(wpr).zip(out.iter_mut()) {
        *o = pair_avx512(row_words, query);
    }
}

// ---------------------------------------------------------------------
// Plain-ABI wrappers — the only symbols the dispatch table installs.
// ---------------------------------------------------------------------

/// [`super::hamming_range`] entry for [`super::Variant::Avx2`].
pub(super) fn hamming_range_avx2(slab: &[u64], wpr: usize, query: &[u64], out: &mut [u32]) {
    // SAFETY: the dispatch table installs this wrapper only for
    // `Variant::Avx2`, which `detected()` lists solely after
    // `is_x86_feature_detected!("avx2")` returned true on this host.
    unsafe { range_avx2(slab, wpr, query, out) }
}

/// [`super::hamming_pair`] entry for [`super::Variant::Avx2`].
pub(super) fn hamming_pair_avx2(a: &[u64], b: &[u64]) -> u32 {
    // SAFETY: installed only for `Variant::Avx2`, which `detected()`
    // lists solely after `is_x86_feature_detected!("avx2")` succeeded.
    unsafe { pair_avx2(a, b) }
}

/// [`super::hamming_range`] entry for [`super::Variant::Avx512`].
pub(super) fn hamming_range_avx512(slab: &[u64], wpr: usize, query: &[u64], out: &mut [u32]) {
    // SAFETY: installed only for `Variant::Avx512`, which `detected()`
    // lists solely after `is_x86_feature_detected!` confirmed both
    // "avx512f" and "avx512vpopcntdq" on this host.
    unsafe { range_avx512(slab, wpr, query, out) }
}

/// [`super::hamming_pair`] entry for [`super::Variant::Avx512`].
pub(super) fn hamming_pair_avx512(a: &[u64], b: &[u64]) -> u32 {
    // SAFETY: installed only for `Variant::Avx512`, which `detected()`
    // lists solely after `is_x86_feature_detected!` confirmed both
    // "avx512f" and "avx512vpopcntdq" on this host.
    unsafe { pair_avx512(a, b) }
}
