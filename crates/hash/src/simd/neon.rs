//! AArch64 NEON Hamming kernels: `vcnt` byte popcount with pairwise
//! widening accumulation.
//!
//! Selected at runtime by the dispatch table in [`super`]; the plain
//! wrapper functions at the bottom are the only entries the table
//! installs, and it installs them **only after**
//! `is_aarch64_feature_detected!("neon")` returned true — that
//! detection is the soundness argument for every `unsafe` here. Exact
//! integer popcounts, bit-identical to the scalar oracle by
//! construction and pinned by the per-width differential suite.

#![cfg(target_arch = "aarch64")]

use std::arch::aarch64::*;

/// Unaligned 128-bit load of `words[at..at + 2]`.
#[inline]
#[target_feature(enable = "neon")]
fn load128(words: &[u64], at: usize) -> uint64x2_t {
    debug_assert!(at + 2 <= words.len());
    // SAFETY: the debug_assert documents the caller contract (call
    // sites advance `at` in bounds-checked strides of 2), the source is
    // a live `&[u64]` allocation, and `vld1q_u64` tolerates unaligned
    // addresses — this reads 16 in-bounds bytes.
    unsafe { vld1q_u64(words.as_ptr().add(at)) }
}

/// Hamming distance between two equal-length word slices on NEON:
/// XOR, `vcnt` per-byte popcount, pairwise-widening accumulate
/// (`vpaddl` u8→u16→u32→u64); the odd tail word uses scalar
/// `count_ones`.
#[target_feature(enable = "neon")]
fn pair_neon(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut acc = vdupq_n_u64(0);
    let mut i = 0usize;
    while i + 2 <= n {
        let x = veorq_u64(load128(a, i), load128(b, i));
        let bytes = vcntq_u8(vreinterpretq_u8_u64(x));
        acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(bytes))));
        i += 2;
    }
    let mut total = (vgetq_lane_u64::<0>(acc) + vgetq_lane_u64::<1>(acc)) as u32;
    while i < n {
        total += (a[i] ^ b[i]).count_ones();
        i += 1;
    }
    total
}

/// Range kernel on NEON: one [`pair_neon`] per contiguous row.
#[target_feature(enable = "neon")]
fn range_neon(slab: &[u64], wpr: usize, query: &[u64], out: &mut [u32]) {
    for (row_words, o) in slab.chunks_exact(wpr).zip(out.iter_mut()) {
        *o = pair_neon(row_words, query);
    }
}

/// [`super::hamming_range`] entry for [`super::Variant::Neon`].
pub(super) fn hamming_range_neon(slab: &[u64], wpr: usize, query: &[u64], out: &mut [u32]) {
    // SAFETY: the dispatch table installs this wrapper only for
    // `Variant::Neon`, which `detected()` lists solely after
    // `is_aarch64_feature_detected!("neon")` returned true on this host.
    unsafe { range_neon(slab, wpr, query, out) }
}

/// [`super::hamming_pair`] entry for [`super::Variant::Neon`].
pub(super) fn hamming_pair_neon(a: &[u64], b: &[u64]) -> u32 {
    // SAFETY: installed only for `Variant::Neon`, which `detected()`
    // lists solely after `is_aarch64_feature_detected!("neon")`
    // succeeded on this host.
    unsafe { pair_neon(a, b) }
}
