//! Runtime-dispatched SIMD microkernels for the XOR+popcount hot path.
//!
//! The packed Hamming kernels ([`PackedHashes::hamming_into`] and
//! friends) route through this module: a *detection table* is built once
//! per process (`is_x86_feature_detected!` / NEON, cached in a
//! [`OnceLock`]) and an *active variant* is selected from it — by
//! default the most capable detected kernel, overridable with the
//! `DEEPCAM_SIMD` environment variable (`auto`, `scalar`, `avx2`,
//! `avx512`, `neon`; read once, outside the A5 kernel files).
//!
//! Every variant is an implementation of the **same exact integer
//! function** — popcounts have one right answer — so dispatch can never
//! move an output bit. The scalar kernel ([`scalar`]) is the
//! always-available fallback *and* the differential oracle: the
//! per-width scalar-vs-SIMD suite plus `tests/hotpath_reference.rs`
//! assert bitwise equality on every variant the host detects, and the
//! CI `DEEPCAM_SIMD=scalar` leg keeps the fallback exercised on
//! SIMD-capable runners.
//!
//! The dispatch cost is one relaxed atomic load per *range* call (not
//! per row), and [`force_variant`] lets benches and tests pin a variant
//! process-wide — safe to flip mid-run precisely because all variants
//! are bit-identical.
//!
//! [`PackedHashes::hamming_into`]: crate::PackedHashes::hamming_into

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

pub mod scalar;

#[cfg(target_arch = "aarch64")]
pub mod neon;
#[cfg(target_arch = "x86_64")]
pub mod x86;

/// Environment variable selecting the kernel variant (`auto` when
/// unset). Invalid or undetected values fall back to `auto` — loudly,
/// once per distinct bad value, mirroring `DEEPCAM_WORKERS`.
pub const SIMD_ENV: &str = "DEEPCAM_SIMD";

/// One implementation of the XOR+popcount kernels.
///
/// Ordered by capability: later variants are preferred by `auto`
/// selection when detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Variant {
    /// Portable `u64::count_ones` loop — always available; the
    /// differential oracle every other variant is tested against.
    Scalar,
    /// AArch64 NEON `vcnt` byte popcount with pairwise widening.
    Neon,
    /// AVX2 Harley–Seal carry-save popcount over 256-bit lanes
    /// (nibble-LUT `vpshufb` + `vpsadbw` reduction).
    Avx2,
    /// AVX-512 `VPOPCNTDQ`: hardware per-lane popcount over 512-bit
    /// blocks.
    Avx512,
}

impl Variant {
    /// The name used by `DEEPCAM_SIMD` and the bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Scalar => "scalar",
            Variant::Neon => "neon",
            Variant::Avx2 => "avx2",
            Variant::Avx512 => "avx512",
        }
    }

    fn from_name(name: &str) -> Option<Variant> {
        match name {
            "scalar" => Some(Variant::Scalar),
            "neon" => Some(Variant::Neon),
            "avx2" => Some(Variant::Avx2),
            "avx512" => Some(Variant::Avx512),
            _ => None,
        }
    }

    /// Encoding for the active-variant atomic (0 is "not yet resolved").
    fn code(self) -> u8 {
        match self {
            Variant::Scalar => 1,
            Variant::Neon => 2,
            Variant::Avx2 => 3,
            Variant::Avx512 => 4,
        }
    }

    fn from_code(code: u8) -> Option<Variant> {
        match code {
            1 => Some(Variant::Scalar),
            2 => Some(Variant::Neon),
            3 => Some(Variant::Avx2),
            4 => Some(Variant::Avx512),
            _ => None,
        }
    }
}

/// The kernel entry points of one variant. Every entry computes the
/// identical integer function; only the instructions differ.
struct Kernels {
    /// Hamming distance of `query` against every `wpr`-word row of a
    /// contiguous slab, one `u32` per row.
    range: fn(slab: &[u64], wpr: usize, query: &[u64], out: &mut [u32]),
    /// Hamming distance between two equal-length word slices.
    pair: fn(a: &[u64], b: &[u64]) -> u32,
}

/// Kernel table for `variant`. Variants that cannot exist on this
/// architecture are unreachable here because [`detected`] never lists
/// them and [`force_variant`] refuses them.
fn kernels_of(variant: Variant) -> &'static Kernels {
    const SCALAR: Kernels = Kernels {
        range: scalar::hamming_range,
        pair: scalar::hamming_pair,
    };
    #[cfg(target_arch = "x86_64")]
    const AVX2: Kernels = Kernels {
        range: x86::hamming_range_avx2,
        pair: x86::hamming_pair_avx2,
    };
    #[cfg(target_arch = "x86_64")]
    const AVX512: Kernels = Kernels {
        range: x86::hamming_range_avx512,
        pair: x86::hamming_pair_avx512,
    };
    #[cfg(target_arch = "aarch64")]
    const NEON: Kernels = Kernels {
        range: neon::hamming_range_neon,
        pair: neon::hamming_pair_neon,
    };
    match variant {
        #[cfg(target_arch = "x86_64")]
        Variant::Avx2 => &AVX2,
        #[cfg(target_arch = "x86_64")]
        Variant::Avx512 => &AVX512,
        #[cfg(target_arch = "aarch64")]
        Variant::Neon => &NEON,
        _ => &SCALAR,
    }
}

/// The variants this host supports, in ascending capability order —
/// always starts with [`Variant::Scalar`]. Detection runs once per
/// process and is cached (the `OnceLock` detection table).
pub fn detected() -> &'static [Variant] {
    static TABLE: OnceLock<Vec<Variant>> = OnceLock::new();
    TABLE.get_or_init(|| {
        #[allow(unused_mut)]
        let mut table = vec![Variant::Scalar];
        #[cfg(target_arch = "aarch64")]
        if std::arch::is_aarch64_feature_detected!("neon") {
            table.push(Variant::Neon);
        }
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") {
                table.push(Variant::Avx2);
            }
            if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vpopcntdq") {
                table.push(Variant::Avx512);
            }
        }
        table
    })
}

/// Whether `variant` is runnable on this host.
pub fn is_detected(variant: Variant) -> bool {
    detected().contains(&variant)
}

/// Resolution of the `DEEPCAM_SIMD` override, pure so every outcome is
/// unit-testable without touching the process environment: returns the
/// selected variant plus the warning to emit when `raw` is set but
/// unusable (unknown name, or a variant this host does not support).
fn resolve_env(raw: Option<&str>, table: &[Variant]) -> (Variant, Option<String>) {
    let auto = *table.last().expect("non-empty table");
    let Some(raw) = raw else { return (auto, None) };
    let trimmed = raw.trim();
    if trimmed == "auto" {
        return (auto, None);
    }
    match Variant::from_name(trimmed) {
        Some(v) if table.contains(&v) => (v, None),
        Some(v) => (
            auto,
            Some(format!(
                "warning: {SIMD_ENV}={raw:?} requests the {} kernel but this host does not \
                 support it; falling back to {} (results are bit-identical either way)",
                v.name(),
                auto.name()
            )),
        ),
        None => (
            auto,
            Some(format!(
                "warning: ignoring unknown {SIMD_ENV}={raw:?} (expected auto, scalar, avx2, \
                 avx512 or neon); falling back to {}",
                auto.name()
            )),
        ),
    }
}

/// The process-wide active variant (0 = not yet resolved). A plain
/// atomic rather than the `OnceLock` itself so [`force_variant`] can
/// re-point dispatch mid-process — safe because every variant computes
/// identical bits.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// The currently active kernel variant. First use resolves the
/// `DEEPCAM_SIMD` override against the detection table; subsequent
/// calls are one relaxed load.
pub fn active() -> Variant {
    match Variant::from_code(ACTIVE.load(Ordering::Relaxed)) {
        Some(v) => v,
        None => {
            let raw = std::env::var(SIMD_ENV).ok();
            let (variant, warning) = resolve_env(raw.as_deref(), detected());
            if let Some(msg) = warning {
                emit_env_warning_once(&msg);
            }
            // Racing first calls resolve to the same value; last store
            // wins harmlessly.
            ACTIVE.store(variant.code(), Ordering::Relaxed);
            variant
        }
    }
}

/// Pins the active variant process-wide (benches sweeping every kernel;
/// the differential suites). Returns the previously active variant, or
/// `None` — with dispatch unchanged — when `variant` is not detected on
/// this host.
pub fn force_variant(variant: Variant) -> Option<Variant> {
    if !is_detected(variant) {
        return None;
    }
    let prev = active();
    ACTIVE.store(variant.code(), Ordering::Relaxed);
    Some(prev)
}

/// Prints `msg` to stderr once per distinct message (same discipline as
/// the `DEEPCAM_WORKERS` misconfiguration warning).
fn emit_env_warning_once(msg: &str) {
    use std::sync::Mutex;
    static WARNED: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    let mut seen = WARNED
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .expect("simd env warning lock");
    if seen.iter().any(|m| m == msg) {
        return;
    }
    eprintln!("{msg}");
    seen.push(msg.to_string());
}

/// Validates the shared slab/query/out contract once, before any kernel
/// runs — every variant inherits the checked contract instead of
/// re-deriving (or forgetting) it.
#[inline]
fn check_range_contract(slab: &[u64], wpr: usize, query: &[u64], out: &mut [u32]) -> bool {
    assert_eq!(
        query.len(),
        wpr,
        "query width must match the row stride ({wpr} words)"
    );
    if wpr == 0 {
        // Zero-width rows: every distance is zero by definition.
        out.fill(0);
        return false;
    }
    assert_eq!(
        slab.len(),
        out.len() * wpr,
        "slab must hold exactly one stride per output slot"
    );
    true
}

/// Dispatched range kernel: Hamming distance of `query` against every
/// `wpr`-word row of `slab` (one `u32` per row, row order preserved).
///
/// # Panics
///
/// Panics when `query` is not exactly `wpr` words or `slab` is not
/// exactly `out.len() * wpr` words.
#[inline]
pub fn hamming_range(slab: &[u64], wpr: usize, query: &[u64], out: &mut [u32]) {
    if check_range_contract(slab, wpr, query, out) {
        (kernels_of(active()).range)(slab, wpr, query, out);
    }
}

/// [`hamming_range`] pinned to an explicit variant — the differential
/// suites compare every detected variant against the scalar oracle
/// through this entry without mutating process-wide dispatch.
///
/// # Panics
///
/// Panics when `variant` is not detected on this host, or on the same
/// contract violations as [`hamming_range`].
pub fn hamming_range_with(
    variant: Variant,
    slab: &[u64],
    wpr: usize,
    query: &[u64],
    out: &mut [u32],
) {
    assert!(
        is_detected(variant),
        "variant {} is not supported on this host",
        variant.name()
    );
    if check_range_contract(slab, wpr, query, out) {
        (kernels_of(variant).range)(slab, wpr, query, out);
    }
}

/// Dispatched single-pair kernel: Hamming distance between two
/// equal-length word slices (the occupancy-skip path of the CAM array).
///
/// # Panics
///
/// Panics when the slices differ in length.
#[inline]
pub fn hamming_pair(a: &[u64], b: &[u64]) -> u32 {
    assert_eq!(a.len(), b.len(), "word slices must be equal length");
    (kernels_of(active()).pair)(a, b)
}

/// [`hamming_pair`] pinned to an explicit variant.
///
/// # Panics
///
/// Panics when `variant` is not detected on this host or the slices
/// differ in length.
pub fn hamming_pair_with(variant: Variant, a: &[u64], b: &[u64]) -> u32 {
    assert!(
        is_detected(variant),
        "variant {} is not supported on this host",
        variant.name()
    );
    assert_eq!(a.len(), b.len(), "word slices must be equal length");
    (kernels_of(variant).pair)(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_table_starts_with_scalar() {
        let table = detected();
        assert_eq!(table.first(), Some(&Variant::Scalar));
        // Ascending capability order, no duplicates.
        for pair in table.windows(2) {
            assert!(pair[0] < pair[1], "table out of order: {table:?}");
        }
    }

    #[test]
    fn env_resolution_rules() {
        let table = [Variant::Scalar, Variant::Avx2];
        // Unset and auto pick the most capable detected variant.
        assert_eq!(resolve_env(None, &table), (Variant::Avx2, None));
        assert_eq!(resolve_env(Some("auto"), &table), (Variant::Avx2, None));
        // A detected variant is honored (whitespace tolerated).
        assert_eq!(
            resolve_env(Some(" scalar "), &table),
            (Variant::Scalar, None)
        );
        assert_eq!(resolve_env(Some("avx2"), &table), (Variant::Avx2, None));
        // Known but undetected: fall back loudly.
        let (v, warn) = resolve_env(Some("avx512"), &table);
        assert_eq!(v, Variant::Avx2);
        assert!(warn.is_some_and(|w| w.contains("avx512")));
        // Unknown name: fall back loudly.
        let (v, warn) = resolve_env(Some("sse9"), &table);
        assert_eq!(v, Variant::Avx2);
        assert!(warn.is_some_and(|w| w.contains("unknown")));
    }

    #[test]
    fn force_variant_round_trips() {
        let initial = active();
        let prev = force_variant(Variant::Scalar).expect("scalar is always detected");
        assert_eq!(prev, initial);
        assert_eq!(active(), Variant::Scalar);
        force_variant(initial).expect("restoring a detected variant");
        assert_eq!(active(), initial);
    }

    #[test]
    fn force_variant_refuses_undetected() {
        // At most one of these can be detected on any real host; an
        // undetected one must leave dispatch untouched.
        let before = active();
        for v in [Variant::Avx2, Variant::Avx512, Variant::Neon] {
            if !is_detected(v) {
                assert_eq!(force_variant(v), None);
                assert_eq!(active(), before);
            }
        }
    }

    #[test]
    fn names_round_trip() {
        for v in [
            Variant::Scalar,
            Variant::Neon,
            Variant::Avx2,
            Variant::Avx512,
        ] {
            assert_eq!(Variant::from_name(v.name()), Some(v));
            assert_eq!(Variant::from_code(v.code()), Some(v));
        }
        assert_eq!(Variant::from_name("turbo"), None);
        assert_eq!(Variant::from_code(0), None);
    }

    #[test]
    fn zero_width_rows_have_zero_distance() {
        let mut out = [7u32; 3];
        hamming_range(&[], 0, &[], &mut out);
        assert_eq!(out, [0, 0, 0]);
    }

    #[test]
    fn every_detected_variant_matches_scalar_on_a_smoke_slab() {
        let wpr = 5;
        let slab: Vec<u64> = (0..40u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let query: Vec<u64> = (0..wpr as u64)
            .map(|i| !i.wrapping_mul(0x85EB_CA6B))
            .collect();
        let mut want = vec![0u32; slab.len() / wpr];
        hamming_range_with(Variant::Scalar, &slab, wpr, &query, &mut want);
        for &v in detected() {
            let mut got = vec![0u32; want.len()];
            hamming_range_with(v, &slab, wpr, &query, &mut got);
            assert_eq!(got, want, "variant {}", v.name());
            for (row, &w) in want.iter().enumerate() {
                let a = &slab[row * wpr..(row + 1) * wpr];
                assert_eq!(
                    hamming_pair_with(v, a, &query),
                    w,
                    "variant {} row {row}",
                    v.name()
                );
            }
        }
    }
}
