//! Gaussian random-projection matrices (the paper's `C ∈ R^{n×k}`).

use deepcam_tensor::rng::{seeded_rng, standard_normal};
use serde::{Deserialize, Serialize};

use crate::bitvec::BitVec;
use crate::error::HashError;
use crate::Result;

/// A dense Gaussian projection matrix `C ∈ R^{n×k}` with entries drawn
/// i.i.d. from `N(0, 1)`, stored row-major (`n` rows of `k` columns).
///
/// In the accelerator this matrix is *fixed at deploy time*: the software
/// context generator uses it to hash pre-trained weights and input images,
/// and the on-chip NVM crossbar of the transformation module encodes the
/// same values as synaptic weights for on-the-fly activation hashing
/// (paper §III-C). Determinism therefore matters — the matrix is
/// reconstructable from `(input_dim, hash_len, seed)`.
///
/// # Example
///
/// ```
/// use deepcam_hash::ProjectionMatrix;
///
/// let p = ProjectionMatrix::generate(16, 256, 1);
/// let h = p.hash(&[0.5; 16])?;
/// assert_eq!(h.len(), 256);
/// # Ok::<(), deepcam_hash::HashError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProjectionMatrix {
    input_dim: usize,
    hash_len: usize,
    seed: u64,
    /// Row-major `[input_dim * hash_len]`.
    data: Vec<f32>,
}

impl ProjectionMatrix {
    /// Samples a fresh `n×k` projection from `N(0,1)` with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim` or `hash_len` is zero.
    pub fn generate(input_dim: usize, hash_len: usize, seed: u64) -> Self {
        assert!(input_dim > 0, "projection input_dim must be > 0");
        assert!(hash_len > 0, "projection hash_len must be > 0");
        let mut rng = seeded_rng(seed);
        let data = (0..input_dim * hash_len)
            .map(|_| standard_normal(&mut rng) as f32)
            .collect();
        ProjectionMatrix {
            input_dim,
            hash_len,
            seed,
            data,
        }
    }

    /// Input dimensionality `n`.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hash width `k`.
    pub fn hash_len(&self) -> usize {
        self.hash_len
    }

    /// Seed the matrix was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Row `i` of the matrix (the hyperplane coefficients fed by input
    /// element `i`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= input_dim`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.hash_len..(i + 1) * self.hash_len]
    }

    /// Computes the raw projection `x·C ∈ R^k` (before the sign).
    ///
    /// Exposed separately because the on-chip crossbar model in
    /// `deepcam-core` needs the analog pre-sign values to inject device
    /// noise before the sense amplifiers take the sign.
    ///
    /// # Errors
    ///
    /// Returns [`HashError::DimensionMismatch`] when `x.len() !=
    /// input_dim`.
    pub fn project(&self, x: &[f32]) -> Result<Vec<f32>> {
        if x.len() != self.input_dim {
            return Err(HashError::DimensionMismatch {
                expected: self.input_dim,
                actual: x.len(),
            });
        }
        let mut acc = vec![0.0f32; self.hash_len];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (a, &c) in acc.iter_mut().zip(row.iter()) {
                *a += xi * c;
            }
        }
        Ok(acc)
    }

    /// Materializes the matrix as an `[n, k]` tensor for batched
    /// projection via GEMM.
    ///
    /// The functional engine projects thousands of im2col patches per
    /// layer; `patches [P, n] · C [n, k]` through
    /// [`deepcam_tensor::Tensor::matmul`] is far faster than row-by-row
    /// [`ProjectionMatrix::project`] calls.
    pub fn to_tensor(&self) -> deepcam_tensor::Tensor {
        deepcam_tensor::Tensor::from_vec(
            self.data.clone(),
            deepcam_tensor::Shape::new(&[self.input_dim, self.hash_len]),
        )
        .expect("projection buffer volume matches its shape")
    }

    /// Hashes `x` to `k` sign bits: `hash(x) = sign(x·C)`.
    ///
    /// # Errors
    ///
    /// Returns [`HashError::DimensionMismatch`] when `x.len() !=
    /// input_dim`.
    pub fn hash(&self, x: &[f32]) -> Result<BitVec> {
        Ok(BitVec::from_signs(&self.project(x)?))
    }

    /// Hashes `x` and truncates to the first `k` bits (variable hash
    /// length via prefix truncation).
    ///
    /// # Errors
    ///
    /// Returns [`HashError::InvalidHashLength`] if `k > hash_len`, plus
    /// the errors of [`ProjectionMatrix::hash`].
    pub fn hash_prefix(&self, x: &[f32], k: usize) -> Result<BitVec> {
        if k > self.hash_len {
            return Err(HashError::InvalidHashLength {
                requested: k,
                max: self.hash_len,
            });
        }
        self.hash(x)?.prefix(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = ProjectionMatrix::generate(8, 64, 5);
        let b = ProjectionMatrix::generate(8, 64, 5);
        assert_eq!(a.data, b.data);
        let c = ProjectionMatrix::generate(8, 64, 6);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn entries_look_standard_normal() {
        let p = ProjectionMatrix::generate(100, 500, 7);
        let n = p.data.len() as f64;
        let mean = p.data.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = p
            .data
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn project_is_linear() {
        let p = ProjectionMatrix::generate(4, 32, 1);
        let x = [1.0, -2.0, 0.5, 3.0];
        let y = [0.3, 0.7, -1.1, 0.0];
        let px = p.project(&x).unwrap();
        let py = p.project(&y).unwrap();
        let sum: Vec<f32> = x.iter().zip(y.iter()).map(|(a, b)| a + b).collect();
        let psum = p.project(&sum).unwrap();
        for i in 0..32 {
            assert!((psum[i] - (px[i] + py[i])).abs() < 1e-4);
        }
    }

    #[test]
    fn hash_is_scale_invariant() {
        // sign(αx·C) == sign(x·C) for α > 0 — the geometric dot-product
        // only sees direction, magnitude goes through the norms.
        let p = ProjectionMatrix::generate(6, 128, 9);
        let x = [0.2, -0.4, 0.8, 0.1, -0.9, 0.5];
        let scaled: Vec<f32> = x.iter().map(|v| v * 37.5).collect();
        assert_eq!(p.hash(&x).unwrap(), p.hash(&scaled).unwrap());
    }

    #[test]
    fn opposite_vectors_hash_to_complements() {
        let p = ProjectionMatrix::generate(5, 256, 2);
        let x = [0.1, 0.9, -0.3, 0.7, -0.2];
        let neg: Vec<f32> = x.iter().map(|v| -v).collect();
        let hx = p.hash(&x).unwrap();
        let hn = p.hash(&neg).unwrap();
        // Sign flips everywhere except exact zeros of the projection
        // (probability ~0 for continuous draws).
        assert_eq!(hx.hamming(&hn).unwrap(), 256);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let p = ProjectionMatrix::generate(4, 16, 0);
        assert!(p.project(&[1.0; 3]).is_err());
        assert!(p.hash(&[1.0; 5]).is_err());
    }

    #[test]
    fn hash_prefix_truncates() {
        let p = ProjectionMatrix::generate(4, 64, 3);
        let x = [0.4, -0.2, 0.9, 0.1];
        let full = p.hash(&x).unwrap();
        let pre = p.hash_prefix(&x, 40).unwrap();
        assert_eq!(pre.len(), 40);
        for i in 0..40 {
            assert_eq!(pre.get(i), full.get(i));
        }
        assert!(p.hash_prefix(&x, 65).is_err());
    }
}
