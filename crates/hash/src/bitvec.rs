//! Packed bit vectors with fast Hamming distance.
//!
//! A [`BitVec`] is the software representation of one CAM word: the k-bit
//! hashed binary datum of a context. Hamming distance — the quantity the
//! FeFET CAM senses in O(1) on its match lines — is XOR + popcount here.

use serde::{Deserialize, Serialize};

use crate::error::HashError;
use crate::Result;

const WORD_BITS: usize = 64;

/// A fixed-length packed bit vector.
///
/// # Example
///
/// ```
/// use deepcam_hash::BitVec;
///
/// let a = BitVec::from_bools(&[true, false, true, true]);
/// let b = BitVec::from_bools(&[true, true, true, false]);
/// assert_eq!(a.hamming(&b)?, 2);
/// # Ok::<(), deepcam_hash::HashError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Builds a bit vector from booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Builds a bit vector from the signs of `values`: bit `i` is 1 when
    /// `values[i] >= 0`.
    ///
    /// This is the `sign(·)` step of the paper's `hash(x) = sign(xC)`;
    /// zero maps to 1, the convention used throughout the reproduction.
    pub fn from_signs(values: &[f32]) -> Self {
        let mut v = BitVec::zeros(values.len());
        for (i, &x) in values.iter().enumerate() {
            if x >= 0.0 {
                v.set(i, true);
            }
        }
        v
    }

    /// Length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The underlying 64-bit words (low bits first; trailing bits of the
    /// last word are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Hamming distance between two equal-length vectors.
    ///
    /// # Errors
    ///
    /// Returns [`HashError::LengthMismatch`] when the lengths differ.
    pub fn hamming(&self, other: &BitVec) -> Result<usize> {
        if self.len != other.len {
            return Err(HashError::LengthMismatch {
                lhs: self.len,
                rhs: other.len,
            });
        }
        Ok(self
            .words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum())
    }

    /// Hamming distance over only the first `k` bits of both vectors.
    ///
    /// Supports the *variable hash length* strategy: a context hashed once
    /// at the maximum width can be compared at any shorter width by
    /// truncation, exactly like disabling CAM chunks via transmission
    /// gates.
    ///
    /// # Errors
    ///
    /// Returns [`HashError::InvalidHashLength`] if `k` exceeds either
    /// vector.
    pub fn hamming_prefix(&self, other: &BitVec, k: usize) -> Result<usize> {
        if k > self.len || k > other.len {
            return Err(HashError::InvalidHashLength {
                requested: k,
                max: self.len.min(other.len),
            });
        }
        let full_words = k / WORD_BITS;
        let mut dist: usize = self
            .words
            .iter()
            .zip(other.words.iter())
            .take(full_words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum();
        let rem = k % WORD_BITS;
        if rem > 0 {
            let mask = (1u64 << rem) - 1;
            dist +=
                ((self.words[full_words] ^ other.words[full_words]) & mask).count_ones() as usize;
        }
        Ok(dist)
    }

    /// Returns a new vector holding the first `k` bits.
    ///
    /// # Errors
    ///
    /// Returns [`HashError::InvalidHashLength`] if `k > len`.
    pub fn prefix(&self, k: usize) -> Result<BitVec> {
        if k > self.len {
            return Err(HashError::InvalidHashLength {
                requested: k,
                max: self.len,
            });
        }
        let mut out = BitVec::zeros(k);
        let full_words = k / WORD_BITS;
        out.words[..full_words].copy_from_slice(&self.words[..full_words]);
        let rem = k % WORD_BITS;
        if rem > 0 {
            out.words[full_words] = self.words[full_words] & ((1u64 << rem) - 1);
        }
        Ok(out)
    }

    /// Iterates over the bits as booleans.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Flips bit `i` in place (used by fault-injection tests and the
    /// crossbar device-noise model).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn flip(&mut self, i: usize) {
        let cur = self.get(i);
        self.set(i, !cur);
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        BitVec::from_bools(&bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let v = BitVec::zeros(100);
        assert_eq!(v.len(), 100);
        assert_eq!(v.count_ones(), 0);
        assert!(!v.is_empty());
        assert!(BitVec::zeros(0).is_empty());
    }

    #[test]
    fn set_get_round_trip() {
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(63) && !v.get(128));
        assert_eq!(v.count_ones(), 3);
        v.set(64, false);
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn from_signs_convention() {
        let v = BitVec::from_signs(&[1.0, -0.5, 0.0, -0.0]);
        // Zero (and negative zero, which is >= 0.0 in IEEE comparison)
        // maps to 1.
        assert!(v.get(0));
        assert!(!v.get(1));
        assert!(v.get(2));
        assert!(v.get(3));
    }

    #[test]
    fn hamming_basic() {
        let a = BitVec::from_bools(&[true, true, false, false]);
        let b = BitVec::from_bools(&[true, false, true, false]);
        assert_eq!(a.hamming(&b).unwrap(), 2);
        assert_eq!(a.hamming(&a).unwrap(), 0);
    }

    #[test]
    fn hamming_across_word_boundary() {
        let mut a = BitVec::zeros(200);
        let mut b = BitVec::zeros(200);
        for i in (0..200).step_by(7) {
            a.set(i, true);
        }
        for i in (0..200).step_by(13) {
            b.set(i, true);
        }
        // Reference via per-bit comparison.
        let expected = (0..200).filter(|&i| a.get(i) != b.get(i)).count();
        assert_eq!(a.hamming(&b).unwrap(), expected);
    }

    #[test]
    fn hamming_rejects_length_mismatch() {
        let a = BitVec::zeros(8);
        let b = BitVec::zeros(9);
        assert!(matches!(
            a.hamming(&b),
            Err(HashError::LengthMismatch { lhs: 8, rhs: 9 })
        ));
    }

    #[test]
    fn hamming_prefix_equals_truncated() {
        let mut a = BitVec::zeros(300);
        let mut b = BitVec::zeros(300);
        for i in (1..300).step_by(3) {
            a.set(i, true);
        }
        for i in (1..300).step_by(5) {
            b.set(i, true);
        }
        for &k in &[0usize, 1, 63, 64, 65, 128, 256, 300] {
            let fast = a.hamming_prefix(&b, k).unwrap();
            let slow = a.prefix(k).unwrap().hamming(&b.prefix(k).unwrap()).unwrap();
            assert_eq!(fast, slow, "k={k}");
        }
    }

    #[test]
    fn prefix_bounds_checked() {
        let a = BitVec::zeros(10);
        assert!(a.prefix(11).is_err());
        assert!(a.hamming_prefix(&a, 11).is_err());
    }

    #[test]
    fn flip_toggles() {
        let mut v = BitVec::zeros(4);
        v.flip(2);
        assert!(v.get(2));
        v.flip(2);
        assert!(!v.get(2));
    }

    #[test]
    fn from_iterator() {
        let v: BitVec = (0..10).map(|i| i % 2 == 0).collect();
        assert_eq!(v.count_ones(), 5);
    }
}
