//! Packed bit vectors with fast Hamming distance.
//!
//! A [`BitVec`] is the software representation of one CAM word: the k-bit
//! hashed binary datum of a context. Hamming distance — the quantity the
//! FeFET CAM senses in O(1) on its match lines — is XOR + popcount here.

use serde::{Deserialize, Serialize};

use crate::error::HashError;
use crate::Result;

const WORD_BITS: usize = 64;

/// Mask with the low `n` bits set (`n` saturates at 64).
///
/// **The** masked-tail primitive of the workspace: every place that
/// needs "the valid bits of a partially-filled word" — prefix Hamming,
/// prefix truncation, the packed-tile decode revalidation
/// ([`crate::PackedHashes`]), the CAM occupancy-range masking — derives
/// its mask from this one function, so a future width bug cannot
/// diverge between the scalar and SIMD paths. (The SIMD kernels
/// themselves need no tail mask at all: they rely on the trailing-zero
/// invariant every builder here upholds.)
#[inline]
pub const fn low_mask(n: usize) -> u64 {
    if n >= WORD_BITS {
        !0u64
    } else {
        (1u64 << n) - 1
    }
}

/// Mask of the *invalid* trailing bits of the last word of a
/// `bits`-wide row: zero when the width fills its words exactly. The
/// complement view of [`low_mask`] used to **check** the trailing-zero
/// invariant (`word & tail_garbage_mask(bits) == 0`).
#[inline]
pub const fn tail_garbage_mask(bits: usize) -> u64 {
    let rem = bits % WORD_BITS;
    if rem == 0 {
        0
    } else {
        !low_mask(rem)
    }
}

/// A fixed-length packed bit vector.
///
/// # Example
///
/// ```
/// use deepcam_hash::BitVec;
///
/// let a = BitVec::from_bools(&[true, false, true, true]);
/// let b = BitVec::from_bools(&[true, true, true, false]);
/// assert_eq!(a.hamming(&b)?, 2);
/// # Ok::<(), deepcam_hash::HashError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Builds a bit vector from booleans.
    ///
    /// Whole 64-bit words are assembled at a time — no per-bit bounds
    /// checks — because this sits on the context-generation path for
    /// every stored hash. A proptest pins word-wise packing against the
    /// per-bit [`BitVec::set`] reference.
    pub fn from_bools(bits: &[bool]) -> Self {
        Self::pack_words(bits, |chunk| {
            let mut word = 0u64;
            for (b, &bit) in chunk.iter().enumerate() {
                word |= u64::from(bit) << b;
            }
            word
        })
    }

    /// Builds a bit vector from the signs of `values`: bit `i` is 1 when
    /// `values[i] >= 0`.
    ///
    /// This is the `sign(·)` step of the paper's `hash(x) = sign(xC)`;
    /// zero maps to 1, the convention used throughout the reproduction.
    /// Like [`BitVec::from_bools`], it packs whole words at a time.
    pub fn from_signs(values: &[f32]) -> Self {
        Self::pack_words(values, sign_word)
    }

    /// Builds a bit vector by mapping each ≤64-element input chunk to one
    /// packed word (low bits first; the final chunk may be short and its
    /// word must leave the unused high bits zero — every builder upholds
    /// the trailing-zero invariant [`PackedHashes`](crate::PackedHashes)
    /// and `hamming` rely on).
    fn pack_words<T>(items: &[T], word_of: impl Fn(&[T]) -> u64) -> Self {
        let words = items.chunks(WORD_BITS).map(word_of).collect();
        BitVec {
            len: items.len(),
            words,
        }
    }

    /// Length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The underlying 64-bit words (low bits first; trailing bits of the
    /// last word are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Hamming distance between two equal-length vectors.
    ///
    /// # Errors
    ///
    /// Returns [`HashError::LengthMismatch`] when the lengths differ.
    pub fn hamming(&self, other: &BitVec) -> Result<usize> {
        if self.len != other.len {
            return Err(HashError::LengthMismatch {
                lhs: self.len,
                rhs: other.len,
            });
        }
        Ok(self
            .words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum())
    }

    /// Hamming distance over only the first `k` bits of both vectors.
    ///
    /// Supports the *variable hash length* strategy: a context hashed once
    /// at the maximum width can be compared at any shorter width by
    /// truncation, exactly like disabling CAM chunks via transmission
    /// gates.
    ///
    /// # Errors
    ///
    /// Returns [`HashError::InvalidHashLength`] if `k` exceeds either
    /// vector.
    pub fn hamming_prefix(&self, other: &BitVec, k: usize) -> Result<usize> {
        if k > self.len || k > other.len {
            return Err(HashError::InvalidHashLength {
                requested: k,
                max: self.len.min(other.len),
            });
        }
        let full_words = k / WORD_BITS;
        let mut dist: usize = self
            .words
            .iter()
            .zip(other.words.iter())
            .take(full_words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum();
        let rem = k % WORD_BITS;
        if rem > 0 {
            let mask = low_mask(rem);
            dist +=
                ((self.words[full_words] ^ other.words[full_words]) & mask).count_ones() as usize;
        }
        Ok(dist)
    }

    /// Returns a new vector holding the first `k` bits.
    ///
    /// # Errors
    ///
    /// Returns [`HashError::InvalidHashLength`] if `k > len`.
    pub fn prefix(&self, k: usize) -> Result<BitVec> {
        if k > self.len {
            return Err(HashError::InvalidHashLength {
                requested: k,
                max: self.len,
            });
        }
        let mut out = BitVec::zeros(k);
        let full_words = k / WORD_BITS;
        out.words[..full_words].copy_from_slice(&self.words[..full_words]);
        let rem = k % WORD_BITS;
        if rem > 0 {
            out.words[full_words] = self.words[full_words] & low_mask(rem);
        }
        Ok(out)
    }

    /// Iterates over the bits as booleans.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Flips bit `i` in place (used by fault-injection tests and the
    /// crossbar device-noise model).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn flip(&mut self, i: usize) {
        let cur = self.get(i);
        self.set(i, !cur);
    }
}

/// Packs one ≤64-element chunk of floats into a sign word (bit `b` set
/// when `chunk[b] >= 0.0`, matching [`BitVec::from_signs`]).
///
/// Full 64-element chunks take a two-stage path built for the
/// vectorizer: the comparisons are materialized as 0/1 bytes (a SIMD
/// compare), then each 8-byte group is collapsed to 8 bits with one
/// multiply — `M = 0x0102_0408_1020_4080` places byte `j`'s LSB at bit
/// `56 + j`, and since `8j − 7i = c` has at most one solution per `c`
/// over `0..8`², every product bit position receives at most one
/// contribution, so no carries can corrupt the top byte. The serial
/// shift-or loop (kept for tails) has a 64-deep OR dependency chain;
/// this path replaces it with ~5 ops per 8 elements.
fn sign_word(chunk: &[f32]) -> u64 {
    const WORD: usize = 64;
    const MAGIC: u64 = 0x0102_0408_1020_4080;
    if chunk.len() == WORD {
        let mut bytes = [0u8; WORD];
        for (d, &x) in bytes.iter_mut().zip(chunk.iter()) {
            *d = u8::from(x >= 0.0);
        }
        let mut word = 0u64;
        for (g, group) in bytes.chunks_exact(8).enumerate() {
            let lanes = u64::from_le_bytes(group.try_into().expect("8-byte group"));
            word |= (lanes.wrapping_mul(MAGIC) >> 56) << (8 * g);
        }
        return word;
    }
    let mut word = 0u64;
    for (b, &x) in chunk.iter().enumerate() {
        word |= u64::from(x >= 0.0) << b;
    }
    word
}

/// Packs the signs of `values` directly into a caller-provided word
/// buffer — the allocation-free twin of [`BitVec::from_signs`] used by
/// the inference hot loop to build query hashes in reusable scratch.
///
/// `out` must hold exactly `values.len().div_ceil(64)` words; unused high
/// bits of the final word are written zero, so the buffer satisfies the
/// same trailing-zero invariant as a [`BitVec`] and can be compared
/// against packed storage without tail masking.
///
/// # Panics
///
/// Panics when `out` has the wrong length.
// analyze: alloc-free
pub fn pack_signs_into(values: &[f32], out: &mut [u64]) {
    assert_eq!(
        out.len(),
        values.len().div_ceil(WORD_BITS),
        "sign word buffer must match the value count"
    );
    for (w, chunk) in out.iter_mut().zip(values.chunks(WORD_BITS)) {
        *w = sign_word(chunk);
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        BitVec::from_bools(&bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let v = BitVec::zeros(100);
        assert_eq!(v.len(), 100);
        assert_eq!(v.count_ones(), 0);
        assert!(!v.is_empty());
        assert!(BitVec::zeros(0).is_empty());
    }

    #[test]
    fn set_get_round_trip() {
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(63) && !v.get(128));
        assert_eq!(v.count_ones(), 3);
        v.set(64, false);
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn from_signs_convention() {
        let v = BitVec::from_signs(&[1.0, -0.5, 0.0, -0.0]);
        // Zero (and negative zero, which is >= 0.0 in IEEE comparison)
        // maps to 1.
        assert!(v.get(0));
        assert!(!v.get(1));
        assert!(v.get(2));
        assert!(v.get(3));
    }

    #[test]
    fn hamming_basic() {
        let a = BitVec::from_bools(&[true, true, false, false]);
        let b = BitVec::from_bools(&[true, false, true, false]);
        assert_eq!(a.hamming(&b).unwrap(), 2);
        assert_eq!(a.hamming(&a).unwrap(), 0);
    }

    #[test]
    fn hamming_across_word_boundary() {
        let mut a = BitVec::zeros(200);
        let mut b = BitVec::zeros(200);
        for i in (0..200).step_by(7) {
            a.set(i, true);
        }
        for i in (0..200).step_by(13) {
            b.set(i, true);
        }
        // Reference via per-bit comparison.
        let expected = (0..200).filter(|&i| a.get(i) != b.get(i)).count();
        assert_eq!(a.hamming(&b).unwrap(), expected);
    }

    #[test]
    fn hamming_rejects_length_mismatch() {
        let a = BitVec::zeros(8);
        let b = BitVec::zeros(9);
        assert!(matches!(
            a.hamming(&b),
            Err(HashError::LengthMismatch { lhs: 8, rhs: 9 })
        ));
    }

    #[test]
    fn hamming_prefix_equals_truncated() {
        let mut a = BitVec::zeros(300);
        let mut b = BitVec::zeros(300);
        for i in (1..300).step_by(3) {
            a.set(i, true);
        }
        for i in (1..300).step_by(5) {
            b.set(i, true);
        }
        for &k in &[0usize, 1, 63, 64, 65, 128, 256, 300] {
            let fast = a.hamming_prefix(&b, k).unwrap();
            let slow = a.prefix(k).unwrap().hamming(&b.prefix(k).unwrap()).unwrap();
            assert_eq!(fast, slow, "k={k}");
        }
    }

    #[test]
    fn prefix_bounds_checked() {
        let a = BitVec::zeros(10);
        assert!(a.prefix(11).is_err());
        assert!(a.hamming_prefix(&a, 11).is_err());
    }

    #[test]
    fn flip_toggles() {
        let mut v = BitVec::zeros(4);
        v.flip(2);
        assert!(v.get(2));
        v.flip(2);
        assert!(!v.get(2));
    }

    #[test]
    fn from_iterator() {
        let v: BitVec = (0..10).map(|i| i % 2 == 0).collect();
        assert_eq!(v.count_ones(), 5);
    }

    /// Per-bit reference builder: what `from_bools` did before word-wise
    /// packing. The fast builders must agree with it exactly.
    fn from_bools_bitwise(bits: &[bool]) -> BitVec {
        let mut v = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    #[test]
    fn wordwise_builders_match_bitwise_at_word_boundaries() {
        for len in [0usize, 1, 63, 64, 65, 127, 128, 129, 256] {
            let bools: Vec<bool> = (0..len).map(|i| (i * 7 + 3) % 5 < 2).collect();
            assert_eq!(
                BitVec::from_bools(&bools),
                from_bools_bitwise(&bools),
                "len {len}"
            );
            let vals: Vec<f32> = (0..len)
                .map(|i| (i as f32 - len as f32 / 2.0) * 0.3)
                .collect();
            let signs: Vec<bool> = vals.iter().map(|&x| x >= 0.0).collect();
            assert_eq!(
                BitVec::from_signs(&vals),
                from_bools_bitwise(&signs),
                "len {len}"
            );
        }
    }

    #[test]
    fn pack_signs_into_matches_from_signs() {
        for len in [1usize, 5, 64, 100, 192, 200] {
            let vals: Vec<f32> = (0..len).map(|i| ((i * 13) % 7) as f32 - 3.0).collect();
            let reference = BitVec::from_signs(&vals);
            let mut words = vec![0xFFFF_FFFF_FFFF_FFFFu64; len.div_ceil(WORD_BITS)];
            pack_signs_into(&vals, &mut words);
            assert_eq!(words.as_slice(), reference.words(), "len {len}");
        }
    }

    #[test]
    #[should_panic(expected = "sign word buffer")]
    fn pack_signs_into_rejects_wrong_buffer() {
        let mut words = vec![0u64; 1];
        pack_signs_into(&[1.0; 65], &mut words);
    }

    #[test]
    fn mask_helpers_partition_the_word() {
        for bits in [0usize, 1, 5, 63, 64, 65, 127, 128, 200, 256] {
            let rem = bits % WORD_BITS;
            // low_mask of the remainder and the garbage mask partition
            // the 64-bit word exactly (garbage is empty at multiples).
            if rem == 0 {
                assert_eq!(tail_garbage_mask(bits), 0, "bits {bits}");
            } else {
                assert_eq!(
                    low_mask(rem) ^ tail_garbage_mask(bits),
                    !0u64,
                    "bits {bits}"
                );
                assert_eq!(low_mask(rem) & tail_garbage_mask(bits), 0, "bits {bits}");
                assert_eq!(low_mask(rem).count_ones() as usize, rem, "bits {bits}");
            }
        }
        // Saturation: 64 (and beyond) keeps every bit.
        assert_eq!(low_mask(64), !0u64);
        assert_eq!(low_mask(200), !0u64);
        assert_eq!(low_mask(0), 0);
    }

    #[test]
    fn builders_leave_trailing_bits_zero() {
        // The trailing-zero invariant is what lets hamming and the packed
        // microkernels skip tail masking.
        let v = BitVec::from_bools(&[true; 70]);
        assert_eq!(v.words()[1] >> 6, 0);
        let s = BitVec::from_signs(&[1.0f32; 70]);
        assert_eq!(s.words()[1] >> 6, 0);
    }
}
