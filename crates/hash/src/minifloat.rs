//! 8-bit minifloat (1-4-3) for L2 norms.
//!
//! The paper stores each context's L2 norm "with 8-bit minifloat
//! representation" (§III-A, citing Ristretto). This module implements a
//! 1-sign / 4-exponent / 3-mantissa format with IEEE-style subnormals,
//! round-to-nearest-even, and saturation to the maximum finite value —
//! there are no infinities or NaNs in the hardware datapath, so the
//! encoder never produces them.
//!
//! Layout: `s eeee mmm`, exponent bias 7.
//!
//! * normal numbers: `(-1)^s · 2^(e-7) · (1 + m/8)`, e ∈ [1, 15]
//! * subnormals (e = 0): `(-1)^s · 2^(-6) · (m/8)`
//! * max finite: `2^8 · 1.875 = 480.0`; min positive subnormal: `2^-9`

use serde::{Deserialize, Serialize};

const EXP_BITS: u32 = 4;
const MAN_BITS: u32 = 3;
const BIAS: i32 = 7;
const MAX_EXP: i32 = (1 << EXP_BITS) - 1; // 15

/// An 8-bit minifloat value (1-4-3, bias 7).
///
/// # Example
///
/// ```
/// use deepcam_hash::Minifloat8;
///
/// let m = Minifloat8::from_f32(3.2);
/// // 3.2 is between representable 3.0 and 3.25; RNE picks 3.25.
/// assert!((m.to_f32() - 3.25).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Minifloat8(u8);

impl Minifloat8 {
    /// Largest representable finite magnitude (480.0).
    pub const MAX: f32 = 480.0;
    /// Smallest positive (subnormal) magnitude, 2⁻⁹.
    pub const MIN_POSITIVE: f32 = 1.0 / 512.0;

    /// Encodes an `f32` with round-to-nearest-even and saturation.
    ///
    /// NaN encodes as +0 (the hardware norm datapath never produces NaN;
    /// mapping to zero is the safest default for a magnitude).
    pub fn from_f32(x: f32) -> Self {
        if x.is_nan() {
            return Minifloat8(0);
        }
        let sign = if x.is_sign_negative() { 0x80u8 } else { 0 };
        let mag = x.abs();
        if mag == 0.0 {
            return Minifloat8(sign);
        }
        if mag >= Self::MAX {
            // Saturate to max finite: e = 15, m = 7.
            return Minifloat8(sign | 0x7F);
        }
        // Scale into the format: find e such that mag = 2^(e-BIAS) * f,
        // f ∈ [1, 2).
        let e_unbiased = mag.log2().floor() as i32;
        let mut e = e_unbiased + BIAS;
        let quantize = |mag: f32, e: i32| -> f32 {
            // Units of the mantissa LSB at this exponent.
            let scale = ((e - BIAS) as f32).exp2() / (1 << MAN_BITS) as f32;
            mag / scale
        };
        if e <= 0 {
            // Subnormal: value = m/8 * 2^(1-BIAS), m in [0,7].
            let scale = ((1 - BIAS) as f32).exp2() / (1 << MAN_BITS) as f32;
            let m = round_ties_even(mag / scale);
            if m >= (1 << MAN_BITS) as f32 {
                // Rounded up into the smallest normal.
                return Minifloat8(sign | (1 << MAN_BITS));
            }
            return Minifloat8(sign | m as u8);
        }
        // Normal: mantissa steps of 2^(e-BIAS)/8; total significand in
        // units of LSB is in [8, 16).
        let mut units = round_ties_even(quantize(mag, e));
        if units >= (2 << MAN_BITS) as f32 {
            // Rounded up across a binade boundary.
            e += 1;
            units = (1 << MAN_BITS) as f32;
        }
        if e > MAX_EXP {
            return Minifloat8(sign | 0x7F);
        }
        let m = units as u32 - (1 << MAN_BITS);
        Minifloat8(sign | ((e as u8) << MAN_BITS) | m as u8)
    }

    /// Decodes to `f32`.
    pub fn to_f32(self) -> f32 {
        let sign = if self.0 & 0x80 != 0 { -1.0f32 } else { 1.0 };
        let e = ((self.0 >> MAN_BITS) & 0x0F) as i32;
        let m = (self.0 & 0x07) as f32;
        if e == 0 {
            sign * ((1 - BIAS) as f32).exp2() * (m / (1 << MAN_BITS) as f32)
        } else {
            sign * ((e - BIAS) as f32).exp2() * (1.0 + m / (1 << MAN_BITS) as f32)
        }
    }

    /// The raw encoded byte.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Constructs from a raw byte (any byte is a valid value in this
    /// format since there are no NaN/Inf encodings).
    pub fn from_bits(bits: u8) -> Self {
        Minifloat8(bits)
    }

    /// Quantizes an `f32` through the format and back — the quantization
    /// that the DeepCAM post-processing module applies to every norm.
    pub fn quantize(x: f32) -> f32 {
        Self::from_f32(x).to_f32()
    }
}

fn round_ties_even(x: f32) -> f32 {
    let floor = x.floor();
    let frac = x - floor;
    let round_up = frac > 0.5 || (frac == 0.5 && (floor as i64) & 1 == 1);
    if round_up {
        floor + 1.0
    } else {
        floor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_round_trip() {
        assert_eq!(Minifloat8::from_f32(0.0).to_f32(), 0.0);
        assert_eq!(Minifloat8::from_f32(-0.0).bits(), 0x80);
    }

    #[test]
    fn exact_values_round_trip() {
        // Powers of two and simple mantissas are exactly representable.
        for &v in &[1.0f32, 2.0, 0.5, 1.5, 3.0, 96.0, 0.25, 480.0] {
            let q = Minifloat8::quantize(v);
            assert_eq!(q, v, "{v} should be exact, got {q}");
        }
    }

    #[test]
    fn saturates_at_max() {
        assert_eq!(Minifloat8::from_f32(1e9).to_f32(), Minifloat8::MAX);
        assert_eq!(Minifloat8::from_f32(-1e9).to_f32(), -Minifloat8::MAX);
        assert_eq!(Minifloat8::from_f32(481.0).to_f32(), Minifloat8::MAX);
    }

    #[test]
    fn subnormals() {
        let tiny = Minifloat8::MIN_POSITIVE;
        assert_eq!(Minifloat8::from_f32(tiny).to_f32(), tiny);
        // Below half the smallest subnormal rounds to zero.
        assert_eq!(Minifloat8::from_f32(tiny / 4.0).to_f32(), 0.0);
    }

    #[test]
    fn round_to_nearest_even() {
        // Between 1.0 (m=0) and 1.125 (m=1) the midpoint 1.0625 ties to
        // even mantissa 0 → 1.0.
        assert_eq!(Minifloat8::quantize(1.0625), 1.0);
        // Between 1.125 (m=1) and 1.25 (m=2): midpoint 1.1875 → even m=2.
        assert_eq!(Minifloat8::quantize(1.1875), 1.25);
    }

    #[test]
    fn rounding_across_binade() {
        // Just under 2.0 rounds up across the exponent boundary.
        assert_eq!(Minifloat8::quantize(1.99), 2.0);
    }

    #[test]
    fn nan_maps_to_zero() {
        assert_eq!(Minifloat8::from_f32(f32::NAN).to_f32(), 0.0);
    }

    #[test]
    fn relative_error_bound_for_normals() {
        // 3 mantissa bits → relative step 1/8; RNE halves it.
        let mut worst: f32 = 0.0;
        let mut v = 0.02f32;
        while v < 400.0 {
            let q = Minifloat8::quantize(v);
            worst = worst.max((q - v).abs() / v);
            v *= 1.0173;
        }
        assert!(worst <= 1.0 / 16.0 + 1e-3, "worst relative error {worst}");
    }

    #[test]
    fn quantization_is_idempotent() {
        let mut v = Minifloat8::MIN_POSITIVE / 2.0;
        while v < 600.0 {
            let once = Minifloat8::quantize(v);
            let twice = Minifloat8::quantize(once);
            assert_eq!(once, twice, "not idempotent at {v}");
            v *= 1.37;
        }
    }

    #[test]
    fn monotone_encoding() {
        // Quantization must be monotone non-decreasing.
        let mut prev = Minifloat8::quantize(0.0);
        let mut v = 0.0f32;
        while v < 500.0 {
            let q = Minifloat8::quantize(v);
            assert!(q >= prev, "non-monotone at {v}: {q} < {prev}");
            prev = q;
            v += 0.013;
        }
    }

    #[test]
    fn all_bytes_decode_finite() {
        for b in 0..=u8::MAX {
            let v = Minifloat8::from_bits(b).to_f32();
            assert!(v.is_finite(), "byte {b:#04x} decoded to {v}");
            assert!(v.abs() <= Minifloat8::MAX);
        }
    }

    #[test]
    fn negative_symmetry() {
        for &v in &[0.1f32, 1.7, 33.0, 480.0] {
            assert_eq!(Minifloat8::quantize(-v), -Minifloat8::quantize(v));
        }
    }
}
