//! Context generation — the paper's Fig. 4.
//!
//! A *context* is the CAM-resident representation of one vector: its L2
//! norm (8-bit minifloat) plus its k-bit hash. The software context
//! generator produces
//!
//! * **weight contexts** — one per convolution kernel (a `[C,KH,KW]`
//!   kernel reshaped to a flat vector) or one per linear-layer output
//!   neuron, and
//! * **activation contexts** — one per im2col patch (one per output
//!   spatial position).
//!
//! Both sides must use the *same* projection matrix, otherwise the
//! Hamming distance between their hashes estimates nothing.

use deepcam_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

use crate::bitvec::BitVec;
use crate::error::HashError;
use crate::minifloat::Minifloat8;
use crate::projection::ProjectionMatrix;
use crate::Result;

/// The CAM-resident representation of one vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Context {
    /// Full-precision L2 norm (kept for ablations).
    pub norm: f32,
    /// The 8-bit minifloat norm actually used by the hardware datapath.
    pub norm_q: Minifloat8,
    /// The hashed binary datum stored in (or searched against) CAM rows.
    pub bits: BitVec,
}

impl Context {
    /// Norm value as the hardware sees it.
    pub fn quantized_norm(&self) -> f32 {
        self.norm_q.to_f32()
    }
}

/// A batch of contexts sharing one projection (one CNN layer's weights, or
/// one input tile's activations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextSet {
    /// The contexts, in kernel order (weights) or output-position order
    /// (activations).
    pub contexts: Vec<Context>,
    /// Hash width each context was generated at.
    pub hash_len: usize,
    /// Dimensionality of the source vectors.
    pub source_dim: usize,
}

impl ContextSet {
    /// Number of contexts.
    pub fn len(&self) -> usize {
        self.contexts.len()
    }

    /// Returns `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.contexts.is_empty()
    }

    /// Iterates over the contexts.
    pub fn iter(&self) -> std::slice::Iter<'_, Context> {
        self.contexts.iter()
    }
}

/// Generates contexts for one layer: owns the layer's projection matrix.
///
/// # Example
///
/// ```
/// use deepcam_hash::ContextGenerator;
/// use deepcam_tensor::{Tensor, Shape};
///
/// // A conv layer with 2 kernels of shape [3, 3, 3] → patch length 27.
/// let generator = ContextGenerator::new(27, 1024, 42)?;
/// let kernels = Tensor::full(Shape::new(&[2, 3, 3, 3]), 0.1);
/// let set = generator.weight_contexts(&kernels)?;
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.hash_len, 1024);
/// # Ok::<(), deepcam_hash::HashError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContextGenerator {
    projection: ProjectionMatrix,
}

impl ContextGenerator {
    /// Creates a generator for `input_dim`-dimensional vectors hashing to
    /// `max_hash_len` bits. Shorter effective lengths are obtained by
    /// prefix truncation at comparison time.
    ///
    /// # Errors
    ///
    /// Returns [`HashError::InvalidConfig`] for zero dimensions.
    pub fn new(input_dim: usize, max_hash_len: usize, seed: u64) -> Result<Self> {
        if input_dim == 0 || max_hash_len == 0 {
            return Err(HashError::InvalidConfig(
                "context generator dimensions must be > 0".into(),
            ));
        }
        Ok(ContextGenerator {
            projection: ProjectionMatrix::generate(input_dim, max_hash_len, seed),
        })
    }

    /// The projection shared by every context from this generator.
    pub fn projection(&self) -> &ProjectionMatrix {
        &self.projection
    }

    /// Builds the context of a single vector.
    ///
    /// # Errors
    ///
    /// Returns a dimension error when `v.len()` disagrees with the
    /// projection.
    pub fn context_for(&self, v: &[f32]) -> Result<Context> {
        let bits = self.projection.hash(v)?;
        let norm = v.iter().map(|&x| x * x).sum::<f32>().sqrt();
        Ok(Context {
            norm,
            norm_q: Minifloat8::from_f32(norm),
            bits,
        })
    }

    /// Builds one context per kernel from a conv weight tensor
    /// `[M, C, KH, KW]` (or per output neuron from a linear weight
    /// `[F_out, F_in]`). Each kernel is flattened row-major, matching the
    /// im2col patch layout.
    ///
    /// # Errors
    ///
    /// Returns a dimension error when the flattened kernel length
    /// disagrees with the projection.
    pub fn weight_contexts(&self, weight: &Tensor) -> Result<ContextSet> {
        let dims = weight.shape().dims();
        if dims.is_empty() {
            return Err(HashError::InvalidConfig(
                "weight tensor must have at least one axis".into(),
            ));
        }
        let m = dims[0];
        let flat: usize = dims[1..].iter().product();
        let as_rows = weight
            .clone()
            .reshape(Shape::new(&[m, flat]))
            .map_err(|_| HashError::InvalidConfig("weight reshape failed".into()))?;
        let mut contexts = Vec::with_capacity(m);
        for i in 0..m {
            contexts.push(self.context_for(as_rows.row(i).data())?);
        }
        Ok(ContextSet {
            contexts,
            hash_len: self.projection.hash_len(),
            source_dim: flat,
        })
    }

    /// Builds one context per row of an im2col patch matrix `[P, n]`.
    ///
    /// # Errors
    ///
    /// Returns errors on non-rank-2 input or a patch length mismatch.
    pub fn activation_contexts(&self, patches: &Tensor) -> Result<ContextSet> {
        if patches.shape().rank() != 2 {
            return Err(HashError::InvalidConfig(format!(
                "activation patches must be rank 2, got {}",
                patches.shape()
            )));
        }
        let p = patches.shape().dim(0);
        let mut contexts = Vec::with_capacity(p);
        for i in 0..p {
            contexts.push(self.context_for(patches.row(i).data())?);
        }
        Ok(ContextSet {
            contexts,
            hash_len: self.projection.hash_len(),
            source_dim: patches.shape().dim(1),
        })
    }
}

/// Reconstructs the approximate dot-product of two contexts at hash width
/// `k` — the complete post-CAM arithmetic of the paper (Hamming → angle →
/// eq. 5 cosine → norm multiply).
///
/// # Errors
///
/// Returns [`HashError::InvalidHashLength`] when `k` exceeds either
/// context's hash width.
pub fn approx_dot(
    a: &Context,
    b: &Context,
    k: usize,
    cosine: crate::geometric::CosineMode,
    norm: crate::geometric::NormMode,
) -> Result<f32> {
    let hd = a.bits.hamming_prefix(&b.bits, k)?;
    let theta = crate::geometric::GeometricDot::angle_from_hamming(hd, k);
    let na = norm.apply(a.norm);
    let nb = norm.apply(b.norm);
    Ok(na * nb * cosine.eval(theta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometric::{CosineMode, NormMode};
    use deepcam_tensor::init;
    use deepcam_tensor::rng::seeded_rng;

    #[test]
    fn context_norm_is_l2() {
        let g = ContextGenerator::new(2, 64, 0).unwrap();
        let c = g.context_for(&[3.0, 4.0]).unwrap();
        assert!((c.norm - 5.0).abs() < 1e-6);
        assert_eq!(c.quantized_norm(), 5.0); // 5.0 is exactly representable
    }

    #[test]
    fn weight_contexts_one_per_kernel() {
        let mut rng = seeded_rng(1);
        let w = init::normal(&mut rng, Shape::new(&[6, 1, 5, 5]), 0.0, 0.2);
        let g = ContextGenerator::new(25, 256, 3).unwrap();
        let set = g.weight_contexts(&w).unwrap();
        assert_eq!(set.len(), 6);
        assert_eq!(set.source_dim, 25);
        // Every context hash has the full width.
        assert!(set.iter().all(|c| c.bits.len() == 256));
    }

    #[test]
    fn linear_weight_contexts() {
        let mut rng = seeded_rng(2);
        let w = init::normal(&mut rng, Shape::new(&[10, 84]), 0.0, 0.2);
        let g = ContextGenerator::new(84, 512, 4).unwrap();
        let set = g.weight_contexts(&w).unwrap();
        assert_eq!(set.len(), 10);
        assert_eq!(set.source_dim, 84);
    }

    #[test]
    fn activation_contexts_one_per_patch() {
        let mut rng = seeded_rng(3);
        let patches = init::normal(&mut rng, Shape::new(&[49, 25]), 0.0, 1.0);
        let g = ContextGenerator::new(25, 256, 3).unwrap();
        let set = g.activation_contexts(&patches).unwrap();
        assert_eq!(set.len(), 49);
    }

    #[test]
    fn dimension_mismatch_detected() {
        let g = ContextGenerator::new(10, 64, 0).unwrap();
        let w = Tensor::zeros(Shape::new(&[2, 3, 3])); // flat = 9 ≠ 10
        assert!(g.weight_contexts(&w).is_err());
    }

    #[test]
    fn approx_dot_tracks_algebraic() {
        let mut rng = seeded_rng(7);
        let g = ContextGenerator::new(32, 1024, 9).unwrap();
        let x = init::normal(&mut rng, Shape::new(&[32]), 0.0, 1.0);
        let y = init::normal(&mut rng, Shape::new(&[32]), 0.0, 1.0);
        let cx = g.context_for(x.data()).unwrap();
        let cy = g.context_for(y.data()).unwrap();
        let approx = approx_dot(&cx, &cy, 1024, CosineMode::Exact, NormMode::Fp32).unwrap();
        let alg: f32 = x.dot(&y).unwrap();
        let scale = cx.norm * cy.norm;
        assert!(
            (approx - alg).abs() < 0.15 * scale,
            "approx {approx} vs algebraic {alg} (scale {scale})"
        );
    }

    #[test]
    fn approx_dot_respects_hash_len() {
        let g = ContextGenerator::new(8, 512, 1).unwrap();
        let c = g.context_for(&[1.0; 8]).unwrap();
        assert!(approx_dot(&c, &c, 513, CosineMode::Exact, NormMode::Fp32).is_err());
        let self_dot = approx_dot(&c, &c, 256, CosineMode::Exact, NormMode::Fp32).unwrap();
        assert!((self_dot - 8.0).abs() < 1e-3); // ‖x‖² with θ=0
    }

    #[test]
    fn context_set_iteration() {
        let g = ContextGenerator::new(4, 64, 0).unwrap();
        let w = Tensor::full(Shape::new(&[3, 4]), 1.0);
        let set = g.weight_contexts(&w).unwrap();
        assert_eq!(set.iter().count(), 3);
        assert!(!set.is_empty());
    }
}
