//! Synthetic class-prototype dataset generation.
//!
//! Each class gets a smooth random *prototype* image (a coarse Gaussian
//! grid bilinearly upsampled to the target resolution) plus a
//! higher-frequency class *texture*. A sample is
//!
//! ```text
//! sample = prototype + texture_scale·texture + noise·N(0,1), shifted by
//!          up to ±shift pixels (toroidal), then standardized
//! ```
//!
//! The signal-to-noise knob controls task difficulty; the defaults make a
//! small CNN reach high-but-not-saturated accuracy so that Fig. 5's
//! degradation-vs-hash-length curves have room to show structure.

use deepcam_tensor::rng::{seeded_rng, standard_normal};
use deepcam_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::RngExt;

use crate::dataset::Dataset;

/// Configuration of a synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Number of classes.
    pub classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Std-dev of additive i.i.d. noise.
    pub noise: f32,
    /// Scale of the high-frequency class texture.
    pub texture_scale: f32,
    /// Maximum toroidal shift in pixels (data augmentation built into the
    /// generator).
    pub shift: usize,
    /// Coarse prototype grid size (smoothness: smaller = smoother).
    pub proto_grid: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SynthConfig {
    /// MNIST stand-in: 1×28×28, 10 classes.
    pub fn digits() -> Self {
        SynthConfig {
            classes: 10,
            channels: 1,
            height: 28,
            width: 28,
            train_per_class: 200,
            test_per_class: 50,
            noise: 0.6,
            texture_scale: 0.35,
            shift: 2,
            proto_grid: 7,
            seed: 1001,
        }
    }

    /// CIFAR10 stand-in: 3×32×32, 10 classes.
    pub fn objects10() -> Self {
        SynthConfig {
            classes: 10,
            channels: 3,
            height: 32,
            width: 32,
            train_per_class: 150,
            test_per_class: 40,
            noise: 0.7,
            texture_scale: 0.4,
            shift: 2,
            proto_grid: 8,
            seed: 2002,
        }
    }

    /// CIFAR100 stand-in: 3×32×32, 100 classes.
    pub fn objects100() -> Self {
        SynthConfig {
            classes: 100,
            channels: 3,
            height: 32,
            width: 32,
            train_per_class: 30,
            test_per_class: 10,
            noise: 0.55,
            texture_scale: 0.4,
            shift: 1,
            proto_grid: 8,
            seed: 3003,
        }
    }

    /// A miniature digits preset for fast unit tests.
    pub fn tiny_digits() -> Self {
        SynthConfig {
            classes: 10,
            channels: 1,
            height: 12,
            width: 12,
            train_per_class: 12,
            test_per_class: 4,
            noise: 0.5,
            texture_scale: 0.3,
            shift: 1,
            proto_grid: 4,
            seed: 42,
        }
    }

    /// Builder-style seed override (keeps presets otherwise intact).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style sample-count override.
    pub fn with_samples(mut self, train_per_class: usize, test_per_class: usize) -> Self {
        self.train_per_class = train_per_class;
        self.test_per_class = test_per_class;
        self
    }
}

/// Bilinearly upsamples a coarse `grid x grid` field to `h x w`.
fn upsample(coarse: &[f32], grid: usize, h: usize, w: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; h * w];
    for y in 0..h {
        for x in 0..w {
            // Map output pixel to coarse coordinates.
            let fy = y as f32 / h as f32 * (grid - 1) as f32;
            let fx = x as f32 / w as f32 * (grid - 1) as f32;
            let (y0, x0) = (fy.floor() as usize, fx.floor() as usize);
            let (y1, x1) = ((y0 + 1).min(grid - 1), (x0 + 1).min(grid - 1));
            let (dy, dx) = (fy - y0 as f32, fx - x0 as f32);
            let v00 = coarse[y0 * grid + x0];
            let v01 = coarse[y0 * grid + x1];
            let v10 = coarse[y1 * grid + x0];
            let v11 = coarse[y1 * grid + x1];
            out[y * w + x] = v00 * (1.0 - dy) * (1.0 - dx)
                + v01 * (1.0 - dy) * dx
                + v10 * dy * (1.0 - dx)
                + v11 * dy * dx;
        }
    }
    out
}

/// One class's generative template.
struct ClassTemplate {
    /// Smooth prototype per channel, `[C, H, W]` flattened.
    prototype: Vec<f32>,
    /// Higher-frequency texture per channel.
    texture: Vec<f32>,
}

fn class_template(cfg: &SynthConfig, rng: &mut StdRng) -> ClassTemplate {
    let (c, h, w) = (cfg.channels, cfg.height, cfg.width);
    let mut prototype = Vec::with_capacity(c * h * w);
    let mut texture = Vec::with_capacity(c * h * w);
    for _ in 0..c {
        let coarse: Vec<f32> = (0..cfg.proto_grid * cfg.proto_grid)
            .map(|_| standard_normal(rng) as f32)
            .collect();
        prototype.extend(upsample(&coarse, cfg.proto_grid, h, w));
        // Texture: finer grid (2x the prototype grid, capped at image size).
        let fine_grid = (cfg.proto_grid * 2).min(h.min(w));
        let fine: Vec<f32> = (0..fine_grid * fine_grid)
            .map(|_| standard_normal(rng) as f32)
            .collect();
        texture.extend(upsample(&fine, fine_grid, h, w));
    }
    ClassTemplate { prototype, texture }
}

fn render_sample(
    cfg: &SynthConfig,
    template: &ClassTemplate,
    rng: &mut StdRng,
    out: &mut Vec<f32>,
) {
    let (c, h, w) = (cfg.channels, cfg.height, cfg.width);
    let sy = if cfg.shift > 0 {
        rng.random_range(0..=2 * cfg.shift) as isize - cfg.shift as isize
    } else {
        0
    };
    let sx = if cfg.shift > 0 {
        rng.random_range(0..=2 * cfg.shift) as isize - cfg.shift as isize
    } else {
        0
    };
    for ci in 0..c {
        let base = ci * h * w;
        for y in 0..h {
            for x in 0..w {
                // Toroidal shift keeps energy constant across samples.
                let yy = (y as isize + sy).rem_euclid(h as isize) as usize;
                let xx = (x as isize + sx).rem_euclid(w as isize) as usize;
                let signal = template.prototype[base + yy * w + xx]
                    + cfg.texture_scale * template.texture[base + yy * w + xx];
                out.push(signal + cfg.noise * standard_normal(rng) as f32);
            }
        }
    }
}

/// Generates `(train, test)` datasets from a configuration.
///
/// Sample order interleaves classes (0,1,…,K-1,0,1,…) so that any prefix
/// is approximately class-balanced.
pub fn generate(cfg: &SynthConfig) -> (Dataset, Dataset) {
    let mut rng = seeded_rng(cfg.seed);
    let templates: Vec<ClassTemplate> = (0..cfg.classes)
        .map(|_| class_template(cfg, &mut rng))
        .collect();
    let sample_len = cfg.channels * cfg.height * cfg.width;

    let build = |per_class: usize, rng: &mut StdRng| {
        let n = per_class * cfg.classes;
        let mut data = Vec::with_capacity(n * sample_len);
        let mut labels = Vec::with_capacity(n);
        for i in 0..per_class {
            for (class, template) in templates.iter().enumerate() {
                let _ = i;
                render_sample(cfg, template, rng, &mut data);
                labels.push(class);
            }
        }
        // Standardize globally to zero mean / unit variance, like the
        // normalization transforms used on MNIST/CIFAR.
        let mean = data.iter().sum::<f32>() / data.len().max(1) as f32;
        let var =
            data.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / data.len().max(1) as f32;
        let inv = 1.0 / var.sqrt().max(1e-6);
        for v in &mut data {
            *v = (*v - mean) * inv;
        }
        let images = Tensor::from_vec(data, Shape::new(&[n, cfg.channels, cfg.height, cfg.width]))
            .expect("generated volume is consistent");
        Dataset::new(images, labels, cfg.classes)
    };

    let train = build(cfg.train_per_class, &mut rng);
    let test = build(cfg.test_per_class, &mut rng);
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_counts() {
        let cfg = SynthConfig::tiny_digits();
        let (train, test) = generate(&cfg);
        assert_eq!(train.len(), 120);
        assert_eq!(test.len(), 40);
        assert_eq!(train.sample_shape(), Shape::new(&[1, 12, 12]));
        assert_eq!(train.classes(), 10);
    }

    #[test]
    fn deterministic() {
        let cfg = SynthConfig::tiny_digits();
        let (a, _) = generate(&cfg);
        let (b, _) = generate(&cfg);
        assert_eq!(a.images().data(), b.images().data());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = generate(&SynthConfig::tiny_digits());
        let (b, _) = generate(&SynthConfig::tiny_digits().with_seed(43));
        assert_ne!(a.images().data(), b.images().data());
    }

    #[test]
    fn standardized_statistics() {
        let (train, _) = generate(&SynthConfig::tiny_digits());
        let mean = train.images().mean();
        assert!(mean.abs() < 1e-3, "mean {mean}");
        let var =
            train.images().data().iter().map(|v| v * v).sum::<f32>() / train.images().len() as f32;
        assert!((var - 1.0).abs() < 1e-2, "var {var}");
    }

    #[test]
    fn classes_are_separable_by_nearest_prototype() {
        // A nearest-class-mean classifier on raw pixels should beat chance
        // comfortably — otherwise no CNN could learn the task.
        let cfg = SynthConfig::tiny_digits();
        let (train, test) = generate(&cfg);
        let sample = train.sample_shape().volume();
        let mut means = vec![vec![0.0f32; sample]; cfg.classes];
        let mut counts = vec![0usize; cfg.classes];
        for i in 0..train.len() {
            let label = train.labels()[i];
            counts[label] += 1;
            let src = &train.images().data()[i * sample..(i + 1) * sample];
            for (m, &v) in means[label].iter_mut().zip(src) {
                *m += v;
            }
        }
        for (m, &c) in means.iter_mut().zip(counts.iter()) {
            for v in m.iter_mut() {
                *v /= c.max(1) as f32;
            }
        }
        let mut correct = 0;
        for i in 0..test.len() {
            let x = &test.images().data()[i * sample..(i + 1) * sample];
            let mut best = (f32::INFINITY, 0usize);
            for (k, m) in means.iter().enumerate() {
                let d: f32 = x.iter().zip(m.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
                if d < best.0 {
                    best = (d, k);
                }
            }
            if best.1 == test.labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f32 / test.len() as f32;
        assert!(acc > 0.5, "nearest-prototype accuracy only {acc}");
    }

    #[test]
    fn interleaved_prefix_is_balanced() {
        let (train, _) = generate(&SynthConfig::tiny_digits());
        let prefix = &train.labels()[..10];
        let mut seen = prefix.to_vec();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn presets_have_paper_shapes() {
        let d = SynthConfig::digits();
        assert_eq!((d.channels, d.height, d.width, d.classes), (1, 28, 28, 10));
        let o10 = SynthConfig::objects10();
        assert_eq!(
            (o10.channels, o10.height, o10.width, o10.classes),
            (3, 32, 32, 10)
        );
        let o100 = SynthConfig::objects100();
        assert_eq!(
            (o100.channels, o100.height, o100.width, o100.classes),
            (3, 32, 32, 100)
        );
    }
}
