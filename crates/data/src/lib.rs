//! # deepcam-data
//!
//! Deterministic synthetic image-classification datasets for the DeepCAM
//! reproduction.
//!
//! The paper evaluates on MNIST, CIFAR10 and CIFAR100, none of which is
//! available offline. The accuracy experiments (paper Fig. 5) measure how
//! a *trained* classifier degrades when its dot-products are replaced by
//! hash-based approximations — a property of the classifier's decision
//! geometry, not of natural-image statistics. These generators therefore
//! produce class-prototype datasets with the same tensor shapes and class
//! counts as the originals:
//!
//! * [`synth::SynthConfig::digits`] — 1×28×28, 10 classes (MNIST
//!   stand-in);
//! * [`synth::SynthConfig::objects10`] — 3×32×32, 10 classes (CIFAR10
//!   stand-in);
//! * [`synth::SynthConfig::objects100`] — 3×32×32, 100 classes (CIFAR100
//!   stand-in).
//!
//! Each class has a smooth random prototype; samples are
//! prototype + texture + i.i.d. noise + a small random translation.
//! Everything is seeded, so every run of every experiment sees the same
//! data.
//!
//! # Example
//!
//! ```
//! use deepcam_data::synth::{SynthConfig, generate};
//!
//! let cfg = SynthConfig::tiny_digits(); // small preset for tests
//! let (train, test) = generate(&cfg);
//! assert_eq!(train.classes(), 10);
//! assert!(train.len() > 0 && test.len() > 0);
//! ```

// Machine-checked by deepcam-analyze (lint A2): this crate holds no
// unsafe code, and the compiler now enforces that it never grows any.
#![forbid(unsafe_code)]

pub mod dataset;
pub mod synth;

pub use dataset::Dataset;
pub use synth::{generate, SynthConfig};
