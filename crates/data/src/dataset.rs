//! In-memory labelled image dataset with mini-batch access.

use deepcam_tensor::{Shape, Tensor};
use rand::seq::SliceRandom;

/// A labelled image dataset stored as one NCHW tensor.
///
/// # Example
///
/// ```
/// use deepcam_data::Dataset;
/// use deepcam_tensor::{Tensor, Shape};
///
/// let images = Tensor::zeros(Shape::new(&[4, 1, 8, 8]));
/// let ds = Dataset::new(images, vec![0, 1, 0, 1], 2);
/// let (batch, labels) = ds.batch(&[0, 3]);
/// assert_eq!(batch.shape().dims()[0], 2);
/// assert_eq!(labels, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Wraps images `[N, C, H, W]` and `N` labels.
    ///
    /// # Panics
    ///
    /// Panics when the label count disagrees with the batch axis, or a
    /// label is out of range.
    pub fn new(images: Tensor, labels: Vec<usize>, classes: usize) -> Self {
        assert_eq!(
            images.shape().dim(0),
            labels.len(),
            "label count must match image count"
        );
        assert!(
            labels.iter().all(|&l| l < classes),
            "labels must be < classes"
        );
        Dataset {
            images,
            labels,
            classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Shape of one sample, `[C, H, W]`.
    pub fn sample_shape(&self) -> Shape {
        let d = self.images.shape().dims();
        Shape::new(&d[1..])
    }

    /// All images as one tensor.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Gathers the samples at `indices` into a batch tensor plus labels.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let sample = self.sample_shape().volume();
        let mut data = Vec::with_capacity(indices.len() * sample);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "sample index {i} out of range");
            data.extend_from_slice(&self.images.data()[i * sample..(i + 1) * sample]);
            labels.push(self.labels[i]);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(self.sample_shape().dims());
        (
            Tensor::from_vec(data, Shape::new(&dims)).expect("batch volume is consistent"),
            labels,
        )
    }

    /// A deterministic shuffled index permutation for one training epoch.
    pub fn shuffled_indices(&self, seed: u64) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = deepcam_tensor::rng::seeded_rng(seed);
        idx.shuffle(&mut rng);
        idx
    }

    /// Iterates over `(start, end)` ranges covering the dataset in
    /// batches of `batch_size` (last batch may be short).
    pub fn batch_ranges(&self, batch_size: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut start = 0;
        while start < self.len() {
            let end = (start + batch_size.max(1)).min(self.len());
            out.push((start, end));
            start = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let images = Tensor::from_vec(
            (0..3 * 4).map(|i| i as f32).collect(),
            Shape::new(&[3, 1, 2, 2]),
        )
        .unwrap();
        Dataset::new(images, vec![0, 1, 2], 3)
    }

    #[test]
    fn basic_accessors() {
        let ds = tiny();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.classes(), 3);
        assert_eq!(ds.sample_shape(), Shape::new(&[1, 2, 2]));
        assert!(!ds.is_empty());
    }

    #[test]
    fn batch_gathers_correct_samples() {
        let ds = tiny();
        let (b, l) = ds.batch(&[2, 0]);
        assert_eq!(b.shape(), &Shape::new(&[2, 1, 2, 2]));
        assert_eq!(l, vec![2, 0]);
        assert_eq!(b.data()[0], 8.0); // sample 2 starts at element 8
        assert_eq!(b.data()[4], 0.0); // sample 0
    }

    #[test]
    fn shuffled_indices_deterministic_permutation() {
        let ds = tiny();
        let a = ds.shuffled_indices(1);
        let b = ds.shuffled_indices(1);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn batch_ranges_cover_everything() {
        let ds = tiny();
        let ranges = ds.batch_ranges(2);
        assert_eq!(ranges, vec![(0, 2), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "label count")]
    fn mismatched_labels_panic() {
        let images = Tensor::zeros(Shape::new(&[2, 1, 2, 2]));
        Dataset::new(images, vec![0], 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_batch_index_panics() {
        tiny().batch(&[5]);
    }
}
