//! The CAM scheduler: maps dot-product layers onto the dynamic-size CAM
//! and accounts cycles, energy and utilization (Figs. 9–10, Table II).
//!
//! Mapping arithmetic per layer (`P` input vectors, `M` kernels, CAM with
//! `R` rows):
//!
//! | Dataflow | rows hold | tiles | searches/tile | utilization |
//! |---|---|---|---|---|
//! | WS | kernel contexts | `ceil(M/R)` | `P` | `M / (tiles·R)` |
//! | AS | activation contexts | `ceil(P/R)` | `M` | `P / (tiles·R)` |
//!
//! Each search is O(1) in array size (paper's key property); a tile load
//! writes its occupied rows. Activation contexts are produced at runtime
//! by the online context generator ([`crate::ctxgen`]); weight contexts
//! are pre-generated in software. The first dot layer's *input* contexts
//! also come from software (the paper pre-processes input images), so
//! layer 0 is never charged context-generation cost.

use deepcam_cam::{CamConfig, CamCostModel, SUPPORTED_ROW_SIZES};
use deepcam_models::{DotLayer, ModelSpec};
use serde::{Deserialize, Serialize};

use crate::ctxgen::CtxGenCostModel;
use crate::dataflow::Dataflow;
use crate::error::CoreError;
use crate::hashplan::{HashPlan, PlanBinding};
use crate::ir::LayerIr;
use crate::passes::mapping::ModelMapping;
use crate::perf::{EnergyBreakdown, LayerPerf, PerfReport};
use crate::postproc::PostProcCostModel;
use crate::Result;

/// How per-layer cycles combine across the accelerator's three stages
/// (CAM, context generator, post-processing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CycleModel {
    /// Stages overlap in a pipeline; the slowest stage bounds the layer
    /// (the paper's architecture, Fig. 3, processes in a pipeline).
    #[default]
    Pipelined,
    /// Stages execute back-to-back — the conservative upper bound.
    Sequential,
    /// Count only O(1) CAM search operations; writes, context generation
    /// and post-processing are assumed fully hidden. This matches the
    /// paper's implicit accounting (its ResNet18 speedup scales exactly
    /// with the row count, which only search counts do) and is reported
    /// alongside the honest `Pipelined` numbers in Fig. 9.
    SearchOnly,
}

/// Scheduler configuration + cost models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CamScheduler {
    /// CAM rows (64/128/256/512).
    pub rows: usize,
    /// Mapping dataflow.
    pub dataflow: Dataflow,
    /// CAM energy/latency model.
    pub cam_cost: CamCostModel,
    /// Post-processing unit model.
    pub postproc: PostProcCostModel,
    /// Online context generator model.
    pub ctxgen: CtxGenCostModel,
    /// Cycle combination model.
    pub cycle_model: CycleModel,
    /// Charge CAM writes for weight tiles (WS). `true` is the consistent
    /// default; `false` models the paper's framing that pre-processed
    /// weight contexts "cause no impact on computation time".
    pub charge_weight_writes: bool,
}

impl CamScheduler {
    /// Creates a scheduler with default cost models.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Cam`] when `rows` is not a supported size.
    pub fn new(rows: usize, dataflow: Dataflow) -> Result<Self> {
        if !SUPPORTED_ROW_SIZES.contains(&rows) {
            return Err(CoreError::Cam(deepcam_cam::CamError::InvalidConfig(
                format!("row count {rows} not in {SUPPORTED_ROW_SIZES:?}"),
            )));
        }
        Ok(CamScheduler {
            rows,
            dataflow,
            cam_cost: CamCostModel::default(),
            postproc: PostProcCostModel::default(),
            ctxgen: CtxGenCostModel::default(),
            cycle_model: CycleModel::default(),
            charge_weight_writes: true,
        })
    }

    /// Builder-style cycle-model override.
    pub fn with_cycle_model(mut self, model: CycleModel) -> Self {
        self.cycle_model = model;
        self
    }

    /// Performance of one dot-product layer at hash length `k`.
    /// `is_first` marks the model's first dot layer, whose input contexts
    /// are pre-processed in software.
    ///
    /// Delegates to [`CamScheduler::layer_perf_mapped`] at the
    /// scheduler's own geometry on a single array — bitwise-identical to
    /// the pre-pass-pipeline accounting.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Cam`] for an unsupported hash length.
    pub fn layer_perf(&self, layer: &DotLayer, k: usize, is_first: bool) -> Result<LayerPerf> {
        self.layer_perf_mapped(layer, k, is_first, self.rows, self.dataflow, 1)
    }

    /// Performance of one dot-product layer under an explicit mapping:
    /// `rows × k` arrays, `arrays` of them operating in parallel, fed by
    /// the given `dataflow`. The mapping-pass search
    /// ([`crate::passes::mapping`]) scores every candidate through this
    /// entry point.
    ///
    /// Energy is mapping-shaped but array-count-independent (the same
    /// tiles are written and searched whether they run serially or
    /// side by side); cycles shrink with `arrays` because up to `arrays`
    /// tiles are searched per wave, with writes overlapped across the
    /// wave (the slowest write bounds it).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Cam`] for an unsupported row count, hash
    /// length, or a zero array count.
    pub fn layer_perf_mapped(
        &self,
        layer: &DotLayer,
        k: usize,
        is_first: bool,
        rows: usize,
        dataflow: Dataflow,
        arrays: usize,
    ) -> Result<LayerPerf> {
        if arrays == 0 {
            return Err(CoreError::Cam(deepcam_cam::CamError::InvalidConfig(
                "array count must be at least 1".to_string(),
            )));
        }
        if !SUPPORTED_ROW_SIZES.contains(&rows) {
            return Err(CoreError::Cam(deepcam_cam::CamError::InvalidConfig(
                format!("row count {rows} not in {SUPPORTED_ROW_SIZES:?}"),
            )));
        }
        let cfg = CamConfig::new(rows, k)?;
        let (stored, streamed) = match dataflow {
            Dataflow::WeightStationary => (layer.m, layer.p),
            Dataflow::ActivationStationary => (layer.p, layer.m),
        };
        let tiles = stored.div_ceil(rows).max(1);
        let mut searches = 0u64;
        let mut write_cycles = 0u64;
        let mut search_cycles = 0u64;
        let mut e_search = 0.0f64;
        let mut e_write = 0.0f64;
        let mut occupied = 0usize;
        let charge_writes = match dataflow {
            Dataflow::WeightStationary => self.charge_weight_writes,
            Dataflow::ActivationStationary => true,
        };
        let mut t = 0usize;
        while t < tiles {
            let wave = (tiles - t).min(arrays);
            let mut wave_write_cycles = 0u64;
            for i in 0..wave {
                let rows_used = (stored - (t + i) * rows).min(rows);
                occupied += rows_used;
                if charge_writes {
                    let wc = self.cam_cost.write_cost(&cfg, rows_used);
                    wave_write_cycles = wave_write_cycles.max(wc.cycles);
                    e_write += wc.energy_j;
                }
                let sc = self.cam_cost.search_cost_with_rows(&cfg, rows_used);
                searches += streamed as u64;
                e_search += streamed as f64 * sc.energy_j;
                // Arrays of the wave search in lock-step on the same
                // streamed keys, so one tile's search cycles bound the
                // wave.
                if i == 0 {
                    search_cycles += streamed as u64 * sc.cycles;
                }
            }
            write_cycles += wave_write_cycles;
            t += wave;
        }
        let utilization = occupied as f64 / (tiles * rows) as f64;

        // Online context generation for this layer's input activations
        // (software pre-processing covers the first layer).
        let ctx = if is_first {
            crate::ctxgen::CtxGenCost::default()
        } else {
            self.ctxgen.layer_cost(layer.p, layer.n, k)
        };
        // Post-processing: reconstruct all P·M approximate dot-products.
        let post = self.postproc.dot_cost(layer.dot_products());

        let cam_cycles = write_cycles + search_cycles;
        let cycles = match self.cycle_model {
            CycleModel::Pipelined => cam_cycles.max(ctx.cycles).max(post.cycles),
            CycleModel::Sequential => cam_cycles + ctx.cycles + post.cycles,
            CycleModel::SearchOnly => search_cycles,
        };
        Ok(LayerPerf {
            name: layer.name.clone(),
            hash_len: k,
            tile_loads: tiles as u64,
            searches,
            cycles,
            utilization,
            energy: EnergyBreakdown {
                cam_search: e_search,
                cam_write: e_write,
                postproc: post.energy_j,
                ctxgen: ctx.energy_j,
            },
        })
    }

    /// Runs a whole model spec under a hash plan: lowers the spec through
    /// the shared compilation pipeline ([`LayerIr::from_spec`] →
    /// [`HashPlan::bind`]) and hands the result to
    /// [`CamScheduler::run_ir`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPlan`] for an inconsistent plan and
    /// CAM errors for unsupported geometry.
    pub fn run(&self, spec: &ModelSpec, plan: &HashPlan) -> Result<PerfReport> {
        let ir = LayerIr::from_spec(spec);
        let binding = plan.bind(&ir)?;
        self.run_ir(&ir, &binding, plan.label())
    }

    /// Runs a lowered model under a validated binding — the IR-level
    /// entry point shared with the engine compiler and the auto-tuner
    /// (which lowers trained [`Cnn`](deepcam_models::Cnn)s through
    /// [`LayerIr::from_cnn`] and costs them here).
    ///
    /// Peripheral layers (pool/BN/activation/residual add) are executed
    /// by the post-processing module; each dot layer's trailing
    /// peripherals fold into its entry. `plan_label` tags the report's
    /// configuration string.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPlan`] when the binding does not
    /// cover the IR, [`CoreError::Unsupported`] when the IR lacks static
    /// shapes (a [`Cnn`](deepcam_models::Cnn) lowered without a declared
    /// input), and CAM errors for unsupported geometry.
    pub fn run_ir(
        &self,
        ir: &LayerIr,
        binding: &PlanBinding,
        plan_label: impl AsRef<str>,
    ) -> Result<PerfReport> {
        if binding.len() != ir.dots.len() {
            return Err(CoreError::InvalidPlan(format!(
                "binding covers {} layers but IR '{}' has {}",
                binding.len(),
                ir.model_name,
                ir.dots.len()
            )));
        }
        if !ir.has_static_shapes() && !ir.is_empty() {
            return Err(CoreError::Unsupported(format!(
                "IR '{}' lacks static shapes (lower the model with a declared input)",
                ir.model_name
            )));
        }
        let mut layers: Vec<LayerPerf> = Vec::with_capacity(ir.dots.len());
        for dot in &ir.dots {
            let k = binding.k_for(dot.index);
            let mut perf = self.layer_perf(&dot.shape, k, dot.index == 0)?;
            for peripheral in &dot.peripherals {
                let cost = self.postproc.peripheral_cost(peripheral);
                perf.cycles += cost.cycles;
                perf.energy.postproc += cost.energy_j;
            }
            layers.push(perf);
        }
        // Pre-dot peripheral work (`ir.preamble`) exists in no paper
        // workload and is ignored, exactly as it was before the IR.
        let config = format!(
            "DeepCAM-{} rows={} {}",
            self.dataflow.label(),
            self.rows,
            plan_label.as_ref()
        );
        Ok(PerfReport::from_layers(config, ir.workload.clone(), layers))
    }

    /// Runs a lowered model under a validated binding **and** a per-layer
    /// array mapping (the mapping pass's output): each dot layer is
    /// costed at its own tile geometry/dataflow on the mapping's
    /// multi-array chip instead of the scheduler's fixed `rows` ×
    /// `dataflow`.
    ///
    /// # Errors
    ///
    /// All [`CamScheduler::run_ir`] conditions, plus
    /// [`CoreError::InvalidPlan`] when the mapping does not cover the IR.
    pub fn run_ir_mapped(
        &self,
        ir: &LayerIr,
        binding: &PlanBinding,
        mapping: &ModelMapping,
        plan_label: impl AsRef<str>,
    ) -> Result<PerfReport> {
        if binding.len() != ir.dots.len() {
            return Err(CoreError::InvalidPlan(format!(
                "binding covers {} layers but IR '{}' has {}",
                binding.len(),
                ir.model_name,
                ir.dots.len()
            )));
        }
        if mapping.per_layer.len() != ir.dots.len() {
            return Err(CoreError::InvalidPlan(format!(
                "mapping covers {} layers but IR '{}' has {}",
                mapping.per_layer.len(),
                ir.model_name,
                ir.dots.len()
            )));
        }
        if !ir.has_static_shapes() && !ir.is_empty() {
            return Err(CoreError::Unsupported(format!(
                "IR '{}' lacks static shapes (lower the model with a declared input)",
                ir.model_name
            )));
        }
        let mut layers: Vec<LayerPerf> = Vec::with_capacity(ir.dots.len());
        for dot in &ir.dots {
            let k = binding.k_for(dot.index);
            let lm = mapping.per_layer[dot.index];
            let mut perf = self.layer_perf_mapped(
                &dot.shape,
                k,
                dot.index == 0,
                lm.rows,
                lm.dataflow,
                mapping.arrays,
            )?;
            for peripheral in &dot.peripherals {
                let cost = self.postproc.peripheral_cost(peripheral);
                perf.cycles += cost.cycles;
                perf.energy.postproc += cost.energy_j;
            }
            layers.push(perf);
        }
        let config = format!(
            "DeepCAM-mapped arrays={} {}",
            mapping.arrays,
            plan_label.as_ref()
        );
        Ok(PerfReport::from_layers(config, ir.workload.clone(), layers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcam_models::zoo;

    fn lenet_conv1() -> DotLayer {
        DotLayer {
            name: "conv1".into(),
            p: 784,
            m: 6,
            n: 25,
            input_elems: 1024,
        }
    }

    #[test]
    fn paper_utilization_example() {
        // §IV-B: 6 kernels in a 64-row CAM → 9.4% (WS); AS → ~100%.
        let ws = CamScheduler::new(64, Dataflow::WeightStationary).unwrap();
        let perf = ws.layer_perf(&lenet_conv1(), 256, true).unwrap();
        assert!((perf.utilization - 6.0 / 64.0).abs() < 1e-9);

        let as_ = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let perf = as_.layer_perf(&lenet_conv1(), 256, true).unwrap();
        assert!(perf.utilization > 0.9, "AS util {}", perf.utilization);
    }

    #[test]
    fn as_beats_ws_on_search_count_for_convs() {
        // AS: ceil(784/64)·6 = 78 searches; WS: ceil(6/64)·784 = 784.
        let ws = CamScheduler::new(64, Dataflow::WeightStationary).unwrap();
        let as_ = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let pw = ws.layer_perf(&lenet_conv1(), 256, true).unwrap();
        let pa = as_.layer_perf(&lenet_conv1(), 256, true).unwrap();
        assert_eq!(pw.searches, 784);
        assert_eq!(pa.searches, 78);
        assert!(pa.cycles < pw.cycles);
    }

    #[test]
    fn more_rows_fewer_cycles() {
        let layer = DotLayer {
            name: "wide".into(),
            p: 4096,
            m: 128,
            n: 576,
            input_elems: 65536,
        };
        let small = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let large = CamScheduler::new(512, Dataflow::ActivationStationary).unwrap();
        let ps = small.layer_perf(&layer, 512, true).unwrap();
        let pl = large.layer_perf(&layer, 512, true).unwrap();
        assert!(pl.searches < ps.searches);
        assert!(pl.cycles < ps.cycles);
    }

    #[test]
    fn first_layer_skips_ctxgen() {
        let s = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let first = s.layer_perf(&lenet_conv1(), 256, true).unwrap();
        let later = s.layer_perf(&lenet_conv1(), 256, false).unwrap();
        assert_eq!(first.energy.ctxgen, 0.0);
        assert!(later.energy.ctxgen > 0.0);
    }

    #[test]
    fn longer_hashes_cost_more_energy() {
        let s = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let short = s.layer_perf(&lenet_conv1(), 256, false).unwrap();
        let long = s.layer_perf(&lenet_conv1(), 1024, false).unwrap();
        assert!(long.energy.cam_search > 2.0 * short.energy.cam_search);
        assert!(long.energy.ctxgen > 2.0 * short.energy.ctxgen);
    }

    #[test]
    fn run_whole_model() {
        let s = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let perf = s.run(&zoo::lenet5(), &HashPlan::Uniform(256)).unwrap();
        assert_eq!(perf.layers.len(), 5);
        assert!(perf.total_cycles > 0);
        assert!(perf.total_energy_j > 0.0);
        assert!(perf.config.contains("AS"));
    }

    #[test]
    fn plan_mismatch_rejected() {
        let s = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let bad = HashPlan::PerLayer(vec![256, 256]); // LeNet has 5 dot layers
        assert!(s.run(&zoo::lenet5(), &bad).is_err());
    }

    #[test]
    fn invalid_rows_rejected() {
        assert!(CamScheduler::new(100, Dataflow::ActivationStationary).is_err());
    }

    #[test]
    fn sequential_ge_pipelined() {
        let spec = zoo::vgg11();
        let pipe = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let seq = pipe.clone().with_cycle_model(CycleModel::Sequential);
        let a = pipe.run(&spec, &HashPlan::Uniform(512)).unwrap();
        let b = seq.run(&spec, &HashPlan::Uniform(512)).unwrap();
        assert!(b.total_cycles >= a.total_cycles);
    }

    #[test]
    fn mapped_at_own_geometry_single_array_is_identical() {
        // The layer_perf → layer_perf_mapped delegation must not change a
        // bit of any existing report: one array at the scheduler's own
        // rows/dataflow is the old accounting.
        let spec = zoo::vgg11();
        let ir = LayerIr::from_spec(&spec);
        let plan = HashPlan::variable_for_dims(&ir.patch_lens());
        let binding = plan.bind(&ir).unwrap();
        for df in Dataflow::both() {
            let s = CamScheduler::new(64, df).unwrap();
            let fixed = s.run_ir(&ir, &binding, plan.label()).unwrap();
            let mapping = ModelMapping::fixed(64, df, ir.len());
            let mapped = s
                .run_ir_mapped(&ir, &binding, &mapping, plan.label())
                .unwrap();
            assert_eq!(fixed.layers.len(), mapped.layers.len());
            for (a, b) in fixed.layers.iter().zip(mapped.layers.iter()) {
                assert_eq!(a.cycles, b.cycles, "{}", a.name);
                assert_eq!(a.searches, b.searches, "{}", a.name);
                assert_eq!(a.energy.cam_search.to_bits(), b.energy.cam_search.to_bits());
                assert_eq!(a.energy.cam_write.to_bits(), b.energy.cam_write.to_bits());
                assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
            }
        }
    }

    #[test]
    fn more_arrays_cut_cycles_not_energy() {
        let layer = DotLayer {
            name: "wide".into(),
            p: 4096,
            m: 128,
            n: 576,
            input_elems: 65536,
        };
        let s = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let one = s
            .layer_perf_mapped(&layer, 512, true, 64, Dataflow::ActivationStationary, 1)
            .unwrap();
        let eight = s
            .layer_perf_mapped(&layer, 512, true, 64, Dataflow::ActivationStationary, 8)
            .unwrap();
        assert!(
            eight.cycles < one.cycles,
            "{} vs {}",
            eight.cycles,
            one.cycles
        );
        assert_eq!(
            one.energy.cam_search.to_bits(),
            eight.energy.cam_search.to_bits()
        );
        assert_eq!(
            one.energy.cam_write.to_bits(),
            eight.energy.cam_write.to_bits()
        );
        assert_eq!(one.searches, eight.searches);
    }

    #[test]
    fn mapped_run_validates_coverage_and_geometry() {
        let spec = zoo::lenet5();
        let ir = LayerIr::from_spec(&spec);
        let plan = HashPlan::Uniform(256);
        let binding = plan.bind(&ir).unwrap();
        let s = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();

        let short = ModelMapping::fixed(64, Dataflow::ActivationStationary, ir.len() - 1);
        assert!(matches!(
            s.run_ir_mapped(&ir, &binding, &short, plan.label()),
            Err(CoreError::InvalidPlan(_))
        ));

        assert!(s
            .layer_perf_mapped(
                &lenet_conv1(),
                256,
                true,
                100, // unsupported row count
                Dataflow::ActivationStationary,
                1
            )
            .is_err());
        assert!(s
            .layer_perf_mapped(
                &lenet_conv1(),
                256,
                true,
                64,
                Dataflow::ActivationStationary,
                0 // zero arrays
            )
            .is_err());
    }

    #[test]
    fn variable_plan_saves_energy_vs_max() {
        let spec = zoo::vgg16();
        let dims = LayerIr::from_spec(&spec).patch_lens();
        let s = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let vhl = s.run(&spec, &HashPlan::variable_for_dims(&dims)).unwrap();
        let max = s.run(&spec, &HashPlan::uniform_max()).unwrap();
        assert!(
            vhl.total_energy_j < max.total_energy_j,
            "vhl {} vs max {}",
            vhl.total_energy_j,
            max.total_energy_j
        );
    }
}
