//! The CAM scheduler: maps dot-product layers onto the dynamic-size CAM
//! and accounts cycles, energy and utilization (Figs. 9–10, Table II).
//!
//! Mapping arithmetic per layer (`P` input vectors, `M` kernels, CAM with
//! `R` rows):
//!
//! | Dataflow | rows hold | tiles | searches/tile | utilization |
//! |---|---|---|---|---|
//! | WS | kernel contexts | `ceil(M/R)` | `P` | `M / (tiles·R)` |
//! | AS | activation contexts | `ceil(P/R)` | `M` | `P / (tiles·R)` |
//!
//! Each search is O(1) in array size (paper's key property); a tile load
//! writes its occupied rows. Activation contexts are produced at runtime
//! by the online context generator ([`crate::ctxgen`]); weight contexts
//! are pre-generated in software. The first dot layer's *input* contexts
//! also come from software (the paper pre-processes input images), so
//! layer 0 is never charged context-generation cost.

use deepcam_cam::{CamConfig, CamCostModel, SUPPORTED_ROW_SIZES};
use deepcam_models::{DotLayer, LayerSpec, ModelSpec};
use serde::{Deserialize, Serialize};

use crate::ctxgen::CtxGenCostModel;
use crate::dataflow::Dataflow;
use crate::error::CoreError;
use crate::hashplan::HashPlan;
use crate::perf::{EnergyBreakdown, LayerPerf, PerfReport};
use crate::postproc::PostProcCostModel;
use crate::Result;

/// How per-layer cycles combine across the accelerator's three stages
/// (CAM, context generator, post-processing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CycleModel {
    /// Stages overlap in a pipeline; the slowest stage bounds the layer
    /// (the paper's architecture, Fig. 3, processes in a pipeline).
    #[default]
    Pipelined,
    /// Stages execute back-to-back — the conservative upper bound.
    Sequential,
    /// Count only O(1) CAM search operations; writes, context generation
    /// and post-processing are assumed fully hidden. This matches the
    /// paper's implicit accounting (its ResNet18 speedup scales exactly
    /// with the row count, which only search counts do) and is reported
    /// alongside the honest `Pipelined` numbers in Fig. 9.
    SearchOnly,
}

/// Scheduler configuration + cost models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CamScheduler {
    /// CAM rows (64/128/256/512).
    pub rows: usize,
    /// Mapping dataflow.
    pub dataflow: Dataflow,
    /// CAM energy/latency model.
    pub cam_cost: CamCostModel,
    /// Post-processing unit model.
    pub postproc: PostProcCostModel,
    /// Online context generator model.
    pub ctxgen: CtxGenCostModel,
    /// Cycle combination model.
    pub cycle_model: CycleModel,
    /// Charge CAM writes for weight tiles (WS). `true` is the consistent
    /// default; `false` models the paper's framing that pre-processed
    /// weight contexts "cause no impact on computation time".
    pub charge_weight_writes: bool,
}

impl CamScheduler {
    /// Creates a scheduler with default cost models.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Cam`] when `rows` is not a supported size.
    pub fn new(rows: usize, dataflow: Dataflow) -> Result<Self> {
        if !SUPPORTED_ROW_SIZES.contains(&rows) {
            return Err(CoreError::Cam(deepcam_cam::CamError::InvalidConfig(
                format!("row count {rows} not in {SUPPORTED_ROW_SIZES:?}"),
            )));
        }
        Ok(CamScheduler {
            rows,
            dataflow,
            cam_cost: CamCostModel::default(),
            postproc: PostProcCostModel::default(),
            ctxgen: CtxGenCostModel::default(),
            cycle_model: CycleModel::default(),
            charge_weight_writes: true,
        })
    }

    /// Builder-style cycle-model override.
    pub fn with_cycle_model(mut self, model: CycleModel) -> Self {
        self.cycle_model = model;
        self
    }

    /// Performance of one dot-product layer at hash length `k`.
    /// `is_first` marks the model's first dot layer, whose input contexts
    /// are pre-processed in software.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Cam`] for an unsupported hash length.
    pub fn layer_perf(&self, layer: &DotLayer, k: usize, is_first: bool) -> Result<LayerPerf> {
        let cfg = CamConfig::new(self.rows, k)?;
        let (stored, streamed) = match self.dataflow {
            Dataflow::WeightStationary => (layer.m, layer.p),
            Dataflow::ActivationStationary => (layer.p, layer.m),
        };
        let tiles = stored.div_ceil(self.rows).max(1);
        let mut searches = 0u64;
        let mut write_cycles = 0u64;
        let mut search_cycles = 0u64;
        let mut e_search = 0.0f64;
        let mut e_write = 0.0f64;
        let mut occupied = 0usize;
        let charge_writes = match self.dataflow {
            Dataflow::WeightStationary => self.charge_weight_writes,
            Dataflow::ActivationStationary => true,
        };
        for t in 0..tiles {
            let rows_used = (stored - t * self.rows).min(self.rows);
            occupied += rows_used;
            if charge_writes {
                let wc = self.cam_cost.write_cost(&cfg, rows_used);
                write_cycles += wc.cycles;
                e_write += wc.energy_j;
            }
            let sc = self.cam_cost.search_cost_with_rows(&cfg, rows_used);
            searches += streamed as u64;
            search_cycles += streamed as u64 * sc.cycles;
            e_search += streamed as f64 * sc.energy_j;
        }
        let utilization = occupied as f64 / (tiles * self.rows) as f64;

        // Online context generation for this layer's input activations
        // (software pre-processing covers the first layer).
        let ctx = if is_first {
            crate::ctxgen::CtxGenCost::default()
        } else {
            self.ctxgen.layer_cost(layer.p, layer.n, k)
        };
        // Post-processing: reconstruct all P·M approximate dot-products.
        let post = self.postproc.dot_cost(layer.dot_products());

        let cam_cycles = write_cycles + search_cycles;
        let cycles = match self.cycle_model {
            CycleModel::Pipelined => cam_cycles.max(ctx.cycles).max(post.cycles),
            CycleModel::Sequential => cam_cycles + ctx.cycles + post.cycles,
            CycleModel::SearchOnly => search_cycles,
        };
        Ok(LayerPerf {
            name: layer.name.clone(),
            hash_len: k,
            tile_loads: tiles as u64,
            searches,
            cycles,
            utilization,
            energy: EnergyBreakdown {
                cam_search: e_search,
                cam_write: e_write,
                postproc: post.energy_j,
                ctxgen: ctx.energy_j,
            },
        })
    }

    /// Runs a whole model spec under a hash plan.
    ///
    /// Peripheral layers (pool/BN/activation/residual add) are executed by
    /// the post-processing module; their costs fold into the preceding
    /// dot layer's entry.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPlan`] for an inconsistent plan and
    /// CAM errors for unsupported geometry.
    pub fn run(&self, spec: &ModelSpec, plan: &HashPlan) -> Result<PerfReport> {
        let dots = spec.dot_layers();
        plan.validate_for(&dots)?;
        let mut layers: Vec<LayerPerf> = Vec::with_capacity(dots.len());
        let mut dot_idx = 0usize;
        for layer in &spec.layers {
            if layer.is_dot_layer() {
                let k = plan.length_for(dot_idx)?;
                let perf = self.layer_perf(&dots[dot_idx], k, dot_idx == 0)?;
                layers.push(perf);
                dot_idx += 1;
            } else {
                let cost = self.postproc.peripheral_cost(layer);
                if let Some(last) = layers.last_mut() {
                    last.cycles += cost.cycles;
                    last.energy.postproc += cost.energy_j;
                } else if let Some(first) = spec.layers.iter().position(LayerSpec::is_dot_layer) {
                    // Pre-dot peripheral work exists in no paper workload,
                    // but attribute it forward for completeness.
                    let _ = first;
                }
            }
        }
        let config = format!(
            "DeepCAM-{} rows={} {}",
            self.dataflow.label(),
            self.rows,
            plan.label()
        );
        Ok(PerfReport::from_layers(config, spec.workload(), layers))
    }
}

impl HashPlan {
    /// Validates a plan against a model's dot layers.
    ///
    /// # Errors
    ///
    /// Same conditions as [`HashPlan::validate`].
    pub fn validate_for(&self, dots: &[DotLayer]) -> Result<()> {
        self.validate(dots.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcam_models::zoo;

    fn lenet_conv1() -> DotLayer {
        DotLayer {
            name: "conv1".into(),
            p: 784,
            m: 6,
            n: 25,
            input_elems: 1024,
        }
    }

    #[test]
    fn paper_utilization_example() {
        // §IV-B: 6 kernels in a 64-row CAM → 9.4% (WS); AS → ~100%.
        let ws = CamScheduler::new(64, Dataflow::WeightStationary).unwrap();
        let perf = ws.layer_perf(&lenet_conv1(), 256, true).unwrap();
        assert!((perf.utilization - 6.0 / 64.0).abs() < 1e-9);

        let as_ = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let perf = as_.layer_perf(&lenet_conv1(), 256, true).unwrap();
        assert!(perf.utilization > 0.9, "AS util {}", perf.utilization);
    }

    #[test]
    fn as_beats_ws_on_search_count_for_convs() {
        // AS: ceil(784/64)·6 = 78 searches; WS: ceil(6/64)·784 = 784.
        let ws = CamScheduler::new(64, Dataflow::WeightStationary).unwrap();
        let as_ = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let pw = ws.layer_perf(&lenet_conv1(), 256, true).unwrap();
        let pa = as_.layer_perf(&lenet_conv1(), 256, true).unwrap();
        assert_eq!(pw.searches, 784);
        assert_eq!(pa.searches, 78);
        assert!(pa.cycles < pw.cycles);
    }

    #[test]
    fn more_rows_fewer_cycles() {
        let layer = DotLayer {
            name: "wide".into(),
            p: 4096,
            m: 128,
            n: 576,
            input_elems: 65536,
        };
        let small = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let large = CamScheduler::new(512, Dataflow::ActivationStationary).unwrap();
        let ps = small.layer_perf(&layer, 512, true).unwrap();
        let pl = large.layer_perf(&layer, 512, true).unwrap();
        assert!(pl.searches < ps.searches);
        assert!(pl.cycles < ps.cycles);
    }

    #[test]
    fn first_layer_skips_ctxgen() {
        let s = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let first = s.layer_perf(&lenet_conv1(), 256, true).unwrap();
        let later = s.layer_perf(&lenet_conv1(), 256, false).unwrap();
        assert_eq!(first.energy.ctxgen, 0.0);
        assert!(later.energy.ctxgen > 0.0);
    }

    #[test]
    fn longer_hashes_cost_more_energy() {
        let s = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let short = s.layer_perf(&lenet_conv1(), 256, false).unwrap();
        let long = s.layer_perf(&lenet_conv1(), 1024, false).unwrap();
        assert!(long.energy.cam_search > 2.0 * short.energy.cam_search);
        assert!(long.energy.ctxgen > 2.0 * short.energy.ctxgen);
    }

    #[test]
    fn run_whole_model() {
        let s = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let perf = s.run(&zoo::lenet5(), &HashPlan::Uniform(256)).unwrap();
        assert_eq!(perf.layers.len(), 5);
        assert!(perf.total_cycles > 0);
        assert!(perf.total_energy_j > 0.0);
        assert!(perf.config.contains("AS"));
    }

    #[test]
    fn plan_mismatch_rejected() {
        let s = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let bad = HashPlan::PerLayer(vec![256, 256]); // LeNet has 5 dot layers
        assert!(s.run(&zoo::lenet5(), &bad).is_err());
    }

    #[test]
    fn invalid_rows_rejected() {
        assert!(CamScheduler::new(100, Dataflow::ActivationStationary).is_err());
    }

    #[test]
    fn sequential_ge_pipelined() {
        let spec = zoo::vgg11();
        let pipe = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let seq = pipe.clone().with_cycle_model(CycleModel::Sequential);
        let a = pipe.run(&spec, &HashPlan::Uniform(512)).unwrap();
        let b = seq.run(&spec, &HashPlan::Uniform(512)).unwrap();
        assert!(b.total_cycles >= a.total_cycles);
    }

    #[test]
    fn variable_plan_saves_energy_vs_max() {
        let spec = zoo::vgg16();
        let dims: Vec<usize> = spec.dot_layers().iter().map(|d| d.n).collect();
        let s = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let vhl = s.run(&spec, &HashPlan::variable_for_dims(&dims)).unwrap();
        let max = s.run(&spec, &HashPlan::uniform_max()).unwrap();
        assert!(
            vhl.total_energy_j < max.total_energy_j,
            "vhl {} vs max {}",
            vhl.total_energy_j,
            max.total_energy_j
        );
    }
}
