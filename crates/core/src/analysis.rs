//! Variable-hash-length search (the procedure behind Fig. 5's "variable"
//! configuration).
//!
//! The paper observes that "each CNN layer requires a certain minimum
//! hash length to maintain the overall classification accuracy" and picks
//! per-layer lengths accordingly. This module implements that selection
//! as a greedy layer-order search: starting from all-1024, each layer in
//! turn is lowered to the smallest supported length whose accuracy stays
//! within `tolerance` of the all-1024 reference (already-lowered layers
//! keep their choices). Greedy-in-execution-order matches how the paper
//! reports per-layer optima and costs `O(layers × |candidates|)`
//! evaluations.
//!
//! Since the compilation-pipeline refactor this is a thin wrapper over
//! [`crate::tune`]'s shared candidate factory: the evaluation sequence
//! (and therefore the selected plan and count) is unchanged, but every
//! candidate engine is assembled from the per-(layer, width) tile cache
//! instead of re-hashing all weights per candidate. For the modern
//! interface — held-out split, binary search, energy reporting — use
//! [`crate::tune::tune`] directly.

use deepcam_models::Cnn;
use deepcam_tensor::Tensor;

use crate::engine::EngineConfig;
use crate::hashplan::HashPlan;
use crate::tune;
use crate::Result;

/// Result of a variable-hash-length search.
#[derive(Debug, Clone, PartialEq)]
pub struct VhlSearchResult {
    /// The selected per-layer plan.
    pub plan: HashPlan,
    /// DeepCAM accuracy at the all-1024 reference configuration.
    pub reference_accuracy: f32,
    /// DeepCAM accuracy under the selected plan.
    pub final_accuracy: f32,
    /// Number of engine evaluations performed.
    pub evaluations: usize,
}

/// Greedily searches a per-layer hash plan for `model` that keeps
/// accuracy within `tolerance` of the all-1024 configuration, evaluated
/// on `(images, labels)`.
///
/// # Errors
///
/// Propagates engine compilation/inference errors.
pub fn search_variable_plan(
    model: &Cnn,
    images: &Tensor,
    labels: &[usize],
    base: &EngineConfig,
    tolerance: f32,
    batch_size: usize,
) -> Result<VhlSearchResult> {
    search_variable_plan_calibrated(model, images, labels, base, tolerance, batch_size, None)
}

/// [`search_variable_plan`] with an optional BN-calibration set applied to
/// every candidate engine (see
/// [`DeepCamEngine::calibrate_bn`](crate::DeepCamEngine::calibrate_bn)).
///
/// # Errors
///
/// Propagates engine compilation/inference errors.
#[allow(clippy::too_many_arguments)]
pub fn search_variable_plan_calibrated(
    model: &Cnn,
    images: &Tensor,
    labels: &[usize],
    base: &EngineConfig,
    tolerance: f32,
    batch_size: usize,
    calibration: Option<&Tensor>,
) -> Result<VhlSearchResult> {
    let outcome = tune::greedy_search(
        model,
        images,
        labels,
        base,
        tolerance,
        batch_size,
        calibration,
    )?;
    Ok(VhlSearchResult {
        plan: HashPlan::PerLayer(outcome.ks),
        reference_accuracy: outcome.reference,
        final_accuracy: outcome.final_accuracy,
        evaluations: outcome.evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcam_hash::SUPPORTED_HASH_LENGTHS;
    use deepcam_models::scaled::scaled_lenet5;
    use deepcam_tensor::rng::{fill_normal, seeded_rng};
    use deepcam_tensor::Shape;

    fn toy_images(n: usize) -> (Tensor, Vec<usize>) {
        // Same two-class structure as the trainer tests.
        let mut rng = seeded_rng(11);
        let mut data = vec![0.0f32; n * 784];
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            labels.push(class);
            let img = &mut data[i * 784..(i + 1) * 784];
            fill_normal(&mut rng, img, 0.0, 0.3);
            let rows = if class == 0 { 0..14 } else { 14..28 };
            for r in rows {
                for c in 0..28 {
                    img[r * 28 + c] += 1.2;
                }
            }
        }
        (
            Tensor::from_vec(data, Shape::new(&[n, 1, 28, 28])).unwrap(),
            labels,
        )
    }

    #[test]
    fn search_produces_valid_plan() {
        let mut rng = seeded_rng(1);
        let mut model = scaled_lenet5(&mut rng, 2);
        let (x, y) = toy_images(16);
        // A quick touch of training so accuracy is not degenerate.
        let cfg = deepcam_models::train::TrainConfig {
            epochs: 1,
            batch_size: 8,
            lr: 0.02,
            ..deepcam_models::train::TrainConfig::default()
        };
        deepcam_models::train::train(&mut model, &x, &y, &cfg).unwrap();

        let base = EngineConfig::default();
        let result = search_variable_plan(&model, &x, &y, &base, 0.1, 8).unwrap();
        match &result.plan {
            HashPlan::PerLayer(ks) => {
                assert_eq!(ks.len(), 5);
                assert!(ks.iter().all(|k| SUPPORTED_HASH_LENGTHS.contains(k)));
            }
            _ => panic!("expected per-layer plan"),
        }
        assert!(result.final_accuracy + 0.1 >= result.reference_accuracy);
        assert!(result.evaluations >= 2);
    }

    #[test]
    fn generous_tolerance_shrinks_everything() {
        let mut rng = seeded_rng(2);
        let model = scaled_lenet5(&mut rng, 2);
        let (x, y) = toy_images(8);
        let base = EngineConfig::default();
        // tolerance 1.0 accepts any accuracy → every layer drops to 256.
        let result = search_variable_plan(&model, &x, &y, &base, 1.0, 8).unwrap();
        match &result.plan {
            HashPlan::PerLayer(ks) => assert!(ks.iter().all(|&k| k == 256), "{ks:?}"),
            _ => panic!("expected per-layer plan"),
        }
    }
}
