//! Online activation context generator cost model (paper §III-C, Fig. 7).
//!
//! Between CNN layers the intermediate activations must be turned into
//! contexts for the next layer. Shipping them back to software would cost
//! communication energy and latency, so DeepCAM does it on-chip:
//!
//! * **L2 norm**: an adder tree squares-and-sums the patch, then a
//!   non-restoring digital square-root produces the 8-bit minifloat norm;
//! * **hash**: an NVM (FeFET) crossbar stores the projection matrix `C`
//!   as synaptic weights; a patch is applied on the rows and each column's
//!   analog sum is reduced to its *sign bit* by a simple sense amplifier —
//!   the high-resolution ADCs of conventional analog PIM are not needed,
//!   which is where this unit saves its energy.
//!
//! A physical crossbar has bounded dimensions, so large patches tile over
//! the crossbar in both directions; cycles scale with
//! `ceil(n/rows)·ceil(k/cols)`. This tiling is what makes context
//! generation a first-order cost for the wide layers of VGG/ResNet.

use serde::{Deserialize, Serialize};

/// Cost model for the on-chip context generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CtxGenCostModel {
    /// Physical crossbar rows (input dimension per tile). Patches longer
    /// than this tile serially over the rows.
    pub xbar_rows: usize,
    /// Physical crossbar columns. The transformation module instantiates
    /// the full maximum hash width (1024 columns) so all hash bits of a
    /// row-tile evaluate in parallel; columns only matter for energy.
    pub xbar_cols: usize,
    /// Cycles per crossbar tile evaluation (drive + settle + sense).
    pub xbar_cycles: u64,
    /// Energy per active crossbar cell per evaluation, joules.
    pub cell_energy: f64,
    /// Energy of one sign sense-amplifier decision, joules.
    pub sense_energy: f64,
    /// Adder-tree lanes for the norm computation.
    pub adder_lanes: usize,
    /// Energy per add/square operation, joules.
    pub add_energy: f64,
    /// Cycles for the digital square root (non-restoring, 16-bit).
    pub sqrt_cycles: u64,
    /// Energy of one square-root evaluation, joules.
    pub sqrt_energy: f64,
}

impl Default for CtxGenCostModel {
    fn default() -> Self {
        CtxGenCostModel {
            xbar_rows: 128,
            xbar_cols: 1024,
            xbar_cycles: 2,
            cell_energy: 0.2e-15, // 0.2 fJ per FeFET cell read
            sense_energy: 5.0e-15,
            adder_lanes: 32,
            add_energy: 0.05e-12,
            sqrt_cycles: 16,
            sqrt_energy: 0.5e-12,
        }
    }
}

/// Cost of context-generating one layer's activations.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CtxGenCost {
    /// Cycles (patches pipeline; norm and hash proceed in parallel, the
    /// slower unit dominates).
    pub cycles: u64,
    /// Dynamic energy in joules.
    pub energy_j: f64,
}

impl CtxGenCostModel {
    /// Cost of generating `patches` activation contexts of dimensionality
    /// `n` hashed to `k` bits.
    ///
    /// The norm unit and the crossbar run concurrently per patch; patches
    /// pipeline through, so layer cycles are
    /// `patches × max(norm_II, hash_II)`.
    pub fn layer_cost(&self, patches: usize, n: usize, k: usize) -> CtxGenCost {
        if patches == 0 || n == 0 || k == 0 {
            return CtxGenCost::default();
        }
        // Norm: n squares+adds through `adder_lanes` lanes, then sqrt
        // (pipelined, so the initiation interval is the tree stream time;
        // sqrt latency hides after the first patch).
        let norm_ii = (n as f64 / self.adder_lanes as f64).ceil() as u64;
        // Hash: row-tile the n×k projection over the physical crossbar;
        // all k columns evaluate in parallel (the module provisions the
        // full 1024-column width; see the field docs).
        let tiles_r = n.div_ceil(self.xbar_rows) as u64;
        let hash_ii = tiles_r * self.xbar_cycles;
        let cycles = patches as u64 * norm_ii.max(hash_ii) + self.sqrt_cycles;

        let norm_energy = patches as f64 * (n as f64 * self.add_energy + self.sqrt_energy);
        // Active cells: the full n×k projection is evaluated regardless of
        // tiling; sense amps fire once per hash bit.
        let hash_energy =
            patches as f64 * ((n * k) as f64 * self.cell_energy + k as f64 * self.sense_energy);
        CtxGenCost {
            cycles,
            energy_j: norm_energy + hash_energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_work_zero_cost() {
        let m = CtxGenCostModel::default();
        assert_eq!(m.layer_cost(0, 100, 256).cycles, 0);
        assert_eq!(m.layer_cost(10, 0, 256).energy_j, 0.0);
    }

    #[test]
    fn small_patch_single_tile() {
        let m = CtxGenCostModel::default();
        // n=25 ≤ 128 rows → one row tile × 2 cycles; norm II =
        // ceil(25/32) = 1 → hash-bound at 2 cycles per patch.
        let c = m.layer_cost(100, 25, 256);
        assert_eq!(c.cycles, 100 * 2 + 16);
    }

    #[test]
    fn wide_patch_tiles_with_rows() {
        let m = CtxGenCostModel::default();
        let narrow = m.layer_cost(16, 576, 512);
        let wide = m.layer_cost(16, 4608, 1024);
        // 8×-longer patches → 8× the row tiles (hash width is parallel).
        assert!(
            wide.cycles > 5 * narrow.cycles,
            "wide {} vs narrow {}",
            wide.cycles,
            narrow.cycles
        );
    }

    #[test]
    fn energy_scales_with_bits() {
        let m = CtxGenCostModel::default();
        let short = m.layer_cost(10, 100, 256).energy_j;
        let long = m.layer_cost(10, 100, 1024).energy_j;
        // The norm unit's cost is k-independent, so the ratio is below
        // the pure 4x of the crossbar but still well above 2x.
        assert!(long / short > 2.0, "{}", long / short);
    }

    #[test]
    fn variable_hash_length_saves_ctxgen_energy() {
        // The same layer at k=256 vs k=1024 — the VHL saving applies to
        // the hashing crossbar too, not only the CAM.
        let m = CtxGenCostModel::default();
        let vhl = m.layer_cost(256, 576, 256);
        let max = m.layer_cost(256, 576, 1024);
        assert!(max.energy_j > 2.0 * vhl.energy_j);
        // Cycles are k-independent (all columns evaluate in parallel);
        // only energy rewards the shorter hash.
        assert_eq!(max.cycles, vhl.cycles);
    }

    #[test]
    fn norm_bound_when_hash_is_tiny() {
        let m = CtxGenCostModel {
            adder_lanes: 1, // cripple the adder tree
            ..CtxGenCostModel::default()
        };
        let c = m.layer_cost(10, 512, 256);
        // Norm II = 512 > hash II = 4×2 → norm-bound: 10×512 + sqrt.
        assert_eq!(c.cycles, 10 * 512 + 16);
    }
}
