//! The staged compilation pipeline:
//!
//! ```text
//! ModelSpec ─┐
//!            ├─► LayerIr ──► PlanBinding ──► CompiledModel ──► DeepCamEngine
//! Cnn ───────┘   (lowered     (validated      (packed weight     (runtime:
//!                 dot-layer    per-layer       tiles, norms,       derived
//!                 list)        hash widths)    seeds, pipeline)    projections,
//!                                                                  cos LUTs)
//! ```
//!
//! [`LayerIr`] is the *single* lowered view of a model's dot-product
//! layers — shapes, traversal order, names — shared by the functional
//! engine, the frozen reference datapath, the analytic scheduler
//! ([`crate::sched`]), the baselines crate and every experiment. Both
//! source languages lower into it: weight-free [`ModelSpec`]s through
//! [`LayerIr::from_spec`] (built on the one `ModelSpec::dot_layers`
//! lowering) and trained [`Cnn`]s through [`LayerIr::from_cnn`].
//!
//! [`CompiledModel`] is the deployment artifact the paper describes
//! (§III): per-layer packed weight-context tiles, raw kernel norms and
//! projection seeds, plus the exact digital post-processing pipeline. It
//! is **self-contained and serializable** — [`CompiledModel::save`] /
//! [`CompiledModel::load`] round-trip a versioned binary artifact
//! through the vendored serde's [`serde::bin`] codec, and a reloaded
//! artifact serves inference **bit-identically** to the in-memory
//! compile (`tests/compiled_model_roundtrip.rs` pins this). Everything
//! the runtime derives (projection matrices, cosine LUTs, quantized
//! norms) is a deterministic function of the stored fields, so the
//! artifact stays compact: seeds are stored, `n×k` float matrices are
//! not.

use deepcam_hash::{ContextGenerator, PackedHashes};
use deepcam_models::{Block, Cnn, DotLayer, LayerSpec, ModelSpec, PoolKind, PoolSpec, ResBlock};
use deepcam_tensor::ops::conv::Conv2dConfig;
use deepcam_tensor::ops::pool::PoolConfig;
use deepcam_tensor::Tensor;
use serde::bin::{BinCodec, BinError, BinResult, Reader, Writer};
use serde::{Deserialize, Serialize};

use crate::engine::EngineConfig;
use crate::error::CoreError;
use crate::hashplan::PlanBinding;
use crate::passes::mapping::ModelMapping;
use crate::Result;

/// Which dot-product form a lowered layer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DotKind {
    /// A convolution: `P` im2col patches against `M` kernels.
    Conv,
    /// A fully-connected layer: one input vector against `M` neurons.
    Linear,
}

/// One lowered dot-product layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DotIr {
    /// Traversal index (0-based; residual bodies before their shortcuts —
    /// the numbering every hash plan, noise seed and profile sample uses).
    pub index: usize,
    /// Source layer form.
    pub kind: DotKind,
    /// CAM-mapping shape: name, `P`, `M`, `n`, unique input elements.
    ///
    /// When lowered from a [`Cnn`] whose [`Cnn::input`] is unset, the
    /// spatially-dependent quantities (`p`, `input_elems`) are 0 — the
    /// functional engine never needs them; the analytic scheduler
    /// rejects such an IR.
    pub shape: DotLayer,
    /// The peripheral (non-dot) layers executed between this dot layer
    /// and the next, in order. The post-processing cost model folds
    /// their cost into this layer's entry.
    pub peripherals: Vec<LayerSpec>,
}

/// A model lowered to its dot-layer list — stage one of the pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerIr {
    /// Source model name, e.g. `"VGG11"`.
    pub model_name: String,
    /// Workload label for reports, e.g. `"VGG11 CIFAR10"`.
    pub workload: String,
    /// Peripheral layers preceding the first dot layer (none in any
    /// paper workload; recorded for completeness, ignored by the cost
    /// models exactly as the pre-IR scheduler ignored them).
    pub preamble: Vec<LayerSpec>,
    /// The dot-product layers in traversal order.
    pub dots: Vec<DotIr>,
}

impl LayerIr {
    /// Lowers a weight-free [`ModelSpec`].
    ///
    /// The `P`/`M`/`n` arithmetic lives solely in
    /// [`ModelSpec::dot_layers`] — this is its only caller in the
    /// workspace, which is what makes the lowering single-sourced.
    pub fn from_spec(spec: &ModelSpec) -> LayerIr {
        let mut shapes = spec.dot_layers().into_iter();
        let mut dots: Vec<DotIr> = Vec::new();
        let mut preamble = Vec::new();
        for layer in &spec.layers {
            match layer {
                LayerSpec::Conv(_) | LayerSpec::Linear(_) => {
                    let kind = if matches!(layer, LayerSpec::Conv(_)) {
                        DotKind::Conv
                    } else {
                        DotKind::Linear
                    };
                    let shape = shapes.next().expect("one DotLayer per dot LayerSpec");
                    dots.push(DotIr {
                        index: dots.len(),
                        kind,
                        shape,
                        peripherals: Vec::new(),
                    });
                }
                other => match dots.last_mut() {
                    Some(d) => d.peripherals.push(other.clone()),
                    None => preamble.push(other.clone()),
                },
            }
        }
        LayerIr {
            model_name: spec.name.clone(),
            workload: spec.workload(),
            preamble,
            dots,
        }
    }

    /// Lowers a trainable [`Cnn`], inferring static shapes from
    /// [`Cnn::input`] when declared.
    ///
    /// Traversal order matches the engine compiler exactly (residual
    /// bodies before their shortcuts). Conv layers are named
    /// `conv1..convN` and linear layers `fc1..fcM` in traversal order.
    /// With a declared input shape the lowering also emits every
    /// peripheral layer with its element counts, so the analytic
    /// scheduler can cost a trained model's exact topology; without one,
    /// `p`/`input_elems` stay 0 and peripherals are omitted (the
    /// functional engine needs neither).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Unsupported`] when the declared input shape
    /// is inconsistent with a layer's expectations.
    pub fn from_cnn(model: &Cnn) -> Result<LayerIr> {
        let mut st = match model.input {
            Some((c, h, w)) => TraceShape::Chw(c, h, w),
            None => TraceShape::Unknown,
        };
        let mut ir = LayerIr {
            model_name: model.name.clone(),
            workload: model.name.clone(),
            preamble: Vec::new(),
            dots: Vec::new(),
        };
        let mut counters = (0usize, 0usize);
        walk_blocks(&model.blocks, &mut st, &mut ir, &mut counters)?;
        Ok(ir)
    }

    /// Number of dot layers.
    pub fn len(&self) -> usize {
        self.dots.len()
    }

    /// Returns `true` when the model has no dot layers.
    pub fn is_empty(&self) -> bool {
        self.dots.is_empty()
    }

    /// The im2col/input vector length of every dot layer, traversal
    /// order (the shape signal behind
    /// [`HashPlan::variable_for_dims`](crate::HashPlan::variable_for_dims)).
    pub fn patch_lens(&self) -> Vec<usize> {
        self.dots.iter().map(|d| d.shape.n).collect()
    }

    /// Returns `true` when every dot layer carries static `P` shapes
    /// (lowered from a spec, or from a [`Cnn`] with a declared input).
    pub fn has_static_shapes(&self) -> bool {
        self.dots.iter().all(|d| d.shape.p > 0)
    }
}

/// Shape state threaded through the [`Cnn`] lowering walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceShape {
    /// No declared input: spatially-dependent quantities stay 0.
    Unknown,
    /// NCHW feature map of `(channels, height, width)` per image.
    Chw(usize, usize, usize),
    /// Flattened features per image.
    Flat(usize),
}

fn attach_peripheral(ir: &mut LayerIr, spec: LayerSpec) {
    match ir.dots.last_mut() {
        Some(d) => d.peripherals.push(spec),
        None => ir.preamble.push(spec),
    }
}

fn walk_blocks(
    blocks: &[Block],
    st: &mut TraceShape,
    ir: &mut LayerIr,
    counters: &mut (usize, usize),
) -> Result<()> {
    for block in blocks {
        match block {
            Block::Conv(conv) => {
                counters.0 += 1;
                let name = format!("conv{}", counters.0);
                let (p, input_elems) = match *st {
                    TraceShape::Chw(c, h, w) => {
                        if c != conv.cfg.in_channels {
                            return Err(CoreError::Unsupported(format!(
                                "{name} expects {} input channels, traced shape has {c}",
                                conv.cfg.in_channels
                            )));
                        }
                        let (oh, ow) = conv.cfg.output_hw(h, w);
                        *st = TraceShape::Chw(conv.cfg.out_channels, oh, ow);
                        (oh * ow, c * h * w)
                    }
                    _ => (0, 0),
                };
                ir.dots.push(DotIr {
                    index: ir.dots.len(),
                    kind: DotKind::Conv,
                    shape: DotLayer {
                        name,
                        p,
                        m: conv.cfg.out_channels,
                        n: conv.cfg.patch_len(),
                        input_elems,
                    },
                    peripherals: Vec::new(),
                });
            }
            Block::Linear(lin) => {
                counters.1 += 1;
                let name = format!("fc{}", counters.1);
                let m = lin.weight.value.shape().dim(0);
                let n = lin.weight.value.shape().dim(1);
                match *st {
                    TraceShape::Flat(f) => {
                        if f != n {
                            return Err(CoreError::Unsupported(format!(
                                "{name} expects {n} input features, traced shape has {f}"
                            )));
                        }
                    }
                    TraceShape::Chw(c, h, w) => {
                        // The engine's Linear step consumes `[N, F]`
                        // input; a feature map reaching it unflattened
                        // is a model bug the lowering should surface.
                        return Err(CoreError::Unsupported(format!(
                            "{name} follows a {c}x{h}x{w} feature map with no Flatten"
                        )));
                    }
                    TraceShape::Unknown => {}
                }
                *st = TraceShape::Flat(m);
                ir.dots.push(DotIr {
                    index: ir.dots.len(),
                    kind: DotKind::Linear,
                    shape: DotLayer {
                        name,
                        p: 1,
                        m,
                        n,
                        input_elems: n,
                    },
                    peripherals: Vec::new(),
                });
            }
            Block::Bn(_) => match *st {
                TraceShape::Chw(c, h, w) => {
                    attach_peripheral(
                        ir,
                        LayerSpec::BatchNorm {
                            elements: c * h * w,
                        },
                    );
                }
                TraceShape::Flat(f) => {
                    attach_peripheral(ir, LayerSpec::BatchNorm { elements: f });
                }
                TraceShape::Unknown => {}
            },
            Block::Relu(_) => match *st {
                TraceShape::Chw(c, h, w) => {
                    attach_peripheral(
                        ir,
                        LayerSpec::Activation {
                            elements: c * h * w,
                        },
                    );
                }
                TraceShape::Flat(f) => {
                    attach_peripheral(ir, LayerSpec::Activation { elements: f });
                }
                TraceShape::Unknown => {}
            },
            Block::MaxPool(p) => pool_peripheral(st, ir, PoolKind::Max, &p.cfg),
            Block::AvgPool(p) => pool_peripheral(st, ir, PoolKind::Avg, &p.cfg),
            Block::Flatten(_) => {
                if let TraceShape::Chw(c, h, w) = *st {
                    *st = TraceShape::Flat(c * h * w);
                }
            }
            Block::Residual(ResBlock { body, shortcut, .. }) => {
                let entry = *st;
                let mut body_st = entry;
                walk_blocks(body, &mut body_st, ir, counters)?;
                if let Some(sc) = shortcut {
                    let mut sc_st = entry;
                    walk_blocks(sc, &mut sc_st, ir, counters)?;
                    if sc_st != body_st
                        && sc_st != TraceShape::Unknown
                        && body_st != TraceShape::Unknown
                    {
                        return Err(CoreError::Unsupported(
                            "residual branches disagree on output shape".to_string(),
                        ));
                    }
                }
                *st = body_st;
                let elements = match body_st {
                    TraceShape::Chw(c, h, w) => Some(c * h * w),
                    TraceShape::Flat(f) => Some(f),
                    TraceShape::Unknown => None,
                };
                if let Some(elements) = elements {
                    attach_peripheral(ir, LayerSpec::EltwiseAdd { elements });
                    // The ReLU after the residual add.
                    attach_peripheral(ir, LayerSpec::Activation { elements });
                }
            }
        }
    }
    Ok(())
}

fn pool_peripheral(st: &mut TraceShape, ir: &mut LayerIr, kind: PoolKind, cfg: &PoolConfig) {
    if let TraceShape::Chw(c, h, w) = *st {
        attach_peripheral(
            ir,
            LayerSpec::Pool(PoolSpec {
                kind,
                kernel: cfg.kernel,
                channels: c,
                in_h: h,
                in_w: w,
            }),
        );
        let (oh, ow) = cfg.output_hw(h, w);
        *st = TraceShape::Chw(c, oh, ow);
    }
}

/// The weight tensor of every dot layer of a [`Cnn`], traversal order
/// (tuner building block: re-compile a single layer's tile at a new
/// hash length without re-walking the model).
pub(crate) fn dot_layer_weights(model: &Cnn) -> Vec<&Tensor> {
    fn collect<'m>(blocks: &'m [Block], out: &mut Vec<&'m Tensor>) {
        for block in blocks {
            match block {
                Block::Conv(c) => out.push(&c.weight.value),
                Block::Linear(l) => out.push(&l.weight.value),
                Block::Residual(ResBlock { body, shortcut, .. }) => {
                    collect(body, out);
                    if let Some(sc) = shortcut {
                        collect(sc, out);
                    }
                }
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    collect(&model.blocks, &mut out);
    out
}

/// One dot layer's CAM-resident artifact: every kernel context packed
/// into a contiguous tile, plus the seeds and raw norms the runtime
/// derives the rest from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledTile {
    /// Dot-layer traversal index (noise seeding, profile labels).
    pub layer_idx: usize,
    /// Lowered layer name (`conv3`, `fc1`, …).
    pub name: String,
    /// Pre-hash vector length `n`.
    pub n: usize,
    /// Bound hash width `k`.
    pub k: usize,
    /// Seed of the layer's `n×k` Gaussian projection. The matrix itself
    /// is *derived*, never stored — `ProjectionMatrix::generate(n, k,
    /// seed)` is deterministic, which keeps artifacts small and the
    /// round-trip bit-exact.
    pub seed: u64,
    /// All `M` kernel hashes in one packed tile.
    pub packed: PackedHashes,
    /// Raw (pre-quantization) L2 norm of every kernel. The engine's
    /// `NormMode` is applied at runtime, so one artifact serves both
    /// norm modes of its config without re-compiling weights.
    pub norms: Vec<f32>,
}

impl CompiledTile {
    /// Hashes one layer's weights into a tile: the per-layer unit of
    /// compilation (and the tuner's cache entry).
    ///
    /// # Errors
    ///
    /// Propagates hashing errors (invalid geometry).
    pub fn compile(
        name: impl Into<String>,
        layer_idx: usize,
        k: usize,
        seed: u64,
        weight: &Tensor,
    ) -> Result<Self> {
        let dims = weight.shape().dims();
        let n: usize = dims[1..].iter().product();
        let gen = ContextGenerator::new(n, k, seed)?;
        let contexts = gen.weight_contexts(weight)?;
        let mut packed = PackedHashes::new(k);
        let mut norms = Vec::with_capacity(contexts.len());
        for wctx in contexts.iter() {
            packed
                .push(&wctx.bits)
                .expect("weight hashes share the layer width by construction");
            norms.push(wctx.norm);
        }
        Ok(CompiledTile {
            layer_idx,
            name: name.into(),
            n,
            k,
            seed,
            packed,
            norms,
        })
    }

    /// Number of kernel contexts (output channels / features).
    pub fn kernels(&self) -> usize {
        self.norms.len()
    }
}

/// Batch-norm parameters folded into a [`CompiledStep::Fused`] step.
///
/// Same fields as a standalone [`CompiledStep::Bn`]; the fused engine
/// arm evaluates the identical per-element expression
/// (`gamma·(v − mean)/√(var + ε) + beta`), so folding never changes a
/// bit of the output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BnParams {
    /// Scale.
    pub gamma: Vec<f32>,
    /// Shift.
    pub beta: Vec<f32>,
    /// Running (or calibrated) mean.
    pub mean: Vec<f32>,
    /// Running (or calibrated) variance.
    pub var: Vec<f32>,
}

impl BinCodec for BnParams {
    fn encode(&self, w: &mut Writer) {
        self.gamma.encode(w);
        self.beta.encode(w);
        self.mean.encode(w);
        self.var.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> BinResult<Self> {
        Ok(BnParams {
            gamma: BinCodec::decode(r)?,
            beta: BinCodec::decode(r)?,
            mean: BinCodec::decode(r)?,
            var: BinCodec::decode(r)?,
        })
    }
}

/// One step of the compiled digital pipeline.
///
/// Mirrors the model's block structure: dot-product steps carry their
/// [`CompiledTile`]; peripheral steps carry the exact float parameters
/// the post-processing module executes digitally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CompiledStep {
    /// Convolution through the CAM datapath.
    Conv {
        /// im2col geometry.
        cfg: Conv2dConfig,
        /// The layer's packed weight contexts.
        tile: CompiledTile,
        /// Per-kernel bias, added digitally after reconstruction.
        bias: Vec<f32>,
    },
    /// Fully-connected layer through the CAM datapath.
    Linear {
        /// The layer's packed weight contexts.
        tile: CompiledTile,
        /// Per-feature bias.
        bias: Vec<f32>,
    },
    /// Batch normalization with frozen (or BN-calibrated) statistics.
    Bn {
        /// Scale.
        gamma: Vec<f32>,
        /// Shift.
        beta: Vec<f32>,
        /// Running mean.
        mean: Vec<f32>,
        /// Running variance.
        var: Vec<f32>,
    },
    /// ReLU.
    Relu,
    /// Max pooling.
    MaxPool(PoolConfig),
    /// Average pooling.
    AvgPool(PoolConfig),
    /// NCHW → `[N, F]` flatten.
    Flatten,
    /// Residual block: `relu(body(x) + shortcut(x))`.
    Residual {
        /// Main branch.
        body: Vec<CompiledStep>,
        /// Projection branch; `None` = identity.
        shortcut: Option<Vec<CompiledStep>>,
    },
    /// A dot layer with its trailing peripherals folded in — the fusion
    /// pass output ([`crate::passes::fuse`]). The engine computes
    /// dot-product reconstruction, bias, batch-norm and ReLU in a single
    /// pass over the output activations, with per-element arithmetic
    /// identical to running the unfused step sequence.
    Fused {
        /// im2col geometry for conv-sourced steps; `None` = linear.
        conv: Option<Conv2dConfig>,
        /// The layer's packed weight contexts.
        tile: CompiledTile,
        /// Per-kernel bias.
        bias: Vec<f32>,
        /// Folded batch-norm (conv-sourced steps only).
        bn: Option<BnParams>,
        /// Folded trailing ReLU.
        relu: bool,
    },
}

/// Maximum residual nesting accepted when decoding an artifact (real
/// models nest once; the bound only guards the decoder's stack against
/// hostile input).
const MAX_STEP_DEPTH: usize = 64;

impl CompiledStep {
    fn decode_at(r: &mut Reader<'_>, depth: usize) -> BinResult<Self> {
        if depth > MAX_STEP_DEPTH {
            return Err(BinError::Invalid(format!(
                "step nesting deeper than {MAX_STEP_DEPTH}"
            )));
        }
        match r.get_u8()? {
            0 => Ok(CompiledStep::Conv {
                cfg: BinCodec::decode(r)?,
                tile: BinCodec::decode(r)?,
                bias: BinCodec::decode(r)?,
            }),
            1 => Ok(CompiledStep::Linear {
                tile: BinCodec::decode(r)?,
                bias: BinCodec::decode(r)?,
            }),
            2 => Ok(CompiledStep::Bn {
                gamma: BinCodec::decode(r)?,
                beta: BinCodec::decode(r)?,
                mean: BinCodec::decode(r)?,
                var: BinCodec::decode(r)?,
            }),
            3 => Ok(CompiledStep::Relu),
            4 => Ok(CompiledStep::MaxPool(BinCodec::decode(r)?)),
            5 => Ok(CompiledStep::AvgPool(BinCodec::decode(r)?)),
            6 => Ok(CompiledStep::Flatten),
            7 => {
                let body = Self::decode_vec(r, depth + 1)?;
                let shortcut = match r.get_u8()? {
                    0 => None,
                    1 => Some(Self::decode_vec(r, depth + 1)?),
                    other => return Err(BinError::Invalid(format!("shortcut tag {other}"))),
                };
                Ok(CompiledStep::Residual { body, shortcut })
            }
            8 => Ok(CompiledStep::Fused {
                conv: BinCodec::decode(r)?,
                tile: BinCodec::decode(r)?,
                bias: BinCodec::decode(r)?,
                bn: BinCodec::decode(r)?,
                relu: r.get_bool()?,
            }),
            other => Err(BinError::Invalid(format!("CompiledStep tag {other}"))),
        }
    }

    fn decode_vec(r: &mut Reader<'_>, depth: usize) -> BinResult<Vec<Self>> {
        let len = r.get_usize()?;
        let mut out = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            out.push(Self::decode_at(r, depth)?);
        }
        Ok(out)
    }
}

impl BinCodec for CompiledStep {
    fn encode(&self, w: &mut Writer) {
        match self {
            CompiledStep::Conv { cfg, tile, bias } => {
                w.put_u8(0);
                cfg.encode(w);
                tile.encode(w);
                bias.encode(w);
            }
            CompiledStep::Linear { tile, bias } => {
                w.put_u8(1);
                tile.encode(w);
                bias.encode(w);
            }
            CompiledStep::Bn {
                gamma,
                beta,
                mean,
                var,
            } => {
                w.put_u8(2);
                gamma.encode(w);
                beta.encode(w);
                mean.encode(w);
                var.encode(w);
            }
            CompiledStep::Relu => w.put_u8(3),
            CompiledStep::MaxPool(cfg) => {
                w.put_u8(4);
                cfg.encode(w);
            }
            CompiledStep::AvgPool(cfg) => {
                w.put_u8(5);
                cfg.encode(w);
            }
            CompiledStep::Flatten => w.put_u8(6),
            CompiledStep::Residual { body, shortcut } => {
                w.put_u8(7);
                body.encode(w);
                match shortcut {
                    None => w.put_u8(0),
                    Some(sc) => {
                        w.put_u8(1);
                        sc.encode(w);
                    }
                }
            }
            CompiledStep::Fused {
                conv,
                tile,
                bias,
                bn,
                relu,
            } => {
                w.put_u8(8);
                conv.encode(w);
                tile.encode(w);
                bias.encode(w);
                bn.encode(w);
                w.put_bool(*relu);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> BinResult<Self> {
        Self::decode_at(r, 0)
    }
}

/// Artifact file magic (`"DCAM"`).
pub const ARTIFACT_MAGIC: [u8; 4] = *b"DCAM";
/// Artifact format version written by [`CompiledModel::to_bytes`]. Bump
/// on any encoding change; [`CompiledModel::from_bytes`] rejects
/// unknown versions instead of misinterpreting bytes.
///
/// Version history:
/// * **1** — config, IR, binding, steps.
/// * **2** — adds the optional [`ModelMapping`] section after the steps
///   and the fused step tag (pass-pipeline PR). Version-aware load keeps
///   v1 artifacts readable; [`CompiledModel::to_bytes_v1`] writes the
///   old layout for models no pass has touched.
pub const ARTIFACT_VERSION: u32 = 2;
/// Oldest artifact format version [`CompiledModel::from_bytes`] accepts.
pub const ARTIFACT_MIN_VERSION: u32 = 1;

/// A trained model compiled for CAM-based inference — the pipeline's
/// final, serializable stage.
///
/// Build one with [`CompiledModel::compile`], persist it with
/// [`CompiledModel::save`], and serve it with
/// [`DeepCamEngine::from_compiled`](crate::DeepCamEngine::from_compiled).
/// A saved-and-reloaded artifact produces logits bit-identical to the
/// in-memory compile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledModel {
    /// The configuration the model was compiled under (plan, seed,
    /// cosine/norm modes, noise, parallelism default).
    pub config: EngineConfig,
    /// The lowered view the compile consumed.
    pub ir: LayerIr,
    /// The validated per-layer hash lengths.
    pub binding: PlanBinding,
    /// The step pipeline (tiles + digital peripherals).
    pub(crate) steps: Vec<CompiledStep>,
    /// Per-layer array-mapping decisions attached by the mapping pass
    /// ([`crate::passes::mapping`]); `None` until that pass runs. Pure
    /// scheduling metadata — the functional engine never reads it, so it
    /// cannot affect logits.
    pub mapping: Option<ModelMapping>,
}

impl CompiledModel {
    /// Compiles a trained model under a configuration:
    /// `Cnn → LayerIr → PlanBinding → CompiledModel`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPlan`] (naming the offending layer)
    /// when the plan does not cover the model, and hashing errors when a
    /// layer's geometry is invalid.
    pub fn compile(model: &Cnn, cfg: EngineConfig) -> Result<Self> {
        let ir = LayerIr::from_cnn(model)?;
        let binding = cfg.plan.bind(&ir)?;
        let mut idx = 0usize;
        let steps = compile_blocks(&model.blocks, &cfg, &ir, &binding, &mut idx)?;
        debug_assert_eq!(idx, ir.dots.len());
        Ok(CompiledModel {
            config: cfg,
            ir,
            binding,
            steps,
            mapping: None,
        })
    }

    /// Name of the source model.
    pub fn model_name(&self) -> &str {
        &self.ir.model_name
    }

    /// Number of dot layers compiled to CAM form.
    pub fn dot_layers(&self) -> usize {
        self.ir.dots.len()
    }

    /// The compiled tiles in traversal order.
    pub fn tiles(&self) -> Vec<&CompiledTile> {
        fn collect<'m>(steps: &'m [CompiledStep], out: &mut Vec<&'m CompiledTile>) {
            for step in steps {
                match step {
                    CompiledStep::Conv { tile, .. }
                    | CompiledStep::Linear { tile, .. }
                    | CompiledStep::Fused { tile, .. } => out.push(tile),
                    CompiledStep::Residual { body, shortcut } => {
                        collect(body, out);
                        if let Some(sc) = shortcut {
                            collect(sc, out);
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut out = Vec::with_capacity(self.ir.dots.len());
        collect(&self.steps, &mut out);
        out
    }

    /// Mutable visit of every tile in traversal order (tuner internals).
    pub(crate) fn for_each_tile_mut(&mut self, f: &mut impl FnMut(&mut CompiledTile)) {
        fn walk(steps: &mut [CompiledStep], f: &mut impl FnMut(&mut CompiledTile)) {
            for step in steps {
                match step {
                    CompiledStep::Conv { tile, .. }
                    | CompiledStep::Linear { tile, .. }
                    | CompiledStep::Fused { tile, .. } => f(tile),
                    CompiledStep::Residual { body, shortcut } => {
                        walk(body, f);
                        if let Some(sc) = shortcut {
                            walk(sc, f);
                        }
                    }
                    _ => {}
                }
            }
        }
        walk(&mut self.steps, f);
    }

    /// Structural consistency check: the binding covers the IR, every
    /// tile's width matches its bound length, and tile indices are the
    /// IR's traversal order. Run on every decoded artifact.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Artifact`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        let dots = self.ir.dots.len();
        if self.binding.len() != dots {
            return Err(CoreError::Artifact(format!(
                "binding covers {} layers, IR has {dots}",
                self.binding.len()
            )));
        }
        for (pos, dot) in self.ir.dots.iter().enumerate() {
            // Consumers index bindings/tiles by `DotIr::index`, so a
            // decoded IR whose indices are not the traversal order would
            // panic downstream — reject it here instead.
            if dot.index != pos {
                return Err(CoreError::Artifact(format!(
                    "IR dot layer at traversal position {pos} claims index {}",
                    dot.index
                )));
            }
        }
        let tiles = self.tiles();
        if tiles.len() != dots {
            return Err(CoreError::Artifact(format!(
                "{} tiles for {dots} IR dot layers",
                tiles.len()
            )));
        }
        for (pos, tile) in tiles.iter().enumerate() {
            if tile.layer_idx != pos {
                return Err(CoreError::Artifact(format!(
                    "tile at traversal position {pos} claims layer index {}",
                    tile.layer_idx
                )));
            }
            let k = self.binding.k_for(pos);
            if tile.k != k || tile.packed.bits() != k {
                return Err(CoreError::Artifact(format!(
                    "tile {pos} ('{}') has width {} (packed {}), binding says {k}",
                    tile.name,
                    tile.k,
                    tile.packed.bits()
                )));
            }
            if tile.norms.len() != tile.packed.rows() {
                return Err(CoreError::Artifact(format!(
                    "tile {pos} ('{}') has {} norms for {} packed rows",
                    tile.name,
                    tile.norms.len(),
                    tile.packed.rows()
                )));
            }
            let ir_shape = &self.ir.dots[pos].shape;
            if tile.n != ir_shape.n || tile.norms.len() != ir_shape.m {
                return Err(CoreError::Artifact(format!(
                    "tile {pos} ('{}') shape {}x{} disagrees with IR {}x{}",
                    tile.name,
                    tile.norms.len(),
                    tile.n,
                    ir_shape.m,
                    ir_shape.n
                )));
            }
        }
        // Per-step parameter vectors: the inference loops index these by
        // kernel/channel without bounds checks of their own, so a
        // corrupted artifact must be rejected here, not panic at serve
        // time.
        fn check_steps(steps: &[CompiledStep]) -> Result<()> {
            for step in steps {
                match step {
                    CompiledStep::Conv { cfg, tile, bias } => {
                        if bias.len() != tile.kernels() {
                            return Err(CoreError::Artifact(format!(
                                "conv step '{}' has {} bias entries for {} kernels",
                                tile.name,
                                bias.len(),
                                tile.kernels()
                            )));
                        }
                        if cfg.out_channels != tile.kernels() || cfg.patch_len() != tile.n {
                            return Err(CoreError::Artifact(format!(
                                "conv step '{}' geometry {}x{} disagrees with its tile {}x{}",
                                tile.name,
                                cfg.out_channels,
                                cfg.patch_len(),
                                tile.kernels(),
                                tile.n
                            )));
                        }
                    }
                    CompiledStep::Linear { tile, bias } if bias.len() != tile.kernels() => {
                        return Err(CoreError::Artifact(format!(
                            "linear step '{}' has {} bias entries for {} features",
                            tile.name,
                            bias.len(),
                            tile.kernels()
                        )));
                    }
                    CompiledStep::Bn {
                        gamma,
                        beta,
                        mean,
                        var,
                    } => {
                        let c = gamma.len();
                        if beta.len() != c || mean.len() != c || var.len() != c {
                            return Err(CoreError::Artifact(format!(
                                "batch-norm step statistics disagree in length: \
                                 gamma {c}, beta {}, mean {}, var {}",
                                beta.len(),
                                mean.len(),
                                var.len()
                            )));
                        }
                    }
                    CompiledStep::Fused {
                        conv,
                        tile,
                        bias,
                        bn,
                        ..
                    } => {
                        if bias.len() != tile.kernels() {
                            return Err(CoreError::Artifact(format!(
                                "fused step '{}' has {} bias entries for {} kernels",
                                tile.name,
                                bias.len(),
                                tile.kernels()
                            )));
                        }
                        if let Some(cfg) = conv {
                            if cfg.out_channels != tile.kernels() || cfg.patch_len() != tile.n {
                                return Err(CoreError::Artifact(format!(
                                    "fused step '{}' geometry {}x{} disagrees with its tile {}x{}",
                                    tile.name,
                                    cfg.out_channels,
                                    cfg.patch_len(),
                                    tile.kernels(),
                                    tile.n
                                )));
                            }
                        }
                        if let Some(p) = bn {
                            // Fused BN is per-channel over an NCHW map;
                            // only conv-sourced steps produce one.
                            if conv.is_none() {
                                return Err(CoreError::Artifact(format!(
                                    "fused step '{}' folds batch-norm without conv geometry",
                                    tile.name
                                )));
                            }
                            let c = tile.kernels();
                            if p.gamma.len() != c
                                || p.beta.len() != c
                                || p.mean.len() != c
                                || p.var.len() != c
                            {
                                return Err(CoreError::Artifact(format!(
                                    "fused step '{}' batch-norm statistics disagree with \
                                     {c} kernels: gamma {}, beta {}, mean {}, var {}",
                                    tile.name,
                                    p.gamma.len(),
                                    p.beta.len(),
                                    p.mean.len(),
                                    p.var.len()
                                )));
                            }
                        }
                    }
                    CompiledStep::Residual { body, shortcut } => {
                        check_steps(body)?;
                        if let Some(sc) = shortcut {
                            check_steps(sc)?;
                        }
                    }
                    _ => {}
                }
            }
            Ok(())
        }
        check_steps(&self.steps)?;
        if let Some(mapping) = &self.mapping {
            mapping.check(dots)?;
        }
        Ok(())
    }

    /// Serializes to the current (v2) binary artifact format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_raw(&ARTIFACT_MAGIC);
        w.put_u32(ARTIFACT_VERSION);
        self.config.encode(&mut w);
        self.ir.encode(&mut w);
        self.binding.encode(&mut w);
        self.steps.encode(&mut w);
        self.mapping.encode(&mut w);
        w.into_bytes()
    }

    /// Serializes to the legacy v1 artifact layout, for deployments that
    /// still run a pre-pass-pipeline reader.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Artifact`] when the model carries state the
    /// v1 format cannot express — a mapping, or any fused step.
    pub fn to_bytes_v1(&self) -> Result<Vec<u8>> {
        fn has_fused(steps: &[CompiledStep]) -> bool {
            steps.iter().any(|s| match s {
                CompiledStep::Fused { .. } => true,
                CompiledStep::Residual { body, shortcut } => {
                    has_fused(body) || shortcut.as_deref().is_some_and(has_fused)
                }
                _ => false,
            })
        }
        if self.mapping.is_some() {
            return Err(CoreError::Artifact(
                "model carries an array mapping; the v1 format cannot express it".to_string(),
            ));
        }
        if has_fused(&self.steps) {
            return Err(CoreError::Artifact(
                "model carries fused steps; the v1 format cannot express them".to_string(),
            ));
        }
        let mut w = Writer::new();
        w.put_raw(&ARTIFACT_MAGIC);
        w.put_u32(1);
        self.config.encode(&mut w);
        self.ir.encode(&mut w);
        self.binding.encode(&mut w);
        self.steps.encode(&mut w);
        Ok(w.into_bytes())
    }

    /// Deserializes and validates an artifact.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Artifact`] on a bad magic, an unsupported
    /// format version, malformed bytes, or structural inconsistency.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let magic = r
            .take(4)
            .map_err(|_| CoreError::Artifact("file too short for magic".to_string()))?;
        if magic != ARTIFACT_MAGIC {
            return Err(CoreError::Artifact(format!(
                "bad magic {magic:?}, expected {ARTIFACT_MAGIC:?} — not a DeepCAM artifact"
            )));
        }
        let version = r.get_u32()?;
        if !(ARTIFACT_MIN_VERSION..=ARTIFACT_VERSION).contains(&version) {
            return Err(CoreError::Artifact(format!(
                "artifact format version {version}, this build reads \
                 {ARTIFACT_MIN_VERSION}..={ARTIFACT_VERSION}"
            )));
        }
        let config = BinCodec::decode(&mut r)?;
        let ir = BinCodec::decode(&mut r)?;
        let binding = BinCodec::decode(&mut r)?;
        let steps = CompiledStep::decode_vec(&mut r, 0)?;
        // v1 artifacts predate the mapping section: decode to `None`, so
        // every pre-change artifact keeps loading and serving unchanged.
        let mapping = if version >= 2 {
            BinCodec::decode(&mut r)?
        } else {
            None
        };
        let model = CompiledModel {
            config,
            ir,
            binding,
            steps,
            mapping,
        };
        r.finish()?;
        model.validate()?;
        Ok(model)
    }

    /// Writes the artifact to `path` (see [`CompiledModel::to_bytes`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Artifact`] on I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_bytes())
            .map_err(|e| CoreError::Artifact(format!("writing {}: {e}", path.display())))
    }

    /// Reads an artifact from `path` (see [`CompiledModel::from_bytes`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Artifact`] on I/O failure or any
    /// [`CompiledModel::from_bytes`] condition.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| CoreError::Artifact(format!("reading {}: {e}", path.display())))?;
        Self::from_bytes(&bytes)
    }
}

fn compile_blocks(
    blocks: &[Block],
    cfg: &EngineConfig,
    ir: &LayerIr,
    binding: &PlanBinding,
    idx: &mut usize,
) -> Result<Vec<CompiledStep>> {
    let mut steps = Vec::with_capacity(blocks.len());
    for block in blocks {
        match block {
            Block::Conv(conv) => {
                let tile = CompiledTile::compile(
                    ir.dots[*idx].shape.name.clone(),
                    *idx,
                    binding.k_for(*idx),
                    cfg.seed.wrapping_add(*idx as u64),
                    &conv.weight.value,
                )?;
                steps.push(CompiledStep::Conv {
                    cfg: conv.cfg,
                    tile,
                    bias: conv.bias.value.data().to_vec(),
                });
                *idx += 1;
            }
            Block::Linear(lin) => {
                let tile = CompiledTile::compile(
                    ir.dots[*idx].shape.name.clone(),
                    *idx,
                    binding.k_for(*idx),
                    cfg.seed.wrapping_add(*idx as u64),
                    &lin.weight.value,
                )?;
                steps.push(CompiledStep::Linear {
                    tile,
                    bias: lin.bias.value.data().to_vec(),
                });
                *idx += 1;
            }
            Block::Bn(bn) => steps.push(CompiledStep::Bn {
                gamma: bn.gamma.value.data().to_vec(),
                beta: bn.beta.value.data().to_vec(),
                mean: bn.running_mean.clone(),
                var: bn.running_var.clone(),
            }),
            Block::Relu(_) => steps.push(CompiledStep::Relu),
            Block::MaxPool(p) => steps.push(CompiledStep::MaxPool(p.cfg)),
            Block::AvgPool(p) => steps.push(CompiledStep::AvgPool(p.cfg)),
            Block::Flatten(_) => steps.push(CompiledStep::Flatten),
            Block::Residual(ResBlock { body, shortcut, .. }) => {
                let body_steps = compile_blocks(body, cfg, ir, binding, idx)?;
                let shortcut_steps = match shortcut {
                    Some(s) => Some(compile_blocks(s, cfg, ir, binding, idx)?),
                    None => None,
                };
                steps.push(CompiledStep::Residual {
                    body: body_steps,
                    shortcut: shortcut_steps,
                });
            }
        }
    }
    Ok(steps)
}

impl BinCodec for DotKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            DotKind::Conv => 0,
            DotKind::Linear => 1,
        });
    }

    fn decode(r: &mut Reader<'_>) -> BinResult<Self> {
        match r.get_u8()? {
            0 => Ok(DotKind::Conv),
            1 => Ok(DotKind::Linear),
            other => Err(BinError::Invalid(format!("DotKind tag {other}"))),
        }
    }
}

impl BinCodec for DotIr {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.index);
        self.kind.encode(w);
        self.shape.encode(w);
        self.peripherals.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> BinResult<Self> {
        Ok(DotIr {
            index: r.get_usize()?,
            kind: BinCodec::decode(r)?,
            shape: BinCodec::decode(r)?,
            peripherals: BinCodec::decode(r)?,
        })
    }
}

impl BinCodec for LayerIr {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.model_name);
        w.put_str(&self.workload);
        self.preamble.encode(w);
        self.dots.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> BinResult<Self> {
        Ok(LayerIr {
            model_name: r.get_str()?,
            workload: r.get_str()?,
            preamble: BinCodec::decode(r)?,
            dots: BinCodec::decode(r)?,
        })
    }
}

impl BinCodec for CompiledTile {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.layer_idx);
        w.put_str(&self.name);
        w.put_usize(self.n);
        w.put_usize(self.k);
        w.put_u64(self.seed);
        self.packed.encode(w);
        self.norms.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> BinResult<Self> {
        Ok(CompiledTile {
            layer_idx: r.get_usize()?,
            name: r.get_str()?,
            n: r.get_usize()?,
            k: r.get_usize()?,
            seed: r.get_u64()?,
            packed: BinCodec::decode(r)?,
            norms: BinCodec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashplan::HashPlan;
    use deepcam_models::scaled::{scaled_lenet5, scaled_resnet18, scaled_vgg11};
    use deepcam_models::zoo;
    use deepcam_tensor::rng::seeded_rng;

    #[test]
    fn spec_and_cnn_lowerings_agree_on_dot_counts() {
        let mut rng = seeded_rng(0);
        for (cnn, expect) in [
            (scaled_lenet5(&mut rng, 10), 5),
            (scaled_vgg11(&mut rng, 8, 10), 9),
            (scaled_resnet18(&mut rng, 4, 10), 21),
        ] {
            let ir = LayerIr::from_cnn(&cnn).unwrap();
            assert_eq!(ir.len(), expect, "{}", cnn.name);
            assert_eq!(ir.len(), cnn.dot_layer_count());
            // Scaled constructors declare their input, so shapes are
            // fully static.
            assert!(ir.has_static_shapes(), "{}", cnn.name);
            for (i, d) in ir.dots.iter().enumerate() {
                assert_eq!(d.index, i);
                assert!(d.shape.m > 0 && d.shape.n > 0);
            }
        }
    }

    #[test]
    fn from_spec_is_the_single_spec_lowering() {
        for spec in zoo::all_workloads() {
            let ir = LayerIr::from_spec(&spec);
            let direct = spec.dot_layers();
            assert_eq!(ir.len(), direct.len());
            for (d, raw) in ir.dots.iter().zip(direct.iter()) {
                assert_eq!(&d.shape, raw);
            }
            assert!(ir.has_static_shapes());
            // Every non-dot layer of the spec lands in exactly one
            // peripheral list (or the preamble).
            let peripheral_count: usize =
                ir.preamble.len() + ir.dots.iter().map(|d| d.peripherals.len()).sum::<usize>();
            let non_dot = spec.layers.iter().filter(|l| !l.is_dot_layer()).count();
            assert_eq!(peripheral_count, non_dot, "{}", spec.name);
        }
    }

    #[test]
    fn cnn_lowering_names_layers_in_traversal_order() {
        let mut rng = seeded_rng(1);
        let ir = LayerIr::from_cnn(&scaled_lenet5(&mut rng, 10)).unwrap();
        let names: Vec<&str> = ir.dots.iter().map(|d| d.shape.name.as_str()).collect();
        assert_eq!(names, ["conv1", "conv2", "fc1", "fc2", "fc3"]);
    }

    #[test]
    fn cnn_lowering_without_input_is_geometry_only() {
        let mut rng = seeded_rng(2);
        let mut model = scaled_lenet5(&mut rng, 10);
        model.input = None;
        let ir = LayerIr::from_cnn(&model).unwrap();
        assert_eq!(ir.len(), 5);
        assert!(!ir.has_static_shapes());
        assert_eq!(ir.dots[0].shape.p, 0);
        // Geometry (m, n) is still exact.
        assert_eq!(ir.dots[0].shape.n, 25);
        assert_eq!(ir.dots[0].shape.m, 6);
    }

    #[test]
    fn cnn_lowering_rejects_inconsistent_input_decl() {
        let mut rng = seeded_rng(3);
        let mut model = scaled_lenet5(&mut rng, 10);
        model.input = Some((3, 28, 28)); // LeNet expects 1 channel
        assert!(matches!(
            LayerIr::from_cnn(&model),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn resnet_lowering_emits_residual_peripherals() {
        let mut rng = seeded_rng(4);
        let ir = LayerIr::from_cnn(&scaled_resnet18(&mut rng, 4, 10)).unwrap();
        // Every residual block contributes an EltwiseAdd peripheral.
        let adds = ir
            .dots
            .iter()
            .flat_map(|d| d.peripherals.iter())
            .filter(|p| matches!(p, LayerSpec::EltwiseAdd { .. }))
            .count();
        assert_eq!(adds, 8); // 4 stages × 2 blocks
    }

    #[test]
    fn compiled_model_exposes_tiles_in_traversal_order() {
        let mut rng = seeded_rng(5);
        let model = scaled_resnet18(&mut rng, 4, 10);
        let compiled = CompiledModel::compile(
            &model,
            EngineConfig {
                plan: HashPlan::Uniform(256),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        compiled.validate().unwrap();
        let tiles = compiled.tiles();
        assert_eq!(tiles.len(), 21);
        for (i, t) in tiles.iter().enumerate() {
            assert_eq!(t.layer_idx, i);
            assert_eq!(t.k, 256);
            assert_eq!(t.kernels(), compiled.ir.dots[i].shape.m);
        }
    }

    #[test]
    fn validate_rejects_corrupted_ir_indices() {
        // Consumers index bindings and tiles by `DotIr::index`; an
        // artifact whose IR indices disagree with traversal order must
        // be rejected at decode, not panic downstream.
        let mut rng = seeded_rng(8);
        let model = scaled_lenet5(&mut rng, 10);
        let mut compiled = CompiledModel::compile(
            &model,
            EngineConfig {
                plan: HashPlan::Uniform(256),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        compiled.ir.dots[0].index = 1000;
        assert!(matches!(
            compiled.validate(),
            Err(CoreError::Artifact(msg)) if msg.contains("position 0")
        ));
        assert!(matches!(
            CompiledModel::from_bytes(&compiled.to_bytes()),
            Err(CoreError::Artifact(_))
        ));
    }

    #[test]
    fn artifact_rejects_bad_magic_version_and_truncation() {
        let mut rng = seeded_rng(6);
        let model = scaled_lenet5(&mut rng, 10);
        let compiled = CompiledModel::compile(
            &model,
            EngineConfig {
                plan: HashPlan::Uniform(256),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let bytes = compiled.to_bytes();

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            CompiledModel::from_bytes(&bad_magic),
            Err(CoreError::Artifact(msg)) if msg.contains("magic")
        ));

        let mut bad_version = bytes.clone();
        bad_version[4] = 0xFF;
        assert!(matches!(
            CompiledModel::from_bytes(&bad_version),
            Err(CoreError::Artifact(msg)) if msg.contains("version")
        ));

        for cut in [0, 3, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                CompiledModel::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(CompiledModel::from_bytes(&trailing).is_err());
    }

    #[test]
    fn v1_artifact_loads_with_no_mapping() {
        let mut rng = seeded_rng(9);
        let model = scaled_lenet5(&mut rng, 10);
        let compiled = CompiledModel::compile(
            &model,
            EngineConfig {
                plan: HashPlan::Uniform(512),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let v1 = compiled.to_bytes_v1().unwrap();
        assert_eq!(&v1[4..8], &1u32.to_le_bytes());
        let restored = CompiledModel::from_bytes(&v1).unwrap();
        assert_eq!(compiled, restored);
        assert!(restored.mapping.is_none());
    }

    #[test]
    fn v1_writer_refuses_mapped_and_fused_models() {
        use crate::passes::mapping::ModelMapping;
        use crate::Dataflow;
        let mut rng = seeded_rng(10);
        let model = scaled_lenet5(&mut rng, 10);
        let compiled = CompiledModel::compile(
            &model,
            EngineConfig {
                plan: HashPlan::Uniform(256),
                ..EngineConfig::default()
            },
        )
        .unwrap();

        let mut mapped = compiled.clone();
        mapped.mapping = Some(ModelMapping::fixed(
            64,
            Dataflow::ActivationStationary,
            mapped.dot_layers(),
        ));
        mapped.validate().unwrap();
        assert!(matches!(
            mapped.to_bytes_v1(),
            Err(CoreError::Artifact(msg)) if msg.contains("mapping")
        ));

        let mut fused = compiled;
        crate::passes::fuse::run(&mut fused);
        assert!(matches!(
            fused.to_bytes_v1(),
            Err(CoreError::Artifact(msg)) if msg.contains("fused")
        ));
    }

    #[test]
    fn artifact_round_trips_exactly() {
        let mut rng = seeded_rng(7);
        let model = scaled_lenet5(&mut rng, 10);
        let compiled = CompiledModel::compile(
            &model,
            EngineConfig {
                plan: HashPlan::PerLayer(vec![256, 512, 256, 768, 1024]),
                crossbar_noise: 0.25,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let restored = CompiledModel::from_bytes(&compiled.to_bytes()).unwrap();
        assert_eq!(compiled, restored);
    }
}
