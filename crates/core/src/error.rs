//! Unified error type for the accelerator simulator.

use std::fmt;

use deepcam_cam::CamError;
use deepcam_hash::HashError;
use deepcam_tensor::TensorError;

/// Error returned by DeepCAM compilation, scheduling and inference.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A tensor operation failed (shape mismatch etc.).
    Tensor(TensorError),
    /// Hashing or context generation failed.
    Hash(HashError),
    /// The CAM model rejected a configuration or operation.
    Cam(CamError),
    /// A hash plan is inconsistent with the model (wrong layer count or
    /// unsupported length).
    InvalidPlan(String),
    /// The model contains a construct the engine cannot compile.
    Unsupported(String),
    /// A caller-supplied argument is inconsistent (mismatched label
    /// count, zero batch size, …).
    InvalidInput(String),
    /// A serialized [`CompiledModel`](crate::ir::CompiledModel) artifact
    /// could not be written, read, decoded or validated.
    Artifact(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::Hash(e) => write!(f, "hash error: {e}"),
            CoreError::Cam(e) => write!(f, "cam error: {e}"),
            CoreError::InvalidPlan(msg) => write!(f, "invalid hash plan: {msg}"),
            CoreError::Unsupported(msg) => write!(f, "unsupported model construct: {msg}"),
            CoreError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            CoreError::Artifact(msg) => write!(f, "artifact error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Tensor(e) => Some(e),
            CoreError::Hash(e) => Some(e),
            CoreError::Cam(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<HashError> for CoreError {
    fn from(e: HashError) -> Self {
        CoreError::Hash(e)
    }
}

impl From<CamError> for CoreError {
    fn from(e: CamError) -> Self {
        CoreError::Cam(e)
    }
}

impl From<serde::bin::BinError> for CoreError {
    fn from(e: serde::bin::BinError) -> Self {
        CoreError::Artifact(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_work() {
        let e: CoreError = TensorError::MissingForwardCache("x").into();
        assert!(matches!(e, CoreError::Tensor(_)));
        let e: CoreError = HashError::InvalidConfig("y".into()).into();
        assert!(matches!(e, CoreError::Hash(_)));
        let e: CoreError = CamError::InvalidConfig("z".into()).into();
        assert!(matches!(e, CoreError::Cam(_)));
    }

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e: CoreError = TensorError::MissingForwardCache("conv").into();
        assert!(e.to_string().contains("tensor error"));
        assert!(e.source().is_some());
        let p = CoreError::InvalidPlan("bad".into());
        assert!(p.source().is_none());
        let i = CoreError::InvalidInput("6 images but 5 labels".into());
        assert!(i.to_string().contains("invalid input"));
        assert!(i.source().is_none());
        let a = CoreError::Artifact("bad magic".into());
        assert!(a.to_string().contains("artifact error"));
        assert!(a.source().is_none());
    }

    #[test]
    fn bin_error_converts_to_artifact() {
        let e: CoreError = serde::bin::BinError::Invalid("tag 9".into()).into();
        assert!(matches!(e, CoreError::Artifact(msg) if msg.contains("tag 9")));
    }
}
