//! Post-processing & transformation module cost model (paper Fig. 7).
//!
//! After the CAM reports Hamming distances, each dot-product still needs:
//! angle scaling (`θ = π·HD/k`, one multiply), the piecewise cosine of
//! eq. 5 (one multiply-add plus a range compare), and the final multiply
//! by the two 8-bit minifloat norms (two multiplies) — about five simple
//! ALU operations per dot-product. The module also executes the CNN's
//! peripheral operations (ReLU, pooling, batch-norm, bias, residual adds)
//! digitally.
//!
//! Constants are 45 nm / 300 MHz estimates for 16-bit datapath operators
//! (the precision of the norm product), the technology corner the paper
//! synthesizes with Synopsys DC/PrimeTime.

use deepcam_models::{LayerSpec, PoolKind};
use serde::{Deserialize, Serialize};

/// Cycle/energy model of the digital post-processing unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PostProcCostModel {
    /// ALU operations needed per approximate dot-product (angle + cosine
    /// + norm multiplies).
    pub ops_per_dot: f64,
    /// Parallel ALU lanes. The paper sizes the unit to keep pace with the
    /// CAM's parallel row readout, so the default is generous.
    pub lanes: usize,
    /// Energy of one 16-bit ALU operation (multiply-add class), joules.
    pub op_energy: f64,
    /// Energy of one element-wise operation (ReLU compare, pool compare,
    /// BN normalize step), joules.
    pub eltwise_energy: f64,
    /// Element-wise operations processed per cycle.
    pub eltwise_lanes: usize,
}

impl Default for PostProcCostModel {
    fn default() -> Self {
        PostProcCostModel {
            ops_per_dot: 5.0,
            lanes: 128,
            op_energy: 0.1e-12,       // 0.1 pJ per 16-bit mult-add at 45 nm
            eltwise_energy: 0.02e-12, // comparisons / shifts are cheaper
            eltwise_lanes: 64,
        }
    }
}

/// Cost of a batch of work on the post-processing unit.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PostProcCost {
    /// Cycles at the unit's clock.
    pub cycles: u64,
    /// Dynamic energy in joules.
    pub energy_j: f64,
}

impl PostProcCostModel {
    /// Cost of reconstructing `dots` approximate dot-products.
    pub fn dot_cost(&self, dots: u64) -> PostProcCost {
        let ops = dots as f64 * self.ops_per_dot;
        PostProcCost {
            cycles: (ops / self.lanes as f64).ceil() as u64,
            energy_j: ops * self.op_energy,
        }
    }

    /// Cost of the peripheral (non-dot) operations of one layer spec.
    /// Dot-product layers cost nothing here — they are accounted via
    /// [`PostProcCostModel::dot_cost`].
    pub fn peripheral_cost(&self, layer: &LayerSpec) -> PostProcCost {
        let ops = match layer {
            LayerSpec::Pool(p) => {
                // Max: one compare per window element; Avg: one add per
                // element plus a scale per output.
                match p.kind {
                    PoolKind::Max => p.ops() as f64,
                    PoolKind::Avg => p.ops() as f64 + p.out_elements() as f64,
                }
            }
            LayerSpec::BatchNorm { elements } => 2.0 * *elements as f64, // scale + shift
            LayerSpec::Activation { elements } => *elements as f64,
            LayerSpec::EltwiseAdd { elements } => *elements as f64,
            LayerSpec::Conv(_) | LayerSpec::Linear(_) => 0.0,
        };
        PostProcCost {
            cycles: (ops / self.eltwise_lanes as f64).ceil() as u64,
            energy_j: ops * self.eltwise_energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcam_models::PoolSpec;

    #[test]
    fn dot_cost_scales() {
        let m = PostProcCostModel::default();
        let one = m.dot_cost(1_000);
        let ten = m.dot_cost(10_000);
        assert!((ten.energy_j / one.energy_j - 10.0).abs() < 1e-9);
        assert!(ten.cycles >= 9 * one.cycles);
    }

    #[test]
    fn zero_dots_zero_cost() {
        let m = PostProcCostModel::default();
        let c = m.dot_cost(0);
        assert_eq!(c.cycles, 0);
        assert_eq!(c.energy_j, 0.0);
    }

    #[test]
    fn peripheral_pool_cost() {
        let m = PostProcCostModel::default();
        let pool = LayerSpec::Pool(PoolSpec {
            kind: PoolKind::Max,
            kernel: 2,
            channels: 16,
            in_h: 10,
            in_w: 10,
        });
        let c = m.peripheral_cost(&pool);
        assert!(c.cycles > 0);
        // 16*25 outputs × 4 compares = 1600 ops.
        assert!((c.energy_j - 1600.0 * m.eltwise_energy).abs() < 1e-18);
    }

    #[test]
    fn conv_is_free_here() {
        let m = PostProcCostModel::default();
        let conv = LayerSpec::Activation { elements: 0 };
        assert_eq!(m.peripheral_cost(&conv).cycles, 0);
    }

    #[test]
    fn per_dot_energy_magnitude() {
        // ~5 ops × 0.1 pJ = 0.5 pJ per dot-product — small next to a CAM
        // search but non-negligible over millions of dots.
        let m = PostProcCostModel::default();
        let c = m.dot_cost(1);
        assert!((c.energy_j - 0.5e-12).abs() < 1e-15);
    }
}
