//! The **frozen pre-optimization dot-product datapath**.
//!
//! This module preserves, verbatim, the hot path as it existed before
//! the packed-tile/LUT rewrite: a scalar ikj projection GEMM over a
//! copied chunk, a per-bit `BitVec` sign build with one bounds-checked
//! `set()` per bit, and a per-(patch, kernel) loop that re-evaluates the
//! angle and cosine transcendental for every pair through heap-allocated
//! per-row hashes.
//!
//! It exists for two reasons:
//!
//! 1. **Differential oracle.** The optimized engine must produce
//!    bit-identical logits to this path for every model, cosine mode,
//!    norm mode and noise level (`tests/hotpath_reference.rs`). Any
//!    semantic drift in the fast kernels fails loudly against code that
//!    provably computed the paper's equations.
//! 2. **Benchmark baseline.** `hotpath_speedup` times
//!    [`DeepCamEngine::infer_reference`](crate::DeepCamEngine::infer_reference)
//!    against the fast path to report the rewrite's true before/after on
//!    the same binary and host.
//!
//! Nothing here is reachable from production inference; do not "fix" or
//! optimize this code — its value is that it never changes.

use deepcam_hash::context::ContextSet;
use deepcam_hash::geometric::{GeometricDot, NormMode};
use deepcam_hash::{BitVec, Minifloat8};
use deepcam_tensor::rng::{seeded_rng, standard_normal};

use crate::engine::EngineConfig;

/// The historical scalar ikj GEMM (`Tensor::matmul` before k-blocking),
/// kept so the baseline's projection cost is measured as it was.
fn naive_matmul(a: &[f32], m: usize, k: usize, b: &[f32], n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
    out
}

/// The historical per-bit sign builder (`BitVec::from_signs` before
/// word-wise packing).
fn bitwise_from_signs(values: &[f32]) -> BitVec {
    let mut v = BitVec::zeros(values.len());
    for (i, &x) in values.iter().enumerate() {
        if x >= 0.0 {
            v.set(i, true);
        }
    }
    v
}

/// Hashes patch rows `row_start..row_start + out.len() / M` and fills
/// their output slice — the pre-rewrite body of the engine's
/// `dot_rows_range`, character-for-character up to the two helpers
/// above.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dot_rows_range(
    row_data: &[f32],
    n: usize,
    proj: &deepcam_tensor::Tensor,
    weights: &ContextSet,
    k: usize,
    layer_idx: usize,
    engine_cfg: &EngineConfig,
    row_offset: usize,
    row_start: usize,
    out: &mut [f32],
) {
    let m = weights.len();
    let rows_here = out.len() / m;
    let noise = engine_cfg.crossbar_noise;
    let cosine = engine_cfg.cosine;
    let norm_mode = engine_cfg.norm;
    let seed = engine_cfg.seed;
    // Batched projection of this chunk: [rows_here, n] x [n, k]. Each
    // projected element is a fixed-order dot over n, so chunk boundaries
    // never change its value.
    let chunk = row_data[row_start * n..(row_start + rows_here) * n].to_vec();
    let projected = naive_matmul(&chunk, rows_here, n, proj.data(), k);
    for local in 0..rows_here {
        let patch = &row_data[(row_start + local) * n..(row_start + local + 1) * n];
        let norm = patch.iter().map(|&v| v * v).sum::<f32>().sqrt();
        let mut pre = projected[local * k..(local + 1) * k].to_vec();
        if noise > 0.0 {
            // Per-patch deterministic RNG keyed by the *global* patch
            // index: disturbances are reproducible across runs, thread
            // counts and batch splits.
            let global_row = (row_offset + row_start + local) as u64;
            let mut rng = seeded_rng(
                seed ^ ((layer_idx as u64) << 40) ^ global_row.wrapping_mul(0x9E3779B97F4A7C15),
            );
            for v in &mut pre {
                *v += noise * norm * standard_normal(&mut rng) as f32;
            }
        }
        let bits = bitwise_from_signs(&pre);
        let a_norm = match norm_mode {
            NormMode::Minifloat8 => Minifloat8::quantize(norm),
            NormMode::Fp32 => norm,
        };
        for (mi, wctx) in weights.iter().enumerate() {
            let hd = bits
                .hamming(&wctx.bits)
                .expect("weight and activation hashes share k");
            let theta = GeometricDot::angle_from_hamming(hd, k);
            let w_norm = match norm_mode {
                NormMode::Minifloat8 => wctx.quantized_norm(),
                NormMode::Fp32 => wctx.norm,
            };
            out[local * m + mi] = a_norm * w_norm * cosine.eval(theta);
        }
    }
}
