//! # deepcam-core
//!
//! The DeepCAM accelerator (paper §III): a fully CAM-based CNN inference
//! engine with variable hash lengths, in two coupled views:
//!
//! * **Functional** ([`engine`]) — compiles a trained
//!   [`deepcam_models::Cnn`] into per-layer CAM contexts and runs actual
//!   inference with approximate geometric dot-products, reproducing the
//!   accuracy behaviour of Fig. 5. Peripheral operations (ReLU, pooling,
//!   batch-norm, bias) execute exactly, as they do in the digital
//!   post-processing module of the chip.
//! * **Performance** ([`sched`], [`postproc`], [`ctxgen`], [`perf`]) —
//!   analytical cycle/energy accounting over weight-free
//!   [`deepcam_models::ModelSpec`]s, reproducing Figs. 9–10 and Table II.
//!   The scheduler maps every conv/linear layer onto the dynamic-size CAM
//!   under a weight- or activation-stationary dataflow; the
//!   post-processing and online context-generation units are modelled as
//!   45 nm digital logic at 300 MHz.
//!
//! # Example
//!
//! ```
//! use deepcam_core::{sched::CamScheduler, Dataflow, HashPlan};
//! use deepcam_models::zoo;
//!
//! let sched = CamScheduler::new(64, Dataflow::ActivationStationary)?;
//! let perf = sched.run(&zoo::lenet5(), &HashPlan::Uniform(256))?;
//! assert!(perf.total_cycles > 0);
//! // The paper's §IV-B utilization example: AS mode fills the array for
//! // the first conv layer (784 activation contexts ≫ 64 rows).
//! assert!(perf.layers[0].utilization > 0.9);
//! # Ok::<(), deepcam_core::CoreError>(())
//! ```

// Machine-checked by deepcam-analyze (lint A2): this crate holds no
// unsafe code, and the compiler now enforces that it never grows any.
#![forbid(unsafe_code)]

pub mod analysis;
pub mod ctxgen;
pub mod dataflow;
pub mod engine;
pub mod error;
pub mod hashplan;
pub mod ir;
pub mod passes;
pub mod perf;
pub mod postproc;
pub mod profile;
mod reference;
pub mod sched;
pub mod tune;

pub use dataflow::Dataflow;
/// The engine's Hamming kernels dispatch through this table at runtime
/// (`DEEPCAM_SIMD` selects a variant; all variants are bit-identical).
/// Re-exported so accelerator-level callers — benches sweeping kernel
/// variants, serving deployments pinning `scalar` — can reach dispatch
/// without depending on `deepcam-hash` directly.
pub use deepcam_hash::simd;
pub use engine::{DeepCamEngine, EngineConfig};
pub use error::CoreError;
pub use hashplan::{HashPlan, PlanBinding};
pub use ir::{BnParams, CompiledModel, CompiledStep, CompiledTile, DotIr, DotKind, LayerIr};
pub use passes::{LayerMapping, MappingConfig, ModelMapping, Pass, PassOutcome};
pub use perf::{EnergyBreakdown, LayerPerf, PerfReport};
pub use tune::{JointTuneReport, JointTunerConfig, TuneReport, TunerConfig};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
