//! The array-mapping pass: per-layer CAM tile-shape selection over a
//! modeled multi-array chip.
//!
//! The scheduler historically costed every layer at one fixed geometry
//! (64 rows, activation-stationary). Real CAM chips offer several row
//! heights and many arrays; the right tile shape differs per layer — a
//! conv with thousands of output positions amortizes per-search fixed
//! costs over tall tiles, while a fully-connected layer occupies one
//! tile whatever the height. This pass scores every `(rows, dataflow)`
//! candidate for every dot layer with the `deepcam-cam` cost model
//! (through [`CamScheduler::layer_perf_mapped`]) and attaches the winner
//! as [`CompiledModel::mapping`].
//!
//! The mapping is **pure scheduling metadata**: the functional engine
//! never reads it, so the pass cannot change a bit of the logits — only
//! the modeled energy/cycle reports ([`CamScheduler::run_ir_mapped`])
//! and, eventually, a hardware backend consume it.

use deepcam_cam::SUPPORTED_ROW_SIZES;
use serde::bin::{BinCodec, BinResult, Reader, Writer};
use serde::{Deserialize, Serialize};

use crate::dataflow::Dataflow;
use crate::error::CoreError;
use crate::hashplan::PlanBinding;
use crate::ir::{CompiledModel, LayerIr};
use crate::passes::PassOutcome;
use crate::sched::CamScheduler;
use crate::Result;

/// One dot layer's chosen tile geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerMapping {
    /// CAM rows per tile (64/128/256/512).
    pub rows: usize,
    /// Which operand occupies the rows.
    pub dataflow: Dataflow,
}

impl BinCodec for LayerMapping {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.rows);
        self.dataflow.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> BinResult<Self> {
        Ok(LayerMapping {
            rows: r.get_usize()?,
            dataflow: BinCodec::decode(r)?,
        })
    }
}

/// A whole model's array mapping: the chip's array count plus one
/// [`LayerMapping`] per dot layer, traversal order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelMapping {
    /// CAM arrays available to run tiles side by side.
    pub arrays: usize,
    /// Per-dot-layer geometry, indexed by `DotIr::index`.
    pub per_layer: Vec<LayerMapping>,
}

impl ModelMapping {
    /// The degenerate mapping every pre-pass model implicitly ran under:
    /// one array, every layer at the same `rows × dataflow`.
    pub fn fixed(rows: usize, dataflow: Dataflow, layers: usize) -> Self {
        ModelMapping {
            arrays: 1,
            per_layer: vec![LayerMapping { rows, dataflow }; layers],
        }
    }

    /// Structural check against a model with `dots` dot layers
    /// ([`CompiledModel::validate`] calls this on every decoded
    /// artifact).
    pub(crate) fn check(&self, dots: usize) -> Result<()> {
        if self.arrays == 0 {
            return Err(CoreError::Artifact(
                "mapping declares a zero-array chip".to_string(),
            ));
        }
        if self.per_layer.len() != dots {
            return Err(CoreError::Artifact(format!(
                "mapping covers {} layers, IR has {dots}",
                self.per_layer.len()
            )));
        }
        for (i, lm) in self.per_layer.iter().enumerate() {
            if !SUPPORTED_ROW_SIZES.contains(&lm.rows) {
                return Err(CoreError::Artifact(format!(
                    "mapping for layer {i} uses row count {} not in {SUPPORTED_ROW_SIZES:?}",
                    lm.rows
                )));
            }
        }
        Ok(())
    }
}

impl BinCodec for ModelMapping {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.arrays);
        self.per_layer.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> BinResult<Self> {
        Ok(ModelMapping {
            arrays: r.get_usize()?,
            per_layer: BinCodec::decode(r)?,
        })
    }
}

/// The mapping search's candidate space — the modeled chip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingConfig {
    /// CAM arrays on the chip (cycles shrink with more; energy does not).
    pub arrays: usize,
    /// Row heights the search may pick per layer.
    pub rows_options: Vec<usize>,
    /// Dataflows the search may pick per layer.
    pub dataflows: Vec<Dataflow>,
}

impl Default for MappingConfig {
    fn default() -> Self {
        MappingConfig {
            arrays: 8,
            rows_options: SUPPORTED_ROW_SIZES.to_vec(),
            dataflows: Dataflow::both().to_vec(),
        }
    }
}

/// Searches the best per-layer `(rows, dataflow)` under `cfg`, scored by
/// modeled CAM **search** energy — the paper's headline metric and what
/// the variable hash lengths already optimize, making the joint search
/// directly comparable to width-only tuning. Ties are broken by write
/// energy, then cycles, then candidate order (smallest rows, WS before
/// AS) — fully deterministic. The fixed 64-row AS geometry is in the
/// default search space, so the result never scores worse than it.
///
/// # Errors
///
/// Returns [`CoreError::InvalidPlan`] when the binding does not cover
/// the IR or the candidate space is empty,
/// [`CoreError::Unsupported`] when the IR lacks static shapes, and CAM
/// errors for unsupported geometry in `cfg`.
pub fn search_mapping(
    sched: &CamScheduler,
    ir: &LayerIr,
    binding: &PlanBinding,
    cfg: &MappingConfig,
) -> Result<ModelMapping> {
    if binding.len() != ir.dots.len() {
        return Err(CoreError::InvalidPlan(format!(
            "binding covers {} layers but IR '{}' has {}",
            binding.len(),
            ir.model_name,
            ir.dots.len()
        )));
    }
    if !ir.has_static_shapes() && !ir.is_empty() {
        return Err(CoreError::Unsupported(format!(
            "IR '{}' lacks static shapes (lower the model with a declared input)",
            ir.model_name
        )));
    }
    if cfg.rows_options.is_empty() || cfg.dataflows.is_empty() {
        return Err(CoreError::InvalidPlan(
            "mapping search over an empty candidate space".to_string(),
        ));
    }
    let mut per_layer = Vec::with_capacity(ir.dots.len());
    for dot in &ir.dots {
        let k = binding.k_for(dot.index);
        let mut best: Option<(LayerMapping, (f64, f64, u64))> = None;
        for &rows in &cfg.rows_options {
            for &dataflow in &cfg.dataflows {
                let perf = sched.layer_perf_mapped(
                    &dot.shape,
                    k,
                    dot.index == 0,
                    rows,
                    dataflow,
                    cfg.arrays,
                )?;
                // Lexicographic score: search energy first (the metric
                // the hash widths tune), then write energy, then cycles.
                let score = (perf.energy.cam_search, perf.energy.cam_write, perf.cycles);
                let better = match &best {
                    None => true,
                    Some((_, bs)) => score < *bs,
                };
                if better {
                    best = Some((LayerMapping { rows, dataflow }, score));
                }
            }
        }
        let (lm, _) = best.expect("candidate space checked non-empty");
        per_layer.push(lm);
    }
    Ok(ModelMapping {
        arrays: cfg.arrays,
        per_layer,
    })
}

/// The pass entry point: search a mapping for `model` and attach it.
///
/// Models lowered without static shapes cannot be costed; the pass skips
/// them (`changed: false`) rather than failing the pipeline — the
/// functional engine serves them the same either way.
///
/// # Errors
///
/// Propagates [`search_mapping`] errors.
pub(crate) fn run(model: &mut CompiledModel, cfg: &MappingConfig) -> Result<PassOutcome> {
    if !model.ir.has_static_shapes() && !model.ir.is_empty() {
        return Ok(PassOutcome {
            pass: "map-arrays",
            changed: false,
            detail: "skipped: IR lacks static shapes".to_string(),
        });
    }
    // The scheduler here is a cost-model container; its own fixed
    // geometry is never consulted by the mapped entry point.
    let sched = CamScheduler::new(64, Dataflow::ActivationStationary)?;
    let mapping = search_mapping(&sched, &model.ir, &model.binding, cfg)?;
    let changed = model.mapping.as_ref() != Some(&mapping);
    let detail = format!(
        "mapped {} layers onto {} arrays ({} distinct geometries)",
        mapping.per_layer.len(),
        mapping.arrays,
        {
            let mut geoms: Vec<(usize, Dataflow)> = mapping
                .per_layer
                .iter()
                .map(|lm| (lm.rows, lm.dataflow))
                .collect();
            geoms.sort_by_key(|(r, df)| (*r, df.label()));
            geoms.dedup();
            geoms.len()
        }
    );
    model.mapping = Some(mapping);
    Ok(PassOutcome {
        pass: "map-arrays",
        changed,
        detail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashplan::HashPlan;
    use deepcam_models::zoo;

    fn lowered(spec: &deepcam_models::ModelSpec) -> (LayerIr, PlanBinding) {
        let ir = LayerIr::from_spec(spec);
        let plan = HashPlan::variable_for_dims(&ir.patch_lens());
        let binding = plan.bind(&ir).unwrap();
        (ir, binding)
    }

    #[test]
    fn search_is_deterministic_and_covers_every_layer() {
        let (ir, binding) = lowered(&zoo::vgg11());
        let sched = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let cfg = MappingConfig::default();
        let a = search_mapping(&sched, &ir, &binding, &cfg).unwrap();
        let b = search_mapping(&sched, &ir, &binding, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.per_layer.len(), ir.len());
        a.check(ir.len()).unwrap();
    }

    #[test]
    fn searched_mapping_never_loses_to_fixed_64_as() {
        // The fixed geometry is a point of the search space, so the
        // searched mapping's CAM search energy is a lower bound — and
        // strictly lower on conv stacks, where taller AS tiles amortize
        // per-search fixed costs.
        let sched = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        for spec in [zoo::lenet5(), zoo::vgg11()] {
            let (ir, binding) = lowered(&spec);
            let plan_label = "tuned";
            let fixed = sched.run_ir(&ir, &binding, plan_label).unwrap();
            let mapping = search_mapping(&sched, &ir, &binding, &MappingConfig::default()).unwrap();
            let mapped = sched
                .run_ir_mapped(&ir, &binding, &mapping, plan_label)
                .unwrap();
            assert!(
                mapped.energy.cam_search < fixed.energy.cam_search,
                "{}: mapped {} vs fixed {}",
                spec.name,
                mapped.energy.cam_search,
                fixed.energy.cam_search
            );
        }
    }

    #[test]
    fn model_mapping_codec_round_trips() {
        let mapping = ModelMapping {
            arrays: 8,
            per_layer: vec![
                LayerMapping {
                    rows: 512,
                    dataflow: Dataflow::ActivationStationary,
                },
                LayerMapping {
                    rows: 64,
                    dataflow: Dataflow::WeightStationary,
                },
            ],
        };
        let mut w = Writer::new();
        mapping.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let restored = ModelMapping::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(mapping, restored);
    }

    #[test]
    fn check_rejects_bad_mappings() {
        let good = ModelMapping::fixed(64, Dataflow::ActivationStationary, 3);
        good.check(3).unwrap();
        assert!(good.check(2).is_err());

        let mut zero_arrays = good.clone();
        zero_arrays.arrays = 0;
        assert!(zero_arrays.check(3).is_err());

        let mut bad_rows = good;
        bad_rows.per_layer[1].rows = 100;
        assert!(bad_rows.check(3).is_err());
    }

    #[test]
    fn empty_candidate_space_rejected() {
        let (ir, binding) = lowered(&zoo::lenet5());
        let sched = CamScheduler::new(64, Dataflow::ActivationStationary).unwrap();
        let cfg = MappingConfig {
            rows_options: Vec::new(),
            ..MappingConfig::default()
        };
        assert!(matches!(
            search_mapping(&sched, &ir, &binding, &cfg),
            Err(CoreError::InvalidPlan(_))
        ));
    }
}
