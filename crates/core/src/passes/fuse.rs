//! The fusion pass: folds trailing peripheral steps into their producing
//! dot layer.
//!
//! After compilation a conv layer typically reads its output activations
//! three times: once to add bias, once for batch-norm, once for ReLU.
//! This pass rewrites `Conv → Bn → Relu` (and `Linear → Relu`) runs into
//! a single [`CompiledStep::Fused`] step whose engine arm applies the
//! identical per-element expressions in one pass over the activations.
//!
//! Folding rules (applied left to right, recursing into residual
//! branches):
//!
//! * `Bn` folds into an immediately preceding `Conv` (or a conv-sourced
//!   `Fused` that carries no BN/ReLU yet) when the channel counts agree.
//!   It never folds into a `Linear`: the engine's standalone BN step
//!   rejects non-NCHW input, and fusion must not change behavior — not
//!   even error behavior.
//! * `Relu` folds into an immediately preceding `Conv`, `Linear`, or any
//!   `Fused` step that has not folded one yet.
//! * Everything else is copied through unchanged, so a `Bn` after a
//!   `Fused` step that already folded its ReLU stays standalone
//!   (reordering BN past ReLU would change values).

use crate::ir::{BnParams, CompiledModel, CompiledStep};
use crate::passes::PassOutcome;

pub(crate) fn run(model: &mut CompiledModel) -> PassOutcome {
    let mut folds = 0usize;
    let steps = std::mem::take(&mut model.steps);
    model.steps = fuse_steps(steps, &mut folds);
    PassOutcome {
        pass: "fuse-steps",
        changed: folds > 0,
        detail: format!("folded {folds} peripheral steps into dot layers"),
    }
}

fn fuse_steps(steps: Vec<CompiledStep>, folds: &mut usize) -> Vec<CompiledStep> {
    let mut out: Vec<CompiledStep> = Vec::with_capacity(steps.len());
    for step in steps {
        match step {
            CompiledStep::Residual { body, shortcut } => out.push(CompiledStep::Residual {
                body: fuse_steps(body, folds),
                shortcut: shortcut.map(|sc| fuse_steps(sc, folds)),
            }),
            CompiledStep::Bn {
                gamma,
                beta,
                mean,
                var,
            } => {
                let fold = matches!(
                    out.last(),
                    Some(CompiledStep::Conv { tile, .. }) if tile.kernels() == gamma.len()
                ) || matches!(
                    out.last(),
                    Some(CompiledStep::Fused {
                        conv: Some(_),
                        bn: None,
                        relu: false,
                        tile,
                        ..
                    }) if tile.kernels() == gamma.len()
                );
                if fold {
                    let params = BnParams {
                        gamma,
                        beta,
                        mean,
                        var,
                    };
                    match out.pop().expect("fold guard matched the last step") {
                        CompiledStep::Conv { cfg, tile, bias } => out.push(CompiledStep::Fused {
                            conv: Some(cfg),
                            tile,
                            bias,
                            bn: Some(params),
                            relu: false,
                        }),
                        CompiledStep::Fused {
                            conv, tile, bias, ..
                        } => out.push(CompiledStep::Fused {
                            conv,
                            tile,
                            bias,
                            bn: Some(params),
                            relu: false,
                        }),
                        _ => unreachable!("fold guard matched conv or fused"),
                    }
                    *folds += 1;
                } else {
                    out.push(CompiledStep::Bn {
                        gamma,
                        beta,
                        mean,
                        var,
                    });
                }
            }
            CompiledStep::Relu => match out.last_mut() {
                Some(CompiledStep::Fused { relu, .. }) if !*relu => {
                    *relu = true;
                    *folds += 1;
                }
                Some(CompiledStep::Conv { .. }) => {
                    let Some(CompiledStep::Conv { cfg, tile, bias }) = out.pop() else {
                        unreachable!("just matched a conv step");
                    };
                    out.push(CompiledStep::Fused {
                        conv: Some(cfg),
                        tile,
                        bias,
                        bn: None,
                        relu: true,
                    });
                    *folds += 1;
                }
                Some(CompiledStep::Linear { .. }) => {
                    let Some(CompiledStep::Linear { tile, bias }) = out.pop() else {
                        unreachable!("just matched a linear step");
                    };
                    out.push(CompiledStep::Fused {
                        conv: None,
                        tile,
                        bias,
                        bn: None,
                        relu: true,
                    });
                    *folds += 1;
                }
                _ => out.push(CompiledStep::Relu),
            },
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::hashplan::HashPlan;
    use deepcam_models::scaled::{scaled_lenet5, scaled_resnet18, scaled_vgg11};
    use deepcam_tensor::rng::seeded_rng;

    fn compile(model: &deepcam_models::Cnn) -> CompiledModel {
        CompiledModel::compile(
            model,
            EngineConfig {
                plan: HashPlan::Uniform(256),
                ..EngineConfig::default()
            },
        )
        .unwrap()
    }

    fn count_kinds(steps: &[CompiledStep]) -> (usize, usize, usize, usize) {
        // (standalone bn, standalone relu, fused, dot-without-fusion)
        fn walk(steps: &[CompiledStep], acc: &mut (usize, usize, usize, usize)) {
            for s in steps {
                match s {
                    CompiledStep::Bn { .. } => acc.0 += 1,
                    CompiledStep::Relu => acc.1 += 1,
                    CompiledStep::Fused { .. } => acc.2 += 1,
                    CompiledStep::Conv { .. } | CompiledStep::Linear { .. } => acc.3 += 1,
                    CompiledStep::Residual { body, shortcut } => {
                        walk(body, acc);
                        if let Some(sc) = shortcut {
                            walk(sc, acc);
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut acc = (0, 0, 0, 0);
        walk(steps, &mut acc);
        acc
    }

    #[test]
    fn vgg_conv_bn_relu_chains_collapse() {
        let mut rng = seeded_rng(20);
        let mut compiled = compile(&scaled_vgg11(&mut rng, 4, 10));
        let outcome = run(&mut compiled);
        assert!(outcome.changed);
        let (bn, relu, fused, _) = count_kinds(&compiled.steps);
        // Every conv has a trailing BN+ReLU; all of them fold. Only the
        // bias-only logits linear stays bare.
        assert_eq!(bn, 0, "no standalone BN should survive");
        assert_eq!(relu, 0, "no standalone ReLU should survive");
        assert!(fused > 0);
        compiled.validate().unwrap();
        // BN folded with its ReLU: conv-sourced fused steps carry both.
        let has_bn_relu = compiled.steps.iter().any(|s| {
            matches!(
                s,
                CompiledStep::Fused {
                    bn: Some(_),
                    relu: true,
                    ..
                }
            )
        });
        assert!(has_bn_relu);
    }

    #[test]
    fn lenet_fuses_relu_only_and_logits_stay_bare() {
        let mut rng = seeded_rng(21);
        let mut compiled = compile(&scaled_lenet5(&mut rng, 10));
        run(&mut compiled);
        let (bn, relu, fused, bare) = count_kinds(&compiled.steps);
        assert_eq!(bn, 0);
        assert_eq!(relu, 0);
        // conv1, conv2, fc1, fc2 carry ReLUs; fc3 (logits) does not.
        assert_eq!(fused, 4);
        assert_eq!(bare, 1);
        // The logits layer must not gain an activation.
        assert!(matches!(
            compiled.steps.last(),
            Some(CompiledStep::Linear { .. })
        ));
        compiled.validate().unwrap();
    }

    #[test]
    fn residual_branches_fuse_recursively() {
        let mut rng = seeded_rng(22);
        let mut compiled = compile(&scaled_resnet18(&mut rng, 4, 10));
        let outcome = run(&mut compiled);
        assert!(outcome.changed);
        compiled.validate().unwrap();
        let fused_inside_residual = compiled.steps.iter().any(|s| {
            if let CompiledStep::Residual { body, .. } = s {
                body.iter().any(|b| matches!(b, CompiledStep::Fused { .. }))
            } else {
                false
            }
        });
        assert!(fused_inside_residual);
        // The stem's conv-bn-relu collapses into one step carrying both.
        assert!(matches!(
            compiled.steps.first(),
            Some(CompiledStep::Fused {
                bn: Some(_),
                relu: true,
                ..
            })
        ));
        // A residual body ends conv-bn (no trailing ReLU — the post-add
        // activation lives in the Residual step), so its last fused step
        // must carry BN but no ReLU.
        let body_tail_bn_only = compiled.steps.iter().any(|s| {
            if let CompiledStep::Residual { body, .. } = s {
                matches!(
                    body.last(),
                    Some(CompiledStep::Fused {
                        bn: Some(_),
                        relu: false,
                        ..
                    })
                )
            } else {
                false
            }
        });
        assert!(body_tail_bn_only);
    }

    #[test]
    fn fusion_is_idempotent() {
        let mut rng = seeded_rng(23);
        let mut compiled = compile(&scaled_vgg11(&mut rng, 4, 10));
        run(&mut compiled);
        let once = compiled.clone();
        let outcome = run(&mut compiled);
        assert!(!outcome.changed);
        assert_eq!(once, compiled);
    }

    #[test]
    fn bn_after_linear_is_never_fused() {
        // The engine's standalone BN step rejects flat input; fusing BN
        // into a linear layer would turn that error into silent output.
        use deepcam_models::{Block, Cnn};
        use deepcam_tensor::layer::{BatchNorm2d, Linear};
        let mut rng = seeded_rng(24);
        let model = Cnn::new(
            "lin-bn",
            vec![
                Block::Linear(Linear::new(&mut rng, 8, 4)),
                Block::Bn(BatchNorm2d::new(4)),
            ],
            4,
        );
        let mut compiled = compile(&model);
        let outcome = run(&mut compiled);
        assert!(!outcome.changed);
        assert!(matches!(compiled.steps[1], CompiledStep::Bn { .. }));
    }
}
