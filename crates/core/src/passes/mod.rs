//! The optimizing pass pipeline over [`CompiledModel`].
//!
//! Compilation produces a straight-line step program
//! (`Cnn → LayerIr → PlanBinding → CompiledModel`); the passes here
//! rewrite that program *after* compilation, as an explicit, ordered
//! list. Every pass obeys one contract, pinned by
//! `tests/passes_invariance.rs` for every ordered subset of the list:
//!
//! * **May change:** the step program's *shape* (which steps exist, what
//!   each fuses), and scheduling metadata ([`CompiledModel::mapping`]).
//! * **May never change:** the logits. Output must stay **bitwise
//!   identical** to the unpassed pipeline for every input, noise seed,
//!   worker count and SIMD variant.
//!
//! The default list, in order:
//!
//! 1. [`Pass::FuseSteps`] ([`fuse`]) — folds trailing batch-norm/ReLU
//!    steps into their producing dot layer so the engine makes one pass
//!    over the output activations instead of several (wall-clock win).
//! 2. [`Pass::MapArrays`] ([`mapping`]) — replaces the scheduler's fixed
//!    64-row assumption with per-layer tile-shape + dataflow selection
//!    over a modeled multi-array chip, scored by the `deepcam-cam` cost
//!    model (modeled energy/latency win; attaches metadata only).
//!
//! [`crate::tune::tune_joint`] runs the mapping search together with the
//! per-layer hash-length tuner, co-optimizing both.

pub mod fuse;
pub mod mapping;

pub use mapping::{LayerMapping, MappingConfig, ModelMapping};

use crate::ir::CompiledModel;
use crate::Result;

/// One pass of the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Pass {
    /// Fold trailing BN/ReLU steps into their producing dot layer.
    FuseSteps,
    /// Search a per-layer CAM array mapping under this configuration.
    MapArrays(MappingConfig),
}

impl Pass {
    /// Stable pass name (progress lines, [`PassOutcome::pass`]).
    pub fn name(&self) -> &'static str {
        match self {
            Pass::FuseSteps => "fuse-steps",
            Pass::MapArrays(_) => "map-arrays",
        }
    }
}

/// What one pass did to the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassOutcome {
    /// The pass's stable name.
    pub pass: &'static str,
    /// Whether the model was modified.
    pub changed: bool,
    /// Human-readable summary of the rewrite.
    pub detail: String,
}

/// The default pass list, in application order.
pub fn default_passes() -> Vec<Pass> {
    vec![Pass::FuseSteps, Pass::MapArrays(MappingConfig::default())]
}

/// Applies `passes` to `model` in order, re-validating the model after
/// each rewrite.
///
/// # Errors
///
/// Returns the failing pass's error, or [`crate::CoreError::Artifact`]
/// when a rewrite leaves the model structurally inconsistent (a pass
/// bug — validation runs after every pass precisely so the offender is
/// named).
pub fn apply(model: &mut CompiledModel, passes: &[Pass]) -> Result<Vec<PassOutcome>> {
    let mut outcomes = Vec::with_capacity(passes.len());
    for pass in passes {
        let outcome = match pass {
            Pass::FuseSteps => fuse::run(model),
            Pass::MapArrays(cfg) => mapping::run(model, cfg)?,
        };
        model.validate()?;
        outcomes.push(outcome);
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::hashplan::HashPlan;
    use deepcam_models::scaled::scaled_vgg11;
    use deepcam_tensor::rng::seeded_rng;

    #[test]
    fn pass_names_are_stable() {
        assert_eq!(Pass::FuseSteps.name(), "fuse-steps");
        assert_eq!(
            Pass::MapArrays(MappingConfig::default()).name(),
            "map-arrays"
        );
        let names: Vec<&str> = default_passes().iter().map(|p| p.name()).collect();
        assert_eq!(names, ["fuse-steps", "map-arrays"]);
    }

    #[test]
    fn default_pipeline_fuses_and_maps_a_bn_model() {
        let mut rng = seeded_rng(11);
        let model = scaled_vgg11(&mut rng, 4, 10);
        let mut compiled = CompiledModel::compile(
            &model,
            EngineConfig {
                plan: HashPlan::Uniform(256),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let outcomes = apply(&mut compiled, &default_passes()).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.changed), "{outcomes:?}");
        assert!(compiled.mapping.is_some());
        compiled.validate().unwrap();
        // Applying the same list again is a fixpoint for fusion and
        // deterministic for mapping.
        let again = apply(&mut compiled, &default_passes()).unwrap();
        assert!(!again[0].changed, "{:?}", again[0]);
        assert!(!again[1].changed, "{:?}", again[1]);
    }
}
