//! The two dataflows evaluated in the paper (§IV-A, Fig. 9).

use serde::bin::{BinCodec, BinError, BinResult, Reader, Writer};
use serde::{Deserialize, Serialize};

/// How a dot-product layer is mapped onto the CAM.
///
/// * **Weight-stationary**: kernel contexts occupy the CAM rows and
///   activation contexts stream as search keys. Utilization suffers when
///   a layer has few kernels (the paper's example: 6 kernels in a 64-row
///   CAM → 9.4%).
/// * **Activation-stationary**: activation contexts occupy the rows and
///   kernel contexts stream. Conv layers have hundreds of output
///   positions, so the rows fill up (→ ~100% utilization) and fewer
///   search operations are needed overall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// Kernels in rows, activations as keys.
    WeightStationary,
    /// Activations in rows, kernels as keys.
    ActivationStationary,
}

impl Dataflow {
    /// Short label used in figure output (`WS`/`AS`).
    pub fn label(&self) -> &'static str {
        match self {
            Dataflow::WeightStationary => "WS",
            Dataflow::ActivationStationary => "AS",
        }
    }

    /// Both dataflows, WS first (the paper's presentation order).
    pub fn both() -> [Dataflow; 2] {
        [Dataflow::WeightStationary, Dataflow::ActivationStationary]
    }
}

impl BinCodec for Dataflow {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            Dataflow::WeightStationary => 0,
            Dataflow::ActivationStationary => 1,
        });
    }

    fn decode(r: &mut Reader<'_>) -> BinResult<Self> {
        match r.get_u8()? {
            0 => Ok(Dataflow::WeightStationary),
            1 => Ok(Dataflow::ActivationStationary),
            other => Err(BinError::Invalid(format!("Dataflow tag {other}"))),
        }
    }
}

impl std::fmt::Display for Dataflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dataflow::WeightStationary => write!(f, "weight-stationary"),
            Dataflow::ActivationStationary => write!(f, "activation-stationary"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Dataflow::WeightStationary.label(), "WS");
        assert_eq!(Dataflow::ActivationStationary.label(), "AS");
    }

    #[test]
    fn display() {
        assert_eq!(
            Dataflow::ActivationStationary.to_string(),
            "activation-stationary"
        );
    }

    #[test]
    fn bin_codec_round_trips_and_rejects_bad_tags() {
        for df in Dataflow::both() {
            let mut w = Writer::new();
            df.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(Dataflow::decode(&mut r).unwrap(), df);
            r.finish().unwrap();
        }
        let mut r = Reader::new(&[9u8]);
        assert!(Dataflow::decode(&mut r).is_err());
    }

    #[test]
    fn both_ordering() {
        assert_eq!(
            Dataflow::both(),
            [Dataflow::WeightStationary, Dataflow::ActivationStationary]
        );
    }
}
